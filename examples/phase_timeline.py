"""Dynamic behaviour: watch MemScale track a program phase change.

Reproduces the Figure 7 experiment: the MID3 mix contains apsi, whose
miss rate jumps ~6x mid-run. The OS policy only acts at quantum
boundaries, so the frequency rises one epoch after the phase change —
and the slack account still keeps apsi within the 10% bound.

Usage::

    python examples/phase_timeline.py
"""

import os

from repro import ExperimentRunner, RunnerSettings
from repro.analysis import bar

# REPRO_EXAMPLE_INSTRUCTIONS lets the test harness shrink the run.
N_INSTR = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "200000"))


def main() -> None:
    runner = ExperimentRunner(
        settings=RunnerSettings(instructions_per_core=N_INSTR))
    print("Simulating MID3 (apsi bzip2 ammp gap) under MemScale ...")
    result, comparison = runner.run_memscale("MID3")

    print()
    print("time (us)  bus MHz  apsi CPI   mean channel util")
    print("-" * 72)
    for sample in result.timeline:
        apsi = sample.app_cpi.get("apsi", float("nan"))
        util = float(sample.channel_util.mean())
        freq_bar = bar(sample.bus_mhz, scale=800.0, width=16)
        print(f"{sample.time_ns / 1000.0:9.1f}  {sample.bus_mhz:5.0f}  "
              f"{apsi:8.2f}   {util:6.1%}  |{freq_bar:<16}|")

    print()
    print("The frequency column should drop early (apsi's quiet phase),")
    print("then rise after the CPI column jumps (the phase change).")
    print()
    print(f"apsi CPI increase over the whole run: "
          f"{comparison.app_cpi_increase['apsi']:+.1%} "
          f"(bound: +10.0%)")
    print(f"system energy savings: {comparison.system_energy_savings:+.1%}")


if __name__ == "__main__":
    main()
