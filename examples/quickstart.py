"""Quickstart: run MemScale on one Table 1 workload and print the savings.

Usage::

    python examples/quickstart.py [MIX]

where MIX is a Table 1 mix name (default MID1). The script simulates
the all-on baseline and the MemScale policy on identical traces, then
reports energy savings and per-application CPI impact.
"""

import os
import sys

from repro import ExperimentRunner, RunnerSettings
from repro.analysis import format_table
from repro.cpu.workloads import MIXES

# REPRO_EXAMPLE_INSTRUCTIONS lets the test harness shrink the run.
N_INSTR = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "150000"))


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MID1"
    if mix not in MIXES:
        raise SystemExit(f"unknown mix {mix!r}; choose from {list(MIXES)}")

    print(f"Simulating {mix} ({', '.join(MIXES[mix].apps)}) ...")
    runner = ExperimentRunner(
        settings=RunnerSettings(instructions_per_core=N_INSTR))

    result, comparison = runner.run_memscale(mix)

    print()
    print(f"=== MemScale on {mix} (10% CPI bound) ===")
    print(f"memory energy savings : {comparison.memory_energy_savings:7.1%}")
    print(f"system energy savings : {comparison.system_energy_savings:7.1%}")
    print(f"average CPI increase  : {comparison.avg_cpi_increase:7.1%}")
    print(f"worst CPI increase    : {comparison.worst_cpi_increase:7.1%}")
    print(f"epochs simulated      : {result.epochs}")
    print(f"frequency transitions : {result.transition_count}")
    print()
    rows = [[app, f"{inc:+.1%}"]
            for app, inc in sorted(comparison.app_cpi_increase.items())]
    print(format_table(["application", "CPI increase"], rows,
                       title="Per-application impact"))
    print()
    freqs = [s.bus_mhz for s in result.timeline]
    print(f"bus frequencies used  : {sorted(set(freqs), reverse=True)}")
    print(f"time-weighted mean    : {sum(freqs) / len(freqs):.0f} MHz")


if __name__ == "__main__":
    main()
