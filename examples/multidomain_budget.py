"""Multi-domain budgeting: split one watt budget across CPU and memory.

Runs the coordinated :class:`MultiDomainGovernor` on one Table 1 mix at
two global power budgets — one comfortable, one infeasible for either
domain alone at max frequency — and prints how the governor divides the
budget between core DVFS and memory DFS at each point.

Usage::

    python examples/multidomain_budget.py [MIX]

where MIX is a Table 1 mix name (default MID1).
"""

import os
import sys

from repro import ExperimentRunner, RunnerSettings
from repro.analysis import format_table
from repro.cpu.workloads import MIXES

# REPRO_EXAMPLE_INSTRUCTIONS lets the test harness shrink the run.
N_INSTR = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "120000"))

BUDGET_FRACTIONS = (0.8, 0.55)


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MID1"
    if mix not in MIXES:
        raise SystemExit(f"unknown mix {mix!r}; choose from {list(MIXES)}")

    runner = ExperimentRunner(
        settings=RunnerSettings(instructions_per_core=N_INSTR))
    reference_w = runner.multidomain_reference_power_w(mix)
    print(f"Simulating {mix} ({', '.join(MIXES[mix].apps)}) ...")
    print(f"reference power (nominal cores + max-frequency memory): "
          f"{reference_w:.2f} W")

    rows = []
    for fraction in BUDGET_FRACTIONS:
        governor = runner.make_multidomain_governor(
            mix, budget_fraction=fraction)
        runner.run_governor(mix, governor)
        summary = governor.multidomain_summary()
        allocation = governor.last_allocation
        if allocation is None:  # run too short for an epoch decision
            rows.append([f"{fraction:.0%}",
                         f"{governor.budget.min_watts:.2f}",
                         "-", "-", "-", "-",
                         f"{summary['violation_count']:d}", "-"])
            continue
        split = allocation.budget_split
        rows.append([
            f"{fraction:.0%}",
            f"{governor.budget.min_watts:.2f}",
            f"{split['core_w']:.2f}",
            f"{split['memory_w']:.2f}",
            f"{allocation.core_point.freq_mhz:.0f}",
            f"{allocation.global_point.bus_mhz:.0f}",
            f"{summary['violation_count']:d}",
            f"{allocation.min_perf:.3f}",
        ])

    print()
    print(format_table(
        ["budget", "cap W", "core W", "mem W", "core MHz", "bus MHz",
         "viol", "min perf"],
        rows, title="Per-domain budget split (last epoch)"))
    print()
    print("At the tight budget neither domain fits alone at full speed;")
    print("the governor slows both until the pair meets the cap.")


if __name__ == "__main__":
    main()
