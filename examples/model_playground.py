"""Model playground: use the Section 3.3 models without a simulation.

Profiles one short interval of a real simulated run, then uses the
performance and energy models exactly as the OS policy does: predict
per-core CPI and full-system SER at every candidate frequency, and show
which frequency the policy would pick. Useful for understanding why
MemScale chooses what it chooses.

Usage::

    python examples/model_playground.py [MIX]
"""

import os
import sys

from repro import (
    BaselineGovernor,
    EnergyModel,
    PerformanceModel,
    generate_workload,
    rest_of_system_power_w,
    scaled_config,
)
from repro.analysis import format_table
from repro.core.frequency import FrequencyLadder
from repro.cpu.core_model import CpuCluster
from repro.cpu.workloads import MIXES
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterFile
from repro.memsim.engine import EventEngine


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MID2"
    if mix not in MIXES:
        raise SystemExit(f"unknown mix {mix!r}; choose from {list(MIXES)}")
    config = scaled_config()
    ladder = FrequencyLadder(config)

    # Drive the memory system at max frequency for one profiling window.
    n_instr = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "50000"))
    workload = generate_workload(mix, instructions_per_core=n_instr)
    engine = EventEngine()
    controller = MemoryController(engine, config)
    cluster = CpuCluster(engine, controller, config.cpu, workload.cores)
    cluster.start()
    cluster.sync_committed()
    start = controller.snapshot()
    engine.run_until(20_000.0)  # 20 us of profiling
    cluster.sync_committed()
    delta = CounterFile.delta(start, controller.snapshot())

    print(f"profiled {mix} for 20 us at 800 MHz:")
    print(f"  LLC misses: {delta.total_misses:.0f}   "
          f"row hits: {delta.rbhc:.0f}   "
          f"xi_bank: {1 + delta.xi_bank:.2f}   xi_bus: {1 + delta.xi_bus:.2f}")
    print(f"  mean channel utilization: {delta.mean_channel_utilization:.1%}")

    # Apply the models across the whole frequency ladder.
    perf = PerformanceModel(config)
    rest_w = rest_of_system_power_w(30.0, config.power.memory_power_fraction)
    energy = EnergyModel(config, rest_w, perf_model=perf)

    rows = []
    best = None
    for point in ladder:
        pred = perf.predict(delta, point, profiled_freq=ladder.fastest)
        est = energy.estimate(delta, ladder.fastest, point, ladder.fastest)
        mean_cpi = float(pred.cpi.mean())
        rows.append([
            f"{point.bus_mhz:.0f}", f"{point.mc_voltage:.3f}",
            f"{pred.tpi_mem_ns:.1f}", f"{mean_cpi:.3f}",
            f"{est.breakdown.memory_w:.1f}", f"{est.ser:.4f}",
        ])
        if best is None or est.ser < best[1]:
            best = (point.bus_mhz, est.ser)

    print()
    print(format_table(
        ["bus MHz", "MC volts", "E[TPI_mem] ns", "mean CPI",
         "memory W", "SER"],
        rows, title="Model predictions across the frequency ladder"))
    print()
    print(f"SER-minimal frequency (ignoring slack): {best[0]:.0f} MHz")
    print("The OS policy would pick this point unless a core's slack")
    print("constraint (Eq. 1) rules it out.")


if __name__ == "__main__":
    main()
