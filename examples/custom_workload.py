"""Bring your own workload: build traces directly and simulate them.

Shows the lower-level API: hand-built :class:`CoreTrace` objects (here,
a synthetic latency-sensitive service plus batch jobs), a custom
:class:`SystemConfig`, and direct use of :class:`SystemSimulator` with
a calibrated MemScale governor — the path a user takes when their
workload is not one of the Table 1 mixes.

Usage::

    python examples/custom_workload.py
"""

import os

import numpy as np

from repro import (
    BaselineGovernor,
    EnergyModel,
    MemScaleGovernor,
    MemScalePolicy,
    SystemSimulator,
    compare_to_baseline,
    rest_of_system_power_w,
    scaled_config,
)
from repro.cpu.trace import CoreTrace, WorkloadTrace


def make_app(name, app_id, core_index, rpki, n_instructions, seed):
    """A minimal trace generator: exponential gaps, random addresses."""
    rng = np.random.default_rng(seed)
    mean_gap = 1000.0 / rpki
    n_misses = max(1, int(n_instructions / mean_gap))
    gaps = np.maximum(1, rng.exponential(mean_gap, n_misses)).astype(np.int64)
    gaps[-1] += max(0, n_instructions - int(gaps.sum()))
    base = core_index << 26
    reads = base + rng.integers(0, 1 << 18, n_misses)
    wbs = np.where(rng.random(n_misses) < 0.1,
                   base + rng.integers(0, 1 << 18, n_misses),
                   -1).astype(np.int64)
    return CoreTrace(app_name=name, app_id=app_id, gaps=gaps,
                     read_addrs=reads.astype(np.int64), wb_addrs=wbs)


def main() -> None:
    config = scaled_config().with_cpu(cores=8)
    n_instr = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "120000"))

    # 4 latency-critical service cores + 4 batch-analytics cores.
    cores = []
    for i in range(4):
        cores.append(make_app("service", 0, i, rpki=0.8,
                              n_instructions=n_instr, seed=100 + i))
    for i in range(4, 8):
        cores.append(make_app("batch", 1, i, rpki=6.0,
                              n_instructions=n_instr, seed=100 + i))
    workload = WorkloadTrace("custom", cores)
    print(f"custom workload: RPKI={workload.rpki:.2f} "
          f"WPKI={workload.wpki:.2f} on {len(workload)} cores")

    # 1) Baseline run (max frequency) to calibrate rest-of-system power.
    baseline = SystemSimulator(config, workload, BaselineGovernor()).run()
    rest_w = rest_of_system_power_w(baseline.avg_dimm_power_w,
                                    config.power.memory_power_fraction)
    print(f"baseline: wall={baseline.wall_time_ns / 1e3:.1f} us, "
          f"DIMM power={baseline.avg_dimm_power_w:.1f} W, "
          f"rest-of-system={rest_w:.1f} W")

    # 2) MemScale with per-application bounds (Section 3.1): the
    #    latency-critical service tier tolerates only 3% slowdown, the
    #    batch tier 15%.
    bounds = [0.03] * 4 + [0.15] * 4
    policy = MemScalePolicy(config, EnergyModel(config, rest_w),
                            n_cores=len(workload), per_core_bounds=bounds)
    result = SystemSimulator(config, workload, MemScaleGovernor(policy)).run()

    cmp = compare_to_baseline(baseline, result,
                              cycle_ns=config.cpu.cycle_ns,
                              memory_power_fraction=
                              config.power.memory_power_fraction)
    print()
    print("=== MemScale (service 3% / batch 15% bounds) ===")
    print(f"memory energy savings : {cmp.memory_energy_savings:7.1%}")
    print(f"system energy savings : {cmp.system_energy_savings:7.1%}")
    for app, inc in sorted(cmp.app_cpi_increase.items()):
        print(f"{app:>8} CPI increase : {inc:+7.1%}")
    freqs = sorted({s.bus_mhz for s in result.timeline}, reverse=True)
    print(f"frequencies exercised : {freqs}")


if __name__ == "__main__":
    main()
