"""Policy shootout: compare all energy-management policies on one mix.

Reproduces the Figure 9/11 view for a single workload: every policy the
paper evaluates, run on identical traces, reported as energy savings
and CPI impact relative to the all-on baseline.

Usage::

    python examples/policy_shootout.py [MIX] [INSTRUCTIONS]
"""

import os
import sys

from repro import ExperimentRunner, RunnerSettings
from repro.analysis import format_table
from repro.cpu.workloads import MIXES
from repro.sim.runner import POLICY_NAMES

# REPRO_EXAMPLE_INSTRUCTIONS lets the test harness shrink the run.
N_INSTR = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "120000"))


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MID1"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else N_INSTR
    if mix not in MIXES:
        raise SystemExit(f"unknown mix {mix!r}; choose from {list(MIXES)}")

    runner = ExperimentRunner(
        settings=RunnerSettings(instructions_per_core=instructions))
    print(f"Comparing {len(POLICY_NAMES) - 1} policies on {mix} "
          f"({instructions} instructions/core) ...")

    rows = []
    for name in POLICY_NAMES:
        if name == "Baseline":
            continue
        cmp = runner.compare_named(mix, name)
        rows.append([
            name,
            f"{cmp.memory_energy_savings:+7.1%}",
            f"{cmp.system_energy_savings:+7.1%}",
            f"{cmp.avg_cpi_increase:+6.1%}",
            f"{cmp.worst_cpi_increase:+6.1%}",
        ])
        print(f"  {name}: done")

    print()
    print(format_table(
        ["policy", "mem savings", "sys savings", "avg CPI", "worst CPI"],
        rows, title=f"Energy-management policies on {mix} "
                    "(vs all-on baseline)"))
    print()
    print("Reading the table: MemScale should beat every alternative on")
    print("memory savings while keeping the worst CPI increase under the")
    print("10% bound; Slow-PD typically *wastes* system energy.")


if __name__ == "__main__":
    main()
