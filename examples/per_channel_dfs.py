"""Per-channel DFS: the paper's Section 6 future-work item, running.

Builds a channel-imbalanced workload (half the cores hammer channel 0
through strided addresses, the rest are nearly idle), then compares
uniform MemScale against the per-channel extension, which clocks cold
channels one ladder step below the global decision.

Usage::

    python examples/per_channel_dfs.py
"""

import os

import numpy as np

from repro import (
    BaselineGovernor,
    EnergyModel,
    MemScaleGovernor,
    MemScalePolicy,
    SystemSimulator,
    compare_to_baseline,
    rest_of_system_power_w,
    scaled_config,
)
from repro.analysis import format_table
from repro.core.extensions import PerChannelMemScaleGovernor
from repro.cpu.trace import CoreTrace, WorkloadTrace

# REPRO_EXAMPLE_INSTRUCTIONS lets the test harness shrink the run.
N_INSTR = int(os.environ.get("REPRO_EXAMPLE_INSTRUCTIONS", "120000"))


def skewed_workload(config):
    channels = config.org.channels
    rng = np.random.default_rng(7)
    cores = []
    for i in range(8):
        hot = i < 4
        rpki = 6.0 if hot else 0.3
        mean_gap = 1000.0 / rpki
        n = max(1, int(N_INSTR / mean_gap))
        gaps = np.maximum(1, rng.exponential(mean_gap, n)).astype(np.int64)
        gaps[-1] += max(0, N_INSTR - int(gaps.sum()))
        base = i << 26
        if hot:  # stride of `channels` lines pins the stream to channel 0
            offsets = rng.integers(0, 1 << 16, n) * channels
        else:
            offsets = rng.integers(0, 1 << 18, n)
        cores.append(CoreTrace("hot" if hot else "cold", int(hot), gaps,
                               (base + offsets).astype(np.int64),
                               np.full(n, -1, dtype=np.int64)))
    return WorkloadTrace("skewed", cores)


def main() -> None:
    config = scaled_config().with_cpu(cores=8)
    workload = skewed_workload(config)
    print(f"channel-skewed workload: RPKI={workload.rpki:.2f} on 8 cores "
          f"(4 hot cores pinned to channel 0)")

    baseline = SystemSimulator(config, workload, BaselineGovernor()).run()
    rest_w = rest_of_system_power_w(baseline.avg_dimm_power_w,
                                    config.power.memory_power_fraction)

    rows = []
    for label, make in (
        ("uniform MemScale", lambda p: MemScaleGovernor(p)),
        ("per-channel DFS", lambda p: PerChannelMemScaleGovernor(p)),
    ):
        policy = MemScalePolicy(config, EnergyModel(config, rest_w),
                                n_cores=len(workload))
        governor = make(policy)
        result = SystemSimulator(config, workload, governor).run()
        cmp = compare_to_baseline(
            baseline, result, cycle_ns=config.cpu.cycle_ns,
            memory_power_fraction=config.power.memory_power_fraction,
            rest_power_w=rest_w)
        rows.append([label,
                     f"{cmp.memory_energy_savings:+.1%}",
                     f"{cmp.system_energy_savings:+.1%}",
                     f"{cmp.worst_cpi_increase:+.1%}",
                     getattr(governor, "per_channel_drops", 0)])

    print()
    print(format_table(
        ["policy", "mem savings", "sys savings", "worst CPI",
         "channel down-steps"],
        rows, title="Uniform vs per-channel MemScale on skewed load"))
    print()
    print("The per-channel governor drops the three cold channels below")
    print("the global frequency, harvesting extra background/PLL energy")
    print("the uniform policy must leave on the table.")


if __name__ == "__main__":
    main()
