"""Tests for rank-aware page placement (placement/) and SR parking.

Four layers:

* unit tests of the :class:`PageTable` indirection — decode geometry,
  migration pair generation, allocation steering, epoch counters;
* a hypothesis *off-path* property: with ``placement.enabled`` False
  the knob values must be invisible — a run serializes byte-identically
  to the pristine config (the golden-snapshot-style guard, modeled on
  test_fast_forward.py);
* hypothesis protocol properties: randomized traffic x migration
  cadence x SR thresholds against a real armed controller — zero
  violations, and the migration copy ledger conserves (every migrated
  line was copied or sits in the pump's tracked backlog);
* full-system accounting: the placed leg's extra controller traffic is
  exactly the pump's reads and writes (migration copies are real,
  power-accounted requests, not free).
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import scaled_config
from repro.memsim.controller import (
    WRITEBACK_QUEUE_CAPACITY,
    MemoryController,
)
from repro.memsim.engine import EventEngine
from repro.memsim.states import PowerdownMode
from repro.placement.policy import MigrationPump, PlacementPolicy
from repro.placement.table import PageTable
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.serialize import run_result_to_dict
from repro.sim.system import SystemSimulator

CFG = scaled_config()
ORG = CFG.org
SETTINGS = RunnerSettings(cores=4, instructions_per_core=2_000, seed=2011)

#: Legal page sizes: multiples of channels * banks_per_rank (= 32).
PAGE_LINES = (32, 64, 128)


def make_table(**overrides):
    placement = dataclasses.replace(CFG.placement, enabled=True, **overrides)
    return PageTable(ORG, placement)


def result_bytes(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True).encode()


class TestPageTable:
    def test_page_lines_must_stripe_evenly(self):
        with pytest.raises(ValueError, match="multiple of"):
            make_table(page_lines=ORG.channels * ORG.banks_per_rank + 1)

    def test_decode_confines_a_page_to_its_group(self):
        table = make_table(page_lines=32)
        page = 5
        locations = [table.decode(page * 32 + off) for off in range(32)]
        group = table.group_of(page)
        assert {loc.rank for loc in locations} == {group}
        # full bus parallelism: the page still stripes over every
        # channel and every bank
        assert {loc.channel for loc in locations} \
            == set(range(ORG.channels))
        assert {loc.bank for loc in locations} \
            == set(range(ORG.banks_per_rank))

    def test_spread_initial_uses_every_group(self):
        table = make_table(page_lines=32)
        for page in range(table.n_groups):
            table.decode(page * 32)
        groups = {table.group_of(p) for p in range(table.n_groups)}
        assert groups == set(range(table.n_groups))

    def test_group_ranks_one_per_channel(self):
        table = make_table()
        rpc = ORG.ranks_per_channel
        for group in range(table.n_groups):
            ranks = table.group_ranks(group)
            assert ranks == [c * rpc + group for c in range(ORG.channels)]
        # groups partition the global rank space
        every = sorted(r for g in range(table.n_groups)
                       for r in table.group_ranks(g))
        assert every == list(range(ORG.total_ranks))

    def test_migrate_generates_full_copy_pairs_and_remaps(self):
        table = make_table(page_lines=32)
        page = 0
        table.decode(page * 32)
        old_group = table.group_of(page)
        new_group = (old_group + 1) % table.n_groups
        pairs = table.migrate(page, new_group)
        assert len(pairs) == 32
        assert all(old.rank == old_group and new.rank == new_group
                   for old, new in pairs)
        # the copy preserves the channel/bank stripe line-for-line
        assert all((old.channel, old.bank) == (new.channel, new.bank)
                   for old, new in pairs)
        # demand decode follows the new home immediately
        assert table.decode(page * 32).rank == new_group
        assert table.stats()["migrated_lines"] == 32

    def test_migrate_to_same_group_is_a_no_op(self):
        table = make_table(page_lines=32)
        table.decode(0)
        assert table.migrate(0, table.group_of(0)) == []
        assert table.stats()["migrations"] == 0

    def test_migrate_to_unknown_group_rejected(self):
        table = make_table(page_lines=32)
        table.decode(0)
        with pytest.raises(ValueError, match="no such rank group"):
            table.migrate(0, table.n_groups)

    def test_steering_redirects_first_touch_allocation(self):
        table = make_table(page_lines=32)
        table.steer_to([2])
        table.decode(7 * 32)
        assert table.group_of(7) == 2
        table.steer_to(None)
        table.decode(9 * 32)
        assert table.group_of(9) == 9 % table.n_groups

    def test_collect_epoch_returns_and_resets_counts(self):
        table = make_table(page_lines=32)
        for _ in range(3):
            table.decode(0)
        table.decode(32)
        assert table.collect_epoch() == {0: 3, 1: 1}
        # counters reset: an empty epoch collects nothing
        assert table.collect_epoch() == {}


class TestDisabledPlacementIsInvisible:
    """Satellite guard: placement *disabled* must be a byte-level no-op.

    The controller keeps ``_decode = mapper.decode`` (the same bound
    method) when ``placement.enabled`` is False, so whatever the other
    knobs say, a run must serialize byte-identically to the pristine
    config — the same invariant the golden snapshot pins for the
    committed mixes.
    """

    @given(mix=st.sampled_from(["MID1", "ILP1", "MEM1"]),
           policy=st.sampled_from(["Baseline", "MemScale",
                                   "MemScale+Fast-PD"]),
           page_lines=st.sampled_from(PAGE_LINES),
           migrations=st.integers(min_value=0, max_value=32),
           sr_idle=st.integers(min_value=1, max_value=4),
           spread=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_knobs_without_enable_are_byte_invisible(
            self, mix, policy, page_lines, migrations, sr_idle, spread):
        knobbed = CFG.with_placement(page_lines=page_lines,
                                     migrations_per_epoch=migrations,
                                     sr_idle_epochs=sr_idle,
                                     spread_initial=spread)
        assert not knobbed.placement.enabled
        base_result, _ = ExperimentRunner(
            config=CFG, settings=SETTINGS,
            cache=None).run_named_policy(mix, policy)
        knob_result, _ = ExperimentRunner(
            config=knobbed, settings=SETTINGS,
            cache=None).run_named_policy(mix, policy)
        assert result_bytes(base_result) == result_bytes(knob_result)

    def test_disabled_config_builds_no_page_table(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=False, n_cores=4)
        assert mc.placement is None
        assert mc._decode == mc.mapper.decode


class TestRandomizedPlacementProtocol:
    """Randomized traffic x cadence x thresholds on an armed controller.

    The validator runs in raise mode (``validate_protocol=True``), so
    any self-refresh state-machine, refresh-suspension, or timing
    offense fails at the exact command; afterwards the migration copy
    ledger must conserve.
    """

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_random_traffic_and_migration_zero_violations(self, data):
        cfg = scaled_config().with_placement(
            enabled=True,
            page_lines=data.draw(st.sampled_from(PAGE_LINES),
                                 label="page_lines"),
            migrations_per_epoch=data.draw(st.integers(1, 8),
                                           label="migrations_per_epoch"),
            sr_idle_epochs=data.draw(st.integers(1, 3),
                                     label="sr_idle_epochs"),
            hot_group_fraction=data.draw(st.sampled_from([0.25, 0.5]),
                                         label="hot_group_fraction"),
        ).replace(validate_protocol=True)
        engine = EventEngine()
        mc = MemoryController(
            engine, cfg,
            powerdown_mode=data.draw(
                st.sampled_from([PowerdownMode.NONE,
                                 PowerdownMode.FAST_EXIT]),
                label="powerdown"),
            refresh_enabled=True, n_cores=4)
        table = mc.placement
        policy = PlacementPolicy(cfg.placement, cfg.org)
        pump = MigrationPump(mc)
        hot_span = 4 * cfg.placement.page_lines
        for _ in range(data.draw(st.integers(3, 6), label="n_epochs")):
            for _ in range(data.draw(st.integers(5, 40), label="n_ops")):
                addr = data.draw(st.integers(0, (1 << 20) - 1),
                                 label="line_addr")
                if data.draw(st.booleans(), label="is_hot"):
                    addr %= hot_span  # skew: half the traffic is hot
                if data.draw(st.booleans(), label="is_read"):
                    mc.submit_read(addr)
                else:
                    channel = mc.mapper.decode(addr).channel
                    if (mc.wb_queue_occupancy(channel)
                            < WRITEBACK_QUEUE_CAPACITY):
                        mc.submit_writeback(addr)
                gap = data.draw(st.floats(min_value=0.0, max_value=40.0),
                                label="gap_ns")
                engine.run_until(engine.now + gap)
            engine.run_until(engine.now + 500.0)
            policy.on_epoch_end(mc, table, pump)
            engine.run_until(engine.now + 2_000.0)
        # drain demand and copy traffic, then keep refreshing a while
        engine.run_until(engine.now + 60_000.0)
        assert mc.pending_requests == 0
        mc.validator.finalize()
        assert mc.validator.violation_count == 0
        # copy-ledger conservation: nothing silently dropped, and with
        # the subsystem quiescent the backlog has fully drained
        assert pump.backlog == 0
        assert pump.lines_copied == table.migrated_lines
        assert pump.reads_submitted == pump.writes_submitted \
            == pump.lines_copied

    @given(mix=st.sampled_from(["MID1", "ILP2"]),
           page_lines=st.sampled_from(PAGE_LINES),
           migrations=st.integers(min_value=1, max_value=8),
           sr_idle=st.integers(min_value=1, max_value=3))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_armed_governor_runs_conserve(self, mix, page_lines,
                                          migrations, sr_idle):
        """Full-system PlacementGovernor runs, validator in raise mode:
        the run completing *is* the zero-violations assertion."""
        cfg = scaled_config().with_policy(
            epoch_ns=4_000.0, profile_ns=400.0).with_placement(
            enabled=True, page_lines=page_lines,
            migrations_per_epoch=migrations,
            sr_idle_epochs=sr_idle).replace(validate_protocol=True)
        runner = ExperimentRunner(
            config=cfg,
            settings=RunnerSettings(cores=4, instructions_per_core=8_000,
                                    seed=2011),
            cache=None)
        governor = runner.make_placement_governor(mix)
        result = runner.run_governor(mix, governor)
        assert result.epochs >= 1
        summary = governor.placement_summary()
        assert summary["lines_copied"] + summary["backlog"] \
            == summary["migrated_lines"]
        assert summary["reads_submitted"] >= summary["writes_submitted"] \
            == summary["lines_copied"]


class TestMigrationTrafficAccounting:
    """Migration copies are real controller traffic: the placed leg's
    extra completed reads/writes equal the pump's submissions exactly,
    so their energy and timing cost is fully accounted."""

    def _run(self, cfg, make_governor):
        runner = ExperimentRunner(
            config=cfg,
            settings=RunnerSettings(cores=4, instructions_per_core=20_000,
                                    seed=2011),
            cache=None)
        governor = make_governor(runner)
        sim = SystemSimulator(cfg, runner.trace("MID1"), governor)
        # count demand-path submissions (the CPU side uses submit_read /
        # submit_writeback; the migration pump submits MemRequests
        # directly), so the accounting identity below is exact even
        # though cores that finish early keep issuing timing-dependent
        # traffic until the last core reaches its target
        mc = sim.controller
        demand = {"n": 0}
        orig_read, orig_wb = mc.submit_read, mc.submit_writeback

        def counting_read(*args, **kwargs):
            demand["n"] += 1
            return orig_read(*args, **kwargs)

        def counting_wb(*args, **kwargs):
            demand["n"] += 1
            return orig_wb(*args, **kwargs)

        mc.submit_read = counting_read
        mc.submit_writeback = counting_wb
        sim.run()
        return mc, governor, demand["n"]

    def test_extra_traffic_equals_pump_submissions(self):
        base = scaled_config().with_policy(epoch_ns=4_000.0,
                                           profile_ns=400.0)
        off_mc, _, off_demand = self._run(
            base, lambda r: r.make_memscale_governor("MID1"))
        placed = base.with_placement(enabled=True, page_lines=32,
                                     migrations_per_epoch=4)
        on_mc, governor, on_demand = self._run(
            placed, lambda r: r.make_placement_governor("MID1"))
        summary = governor.placement_summary()
        assert summary["migrations"] > 0
        pump_total = summary["reads_submitted"] + summary["writes_submitted"]
        assert pump_total > 0
        # every submission is accounted: completed + in-flight covers
        # demand plus the pump's copy traffic, on both legs
        off_sub = (off_mc.completed_reads + off_mc.completed_writes
                   + off_mc.pending_requests)
        on_sub = (on_mc.completed_reads + on_mc.completed_writes
                  + on_mc.pending_requests)
        assert off_sub == off_demand
        assert on_sub == on_demand + pump_total


class TestPlacementGovernorWiring:
    def test_governor_requires_enabled_placement(self):
        runner = ExperimentRunner(config=CFG, settings=SETTINGS, cache=None)
        governor = runner.make_placement_governor("MID1")
        with pytest.raises(ValueError, match="placement.enabled"):
            runner.run_governor("MID1", governor)

    def test_telemetry_carries_placement_fields(self):
        from repro.sim.telemetry import (ListTelemetry,
                                         validate_epoch_record)
        cfg = scaled_config().with_policy(
            epoch_ns=4_000.0, profile_ns=400.0).with_placement(
            enabled=True, page_lines=32, migrations_per_epoch=4)
        runner = ExperimentRunner(
            config=cfg,
            settings=RunnerSettings(cores=4, instructions_per_core=8_000,
                                    seed=2011),
            cache=None)
        governor = runner.make_placement_governor("MID1")
        sink = ListTelemetry()
        runner.run_governor("MID1", governor, telemetry=sink)
        assert sink.records
        for record in sink.records:
            validate_epoch_record(record)
            assert isinstance(record["migrations_per_epoch"], int)
            assert set(record["rank_state_residency"]) == {"self_ref"}
            residency = record["rank_state_residency"]["self_ref"]
            assert len(residency) == ORG.total_ranks
            assert all(0.0 <= f <= 1.0 for f in residency)
        assert sum(r["migrations_per_epoch"] for r in sink.records) > 0
