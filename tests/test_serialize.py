"""Tests for JSON serialization of run results and comparisons."""

import numpy as np
import pytest

from repro.sim.results import EpochSample, PolicyComparison, RunResult
from repro.sim.serialize import (
    comparison_from_dict,
    comparison_to_dict,
    load_results,
    run_result_from_dict,
    run_result_to_dict,
    save_results,
)


def make_result():
    return RunResult(
        workload="MID1", governor="MemScale", target_instructions=1000,
        wall_time_ns=5000.0, sim_time_ns=5000.0,
        core_apps=["ammp", "gap"],
        core_time_at_target_ns=[4000.0, 5000.0],
        energy_j={"background": 1.0, "mc": 2.0},
        timeline=[EpochSample(time_ns=100.0, bus_mhz=467.0,
                              app_cpi={"ammp": 2.5},
                              channel_util=np.array([0.1, 0.2, 0.3, 0.4]),
                              memory_power_w=25.0)],
        transition_count=3, epochs=1,
    )


def make_comparison():
    return PolicyComparison(
        workload="MID1", governor="MemScale",
        memory_energy_savings=0.4, system_energy_savings=0.15,
        avg_cpi_increase=0.05, worst_cpi_increase=0.08,
        app_cpi_increase={"ammp": 0.08, "gap": 0.02},
        rest_power_w=40.0,
        energy_breakdown_j={"mc": 1.0},
        baseline_breakdown_j={"mc": 2.0},
    )


class TestRunResultRoundtrip:
    def test_fields_preserved(self):
        original = make_result()
        restored = run_result_from_dict(run_result_to_dict(original))
        assert restored.workload == original.workload
        assert restored.governor == original.governor
        assert restored.energy_j == original.energy_j
        assert restored.core_apps == original.core_apps
        assert restored.memory_energy_j == original.memory_energy_j

    def test_timeline_preserved(self):
        restored = run_result_from_dict(run_result_to_dict(make_result()))
        sample = restored.timeline[0]
        assert sample.bus_mhz == 467.0
        assert sample.app_cpi == {"ammp": 2.5}
        np.testing.assert_allclose(sample.channel_util,
                                   [0.1, 0.2, 0.3, 0.4])

    def test_derived_metrics_survive(self):
        original = make_result()
        restored = run_result_from_dict(run_result_to_dict(original))
        assert restored.app_cpi(0.25) == original.app_cpi(0.25)

    def test_wrong_kind_rejected(self):
        data = run_result_to_dict(make_result())
        data["kind"] = "Other"
        with pytest.raises(ValueError):
            run_result_from_dict(data)

    def test_wrong_version_rejected(self):
        data = run_result_to_dict(make_result())
        data["format"] = 99
        with pytest.raises(ValueError):
            run_result_from_dict(data)


class TestComparisonRoundtrip:
    def test_fields_preserved(self):
        original = make_comparison()
        restored = comparison_from_dict(comparison_to_dict(original))
        assert restored == original


class TestFileIO:
    def test_save_load_mixed_list(self, tmp_path):
        path = tmp_path / "results.json"
        save_results(path, [make_result(), make_comparison()])
        loaded = load_results(path)
        assert isinstance(loaded[0], RunResult)
        assert isinstance(loaded[1], PolicyComparison)
        assert loaded[1].memory_energy_savings == 0.4

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_results(tmp_path / "x.json", [object()])

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"kind": "Mystery", "format": 1}]')
        with pytest.raises(ValueError):
            load_results(path)

    def test_real_run_roundtrip(self, tmp_path, runner):
        result, cmp = runner.run_memscale("ILP2")
        path = tmp_path / "real.json"
        save_results(path, [result, cmp])
        loaded_result, loaded_cmp = load_results(path)
        assert loaded_result.memory_energy_j == pytest.approx(
            result.memory_energy_j)
        assert loaded_cmp.system_energy_savings == pytest.approx(
            cmp.system_energy_savings)
        assert len(loaded_result.timeline) == len(result.timeline)
