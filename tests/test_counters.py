"""Unit tests for the hardware performance-counter file (Section 3.1)."""

import numpy as np
import pytest

from repro.memsim.counters import CounterFile
from repro.memsim.states import RankPowerState


@pytest.fixture()
def counters():
    return CounterFile(n_cores=4, n_channels=2, n_ranks=4)


class TestUpdateHooks:
    def test_commit_instructions(self, counters):
        counters.commit_instructions(0, 100)
        counters.commit_instructions(0, 50)
        counters.commit_instructions(3, 7)
        assert counters.tic[0] == 150
        assert counters.tic[3] == 7
        assert counters.tic[1] == 0

    def test_llc_miss(self, counters):
        counters.record_llc_miss(2)
        counters.record_llc_miss(2)
        assert counters.tlm[2] == 2

    def test_bank_arrival_accumulator(self, counters):
        counters.record_bank_arrival(3.0)
        counters.record_bank_arrival(0.0)
        assert counters.bto == 3.0
        assert counters.btc == 2.0

    def test_channel_arrival_accumulator(self, counters):
        counters.record_channel_arrival(1.0)
        assert counters.cto == 1.0
        assert counters.ctc == 1.0

    def test_row_buffer_counters(self, counters):
        counters.record_row_hit()
        counters.record_open_row_miss()
        counters.record_closed_bank_miss()
        counters.record_closed_bank_miss()
        assert (counters.rbhc, counters.obmc, counters.cbmc) == (1, 1, 2)

    def test_powerdown_exit_counter(self, counters):
        counters.record_powerdown_exit()
        assert counters.epdc == 1

    def test_activate_counter(self, counters):
        counters.record_activate()
        counters.record_activate()
        assert counters.pocc == 2

    def test_access_records_channel_busy(self, counters):
        counters.record_access(0, is_read=True, burst_ns=5.0)
        counters.record_access(0, is_read=False, burst_ns=5.0)
        counters.record_access(1, is_read=True, burst_ns=10.0)
        assert counters.reads == 2
        assert counters.writes == 1
        assert counters.channel_busy_ns[0] == 10.0
        assert counters.channel_busy_ns[1] == 10.0
        assert counters.channel_reads[0] == 1
        assert counters.channel_writes[0] == 1

    def test_rank_state_accounting(self, counters):
        counters.account_rank_state(1, RankPowerState.ACTIVE_STANDBY, 30.0)
        counters.account_rank_state(1, RankPowerState.PRECHARGE_POWERDOWN, 70.0)
        assert sum(counters.rank_state_ns[1]) == 100.0

    def test_negative_duration_rejected(self, counters):
        with pytest.raises(ValueError):
            counters.account_rank_state(0, RankPowerState.ACTIVE_STANDBY, -1.0)

    def test_refresh_counter(self, counters):
        counters.record_refresh(2)
        assert counters.refreshes[2] == 1

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            CounterFile(n_cores=0, n_channels=1, n_ranks=1)


class TestSnapshotDelta:
    def test_delta_isolates_interval(self, counters):
        counters.commit_instructions(0, 100)
        counters.record_access(0, True, 5.0)
        s0 = counters.snapshot(time_ns=10.0)
        counters.commit_instructions(0, 50)
        counters.record_access(1, False, 5.0)
        s1 = counters.snapshot(time_ns=20.0)
        delta = CounterFile.delta(s0, s1)
        assert delta.interval_ns == 10.0
        assert delta.tic[0] == 50
        assert delta.reads == 0
        assert delta.writes == 1

    def test_snapshot_is_a_copy(self, counters):
        s0 = counters.snapshot(0.0)
        counters.commit_instructions(0, 5)
        assert s0.tic[0] == 0

    def test_reversed_snapshots_rejected(self, counters):
        s0 = counters.snapshot(10.0)
        s1 = counters.snapshot(20.0)
        with pytest.raises(ValueError):
            CounterFile.delta(s1, s0)


class TestDerivedMetrics:
    def _delta(self, counters, t0=0.0, t1=100.0):
        s0 = counters.snapshot(t0)
        return s0, counters.snapshot(t1)

    def test_xi_ratios(self, counters):
        s0 = counters.snapshot(0.0)
        counters.record_bank_arrival(2.0)
        counters.record_bank_arrival(4.0)
        counters.record_channel_arrival(1.0)
        delta = CounterFile.delta(s0, counters.snapshot(10.0))
        assert delta.xi_bank == pytest.approx(3.0)
        assert delta.xi_bus == pytest.approx(1.0)

    def test_xi_zero_when_no_arrivals(self, counters):
        s0 = counters.snapshot(0.0)
        delta = CounterFile.delta(s0, counters.snapshot(10.0))
        assert delta.xi_bank == 0.0
        assert delta.xi_bus == 0.0

    def test_alpha(self, counters):
        s0 = counters.snapshot(0.0)
        counters.commit_instructions(1, 1000)
        for _ in range(5):
            counters.record_llc_miss(1)
        delta = CounterFile.delta(s0, counters.snapshot(10.0))
        assert delta.alpha(1) == pytest.approx(0.005)
        assert delta.alpha(0) == 0.0

    def test_accesses_sum(self, counters):
        s0 = counters.snapshot(0.0)
        counters.record_row_hit()
        counters.record_open_row_miss()
        counters.record_closed_bank_miss()
        delta = CounterFile.delta(s0, counters.snapshot(10.0))
        assert delta.accesses == 3

    def test_ptc_fraction(self, counters):
        s0 = counters.snapshot(0.0)
        for rank in range(4):
            counters.account_rank_state(
                rank, RankPowerState.PRECHARGE_STANDBY, 60.0)
            counters.account_rank_state(
                rank, RankPowerState.ACTIVE_STANDBY, 40.0)
        delta = CounterFile.delta(s0, counters.snapshot(100.0))
        assert delta.ptc == pytest.approx(0.6)
        assert delta.ptckel == 0.0
        assert delta.atckel == 0.0

    def test_ptckel_and_atckel(self, counters):
        s0 = counters.snapshot(0.0)
        for rank in range(4):
            counters.account_rank_state(
                rank, RankPowerState.PRECHARGE_POWERDOWN, 50.0)
            counters.account_rank_state(
                rank, RankPowerState.ACTIVE_POWERDOWN, 25.0)
            counters.account_rank_state(
                rank, RankPowerState.ACTIVE_STANDBY, 25.0)
        delta = CounterFile.delta(s0, counters.snapshot(100.0))
        assert delta.ptckel == pytest.approx(0.5)
        assert delta.atckel == pytest.approx(0.25)
        assert delta.ptc == pytest.approx(0.5)

    def test_channel_utilization(self, counters):
        s0 = counters.snapshot(0.0)
        counters.record_access(0, True, 25.0)
        delta = CounterFile.delta(s0, counters.snapshot(100.0))
        assert delta.channel_utilization(0) == pytest.approx(0.25)
        assert delta.channel_utilization(1) == 0.0
        assert delta.mean_channel_utilization == pytest.approx(0.125)

    def test_rank_state_fraction(self, counters):
        s0 = counters.snapshot(0.0)
        counters.account_rank_state(3, RankPowerState.ACTIVE_STANDBY, 30.0)
        delta = CounterFile.delta(s0, counters.snapshot(100.0))
        assert delta.rank_state_fraction(
            3, RankPowerState.ACTIVE_STANDBY) == pytest.approx(0.3)

    def test_zero_interval_fractions_are_zero(self, counters):
        s0 = counters.snapshot(5.0)
        delta = CounterFile.delta(s0, counters.snapshot(5.0))
        assert delta.ptc == 0.0
        assert delta.mean_channel_utilization == 0.0
