"""Unit and property tests for the Eq. 2-9 performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.core.frequency import FrequencyLadder
from repro.core.perf_model import PerformanceModel
from tests.conftest import make_delta

CFG = default_config()
LADDER = FrequencyLadder(CFG)
MODEL = PerformanceModel(CFG)


class TestDeviceTime:
    def test_eq6_weighted_average(self):
        delta = make_delta(CFG, rbhc=10, cbmc=80, obmc=10, epdc=0)
        t = CFG.timings
        expected = (t.t_cl_ns * 10
                    + (t.t_rcd_ns + t.t_cl_ns) * 80
                    + (t.t_rp_ns + t.t_rcd_ns + t.t_cl_ns) * 10) / 100
        assert MODEL.device_time_ns(delta) == pytest.approx(expected)

    def test_powerdown_exits_add_time(self):
        without = MODEL.device_time_ns(make_delta(CFG, epdc=0))
        with_pd = MODEL.device_time_ns(make_delta(CFG, epdc=50))
        assert with_pd > without

    def test_custom_pd_exit_time(self):
        delta = make_delta(CFG, epdc=100, rbhc=0, obmc=0, cbmc=100)
        slow = MODEL.device_time_ns(delta, pd_exit_ns=24.0)
        fast = MODEL.device_time_ns(delta, pd_exit_ns=6.0)
        none = MODEL.device_time_ns(delta, pd_exit_ns=0.0)
        assert slow > fast > none

    def test_no_accesses_falls_back_to_closed_bank(self):
        delta = make_delta(CFG, rbhc=0, obmc=0, cbmc=0)
        t = CFG.timings
        assert MODEL.device_time_ns(delta) == pytest.approx(
            t.t_rcd_ns + t.t_cl_ns)

    def test_frequency_independent(self):
        delta = make_delta(CFG)
        assert MODEL.device_time_ns(delta) == MODEL.device_time_ns(delta)


class TestQueueTerms:
    def test_xi_includes_self(self):
        delta = make_delta(CFG, bto=50.0, btc=100.0, cto=20.0, ctc=100.0)
        assert MODEL.xi_bank(delta) == pytest.approx(1.5)
        assert MODEL.xi_bus(delta) == pytest.approx(1.2)

    def test_xi_floor_is_one(self):
        delta = make_delta(CFG, bto=0.0, btc=100.0, cto=0.0, ctc=100.0)
        assert MODEL.xi_bank(delta) == 1.0
        assert MODEL.xi_bus(delta) == 1.0


class TestTpiMem:
    def test_eq9_composition(self):
        delta = make_delta(CFG, bto=0.0, cto=0.0)
        f = LADDER.fastest
        expected = MODEL.s_bank_ns(delta, f) + f.burst_ns
        assert MODEL.tpi_mem_ns(delta, f) == pytest.approx(expected)

    def test_queueing_inflates_memory_time(self):
        quiet = MODEL.tpi_mem_ns(make_delta(CFG, bto=0.0, cto=0.0),
                                 LADDER.fastest)
        busy = MODEL.tpi_mem_ns(make_delta(CFG, bto=200.0, cto=200.0),
                                LADDER.fastest)
        assert busy > quiet

    def test_monotone_nonincreasing_with_frequency(self):
        delta = make_delta(CFG)
        times = [MODEL.tpi_mem_ns(delta, p) for p in LADDER]
        # ladder is descending in frequency: memory time ascends
        assert times == sorted(times)


class TestCpiPrediction:
    def test_cpi_floor_is_cpu_cpi(self):
        delta = make_delta(CFG, tlm_per_core=0.0)
        pred = MODEL.predict(delta, LADDER.fastest)
        assert np.allclose(pred.cpi, CFG.cpu.cpi_cpu)

    def test_cpi_grows_with_miss_rate(self):
        lo = MODEL.predict(make_delta(CFG, tlm_per_core=10.0),
                           LADDER.fastest).cpi[0]
        hi = MODEL.predict(make_delta(CFG, tlm_per_core=100.0),
                           LADDER.fastest).cpi[0]
        assert hi > lo

    def test_cpi_monotone_nonincreasing_with_frequency(self):
        delta = make_delta(CFG, tlm_per_core=50.0)
        cpis = [MODEL.predict(delta, p).cpi[0] for p in LADDER]
        assert cpis == sorted(cpis)

    def test_prediction_carries_metadata(self):
        delta = make_delta(CFG)
        pred = MODEL.predict(delta, LADDER.at_bus_mhz(400.0))
        assert pred.freq_bus_mhz == 400.0
        assert pred.xi_bank >= 1.0
        assert pred.device_time_ns > 0

    @given(st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=25, deadline=None)
    def test_cpi_ordering_property(self, tlm):
        delta = make_delta(CFG, tlm_per_core=tlm)
        fast = MODEL.predict(delta, LADDER.fastest).cpi[0]
        slow = MODEL.predict(delta, LADDER.slowest).cpi[0]
        assert slow >= fast


class TestQueueScaling:
    def test_scaling_raises_predicted_queueing_at_lower_freq(self):
        delta = make_delta(CFG, bto=300.0, cto=300.0)
        plain = PerformanceModel(CFG, scale_queues=False)
        scaled = PerformanceModel(CFG, scale_queues=True)
        slow = LADDER.slowest
        fast = LADDER.fastest
        t_plain = plain.tpi_mem_ns(delta, slow, profiled_freq=fast)
        t_scaled = scaled.tpi_mem_ns(delta, slow, profiled_freq=fast)
        assert t_scaled > t_plain

    def test_scaling_lowers_predicted_queueing_at_higher_freq(self):
        delta = make_delta(CFG, bto=300.0, cto=300.0)
        scaled = PerformanceModel(CFG, scale_queues=True)
        plain = PerformanceModel(CFG, scale_queues=False)
        t_scaled = scaled.tpi_mem_ns(delta, LADDER.fastest,
                                     profiled_freq=LADDER.slowest)
        t_plain = plain.tpi_mem_ns(delta, LADDER.fastest,
                                   profiled_freq=LADDER.slowest)
        assert t_scaled < t_plain

    def test_no_profiled_freq_means_no_scaling(self):
        delta = make_delta(CFG, bto=300.0, cto=300.0)
        scaled = PerformanceModel(CFG, scale_queues=True)
        plain = PerformanceModel(CFG, scale_queues=False)
        assert (scaled.tpi_mem_ns(delta, LADDER.slowest)
                == pytest.approx(plain.tpi_mem_ns(delta, LADDER.slowest)))

    def test_scale_identity_at_profiled_freq(self):
        delta = make_delta(CFG, bto=300.0, cto=300.0)
        scaled = PerformanceModel(CFG, scale_queues=True)
        f = LADDER.at_bus_mhz(467.0)
        assert (scaled.tpi_mem_ns(delta, f, profiled_freq=f)
                == pytest.approx(scaled.tpi_mem_ns(delta, f)))


class TestTimeScale:
    def test_identity(self):
        delta = make_delta(CFG)
        f = LADDER.fastest
        assert MODEL.time_scale(delta, f, f) == pytest.approx(1.0)

    def test_lower_frequency_never_faster(self):
        delta = make_delta(CFG, tlm_per_core=50.0)
        scale = MODEL.time_scale(delta, LADDER.fastest, LADDER.slowest)
        assert scale >= 1.0

    def test_inverse_direction_below_one(self):
        delta = make_delta(CFG, tlm_per_core=50.0)
        scale = MODEL.time_scale(delta, LADDER.slowest, LADDER.fastest)
        assert scale <= 1.0

    def test_zero_instructions_gives_unity(self):
        delta = make_delta(CFG, tic_per_core=0.0, tlm_per_core=0.0)
        assert MODEL.time_scale(delta, LADDER.fastest,
                                LADDER.slowest) == 1.0

    def test_memory_bound_scales_more(self):
        light = make_delta(CFG, tlm_per_core=5.0)
        heavy = make_delta(CFG, tlm_per_core=100.0)
        s_light = MODEL.time_scale(light, LADDER.fastest, LADDER.slowest)
        s_heavy = MODEL.time_scale(heavy, LADDER.fastest, LADDER.slowest)
        assert s_heavy > s_light
