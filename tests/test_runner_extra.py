"""Additional runner and comparison-path tests."""

import pytest

from repro.config import scaled_config
from repro.core.baselines import BaselineGovernor, StaticFrequencyGovernor
from repro.sim.runner import POLICY_NAMES, ExperimentRunner, RunnerSettings


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        config=scaled_config(),
        settings=RunnerSettings(instructions_per_core=30_000, seed=77))


class TestRunnerConstruction:
    def test_default_config_is_scaled(self):
        r = ExperimentRunner()
        assert r.config.policy.epoch_ns < 1e6  # scaled, not 5 ms

    def test_invalid_config_rejected(self):
        import dataclasses
        bad = dataclasses.replace(scaled_config(), bus_freqs_mhz=())
        with pytest.raises(Exception):
            ExperimentRunner(config=bad)

    def test_policy_names_complete(self):
        assert "Baseline" in POLICY_NAMES
        assert len(POLICY_NAMES) == 8


class TestComparisonPaths:
    def test_compare_accepts_explicit_governor(self, runner):
        cmp = runner.compare("ILP2", StaticFrequencyGovernor(600.0))
        assert cmp.governor == "Static-600MHz"
        assert cmp.memory_energy_savings > 0

    def test_baseline_vs_itself_is_zero(self, runner):
        cmp = runner.compare("ILP2", BaselineGovernor())
        assert cmp.memory_energy_savings == pytest.approx(0.0, abs=1e-6)
        assert cmp.avg_cpi_increase == pytest.approx(0.0, abs=1e-6)

    def test_comparisons_share_one_baseline_run(self, runner):
        runner.compare_named("ILP2", "Fast-PD")
        base_before = runner.baseline("ILP2")
        runner.compare_named("ILP2", "Decoupled")
        assert runner.baseline("ILP2") is base_before

    def test_rest_power_consistent_across_policies(self, runner):
        a = runner.compare_named("ILP2", "Static")
        b = runner.compare_named("ILP2", "Decoupled")
        assert a.rest_power_w == pytest.approx(b.rest_power_w)

    def test_memscale_governors_are_fresh_per_run(self, runner):
        g1 = runner.make_memscale_governor("ILP2")
        g2 = runner.make_memscale_governor("ILP2")
        assert g1 is not g2
        assert g1.policy is not g2.policy


class TestDeterminismAcrossRunners:
    def test_same_settings_same_results(self):
        settings = RunnerSettings(instructions_per_core=20_000, seed=5)
        results = []
        for _ in range(2):
            r = ExperimentRunner(config=scaled_config(), settings=settings)
            _, cmp = r.run_memscale("MID1")
            results.append(cmp)
        assert results[0].memory_energy_savings == pytest.approx(
            results[1].memory_energy_savings)
        assert results[0].worst_cpi_increase == pytest.approx(
            results[1].worst_cpi_increase)

    def test_different_seed_changes_trace_but_not_shape(self):
        a = ExperimentRunner(
            config=scaled_config(),
            settings=RunnerSettings(instructions_per_core=20_000, seed=1))
        b = ExperimentRunner(
            config=scaled_config(),
            settings=RunnerSettings(instructions_per_core=20_000, seed=2))
        _, cmp_a = a.run_memscale("ILP2")
        _, cmp_b = b.run_memscale("ILP2")
        # both save plenty of memory energy on a compute-bound mix
        assert cmp_a.memory_energy_savings > 0.3
        assert cmp_b.memory_energy_savings > 0.3
