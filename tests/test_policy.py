"""Unit tests for the MemScale OS policy (slack accounting, selection)."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyLadder
from repro.core.policy import MemScalePolicy, PolicyObjective
from tests.conftest import make_delta

CFG = default_config()
LADDER = FrequencyLadder(CFG)
N_CORES = 4


def make_policy(objective=PolicyObjective.SYSTEM_ENERGY, rest_power_w=40.0,
                config=CFG):
    energy = EnergyModel(config, rest_power_w=rest_power_w)
    return MemScalePolicy(config, energy, n_cores=N_CORES,
                          objective=objective)


class TestConstruction:
    def test_slack_starts_at_zero(self):
        policy = make_policy()
        assert np.all(policy.slack_ns == 0.0)

    def test_gamma_from_config(self):
        assert make_policy().gamma == 0.10

    def test_rejects_nonpositive_cores(self):
        energy = EnergyModel(CFG, rest_power_w=10.0)
        with pytest.raises(ValueError):
            MemScalePolicy(CFG, energy, n_cores=0)


class TestSelection:
    def test_compute_bound_selects_low_frequency(self):
        policy = make_policy()
        delta = make_delta(CFG, tlm_per_core=0.5, bto=0.0, cto=0.0,
                           reads=2.0, writes=0.0, busy_frac=0.001)
        decision = policy.select_frequency(delta, LADDER.fastest,
                                           epoch_remaining_ns=5e6)
        assert decision.chosen.bus_mhz < 400.0
        assert len(decision.feasible) == len(LADDER)

    def test_memory_bound_keeps_higher_frequency(self):
        policy = make_policy()
        delta = make_delta(CFG, tlm_per_core=300.0, bto=400.0, cto=400.0,
                           tic_per_core=10_000.0)
        decision = policy.select_frequency(delta, LADDER.fastest,
                                           epoch_remaining_ns=5e6)
        compute_bound = make_policy().select_frequency(
            make_delta(CFG, tlm_per_core=0.5), LADDER.fastest,
            epoch_remaining_ns=5e6)
        assert decision.chosen.bus_mhz >= compute_bound.chosen.bus_mhz

    def test_deep_negative_slack_forces_max_frequency(self):
        policy = make_policy()
        policy.slack_ns[:] = -1e9
        delta = make_delta(CFG)
        decision = policy.select_frequency(delta, LADDER.fastest,
                                           epoch_remaining_ns=5e6)
        assert decision.chosen.bus_mhz == LADDER.fastest.bus_mhz
        assert decision.feasible == []

    def test_positive_slack_allows_lower_frequency(self):
        tight = make_policy()
        relaxed = make_policy()
        relaxed.slack_ns[:] = 1e9
        delta = make_delta(CFG, tlm_per_core=150.0, bto=300.0, cto=300.0)
        f_tight = tight.select_frequency(delta, LADDER.fastest, 5e6)
        f_relaxed = relaxed.select_frequency(delta, LADDER.fastest, 5e6)
        assert f_relaxed.chosen.bus_mhz <= f_tight.chosen.bus_mhz

    def test_decisions_are_logged(self):
        policy = make_policy()
        delta = make_delta(CFG)
        policy.select_frequency(delta, LADDER.fastest, 5e6)
        policy.select_frequency(delta, LADDER.fastest, 5e6)
        assert len(policy.decisions) == 2

    def test_rejects_nonpositive_remaining(self):
        policy = make_policy()
        with pytest.raises(ValueError):
            policy.select_frequency(make_delta(CFG), LADDER.fastest, 0.0)

    def test_zero_gamma_pins_max_frequency_under_load(self):
        cfg = CFG.with_policy(cpi_bound=0.0)
        policy = make_policy(config=cfg)
        delta = make_delta(cfg, tlm_per_core=200.0, bto=300.0, cto=300.0)
        decision = policy.select_frequency(delta, LADDER.fastest, 5e6)
        assert decision.chosen.bus_mhz == 800.0

    def test_larger_bound_allows_lower_frequency(self):
        delta_kwargs = dict(tlm_per_core=120.0, bto=250.0, cto=250.0)
        chosen = {}
        for bound in (0.01, 0.15):
            cfg = CFG.with_policy(cpi_bound=bound)
            policy = make_policy(config=cfg)
            decision = policy.select_frequency(
                make_delta(cfg, **delta_kwargs), LADDER.fastest, 5e6)
            chosen[bound] = decision.chosen.bus_mhz
        assert chosen[0.15] <= chosen[0.01]


class TestObjectives:
    def test_memory_objective_never_picks_higher_freq(self):
        # Memory-only energy is monotone decreasing in frequency, so the
        # MemEnergy policy picks a frequency at most that of SER.
        delta = make_delta(CFG, tlm_per_core=30.0)
        ser_choice = make_policy(PolicyObjective.SYSTEM_ENERGY) \
            .select_frequency(delta, LADDER.fastest, 5e6).chosen.bus_mhz
        mem_choice = make_policy(PolicyObjective.MEMORY_ENERGY) \
            .select_frequency(delta, LADDER.fastest, 5e6).chosen.bus_mhz
        assert mem_choice <= ser_choice


class TestSlackAccounting:
    def test_fast_epoch_accumulates_slack(self):
        policy = make_policy()
        # epoch ran at max frequency: achieved == T_maxfreq
        delta = make_delta(CFG, interval_ns=5e6, tic_per_core=2.4e6,
                           tlm_per_core=0.0)
        # each core committed so that t_max ~= wall (cpi_cpu * tic * cycle)
        wall = CFG.cpu.cpi_cpu * 2.4e6 * CFG.cpu.cycle_ns
        policy.update_slack(delta, epoch_wall_ns=wall)
        # target is 1.1x the max-freq time: slack grows by ~0.1 wall
        assert np.all(policy.slack_ns > 0.09 * wall)

    def test_slow_epoch_burns_slack(self):
        policy = make_policy()
        delta = make_delta(CFG, interval_ns=5e6, tic_per_core=1.0e6,
                           tlm_per_core=0.0)
        t_max = CFG.cpu.cpi_cpu * 1.0e6 * CFG.cpu.cycle_ns
        wall = t_max * 2.0  # ran twice as slow as the max-freq estimate
        policy.update_slack(delta, epoch_wall_ns=wall)
        assert np.all(policy.slack_ns < 0)

    def test_slack_is_cumulative(self):
        policy = make_policy()
        delta = make_delta(CFG, interval_ns=5e6, tic_per_core=2.0e6,
                           tlm_per_core=0.0)
        wall = CFG.cpu.cpi_cpu * 2.0e6 * CFG.cpu.cycle_ns
        policy.update_slack(delta, wall)
        first = policy.slack_ns.copy()
        policy.update_slack(delta, wall)
        assert np.allclose(policy.slack_ns, 2 * first)

    def test_t_maxfreq_clamped_to_wall(self):
        # Even if the model wildly overestimates max-frequency CPI, slack
        # gain per epoch cannot exceed gamma * wall.
        policy = make_policy()
        delta = make_delta(CFG, interval_ns=5e6, tic_per_core=1e9,
                           tlm_per_core=0.0)
        policy.update_slack(delta, epoch_wall_ns=5e6)
        assert np.all(policy.slack_ns <= 0.1 * 5e6 + 1e-6)

    def test_idle_core_skipped(self):
        policy = make_policy()
        delta = make_delta(CFG, tic_per_core=0.0, tlm_per_core=0.0)
        policy.update_slack(delta, epoch_wall_ns=5e6)
        assert np.all(policy.slack_ns == 0.0)

    def test_rejects_nonpositive_wall(self):
        with pytest.raises(ValueError):
            make_policy().update_slack(make_delta(CFG), 0.0)


class TestBoundedBehaviour:
    def test_epochs_at_max_frequency_gain_gamma_per_epoch(self):
        """Running exactly at the max-frequency estimate accrues gamma *
        wall slack per epoch — the Eq. 1 arithmetic, iterated."""
        policy = make_policy()
        wall = 5e6
        delta = make_delta(CFG, interval_ns=wall, tlm_per_core=0.0,
                           tic_per_core=1.0)
        # pick tic so the model's T_maxfreq equals the wall time exactly
        cpi_max = policy._perf.predict(delta, LADDER.fastest, 0.0).cpi[0]
        tic = wall / (cpi_max * CFG.cpu.cycle_ns)
        delta = make_delta(CFG, interval_ns=wall, tlm_per_core=0.0,
                           tic_per_core=tic)
        for n in range(1, 6):
            policy.update_slack(delta, wall)
            assert np.allclose(policy.slack_ns, n * policy.gamma * wall,
                               rtol=1e-6)

    def test_negative_slack_recovers_under_max_frequency_epochs(self):
        policy = make_policy()
        policy.slack_ns[:] = -1e6
        wall = 5e6
        delta = make_delta(CFG, interval_ns=wall, tlm_per_core=0.0,
                           tic_per_core=1.0)
        cpi_max = policy._perf.predict(delta, LADDER.fastest, 0.0).cpi[0]
        tic = wall / (cpi_max * CFG.cpu.cycle_ns)
        delta = make_delta(CFG, interval_ns=wall, tlm_per_core=0.0,
                           tic_per_core=tic)
        for _ in range(3):
            policy.update_slack(delta, wall)
        assert np.all(policy.slack_ns > -1e6)
        assert np.all(policy.slack_ns == pytest.approx(
            -1e6 + 3 * policy.gamma * wall, rel=1e-6))
