"""Tests for the FastCap-style allocator (cap/allocator.py).

The load-bearing piece is the hypothesis property: over randomized
profiles and budgets, the allocator never selects an infeasible point
when a feasible one exists, and among feasible points it is max-min
optimal (no candidate under the cap has strictly better worst-app
normalized performance).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cap import CapAllocator
from repro.config import scaled_config
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyLadder
from tests.conftest import make_delta

CFG = scaled_config()
LADDER = FrequencyLadder(CFG)
ALLOC = CapAllocator(CFG, EnergyModel(CFG, rest_power_w=40.0), n_cores=4)


def delta_for(tlm=20.0, busy_frac=0.2, reads=90.0, writes=10.0):
    return make_delta(CFG, tlm_per_core=tlm, busy_frac=busy_frac,
                      reads=reads, writes=writes)


class TestConstruction:
    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError, match="n_cores"):
            CapAllocator(CFG, EnergyModel(CFG, rest_power_w=40.0), n_cores=0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            ALLOC.allocate(delta_for(), LADDER.fastest, 0.0)


class TestCandidates:
    def test_covers_every_global_point(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        globals_only = [c for c in cands if c.channel_bus_mhz is None]
        assert [c.global_point.bus_mhz for c in globals_only] == \
            [p.bus_mhz for p in LADDER]

    def test_refinements_drop_exactly_one_step(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        for c in cands:
            if c.channel_bus_mhz is None:
                continue
            lower = LADDER[c.global_point.index + 1].bus_mhz
            assert set(c.channel_bus_mhz) <= \
                {c.global_point.bus_mhz, lower}
            # At least one channel actually dropped.
            assert lower in c.channel_bus_mhz

    def test_slowest_point_has_no_refinement(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        slowest = LADDER[len(LADDER) - 1]
        refined = [c for c in cands
                   if c.global_point.index == slowest.index
                   and c.channel_bus_mhz is not None]
        assert refined == []

    def test_no_refinement_without_accesses(self):
        # Empty profile (no reads/writes): only the global ladder.
        d = make_delta(CFG, reads=0.0, writes=0.0, busy_frac=0.0)
        cands = ALLOC.candidates(d, LADDER.fastest)
        assert all(c.channel_bus_mhz is None for c in cands)
        assert len(cands) == len(LADDER)

    def test_min_perf_clamped_to_one(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        assert all(0.0 < c.min_perf <= 1.0 for c in cands)

    def test_fastest_point_is_perf_optimal(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        fastest = next(c for c in cands if c.channel_bus_mhz is None
                       and c.global_point.index == 0)
        assert fastest.min_perf == max(c.min_perf for c in cands)

    def test_single_core_delta(self):
        # Single-app mix: the fairness min reduces to that one app.
        alloc = CapAllocator(CFG, EnergyModel(CFG, rest_power_w=40.0),
                             n_cores=1)
        d = make_delta(CFG, n_cores=1)
        cands = alloc.candidates(d, LADDER.fastest)
        assert all(len(c.predicted_cpi) == 1 for c in cands)
        a = alloc.allocate(d, LADDER.fastest, budget_w=1e9)
        assert a.feasible and a.min_perf == 1.0


class TestAllocate:
    def test_huge_budget_selects_max_min_perf(self):
        a = ALLOC.allocate(delta_for(), LADDER.fastest, budget_w=1e9)
        assert a.feasible
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        assert a.min_perf == max(c.min_perf for c in cands)
        assert a.candidates_evaluated == len(cands)

    def test_tiny_budget_falls_back_to_throttle_hardest(self):
        a = ALLOC.allocate(delta_for(), LADDER.fastest, budget_w=0.001)
        assert not a.feasible
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        assert a.predicted_power_w == min(c.predicted_power_w
                                          for c in cands)

    def test_feasible_ties_break_toward_lower_power(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        budget = max(c.predicted_power_w for c in cands) + 1.0
        a = ALLOC.allocate(delta_for(), LADDER.fastest, budget)
        best = a.chosen.min_perf
        peers = [c for c in cands if c.min_perf == best]
        assert a.predicted_power_w == min(c.predicted_power_w
                                          for c in peers)


@given(
    tlm=st.floats(min_value=1.0, max_value=400.0, allow_nan=False),
    busy_frac=st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
    writes=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    budget_quantile=st.floats(min_value=-0.2, max_value=1.2,
                              allow_nan=False),
    start_index=st.integers(min_value=0, max_value=len(LADDER) - 1),
)
@settings(max_examples=40, deadline=None)
def test_allocator_never_picks_infeasible_when_feasible_exists(
        tlm, busy_frac, writes, budget_quantile, start_index):
    """The acceptance property: for any profile and any budget, if some
    candidate fits the cap the allocation is feasible, under the cap,
    and max-min optimal among fitting candidates."""
    delta = delta_for(tlm=tlm, busy_frac=busy_frac, writes=writes)
    current = LADDER[start_index]
    cands = ALLOC.candidates(delta, current)
    powers = sorted(c.predicted_power_w for c in cands)
    # Sweep the budget across (and beyond) the candidate power range so
    # both the feasible and the infeasible regime are exercised.
    lo, hi = powers[0], powers[-1]
    budget = max(1e-6, lo + (hi - lo) * budget_quantile)

    a = ALLOC.allocate(delta, current, budget)
    feasible = [c for c in cands if c.predicted_power_w <= budget]
    if feasible:
        assert a.feasible
        assert a.predicted_power_w <= budget
        assert a.min_perf == max(c.min_perf for c in feasible)
    else:
        assert not a.feasible
        assert a.predicted_power_w == powers[0]
