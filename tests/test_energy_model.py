"""Unit tests for the SER energy model (Eq. 10)."""

import pytest

from repro.config import default_config
from repro.core.energy_model import EnergyModel, rest_of_system_power_w
from repro.core.frequency import FrequencyLadder
from tests.conftest import make_delta

CFG = default_config()
LADDER = FrequencyLadder(CFG)


@pytest.fixture(scope="module")
def model():
    return EnergyModel(CFG, rest_power_w=40.0)


class TestRestOfSystemPower:
    def test_forty_percent_fraction(self):
        # DIMMs at 40% of system => rest is 1.5x the DIMM power
        assert rest_of_system_power_w(20.0, 0.40) == pytest.approx(30.0)

    def test_fifty_percent_fraction(self):
        assert rest_of_system_power_w(20.0, 0.50) == pytest.approx(20.0)

    def test_thirty_percent_fraction(self):
        assert rest_of_system_power_w(30.0, 0.30) == pytest.approx(70.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            rest_of_system_power_w(20.0, 0.0)
        with pytest.raises(ValueError):
            rest_of_system_power_w(20.0, 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            rest_of_system_power_w(-1.0, 0.4)


class TestEnergyModel:
    def test_rejects_negative_rest_power(self):
        with pytest.raises(ValueError):
            EnergyModel(CFG, rest_power_w=-1.0)

    def test_ser_is_one_at_base_frequency(self, model):
        delta = make_delta(CFG)
        base = LADDER.fastest
        est = model.estimate(delta, base, base, base)
        assert est.ser == pytest.approx(1.0)
        assert est.memory_energy_ratio == pytest.approx(1.0)

    def test_ser_below_one_for_compute_bound_at_low_freq(self, model):
        # Almost no misses: slowing memory costs ~nothing, saves power.
        delta = make_delta(CFG, tlm_per_core=0.5, bto=0.0, cto=0.0,
                           reads=2.0, writes=0.0, busy_frac=0.001)
        base = LADDER.fastest
        est = model.estimate(delta, base, LADDER.slowest, base)
        assert est.ser < 1.0

    def test_memory_ratio_leq_ser_benefit(self, model):
        # Memory-only ratio ignores the rest-of-system penalty, so it is
        # at most the SER for any slowdown >= 0.
        delta = make_delta(CFG, tlm_per_core=50.0)
        base = LADDER.fastest
        est = model.estimate(delta, base, LADDER.slowest, base)
        assert est.memory_energy_ratio <= est.ser + 1e-9

    def test_estimate_reports_candidate_frequency(self, model):
        delta = make_delta(CFG)
        est = model.estimate(delta, LADDER.fastest,
                             LADDER.at_bus_mhz(333.0), LADDER.fastest)
        assert est.freq_bus_mhz == 333.0
        assert est.time_scale >= 1.0
        assert est.system_power_w > model.rest_power_w

    def test_high_rest_power_penalizes_slowdowns(self):
        # With a huge rest-of-system draw, slowing down should look bad.
        delta = make_delta(CFG, tlm_per_core=100.0, bto=200.0, cto=200.0)
        base = LADDER.fastest
        cheap_rest = EnergyModel(CFG, rest_power_w=1.0)
        costly_rest = EnergyModel(CFG, rest_power_w=500.0)
        ser_cheap = cheap_rest.estimate(delta, base, LADDER.slowest, base).ser
        ser_costly = costly_rest.estimate(delta, base, LADDER.slowest,
                                          base).ser
        assert ser_costly > ser_cheap

    def test_models_are_shared_or_constructed(self):
        m = EnergyModel(CFG, rest_power_w=10.0)
        assert m.perf_model is not None
        assert m.power_model is not None
