"""Unit tests for run results and baseline comparison arithmetic."""

import numpy as np
import pytest

from repro.core.power_model import PowerBreakdown
from repro.sim.results import (
    ENERGY_COMPONENTS,
    RunResult,
    accumulate_energy,
    breakdown_to_energy_dict,
    compare_to_baseline,
)


def make_result(governor="X", mem_energy_scale=1.0, time_scale=1.0,
                workload="MIX", target=1000):
    # two apps x two cores each
    wall = 1000.0 * time_scale
    energy = {
        "background": 4.0 * mem_energy_scale,
        "refresh": 0.5 * mem_energy_scale,
        "actpre": 1.0 * mem_energy_scale,
        "rdwr": 1.0 * mem_energy_scale,
        "termination": 0.5 * mem_energy_scale,
        "pll_reg": 1.0 * mem_energy_scale,
        "mc": 2.0 * mem_energy_scale,
    }
    return RunResult(
        workload=workload, governor=governor, target_instructions=target,
        wall_time_ns=wall, sim_time_ns=wall,
        core_apps=["a", "a", "b", "b"],
        core_time_at_target_ns=[wall, wall * 0.9, wall * 0.8, wall * 0.7],
        energy_j=energy,
    )


class TestRunResult:
    def test_memory_energy_sums_components(self):
        r = make_result()
        assert r.memory_energy_j == pytest.approx(10.0)
        assert r.dimm_energy_j == pytest.approx(8.0)

    def test_average_powers(self):
        r = make_result()
        assert r.avg_memory_power_w == pytest.approx(10.0 / (1000e-9))
        assert r.avg_dimm_power_w == pytest.approx(8.0 / (1000e-9))

    def test_system_energy_adds_rest(self):
        r = make_result()
        rest = 100.0
        assert r.system_energy_j(rest) == pytest.approx(
            10.0 + rest * 1000e-9)

    def test_core_cpi(self):
        r = make_result()
        cycle = 0.25
        cpis = r.core_cpi(cycle)
        assert cpis[0] == pytest.approx(1000.0 / (1000 * 0.25))

    def test_app_cpi_averages_instances(self):
        r = make_result()
        cpis = r.app_cpi(0.25)
        assert set(cpis) == {"a", "b"}
        assert cpis["a"] == pytest.approx((4.0 + 3.6) / 2)


class TestCompare:
    def test_savings_and_degradation(self):
        base = make_result("Baseline")
        policy = make_result("Pol", mem_energy_scale=0.5, time_scale=1.05)
        cmp = compare_to_baseline(base, policy, cycle_ns=0.25,
                                  memory_power_fraction=0.4)
        assert cmp.memory_energy_savings == pytest.approx(0.5)
        assert cmp.avg_cpi_increase == pytest.approx(0.05)
        assert cmp.worst_cpi_increase == pytest.approx(0.05)
        assert cmp.governor == "Pol"

    def test_system_savings_between_memory_and_zero(self):
        base = make_result("Baseline")
        policy = make_result("Pol", mem_energy_scale=0.5, time_scale=1.0)
        cmp = compare_to_baseline(base, policy, cycle_ns=0.25,
                                  memory_power_fraction=0.4)
        assert 0 < cmp.system_energy_savings < cmp.memory_energy_savings

    def test_explicit_rest_power_respected(self):
        base = make_result("Baseline")
        policy = make_result("Pol", mem_energy_scale=0.5)
        lo = compare_to_baseline(base, policy, 0.25, 0.4, rest_power_w=0.0)
        hi = compare_to_baseline(base, policy, 0.25, 0.4, rest_power_w=1e9)
        assert lo.system_energy_savings > hi.system_energy_savings

    def test_slower_run_costs_system_energy(self):
        base = make_result("Baseline")
        same_energy_slower = make_result("Pol", mem_energy_scale=1.0,
                                         time_scale=1.2)
        cmp = compare_to_baseline(base, same_energy_slower, 0.25, 0.4)
        assert cmp.system_energy_savings < 0

    def test_mismatched_workloads_rejected(self):
        a = make_result(workload="A")
        b = make_result(workload="B")
        with pytest.raises(ValueError):
            compare_to_baseline(a, b, 0.25, 0.4)

    def test_mismatched_targets_rejected(self):
        a = make_result(target=1000)
        b = make_result(target=2000)
        with pytest.raises(ValueError):
            compare_to_baseline(a, b, 0.25, 0.4)


class TestEnergyHelpers:
    def test_breakdown_to_energy_dict(self):
        b = PowerBreakdown(1, 2, 3, 4, 5, 6, 7)
        d = breakdown_to_energy_dict(b, seconds=2.0)
        assert set(d) == set(ENERGY_COMPONENTS)
        assert d["background"] == 2.0
        assert d["mc"] == 14.0

    def test_accumulate(self):
        total = {"mc": 1.0}
        accumulate_energy(total, {"mc": 2.0, "rdwr": 3.0})
        assert total == {"mc": 3.0, "rdwr": 3.0}
