"""Idle-period fast-forward equivalence and engagement tests.

The PR-level invariant: enabling fast-forward (``SystemConfig.
fast_forward``, the default) must be *invisible* in simulation results —
the analytic batch replays exactly the counter updates, residency
accounting, and event sequence numbers the skipped refresh housekeeping
would have produced, so a run serializes byte-identically either way.
The golden snapshot pins this for the committed mixes; the hypothesis
property here pins it across random mixes x policies (spanning every
powerdown mode) x static frequencies x validator arming.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.config import scaled_config
from repro.core.baselines import StaticFrequencyGovernor
from repro.sim.cache import config_fingerprint
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.serialize import run_result_to_dict
from repro.sim.system import SystemSimulator

CONFIG = scaled_config()
SETTINGS = RunnerSettings(cores=4, instructions_per_core=2_000, seed=2011)

#: Policy dimension: spans no-powerdown, fast-exit, slow-exit, DVFS, and
#: DVFS+powerdown. "Static-sampled" is replaced by a
#: StaticFrequencyGovernor at a sampled ladder frequency.
POLICIES = ("Baseline", "Fast-PD", "Slow-PD", "MemScale",
            "MemScale+Fast-PD", "Static-sampled")


def result_bytes(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True).encode()


def run_once(mix, policy, bus_mhz, validate, fast_forward=True,
             busy_absorption=True):
    config = CONFIG.replace(validate_protocol=validate,
                            fast_forward=fast_forward,
                            busy_absorption=busy_absorption)
    runner = ExperimentRunner(config=config, settings=SETTINGS)
    if policy == "Static-sampled":
        return runner.run_governor(mix, StaticFrequencyGovernor(bus_mhz))
    result, _ = runner.run_named_policy(mix, policy)
    return result


class TestFastForwardEquivalence:
    @given(mix=st.sampled_from(["MID1", "ILP1", "ILP2", "MEM1"]),
           policy=st.sampled_from(POLICIES),
           bus_mhz=st.sampled_from(list(CONFIG.sorted_bus_freqs())),
           validate=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_run_results_byte_identical(self, mix, policy, bus_mhz,
                                        validate):
        on = run_once(mix, policy, bus_mhz, validate, fast_forward=True)
        off = run_once(mix, policy, bus_mhz, validate, fast_forward=False)
        assert result_bytes(on) == result_bytes(off)


class TestFastForwardEngagement:
    """The equivalence above would be vacuous if the batch path never
    ran; these pin that it actually fires on low-MPKI workloads."""

    def make_sim(self, fast_forward, policy="MemScale"):
        config = CONFIG.replace(fast_forward=fast_forward)
        runner = ExperimentRunner(
            config=config,
            settings=RunnerSettings(cores=4, instructions_per_core=8_000,
                                    seed=2011))
        governor = runner.make_named_governor("ILP2", policy)
        return SystemSimulator(config, runner.trace("ILP2"), governor)

    def test_low_mpki_run_fast_forwards_events(self):
        sim = self.make_sim(fast_forward=True)
        sim.run()
        assert sim.engine.events_fast_forwarded > 0
        assert sim.controller.fast_forward_batches > 0

    def test_disabled_config_never_batches(self):
        sim = self.make_sim(fast_forward=False)
        sim.run()
        assert sim.engine.events_fast_forwarded == 0
        assert sim.controller.fast_forward_batches == 0

    def test_event_conservation_across_modes(self):
        # processed + fast-forwarded is the mode-independent simulated
        # event count (the perfbench metric).
        on = self.make_sim(fast_forward=True)
        on.run()
        off = self.make_sim(fast_forward=False)
        off.run()
        assert (on.engine.events_processed + on.engine.events_fast_forwarded
                == off.engine.events_processed)
        assert on.engine.events_processed < off.engine.events_processed


class TestBusyAbsorptionEquivalence:
    """Chain absorption (``SystemConfig.busy_absorption``, default on)
    batches deferred-marker event chains on the *busy* path; like idle
    fast-forward it must be byte-invisible in serialized results."""

    @given(mix=st.sampled_from(["MID1", "ILP1", "ILP2", "MEM1"]),
           policy=st.sampled_from(POLICIES),
           bus_mhz=st.sampled_from(list(CONFIG.sorted_bus_freqs())),
           validate=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_run_results_byte_identical(self, mix, policy, bus_mhz,
                                        validate):
        on = run_once(mix, policy, bus_mhz, validate, busy_absorption=True)
        off = run_once(mix, policy, bus_mhz, validate,
                       busy_absorption=False)
        assert result_bytes(on) == result_bytes(off)

    def test_placement_run_byte_identical(self):
        # Placement adds self-refresh parking and migration traffic —
        # the busiest housekeeping mix in the repo, and the bug class
        # (PR 8's tombstoned refresh) that motivates extra coverage.
        def placement_run(busy_absorption):
            config = CONFIG.with_policy(
                epoch_ns=4_000.0, profile_ns=400.0).with_placement(
                enabled=True).replace(busy_absorption=busy_absorption)
            runner = ExperimentRunner(
                config=config, settings=SETTINGS, cache=None)
            governor = runner.make_placement_governor("MID1")
            return runner.run_governor("MID1", governor)

        assert (result_bytes(placement_run(True))
                == result_bytes(placement_run(False)))


class TestBusyAbsorptionEngagement:
    def make_sim(self, busy_absorption):
        config = CONFIG.replace(busy_absorption=busy_absorption)
        runner = ExperimentRunner(config=config, settings=SETTINGS)
        governor = runner.make_named_governor("MID1", "MemScale")
        return SystemSimulator(config, runner.trace("MID1"), governor)

    def test_busy_run_absorbs_chains(self):
        sim = self.make_sim(busy_absorption=True)
        sim.run()
        assert sim.engine.events_busy_absorbed > 0

    def test_disabled_config_never_absorbs(self):
        sim = self.make_sim(busy_absorption=False)
        sim.run()
        assert sim.engine.events_busy_absorbed == 0

    def test_event_conservation_across_modes(self):
        # processed + fast-forwarded + busy-absorbed is the
        # mode-independent simulated event count (the perfbench metric).
        on = self.make_sim(busy_absorption=True)
        on.run()
        off = self.make_sim(busy_absorption=False)
        off.run()
        total = lambda sim: (sim.engine.events_processed
                             + sim.engine.events_fast_forwarded
                             + sim.engine.events_busy_absorbed)
        assert total(on) == total(off)
        assert on.engine.events_processed < off.engine.events_processed


class TestCacheKeyInsensitivity:
    def test_fingerprint_ignores_fast_forward(self):
        # Byte-identical results may share cache entries, exactly like
        # the observe-only validator flag.
        assert (config_fingerprint(CONFIG.replace(fast_forward=True))
                == config_fingerprint(CONFIG.replace(fast_forward=False)))

    def test_fingerprint_ignores_busy_absorption(self):
        assert (config_fingerprint(CONFIG.replace(busy_absorption=True))
                == config_fingerprint(CONFIG.replace(busy_absorption=False)))

    def test_fingerprint_keeps_approx_steady_state(self):
        # The steady-state surrogate is NOT bit-exact, so its flag must
        # split the cache key.
        assert (config_fingerprint(
                    CONFIG.replace(approx_steady_state=True))
                != config_fingerprint(
                    CONFIG.replace(approx_steady_state=False)))
