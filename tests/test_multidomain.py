"""Tests for multi-domain coordinated DVFS (core/cpu_power.py +
cap/multidomain.py).

The load-bearing piece is the hypothesis property: over randomized
profiles and global budgets, the joint allocator never selects a
(core, memory) pair above the budget when any pair fits — which is what
makes the governor's zero-violation ledger a guarantee rather than an
accident of the smoke mix.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cap import MultiDomainAllocator, MultiDomainGovernor, PowerBudget
from repro.config import scaled_config
from repro.core.cpu_power import (CORE_FREQ_STEPS, CoreDvfsConfig,
                                  CoreFrequencyLadder, CorePowerModel)
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyLadder
from repro.sim import ListTelemetry
from repro.sim.runner import ExperimentRunner, RunnerSettings
from tests.conftest import make_delta

CFG = scaled_config()
LADDER = FrequencyLadder(CFG)
ALLOC = MultiDomainAllocator(CFG, EnergyModel(CFG, rest_power_w=40.0),
                             n_cores=4)

SETTINGS = RunnerSettings(cores=4, instructions_per_core=8_000, seed=2011)


def delta_for(tlm=20.0, busy_frac=0.2, reads=90.0, writes=10.0):
    return make_delta(CFG, tlm_per_core=tlm, busy_frac=busy_frac,
                      reads=reads, writes=writes)


class TestCoreDvfsConfig:
    def test_defaults_validate(self):
        CoreDvfsConfig().validate()

    def test_first_step_must_be_nominal(self):
        with pytest.raises(ValueError, match="1.0"):
            CoreDvfsConfig(freq_steps=(0.9, 0.8)).validate()

    def test_steps_must_descend(self):
        with pytest.raises(ValueError, match="descending"):
            CoreDvfsConfig(freq_steps=(1.0, 0.8, 0.9)).validate()

    def test_duplicate_steps_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CoreDvfsConfig(freq_steps=(1.0, 0.8, 0.8)).validate()

    def test_voltage_ordering_enforced(self):
        with pytest.raises(ValueError, match="vmin"):
            CoreDvfsConfig(vmin=1.2, vmax=1.0).validate()

    def test_idle_frac_bounds(self):
        with pytest.raises(ValueError, match="idle_frac"):
            CoreDvfsConfig(idle_frac=1.5).validate()


class TestCoreFrequencyLadder:
    def test_points_descend_from_nominal(self):
        ladder = CoreFrequencyLadder(CoreDvfsConfig(), 4000.0)
        freqs = [p.freq_mhz for p in ladder]
        assert freqs[0] == 4000.0
        assert freqs == sorted(freqs, reverse=True)
        assert len(ladder) == len(CORE_FREQ_STEPS)
        assert ladder.fastest.index == 0
        assert ladder.slowest.index == len(ladder) - 1

    def test_voltage_interpolates_between_vmin_and_vmax(self):
        dvfs = CoreDvfsConfig(vmin=0.75, vmax=1.10)
        ladder = CoreFrequencyLadder(dvfs, 4000.0)
        assert ladder.fastest.voltage == pytest.approx(1.10)
        assert ladder.slowest.voltage == pytest.approx(0.75)
        volts = [p.voltage for p in ladder]
        assert volts == sorted(volts, reverse=True)

    def test_at_mhz_lookup_and_error(self):
        ladder = CoreFrequencyLadder(CoreDvfsConfig(), 4000.0)
        assert ladder.at_mhz(2000.0) is ladder.slowest
        with pytest.raises(ValueError, match="not an available"):
            ladder.at_mhz(1234.5)

    def test_single_step_ladder_uses_vmax(self):
        ladder = CoreFrequencyLadder(CoreDvfsConfig(freq_steps=(1.0,)),
                                     4000.0)
        assert len(ladder) == 1
        assert ladder.fastest.voltage == pytest.approx(1.10)


class TestCorePowerModel:
    def test_power_scales_with_v2f(self):
        model = CorePowerModel(CFG)
        nominal = model.nominal
        slowest = model.ladder.slowest
        p_hi = model.core_power_w(0.5, nominal)
        p_lo = model.core_power_w(0.5, slowest)
        expected = ((slowest.voltage ** 2) * slowest.freq_mhz
                    / ((nominal.voltage ** 2) * nominal.freq_mhz))
        assert p_lo / p_hi == pytest.approx(expected)

    def test_power_linear_in_utilization_between_idle_and_peak(self):
        model = CorePowerModel(CFG)
        d = model.dvfs
        idle = model.core_power_w(0.0, model.nominal)
        peak = model.core_power_w(1.0, model.nominal)
        assert idle == pytest.approx(d.peak_w_per_core * d.idle_frac)
        assert peak == pytest.approx(d.peak_w_per_core)
        mid = model.core_power_w(0.5, model.nominal)
        assert mid == pytest.approx((idle + peak) / 2)

    def test_utilization_clamped_to_unity(self):
        model = CorePowerModel(CFG)
        assert model.core_power_w(3.0, model.nominal) == \
            model.core_power_w(1.0, model.nominal)
        delta = make_delta(CFG, tic_per_core=1e9)
        assert model.utilizations(delta) == [1.0] * 4

    def test_predicted_cpi_stretches_only_compute_term(self):
        model = CorePowerModel(CFG)
        delta = delta_for()
        tpi_mem = 40.0
        cpi_fast = model.predicted_cpi(delta, model.nominal, tpi_mem)
        cpi_slow = model.predicted_cpi(delta, model.ladder.slowest, tpi_mem)
        # The memory term (alpha * tpi_mem) is identical; the compute
        # term doubles at half the clock.
        cycle = CFG.cpu.cycle_ns
        for core in range(4):
            mem_cycles = delta.alpha(core) * tpi_mem / cycle
            compute_fast = cpi_fast[core] - mem_cycles
            compute_slow = cpi_slow[core] - mem_cycles
            assert compute_slow == pytest.approx(2.0 * compute_fast)

    def test_cluster_power_sums_cores(self):
        model = CorePowerModel(CFG)
        utils = [0.1, 0.2, 0.3, 0.4]
        total = model.cluster_power_w(utils, model.nominal)
        assert total == pytest.approx(sum(
            model.core_power_w(u, model.nominal) for u in utils))


class TestMultiDomainCandidates:
    def test_crosses_core_ladder_with_memory_candidates(self):
        delta = delta_for()
        mem_cands = ALLOC.mem_allocator.candidates(delta, LADDER.fastest)
        cands = ALLOC.candidates(delta, LADDER.fastest)
        assert len(cands) == len(mem_cands) * len(ALLOC.core_ladder)

    def test_nominal_pair_is_reference(self):
        """Cores at nominal with the fastest memory is the slowdown
        reference: its min_perf is 1 and it meets any non-negative
        bound."""
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        ref = [c for c in cands
               if c.core_point.index == 0
               and c.mem.global_point.index == 0
               and c.mem.channel_bus_mhz is None]
        assert len(ref) == 1
        assert ref[0].min_perf == pytest.approx(1.0)
        assert ref[0].meets_bound

    def test_slower_pairs_cost_less_power(self):
        cands = ALLOC.candidates(delta_for(), LADDER.fastest)
        fastest = max(cands, key=lambda c: (c.core_point.freq_mhz,
                                            c.mem.global_point.bus_mhz))
        cheapest = min(cands, key=lambda c: c.total_power_w)
        assert cheapest.total_power_w < fastest.total_power_w
        assert cheapest.core_point.index > 0

    def test_total_power_is_core_plus_memory(self):
        for c in ALLOC.candidates(delta_for(), LADDER.fastest):
            assert c.total_power_w == pytest.approx(
                c.core_power_w + c.mem.predicted_power_w)


class TestMultiDomainAllocation:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            ALLOC.allocate(delta_for(), LADDER.fastest, 0.0)

    def test_loose_budget_meets_bound_at_min_energy(self):
        delta = delta_for()
        cands = ALLOC.candidates(delta, LADDER.fastest)
        budget = max(c.total_power_w for c in cands) + 1.0
        a = ALLOC.allocate(delta, LADDER.fastest, budget)
        assert a.feasible and a.bound_met
        bound_ok = [c for c in cands if c.meets_bound]
        assert a.chosen.energy_score == min(c.energy_score
                                            for c in bound_ok)

    def test_impossible_budget_degrades_to_cheapest(self):
        delta = delta_for()
        cands = ALLOC.candidates(delta, LADDER.fastest)
        a = ALLOC.allocate(delta, LADDER.fastest, 1e-3)
        assert not a.feasible
        assert a.core_max_infeasible and a.mem_max_infeasible
        assert a.total_power_w == min(c.total_power_w for c in cands)

    def test_per_domain_infeasibility_flags(self):
        delta = delta_for()
        cands = ALLOC.candidates(delta, LADDER.fastest)
        core_max_min = min(c.total_power_w for c in cands
                           if c.core_point.index == 0)
        mem_max_min = min(c.total_power_w for c in cands
                          if c.mem.global_point.index == 0
                          and c.mem.channel_bus_mhz is None)
        # A budget between the cheapest pair and both single-domain-max
        # floors: only a coordinated split fits.
        tight = min(core_max_min, mem_max_min) - 1e-6
        cheapest = min(c.total_power_w for c in cands)
        assert cheapest < tight  # the regime exists for this profile
        a = ALLOC.allocate(delta, LADDER.fastest, tight)
        assert a.feasible
        assert a.core_max_infeasible or a.mem_max_infeasible
        assert a.core_point.index > 0 or a.global_point.index > 0

    def test_budget_split_sums_to_total(self):
        a = ALLOC.allocate(delta_for(), LADDER.fastest, 30.0)
        split = a.budget_split
        assert split["core_w"] + split["memory_w"] == \
            pytest.approx(a.total_power_w)


@given(
    tlm=st.floats(min_value=1.0, max_value=400.0, allow_nan=False),
    busy_frac=st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
    writes=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    budget_quantile=st.floats(min_value=-0.2, max_value=1.2,
                              allow_nan=False),
    start_index=st.integers(min_value=0, max_value=len(LADDER) - 1),
)
@settings(max_examples=40, deadline=None)
def test_never_exceeds_global_budget_when_feasible_split_exists(
        tlm, busy_frac, writes, budget_quantile, start_index):
    """The acceptance property: for any profile and any global budget,
    if some (core, memory) pair fits, the allocation is feasible and its
    total predicted power is within the budget — so the governor built
    on it never *chooses* to exceed the global budget."""
    delta = delta_for(tlm=tlm, busy_frac=busy_frac, writes=writes)
    current = LADDER[start_index]
    cands = ALLOC.candidates(delta, current)
    powers = sorted(c.total_power_w for c in cands)
    lo, hi = powers[0], powers[-1]
    budget = max(1e-6, lo + (hi - lo) * budget_quantile)

    a = ALLOC.allocate(delta, current, budget)
    feasible = [c for c in cands if c.total_power_w <= budget]
    if feasible:
        assert a.feasible
        assert a.total_power_w <= budget
        bound_ok = [c for c in feasible if c.meets_bound]
        if bound_ok:
            assert a.bound_met
            assert a.chosen.energy_score == min(c.energy_score
                                                for c in bound_ok)
        else:
            assert a.min_perf == max(c.min_perf for c in feasible)
    else:
        assert not a.feasible
        assert a.total_power_w == powers[0]


class TestMultiDomainGovernor:
    @pytest.fixture(scope="class")
    def md_runner(self):
        return ExperimentRunner(settings=SETTINGS)

    def test_name_carries_budget(self, md_runner):
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.8)
        assert governor.name.startswith("MultiDomain-")
        assert f"{governor.budget.min_watts:.2f}W" in governor.name

    def test_requires_exactly_one_budget_form(self, md_runner):
        with pytest.raises(ValueError, match="exactly one"):
            md_runner.make_multidomain_governor("MID1")
        with pytest.raises(ValueError, match="exactly one"):
            md_runner.make_multidomain_governor("MID1", budget_w=30.0,
                                                budget_fraction=0.8)

    def test_run_ledger_clean_under_feasible_budget(self, md_runner):
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.8)
        md_runner.run_governor("MID1", governor)
        summary = governor.multidomain_summary()
        assert summary["epochs_accounted"] > 0
        assert summary["violation_count"] == 0
        assert summary["infeasible_epochs"] == 0
        assert summary["avg_core_mhz"] is not None
        assert summary["core_energy_j"] > 0
        assert summary["avg_core_power_w"] > 0

    def test_tight_budget_slows_cores(self, md_runner):
        """At a budget infeasible for either domain alone, the governor
        picks a coordinated split (cores below nominal) and still keeps
        the ledger clean."""
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.55)
        md_runner.run_governor("MID1", governor)
        summary = governor.multidomain_summary()
        assert summary["core_max_infeasible_epochs"] > 0
        assert summary["mem_max_infeasible_epochs"] > 0
        assert summary["epochs_decided"] > summary["infeasible_epochs"]
        assert summary["violation_count"] == 0
        assert summary["avg_core_mhz"] < CFG.cpu.freq_mhz

    def test_frequency_log_has_both_domains(self, md_runner):
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.8)
        md_runner.run_governor("MID1", governor)
        assert governor.frequency_log
        for t_ns, bus_mhz, core_mhz in governor.frequency_log:
            assert bus_mhz in [p.bus_mhz for p in LADDER]
            assert core_mhz in [p.freq_mhz
                                for p in governor.allocator.core_ladder]

    def test_snapshot_empty_before_first_decision(self, md_runner):
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.8)
        assert governor.telemetry_snapshot() == {}

    def test_telemetry_carries_per_domain_fields(self, md_runner):
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.8)
        sink = ListTelemetry()
        md_runner.run_governor("MID1", governor, telemetry=sink)
        decided = [r for r in sink.records
                   if r["core_freq_mhz"] is not None]
        assert decided, "no epoch carried multi-domain state"
        for record in decided:
            assert record["core_power_w"] > 0
            split = record["domain_budget_split"]
            assert set(split) == {"core_w", "memory_w"}
            assert record["budget_w"] == pytest.approx(
                governor.budget.min_watts)
            assert record["cap_feasible"] in (True, False)

    def test_memory_timeline_matches_cap_governor_decisions(self, md_runner):
        """The core domain is analytical: a multi-domain run programs
        only the memory side, so its simulated result is identical to
        re-running the same memory decisions without the core model."""
        governor = md_runner.make_multidomain_governor(
            "MID1", budget_fraction=0.8)
        result = md_runner.run_governor("MID1", governor)
        assert result.epochs > 0
        assert result.sim_time_ns > 0
