"""Tests for the scenario subsystem (repro/scenarios/): k6 + CSV trace
ingestion with re-interleaving, the trace -> phase fitter, the
MPKI-laddered mix library, the device technology tables, the
imported-trace cache store, the runner's ``trace:<name>`` resolution,
and the (mix x policy x device) scenario sweep."""

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro import scenarios as scn
from repro.cli import main
from repro.config import scaled_config
from repro.cpu.workloads import (MixSpec, TraceGenerator, known_mix_names,
                                 lookup_mix, register_app_profile,
                                 register_mix)
from repro.scenarios.fit import fit_trace, row_hit_flags, seed_mix_from_fit
from repro.scenarios.ingest import (ImportSummary, TraceFormatError,
                                    convert_records, detect_format,
                                    import_trace, iter_csv, iter_k6,
                                    read_records, reinterleave)
from repro.sim.cache import ExperimentCache, check_trace_name
from repro.sim.parallel import run_scenario_sweep, run_sweep, scenario_label
from repro.sim.runner import (IMPORTED_TRACE_PREFIX, ExperimentRunner,
                              RunnerSettings)

SAMPLE = Path(__file__).parent / "data" / "sample_k6.trc"
ORG = scaled_config().org
SETTINGS = RunnerSettings(cores=4, instructions_per_core=4_000, seed=7)


class TestK6Parsing:
    def test_all_command_aliases_and_comments(self):
        text = ("; leading comment\n"
                "# another comment\n"
                "\n"
                "0x1000 P_MEM_RD 5\n"
                "0x2000 READ 7\n"
                "7f40 P_FETCH 9\n"          # bare hex, no 0x prefix
                "0x3000 P_MEM_WR 11\n"
                "0x4000 WRITE 12\n")
        records = list(iter_k6(io.StringIO(text)))
        assert [r[0] for r in records] == [0x1000, 0x2000, 0x7F40,
                                           0x3000, 0x4000]
        assert [r[1] for r in records] == [False, False, False, True, True]
        assert [r[2] for r in records] == [5, 7, 9, 11, 12]

    def test_wrong_field_count_names_the_line(self):
        with pytest.raises(TraceFormatError, match=r"t\.trc:2.*2 fields"):
            list(iter_k6(io.StringIO("0x10 READ 1\n0x20 READ\n"),
                         source="t.trc"))

    def test_unknown_command_lists_the_vocabulary(self):
        with pytest.raises(TraceFormatError, match="unknown command 'EVICT'"):
            list(iter_k6(io.StringIO("0x10 EVICT 1\n")))

    def test_bad_address_and_cycle_rejected(self):
        with pytest.raises(TraceFormatError, match="bad address"):
            list(iter_k6(io.StringIO("zz&& READ 1\n")))
        with pytest.raises(TraceFormatError, match="bad cycle"):
            list(iter_k6(io.StringIO("0x10 READ soon\n")))


class TestCsvParsing:
    def test_header_row_is_skipped(self):
        text = "addr,cmd,cycle\n0x10,READ,1\n32,WRITE,4\n"
        records = list(iter_csv(io.StringIO(text)))
        assert records == [(0x10, False, 1), (32, True, 4)]

    def test_wrong_cell_count_rejected(self):
        with pytest.raises(TraceFormatError, match="cells"):
            list(iter_csv(io.StringIO("0x10,READ\n")))

    def test_detect_format(self, tmp_path):
        k6 = tmp_path / "a.trc"
        k6.write_text("; comment\n0x10 READ 1\n")
        csv = tmp_path / "b.csv"
        csv.write_text("0x10,READ,1\n")
        assert detect_format(k6) == "k6"
        assert detect_format(csv) == "csv"
        empty = tmp_path / "c.trc"
        empty.write_text("# only comments\n")
        with pytest.raises(TraceFormatError, match="empty"):
            detect_format(empty)

    def test_read_records_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "a.trc"
        path.write_text("0x10 READ 1\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            read_records(path, fmt="elf")

    def test_read_records_rejects_request_free_file(self, tmp_path):
        path = tmp_path / "a.trc"
        path.write_text("; nothing here\n")
        # Auto-detect calls the comment-only file out as empty...
        with pytest.raises(TraceFormatError, match="empty trace file"):
            read_records(path)
        # ...and an explicit format reaches the no-requests check.
        with pytest.raises(TraceFormatError, match="no requests"):
            read_records(path, fmt="k6")


class TestReinterleave:
    def test_dense_and_order_preserving(self):
        lines = np.array([900, 100, 500, 100, 901], dtype=np.int64)
        remapped = reinterleave(lines, ORG)
        # Dense: the distinct lines land on [0, footprint).
        assert sorted(set(remapped.tolist())) == [0, 1, 2, 3]
        # Monotone: relative order of distinct addresses survives.
        assert remapped[1] < remapped[2] < remapped[0] < remapped[4]
        # Repeats stay identical.
        assert remapped[1] == remapped[3]

    def test_adjacency_survives(self):
        base = 1 << 30
        lines = np.arange(base, base + 64, dtype=np.int64)
        remapped = reinterleave(lines, ORG)
        assert (np.diff(remapped) == 1).all()

    def test_footprint_folds_modulo_capacity(self):
        import dataclasses
        tiny = dataclasses.replace(ORG, rows_per_bank=4)
        capacity = (tiny.channels * tiny.ranks_per_channel
                    * tiny.banks_per_rank * tiny.rows_per_bank
                    * tiny.lines_per_row)
        lines = np.arange(0, capacity + 7, dtype=np.int64)
        remapped = reinterleave(lines, tiny)
        assert remapped.max() < capacity
        assert remapped[capacity] == 0  # folded back to the start


class TestConvertRecords:
    def test_fifo_writeback_attachment_and_gap_carry(self):
        addrs = np.array([0x00, 0x40, 0x80, 0xC0, 0x100], dtype=np.int64)
        is_write = np.array([False, True, True, False, False])
        cycles = np.array([0, 3, 5, 9, 10], dtype=np.int64)
        trace, unattached, non_monotonic = convert_records(
            "t", addrs, is_write, cycles, ORG, cores=1)
        core = trace.cores[0]
        # Reads at cycles 0, 9, 10; the two writes attach FIFO to the
        # reads after them, and their cycle deltas carry into read 2's gap.
        assert core.read_addrs.tolist() == [0, 3, 4]
        assert core.wb_addrs.tolist() == [-1, 1, 2]
        assert core.gaps.tolist() == [0, 9, 1]
        assert (unattached, non_monotonic) == (0, 0)

    def test_trailing_write_is_counted_unattached(self):
        addrs = np.array([0x00, 0x40], dtype=np.int64)
        is_write = np.array([False, True])
        cycles = np.array([0, 5], dtype=np.int64)
        _, unattached, _ = convert_records("t", addrs, is_write, cycles,
                                           ORG, cores=1)
        assert unattached == 1

    def test_non_monotonic_cycles_clamped_and_counted(self):
        addrs = np.array([0x00, 0x40, 0x80], dtype=np.int64)
        is_write = np.zeros(3, dtype=bool)
        cycles = np.array([10, 4, 20], dtype=np.int64)
        trace, _, non_monotonic = convert_records(
            "t", addrs, is_write, cycles, ORG, cores=1)
        assert non_monotonic == 1
        assert (trace.cores[0].gaps >= 0).all()

    def test_write_only_trace_rejected(self):
        addrs = np.array([0x00], dtype=np.int64)
        with pytest.raises(TraceFormatError, match="no read requests"):
            convert_records("t", addrs, np.array([True]),
                            np.array([0], dtype=np.int64), ORG, cores=1)

    def test_bad_core_count_rejected(self):
        addrs = np.array([0x00], dtype=np.int64)
        with pytest.raises(ValueError, match="core count"):
            convert_records("t", addrs, np.array([False]),
                            np.array([0], dtype=np.int64), ORG, cores=0)


class TestBundledSample:
    def test_import_summary_matches_the_file(self):
        trace, summary = import_trace(SAMPLE, "sample", ORG, cores=4)
        assert isinstance(summary, ImportSummary)
        assert summary.format == "k6"
        assert summary.requests == summary.reads + summary.writes
        assert summary.reads == 300 and summary.writes == 25
        assert summary.non_monotonic_cycles == 0
        assert summary.cores == 4 and len(trace.cores) == 4
        assert summary.rpki == pytest.approx(trace.rpki)
        assert summary.rpki > 1.0
        assert summary.first_cycle < summary.last_cycle

    def test_fit_finds_phase_structure(self):
        trace, _ = import_trace(SAMPLE, "sample", ORG, cores=4)
        fit = fit_trace(trace, ORG)
        assert len(fit.windows) == 8
        assert 1 <= len(fit.phases) <= 8
        assert fit.rpki == pytest.approx(trace.rpki, rel=1e-6)
        assert 0.0 < fit.row_hit_ratio < 1.0
        assert 0.0 < fit.stream_fraction < 1.0
        assert fit.working_set_lines >= 1024


class TestFitter:
    def test_row_hit_flags_counts_same_row_runs(self):
        # Same channel/rank/bank, same row: every access after the
        # first hits the row the previous one opened.
        stride = ORG.channels * ORG.banks_per_rank * ORG.ranks_per_channel
        lines = np.arange(4, dtype=np.int64) * stride
        flags = row_hit_flags(lines, ORG)
        assert not flags[0] and flags[1:].all()
        assert row_hit_flags(np.zeros(0, dtype=np.int64), ORG).size == 0

    def test_two_phase_trace_yields_two_phases(self):
        # Dense half then sparse half: intensities differ 4x, far beyond
        # the merge tolerance, so the fitter must keep them apart.
        gaps = np.array([10] * 200 + [40] * 200, dtype=np.int64)
        n = len(gaps)
        from repro.cpu.trace import CoreTrace, WorkloadTrace
        trace = WorkloadTrace("2ph", [CoreTrace(
            app_name="2ph", app_id=0, gaps=gaps,
            read_addrs=np.arange(n, dtype=np.int64),
            wb_addrs=np.full(n, -1, dtype=np.int64))])
        fit = fit_trace(trace, ORG, windows=10)
        assert len(fit.phases) >= 2
        assert fit.instructions == int(gaps.sum())
        fractions = [p.fraction for p in fit.phases.phases]
        assert sum(fractions) == pytest.approx(1.0)

    def test_seed_mix_from_fit_round_trips_through_the_generator(self):
        trace, _ = import_trace(SAMPLE, "sample", ORG, cores=4)
        fit = fit_trace(trace, ORG)
        spec = seed_mix_from_fit(fit, "fitted-sample-test")
        assert lookup_mix("fitted-sample-test") == spec
        synth = TraceGenerator(seed=3).generate_mix(
            "fitted-sample-test", cores=4, instructions_per_core=20_000)
        assert synth.rpki == pytest.approx(fit.rpki, rel=0.35)


class TestLadder:
    def test_rungs_descend_strictly_in_rpki(self):
        targets = [s.target_rpki for s in scn.SCENARIO_LADDER]
        assert targets == sorted(targets, reverse=True)
        assert len(set(targets)) == len(targets)
        assert scn.scenario_names() == [f"mix{i}" for i in range(1, 8)]

    def test_rungs_resolve_like_table1_mixes(self):
        for name in scn.scenario_names():
            spec = lookup_mix(name)
            assert spec.category == scn.SCENARIO_CATEGORY
        assert set(scn.scenario_names()) <= set(known_mix_names())

    def test_generated_rung_tracks_its_calibration_target(self):
        spec = scn.SCENARIO_MIXES["mix2"]
        trace = TraceGenerator(seed=3).generate_mix(
            "mix2", cores=4, instructions_per_core=40_000)
        assert trace.rpki == pytest.approx(spec.target_rpki, rel=0.3)

    def test_shadowing_guards(self):
        with pytest.raises(ValueError, match="shadow built-in mix"):
            register_mix(MixSpec("MID1", "SCN", ("ammp",), 1.0, 0.1))
        with pytest.raises(ValueError, match="different spec"):
            register_mix(MixSpec("mix1", "SCN", ("ammp",), 1.0, 0.1))
        # Identical re-registration is a no-op (module re-import safety).
        register_mix(scn.SCENARIO_MIXES["mix1"].mix_spec())
        from repro.cpu.workloads import APP_PROFILES
        with pytest.raises(ValueError, match="shadow built-in app"):
            register_app_profile(APP_PROFILES["ammp"])

    def test_listing_mentions_every_rung(self):
        listing = scn.scenario_listing()
        for name in scn.scenario_names():
            assert name in listing


class TestDeviceTables:
    def test_every_preset_validates(self):
        for name in scn.device_names():
            scn.lookup_device(name).validate()
        assert scn.DEFAULT_DEVICE in scn.DEVICE_TABLES

    def test_unknown_device_lists_the_registry(self):
        with pytest.raises(KeyError, match="ddr3-1333"):
            scn.lookup_device("hbm9")

    def test_apply_device_swaps_only_timings_and_currents(self):
        config = scaled_config()
        stt = scn.apply_device(config, "stt-mram")
        assert stt.currents.vdd == pytest.approx(1.2)
        assert stt.timings.refresh_period_ns > 1e15
        assert stt.org == config.org and stt.policy == config.policy
        # The baseline table round-trips to the stock config sections.
        same = scn.apply_device(config, "ddr3-1333")
        assert same.timings == config.timings
        assert same.currents == config.currents

    def test_device_configs_never_share_a_cache_fingerprint(self):
        cache = ExperimentCache("unused")
        config = scaled_config()
        keys = {cache.baseline_key(scn.apply_device(config, name),
                                   "mix2", 4, 4_000, 7)
                for name in scn.device_names()}
        assert len(keys) == len(scn.device_names())

    def test_listing_mentions_every_device(self):
        listing = scn.device_listing()
        for name in scn.device_names():
            assert name in listing


class TestImportedTraceStore:
    def test_store_load_round_trip_with_digest(self, tmp_path):
        trace, summary = import_trace(SAMPLE, "s1", ORG, cores=4)
        cache = ExperimentCache(tmp_path)
        import dataclasses
        cache.store_imported_trace("s1", trace,
                                   dataclasses.asdict(summary))
        loaded = cache.load_imported_trace("s1")
        assert loaded.name == trace.name
        np.testing.assert_array_equal(loaded.cores[0].read_addrs,
                                      trace.cores[0].read_addrs)
        assert cache.imported_names() == ["s1"]
        digest = cache.imported_trace_digest("s1")
        assert digest and digest == cache.imported_trace_digest("s1")
        meta = cache.imported_trace_meta("s1")
        assert meta["digest"] == digest
        assert meta["summary"]["reads"] == summary.reads
        assert cache.stats()["imported_entries"] == 1

    def test_missing_trace_loads_as_none(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        assert cache.load_imported_trace("absent") is None
        assert cache.imported_trace_digest("absent") is None
        assert cache.imported_names() == []

    def test_trace_names_are_validated(self):
        assert check_trace_name("ok-name_1.2") == "ok-name_1.2"
        for bad in ("", "a/b", "a b", "a\0"):
            with pytest.raises(ValueError, match="invalid trace name"):
                check_trace_name(bad)


class TestRunnerTraceResolution:
    def _import(self, tmp_path):
        trace, _ = import_trace(SAMPLE, "s1", ORG, cores=4)
        cache = ExperimentCache(tmp_path)
        cache.store_imported_trace("s1", trace)
        return cache

    def test_requires_a_cache(self):
        runner = ExperimentRunner(settings=SETTINGS, cache=None)
        with pytest.raises(ValueError, match="experiment cache"):
            runner.trace(IMPORTED_TRACE_PREFIX + "s1")

    def test_unknown_name_lists_the_store(self, tmp_path):
        cache = self._import(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        with pytest.raises(ValueError, match="s1"):
            runner.trace(IMPORTED_TRACE_PREFIX + "nope")

    def test_imported_trace_replays_through_run_sweep(self, tmp_path):
        self._import(tmp_path)
        outcomes = run_sweep([IMPORTED_TRACE_PREFIX + "s1"], ["MemScale"],
                             settings=SETTINGS, jobs=1,
                             cache_dir=tmp_path)
        (outcome,) = outcomes
        assert outcome.result.target_instructions > 0
        assert outcome.comparison.memory_energy_savings is not None


class TestScenarioSweep:
    def test_device_axis_orders_and_accounts(self, tmp_path):
        outcomes = run_scenario_sweep(
            ["mix2"], ("MemScale",), ("ddr3-1333", "stt-mram"),
            settings=SETTINGS, jobs=1, cache_dir=tmp_path)
        assert [(o.policy, o.device) for o in outcomes] \
            == [("MemScale", "ddr3-1333"), ("MemScale", "stt-mram")]
        ddr3, stt = outcomes
        assert scenario_label(stt.policy, stt.device) == "MemScale@stt-mram"
        for o in outcomes:
            assert 0.0 <= o.background_share <= 1.0
            assert o.wall_s >= 0.0
        # Near-zero standby currents: the STT-MRAM-like table's
        # background share of DIMM energy sits below DDR3's.
        assert stt.background_share < ddr3.background_share


class TestScenarioCli:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "mix1" in out and "mix7" in out
        assert "ddr3-1333" in out and "stt-mram" in out

    def test_trace_info_and_import(self, capsys, tmp_path):
        assert main(["trace", "info", str(SAMPLE), "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out and "phase fit" in out

        assert main(["trace", "import", str(SAMPLE), "--name", "s1",
                     "--cores", "4", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "imported as 'trace:s1'" in out
        assert ExperimentCache(tmp_path).imported_names() == ["s1"]

    def test_trace_import_rejects_bad_name(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid trace name"):
            main(["trace", "import", str(SAMPLE), "--name", "a/b",
                  "--cache-dir", str(tmp_path)])

    def test_trace_info_surfaces_format_errors(self, tmp_path):
        bad = tmp_path / "bad.trc"
        bad.write_text("0x10 EVICT 1\n")
        with pytest.raises(SystemExit, match="unknown command"):
            main(["trace", "info", str(bad)])

    def test_run_unknown_imported_trace_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no imported trace named"):
            main(["run", "trace:nope", "--cache-dir", str(tmp_path)])

    def test_run_imported_trace_core_mismatch_is_a_clean_error(
            self, tmp_path):
        main(["trace", "import", str(SAMPLE), "--name", "app",
              "--cores", "8", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="pass --cores 8"):
            main(["run", "trace:app", "--cores", "4",
                  "--cache-dir", str(tmp_path)])

    def test_run_rejects_unknown_device(self):
        with pytest.raises(SystemExit, match="unknown device table"):
            main(["run", "mix2", "--device", "hbm9",
                  "--instructions", "4000"])

    def test_run_on_a_rung_with_a_device(self, capsys, tmp_path):
        assert main(["run", "mix2", "--device", "stt-mram",
                     "--cores", "4", "--instructions", "4000",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "MemScale@stt-mram" in out

    def test_sweep_scenarios_and_devices(self, capsys, tmp_path):
        assert main(["sweep", "--scenarios", "mix5", "--policies",
                     "MemScale", "--devices", "ddr3-1333", "ddr3l",
                     "--cores", "4", "--instructions", "4000",
                     "--jobs", "1", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep: 1 mixes x 1 policies x 2 devices" in out
        assert "standby" in out and "ddr3l" in out

    def test_device_sweep_save_is_deterministic(self, capsys, tmp_path):
        args = ["sweep", "--scenarios", "mix5", "--policies", "MemScale",
                "--devices", "ddr3-1333", "stt-mram",
                "--cores", "4", "--instructions", "4000",
                "--cache-dir", str(tmp_path / "cache")]
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(args + ["--jobs", "1", "--save", str(serial)]) == 0
        assert main(args + ["--jobs", "2", "--save", str(parallel)]) == 0
        out = capsys.readouterr().out
        assert f"results saved to {serial}" in out
        assert serial.read_bytes() == parallel.read_bytes()
