"""Integration tests for the memory subsystem: banks, channels, controller.

These drive a real :class:`MemoryController` with hand-built requests and
check latencies, classification, blocking, powerdown, and frequency
transitions against the DDR3 timing arithmetic of Table 2.
"""

import pytest

from repro.config import NS_PER_US, scaled_config
from repro.memsim.address import MemoryLocation
from repro.memsim.controller import (
    MemoryController,
    WRITEBACK_QUEUE_CAPACITY,
)
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest, RequestKind
from repro.memsim.states import PowerdownMode, RankPowerState


CFG = scaled_config()


def make_controller(powerdown=PowerdownMode.NONE, refresh=False):
    engine = EventEngine()
    mc = MemoryController(engine, CFG, powerdown_mode=powerdown,
                          refresh_enabled=refresh, n_cores=4)
    return engine, mc


def loc(channel=0, rank=0, bank=0, row=0, column=0):
    return MemoryLocation(channel=channel, rank=rank, bank=bank,
                          row=row, column=column)


def submit_read(mc, location, done):
    request = MemRequest(RequestKind.READ, location,
                         on_complete=lambda r: done.append(r))
    mc.submit(request)
    return request


class TestSingleAccessLatency:
    def test_closed_bank_read_latency_at_800mhz(self):
        engine, mc = make_controller()
        done = []
        request = submit_read(mc, loc(), done)
        engine.run()
        assert len(done) == 1
        # MC 5 cycles @1600MHz + tRCD + tCL + burst 4 cycles @800MHz
        expected = 5 * 0.625 + 15.0 + 15.0 + 4 * 1.25
        assert request.total_latency_ns == pytest.approx(expected)

    def test_latency_grows_at_lower_frequency(self):
        engine, mc = make_controller()
        mc.set_frequency_by_bus_mhz(200.0)
        engine.run_until(mc.frozen_until_ns)  # wait out the re-lock
        done = []
        request = submit_read(mc, loc(), done)
        engine.run()
        expected = 5 * 2.5 + 30.0 + 4 * 5.0
        assert request.total_latency_ns == pytest.approx(expected)

    def test_write_completes_without_callback(self):
        engine, mc = make_controller()
        request = MemRequest(RequestKind.WRITE, loc())
        mc.submit(request)
        engine.run()
        assert request.complete_ns > 0
        assert mc.completed_writes == 1

    def test_counters_record_classification(self):
        engine, mc = make_controller()
        done = []
        submit_read(mc, loc(), done)
        engine.run()
        assert mc.counters.cbmc == 1
        assert mc.counters.pocc == 1
        assert mc.counters.reads == 1


class TestRowBufferPolicy:
    def test_back_to_back_same_row_is_row_hit(self):
        engine, mc = make_controller()
        done = []
        submit_read(mc, loc(row=7, column=0), done)
        submit_read(mc, loc(row=7, column=1), done)
        engine.run()
        assert mc.counters.rbhc == 1
        assert mc.counters.cbmc == 1
        assert done[1].row_hit

    def test_closed_page_precharges_when_no_pending_same_row(self):
        engine, mc = make_controller()
        done = []
        submit_read(mc, loc(row=7), done)
        engine.run()
        done2 = []
        submit_read(mc, loc(row=7), done2)
        engine.run()
        # the row was closed after the first access: second is a fresh miss
        assert mc.counters.cbmc == 2
        assert mc.counters.rbhc == 0

    def test_queued_different_row_is_not_open_miss_under_closed_page(self):
        engine, mc = make_controller()
        done = []
        submit_read(mc, loc(row=1), done)
        submit_read(mc, loc(row=2), done)
        engine.run()
        # row 1 closes (row 2 pending, different row) => row 2 sees a
        # precharged bank, not an open-row conflict
        assert mc.counters.obmc == 0
        assert mc.counters.cbmc == 2

    def test_row_hit_is_faster(self):
        engine, mc = make_controller()
        done = []
        first = submit_read(mc, loc(row=7, column=0), done)
        second = submit_read(mc, loc(row=7, column=1), done)
        engine.run()
        service_first = first.complete_ns - first.arrive_bank_ns
        service_second = second.complete_ns - first.complete_ns
        assert service_second < service_first


class TestQueueingAndBlocking:
    def test_same_bank_requests_serialize(self):
        engine, mc = make_controller()
        done = []
        for row in range(4):
            submit_read(mc, loc(row=row * 2), done)
        engine.run()
        assert len(done) == 4
        finish_times = [r.complete_ns for r in done]
        assert finish_times == sorted(finish_times)
        # tRC limits per-bank activate rate: accesses at least tRC apart
        gaps = [b - a for a, b in zip(finish_times, finish_times[1:])]
        assert all(g >= CFG.timings.t_rc_ns - 1e-6 for g in gaps)

    def test_bus_serializes_bursts_across_banks(self):
        engine, mc = make_controller()
        done = []
        # all to distinct banks of one channel: array access in parallel,
        # bursts must serialize on the shared bus
        for bank in range(4):
            submit_read(mc, loc(bank=bank), done)
        engine.run()
        starts = sorted(r.bus_start_ns for r in done)
        burst = 4 * 1.25
        for a, b in zip(starts, starts[1:]):
            assert b - a >= burst - 1e-9

    def test_bank_arrival_counters_see_queue_depth(self):
        engine, mc = make_controller()
        done = []
        for _ in range(3):
            submit_read(mc, loc(row=0), done)
        engine.run()
        # arrivals saw 0, then 1, then 2 requests ahead
        assert mc.counters.btc == 3
        assert mc.counters.bto == pytest.approx(0 + 1 + 2)

    def test_trrd_spaces_activates_to_same_rank(self):
        engine, mc = make_controller()
        done = []
        for bank in range(2):
            submit_read(mc, loc(bank=bank), done)
        engine.run()
        starts = sorted(r.bank_start_ns for r in done)
        # second activate waited at least tRRD after the first
        assert done[1].complete_ns - done[0].complete_ns >= 1.25

    def test_pending_requests_counts_in_flight(self):
        engine, mc = make_controller()
        done = []
        submit_read(mc, loc(), done)
        assert mc.pending_requests == 1
        engine.run()
        assert mc.pending_requests == 0


class TestWritebackPriority:
    def test_reads_win_when_wb_queue_shallow(self):
        engine, mc = make_controller()
        done = []
        # one write then one read to the same bank while bank busy with
        # an earlier read
        submit_read(mc, loc(row=0), done)
        mc.submit(MemRequest(RequestKind.WRITE, loc(row=1)))
        submit_read(mc, loc(row=2), done)
        engine.run()
        # the read issued after the write still completed before it
        assert mc.completed_reads == 2
        assert done[1].complete_ns < mc.engine.now

    def test_priority_flips_when_wb_queue_half_full(self):
        engine, mc = make_controller()
        half = WRITEBACK_QUEUE_CAPACITY // 2
        for i in range(half):
            mc.submit(MemRequest(RequestKind.WRITE, loc(row=i)))
        assert mc.writebacks_have_priority(0)
        engine.run()
        assert not mc.writebacks_have_priority(0)

    def test_priority_stays_with_reads_below_half(self):
        engine, mc = make_controller()
        for i in range(3):
            mc.submit(MemRequest(RequestKind.WRITE, loc(row=i)))
        assert not mc.writebacks_have_priority(0)


class TestPowerdown:
    def test_rank_powers_down_when_idle(self):
        engine, mc = make_controller(powerdown=PowerdownMode.FAST_EXIT)
        done = []
        submit_read(mc, loc(), done)
        engine.run()
        rank = mc.ranks[0]
        assert rank.state is RankPowerState.PRECHARGE_POWERDOWN

    def test_no_powerdown_in_none_mode(self):
        engine, mc = make_controller(powerdown=PowerdownMode.NONE)
        done = []
        submit_read(mc, loc(), done)
        engine.run()
        assert mc.ranks[0].state is RankPowerState.PRECHARGE_STANDBY

    def test_powerdown_exit_recorded_and_slower(self):
        engine, mc = make_controller(powerdown=PowerdownMode.FAST_EXIT)
        done = []
        first = submit_read(mc, loc(row=0), done)
        engine.run()
        second = submit_read(mc, loc(row=0), done)
        engine.run()
        assert mc.counters.epdc == 1
        assert second.powerdown_exit
        assert (second.total_latency_ns
                >= first.total_latency_ns + CFG.timings.t_xp_ns - 1e-9)

    def test_slow_exit_costs_more(self):
        results = {}
        for mode in (PowerdownMode.FAST_EXIT, PowerdownMode.SLOW_EXIT):
            engine, mc = make_controller(powerdown=mode)
            done = []
            submit_read(mc, loc(), done)
            engine.run()
            request = submit_read(mc, loc(), done)
            engine.run()
            results[mode] = request.total_latency_ns
        assert (results[PowerdownMode.SLOW_EXIT]
                == pytest.approx(results[PowerdownMode.FAST_EXIT]
                                 + CFG.timings.t_xpdll_ns
                                 - CFG.timings.t_xp_ns))


class TestFrequencyTransitions:
    def test_transition_sets_freeze_window(self):
        engine, mc = make_controller()
        penalty = mc.set_frequency_by_bus_mhz(400.0)
        assert penalty > 0
        assert mc.frozen_until_ns == pytest.approx(penalty)
        assert mc.transition_count == 1
        assert mc.freq.bus_mhz == 400.0

    def test_same_frequency_is_free(self):
        engine, mc = make_controller()
        assert mc.set_frequency_by_bus_mhz(800.0) == 0.0
        assert mc.transition_count == 0

    def test_requests_stall_until_unfrozen(self):
        engine, mc = make_controller()
        mc.set_frequency_by_bus_mhz(400.0)
        freeze_end = mc.frozen_until_ns
        done = []
        request = submit_read(mc, loc(), done)
        engine.run()
        assert request.bank_start_ns >= freeze_end - 1e-9

    def test_unknown_frequency_rejected(self):
        engine, mc = make_controller()
        with pytest.raises(ValueError):
            mc.set_frequency_by_bus_mhz(555.0)

    def test_decoupled_device_latency(self):
        engine, mc = make_controller()
        mc.set_device_extra_latency_ns(5.0)
        done = []
        request = submit_read(mc, loc(), done)
        engine.run()
        expected = 5 * 0.625 + 30.0 + 5.0 + 4 * 1.25
        assert request.total_latency_ns == pytest.approx(expected)

    def test_negative_device_latency_rejected(self):
        engine, mc = make_controller()
        with pytest.raises(ValueError):
            mc.set_device_extra_latency_ns(-1.0)


class TestRefresh:
    def test_refresh_fires_periodically(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=True, n_cores=4)
        engine.run_until(3 * CFG.timings.t_refi_ns)
        assert sum(mc.counters.refreshes) > 0

    def test_refresh_blocks_accesses(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=True, n_cores=4)
        rank = mc.ranks[0]
        # force a refresh to begin right now via the real machinery
        rank._refresh_due = True
        rank._maybe_start_refresh()
        blocked_until = rank.refresh_busy_until
        assert blocked_until > engine.now
        done = []
        request = submit_read(mc, loc(), done)
        # run_until (not run): the refresh timer reschedules forever
        engine.run_until(engine.now + 2 * CFG.timings.t_rfc_ns)
        assert done
        assert request.bank_start_ns >= blocked_until - 1e-9


class TestAccounting:
    def test_sync_accounting_flushes_state_time(self):
        engine, mc = make_controller()
        engine.run_until(1000.0)
        mc.sync_accounting()
        total = [sum(row) for row in mc.counters.rank_state_ns]
        assert all(abs(t - 1000.0) < 1e-6 for t in total)

    def test_snapshot_includes_sync(self):
        engine, mc = make_controller()
        engine.run_until(500.0)
        snap = mc.snapshot()
        assert snap.rank_state_ns.sum() == pytest.approx(
            500.0 * len(mc.ranks))


class TestBugfixRegressions:
    """Pin the four DDR3 timing bugs fixed alongside the validator.

    Each test fails against the pre-fix code (documented inline) and
    passes after the fix.
    """

    def test_submit_during_freeze_still_pays_mc_latency(self):
        # Pre-fix, submit() charged max(mc_latency, freeze_wait), so a
        # request submitted mid-freeze arrived exactly at freeze-end
        # with the MC pipeline latency swallowed.
        engine, mc = make_controller()
        mc.set_frequency_by_bus_mhz(400.0)
        freeze_end = mc.frozen_until_ns
        assert freeze_end > 0.0
        done = []
        request = submit_read(mc, loc(), done)
        engine.run()
        assert request.arrive_bank_ns == pytest.approx(
            freeze_end + mc.freq.mc_latency_ns)

    def test_channel_frequency_freeze_is_per_channel(self):
        # Pre-fix, set_channel_frequency stamped the *global*
        # frozen_until_ns, stalling every channel for one channel's
        # re-lock.
        engine, mc = make_controller()
        point = mc.ladder.at_bus_mhz(200.0)
        mc.set_channel_frequency(2, point)
        assert mc.frozen_until_ns == 0.0
        assert mc.channel_frozen_until_ns(2) > 0.0
        # channel 0 is untouched: same latency as a fresh controller
        done = []
        request = submit_read(mc, loc(channel=0), done)
        engine.run_until(engine.now + 100.0)
        expected = 5 * 0.625 + 15.0 + 15.0 + 4 * 1.25
        assert request.total_latency_ns == pytest.approx(expected)

    def test_channel_freeze_stalls_that_channels_requests(self):
        engine, mc = make_controller()
        point = mc.ladder.at_bus_mhz(200.0)
        mc.set_channel_frequency(2, point)
        blocked_until = mc.channel_frozen_until_ns(2)
        done = []
        request = submit_read(mc, loc(channel=2), done)
        engine.run()
        assert done
        assert request.bank_start_ns >= blocked_until - 1e-9

    def test_every_rank_refreshes_within_first_trefi(self):
        # Pre-fix, rank k's first refresh timer fired at
        # tREFI * (1 + k/16) — every rank except rank 0 blew through
        # the JEDEC refresh interval on its very first cycle.
        engine, mc = make_controller(refresh=True)
        engine.run_until(CFG.timings.t_refi_ns + 1.0)
        assert all(r >= 1 for r in mc.counters.refreshes)

    def test_wb_queue_drains_at_service_not_completion(self):
        # Pre-fix, _wb_pending was decremented when a write's burst
        # completed, so writes being serviced still counted against the
        # writeback queue and read-priority stayed depressed too long.
        engine, mc = make_controller()
        # 16 writes to 16 distinct banks: all dequeue for service at
        # the same instant, none complete yet.
        for b in range(16):
            request = MemRequest(RequestKind.WRITE,
                                 loc(bank=b % 8, rank=b // 8))
            mc.submit(request)
        assert mc.writebacks_have_priority(0)
        engine.run_until(mc.freq.mc_latency_ns + 0.5)
        # every write has left the queue for bank service...
        assert mc.wb_queue_occupancy(0) == 0
        # ...so reads regain priority immediately, not at completion
        assert not mc.writebacks_have_priority(0)
        assert mc.completed_writes == 0

    def test_wb_overflow_counted(self):
        engine, mc = make_controller()
        # same bank: nothing can drain before the burst of submissions
        for i in range(WRITEBACK_QUEUE_CAPACITY + 1):
            request = MemRequest(RequestKind.WRITE, loc(row=i))
            mc.submit(request)
        assert mc.wb_overflow_count == 1
        engine.run()
