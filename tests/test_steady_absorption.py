"""Steady-state surrogate (``approx_steady_state``) tests.

Unlike idle fast-forward and chain absorption, the surrogate is
*deliberately not bit-exact*: it scales window counter deltas instead
of replaying events. The contract tested here is therefore different —
default off, bounded wall/energy error when on, engagement on
stationary busy mixes, hard vetoes for state the extrapolation cannot
represent (armed validator, SELF_REFRESH-parked ranks, in-flight
migration pumps, open freeze windows), and a cache fingerprint that
separates approximate results from exact ones.
"""

from types import SimpleNamespace

from repro.config import default_config, scaled_config
from repro.memsim.states import RankPowerState
from repro.memsim.steady import SPARSE_STRIKES, SteadyStateAbsorber
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator

CONFIG = scaled_config()

#: Wall/energy tolerance for the differential test: the detector's
#: STABILITY_TOL is 10% relative per window, and measured end-to-end
#: errors across the committed mixes stay under ~8%.
ERROR_BOUND = 0.15


def build_sim(mix, policy, cores, instructions, approx, **overrides):
    config = CONFIG.replace(approx_steady_state=approx, **overrides)
    runner = ExperimentRunner(
        config=config,
        settings=RunnerSettings(cores=cores,
                                instructions_per_core=instructions,
                                seed=2011),
        cache=None)
    governor = runner.make_named_governor(mix, policy)
    return SystemSimulator(config, runner.trace(mix), governor)


class TestDefaultOff:
    def test_flag_defaults_off(self):
        assert default_config().approx_steady_state is False
        assert CONFIG.approx_steady_state is False

    def test_absorber_not_built_when_off(self):
        sim = build_sim("MID1", "MemScale", 4, 2_000, approx=False)
        assert sim._absorber is None
        sim.run()
        assert sim.engine.events_steady_skipped == 0


class TestEngagement:
    def test_stationary_mix_engages(self):
        sim = build_sim("mix2", "MemScale", 4, 8_000, approx=True)
        sim.run()
        assert sim.engine.events_steady_skipped > 0
        assert sim._absorber.absorbed_spans > 0
        assert sim._absorber.absorbed_ns > 0.0

    def test_all_cores_still_reach_target(self):
        sim = build_sim("mix2", "MemScale", 4, 8_000, approx=True)
        result = sim.run()
        for core in sim.cluster.cores:
            assert core.time_at_target_ns is not None
            assert core.time_at_target_ns <= sim.engine.now
        assert result.wall_time_ns > 0

    def test_sparse_mix_trips_bypass(self):
        # Low-MPKI traffic never yields trustworthy window statistics;
        # after SPARSE_STRIKES bodies the absorber must get out of the
        # way (the idle fast-forward path owns that regime).
        sim = build_sim("ILP2", "MemScale", 4, 200_000, approx=True)
        sim.run()
        assert sim.engine.events_steady_skipped == 0
        assert sim._absorber._sparse_strikes >= SPARSE_STRIKES
        assert sim.engine.events_fast_forwarded > 0


class TestBoundedError:
    def test_wall_and_energy_within_bound(self):
        results = {}
        for approx in (False, True):
            sim = build_sim("mix2", "MemScale", 4, 8_000, approx=approx)
            results[approx] = sim.run()
        exact, approx = results[False], results[True]
        wall_err = (abs(approx.wall_time_ns - exact.wall_time_ns)
                    / exact.wall_time_ns)
        e_exact = sum(exact.energy_j.values())
        e_approx = sum(approx.energy_j.values())
        energy_err = abs(e_approx - e_exact) / e_exact
        assert wall_err <= ERROR_BOUND
        assert energy_err <= ERROR_BOUND


class TestVetoes:
    """Conditions under which a jump must never happen — the bug class
    from PR 8 (tombstoned refresh under fast-forward) generalized to
    the approximate path."""

    def make_absorber(self, governor=None):
        sim = build_sim("MID1", "MemScale", 4, 2_000, approx=True)
        absorber = sim._absorber
        if governor is not None:
            absorber = SteadyStateAbsorber(sim.engine, sim.controller,
                                           sim.cluster, governor)
        return sim, absorber

    def test_clean_state_not_vetoed(self):
        sim, absorber = self.make_absorber()
        assert absorber._vetoed() is False

    def test_armed_validator_vetoes(self):
        sim = build_sim("MID1", "MemScale", 4, 2_000, approx=True,
                        validate_protocol=True)
        assert sim.controller.validator is not None
        assert sim._absorber._vetoed() is True

    def test_self_refresh_parked_rank_vetoes(self):
        sim, absorber = self.make_absorber()
        rank = sim.controller.ranks[0]
        saved = rank._state
        rank._state = RankPowerState.SELF_REFRESH
        try:
            assert absorber._vetoed() is True
        finally:
            rank._state = saved
        assert absorber._vetoed() is False

    def test_inflight_migration_pump_vetoes(self):
        sim, busy = self.make_absorber(
            governor=SimpleNamespace(pump=SimpleNamespace(idle=False)))
        assert busy._vetoed() is True
        _, idle = self.make_absorber(
            governor=SimpleNamespace(pump=SimpleNamespace(idle=True)))
        assert idle._vetoed() is False

    def test_freeze_window_vetoes(self):
        sim, absorber = self.make_absorber()
        sim.controller.frozen_until_ns = sim.engine.now + 1_000.0
        assert absorber._vetoed() is True
        sim.controller.frozen_until_ns = 0.0
        assert absorber._vetoed() is False

    def test_fully_vetoed_run_is_byte_identical(self):
        # With the validator armed every window is vetoed, so the
        # windowed body must degenerate to plain exact simulation:
        # same events, same serialized result.
        import json

        from repro.sim.serialize import run_result_to_dict

        def run(approx):
            sim = build_sim("mix2", "MemScale", 4, 8_000, approx=approx,
                            validate_protocol=True)
            result = sim.run()
            return sim, result

        sim_on, on = run(True)
        sim_off, off = run(False)
        assert sim_on.engine.events_steady_skipped == 0
        assert (json.dumps(run_result_to_dict(on), sort_keys=True)
                == json.dumps(run_result_to_dict(off), sort_keys=True))
