"""Tests for per-application (per-core) performance bounds.

Section 3.1: "the degradation limit is defined by users on a
per-application basis". A tighter bound on some cores must constrain
the policy more than a uniform loose bound, and slack must accrue at
each core's own gamma.
"""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyLadder
from repro.core.governor import MemScaleGovernor
from repro.core.policy import MemScalePolicy
from repro.sim.results import compare_to_baseline
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator
from tests.conftest import make_delta

CFG = scaled_config()
LADDER = FrequencyLadder(CFG)


def make_policy(bounds=None, n_cores=4):
    energy = EnergyModel(CFG, rest_power_w=40.0)
    return MemScalePolicy(CFG, energy, n_cores=n_cores,
                          per_core_bounds=bounds)


class TestConstruction:
    def test_uniform_default(self):
        policy = make_policy()
        assert np.allclose(policy.gamma_per_core, 0.10)
        assert policy.gamma == 0.10

    def test_custom_bounds(self):
        policy = make_policy(bounds=[0.02, 0.05, 0.10, 0.20])
        assert policy.gamma == pytest.approx(0.02)
        assert policy.gamma_per_core[3] == 0.20

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            make_policy(bounds=[0.1, 0.1])

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            make_policy(bounds=[0.1, -0.1, 0.1, 0.1])


class TestSelection:
    def test_tight_core_constrains_frequency(self):
        delta = make_delta(CFG, tlm_per_core=120.0, bto=250.0, cto=250.0)
        loose = make_policy(bounds=[0.15] * 4)
        tight = make_policy(bounds=[0.15, 0.15, 0.15, 0.002])
        f_loose = loose.select_frequency(delta, LADDER.fastest, 5e6)
        f_tight = tight.select_frequency(delta, LADDER.fastest, 5e6)
        assert f_tight.chosen.bus_mhz >= f_loose.chosen.bus_mhz

    def test_zero_bound_on_busy_core_pins_max(self):
        delta = make_delta(CFG, tlm_per_core=200.0, bto=300.0, cto=300.0)
        policy = make_policy(bounds=[0.0, 0.2, 0.2, 0.2])
        decision = policy.select_frequency(delta, LADDER.fastest, 5e6)
        assert decision.chosen.bus_mhz == 800.0


class TestSlack:
    def test_slack_accrues_at_per_core_gamma(self):
        policy = make_policy(bounds=[0.05, 0.10, 0.15, 0.20])
        wall = 5e6
        probe = make_delta(CFG, interval_ns=wall, tlm_per_core=0.0,
                           tic_per_core=1.0)
        cpi_max = policy._perf.predict(probe, LADDER.fastest, 0.0).cpi[0]
        tic = wall / (cpi_max * CFG.cpu.cycle_ns)
        delta = make_delta(CFG, interval_ns=wall, tlm_per_core=0.0,
                           tic_per_core=tic)
        policy.update_slack(delta, wall)
        expected = np.array([0.05, 0.10, 0.15, 0.20]) * wall
        assert np.allclose(policy.slack_ns, expected, rtol=1e-6)


class TestEndToEnd:
    def test_mixed_bounds_respected_in_full_run(self):
        runner = ExperimentRunner(
            config=CFG,
            settings=RunnerSettings(instructions_per_core=40_000, seed=17))
        trace = runner.trace("MID1")
        baseline = runner.baseline("MID1")
        # first four cores (one app instance set) get a 3% bound,
        # the rest keep 12%
        bounds = np.full(16, 0.12)
        bounds[:4] = 0.03
        energy = EnergyModel(CFG, runner.rest_power_w("MID1"))
        policy = MemScalePolicy(CFG, energy, n_cores=16,
                                per_core_bounds=bounds)
        result = SystemSimulator(CFG, trace,
                                 MemScaleGovernor(policy)).run()
        base_cpi = baseline.core_cpi(CFG.cpu.cycle_ns)
        run_cpi = result.core_cpi(CFG.cpu.cycle_ns)
        increases = run_cpi / base_cpi - 1.0
        # tightly-bounded cores stay near their 3% limit
        assert increases[:4].max() <= 0.03 + 0.02
        # and everyone respects their own bound
        assert np.all(increases <= bounds + 0.025)
