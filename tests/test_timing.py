"""Unit tests for the DDR3 timing calculator."""

import pytest

from repro.config import DramTimings, default_config
from repro.core.frequency import FrequencyLadder
from repro.memsim.states import PowerdownMode
from repro.memsim.timing import AccessClass, TimingCalculator


@pytest.fixture(scope="module")
def calc():
    return TimingCalculator(DramTimings())


@pytest.fixture(scope="module")
def ladder():
    return FrequencyLadder(default_config())


class TestArrayLatencies:
    def test_row_hit_is_cas_only(self, calc):
        assert calc.classify_latency_ns(AccessClass.ROW_HIT) == pytest.approx(15.0)

    def test_closed_bank_miss(self, calc):
        assert calc.classify_latency_ns(
            AccessClass.CLOSED_BANK_MISS) == pytest.approx(30.0)

    def test_open_row_miss_adds_precharge(self, calc):
        assert calc.classify_latency_ns(
            AccessClass.OPEN_ROW_MISS) == pytest.approx(45.0)

    def test_ordering_hit_lt_closed_lt_open(self, calc):
        hit = calc.classify_latency_ns(AccessClass.ROW_HIT)
        closed = calc.classify_latency_ns(AccessClass.CLOSED_BANK_MISS)
        open_miss = calc.classify_latency_ns(AccessClass.OPEN_ROW_MISS)
        assert hit < closed < open_miss

    def test_needs_activate(self, calc):
        assert not calc.needs_activate(AccessClass.ROW_HIT)
        assert calc.needs_activate(AccessClass.CLOSED_BANK_MISS)
        assert calc.needs_activate(AccessClass.OPEN_ROW_MISS)


class TestPowerdownExits:
    def test_fast_exit(self, calc):
        assert calc.powerdown_exit_ns(PowerdownMode.FAST_EXIT) == 6.0

    def test_slow_exit(self, calc):
        assert calc.powerdown_exit_ns(PowerdownMode.SLOW_EXIT) == 24.0

    def test_none_mode_has_no_exit_cost(self, calc):
        assert calc.powerdown_exit_ns(PowerdownMode.NONE) == 0.0


class TestWindowsAndRefresh:
    def test_activation_windows(self, calc):
        assert calc.min_activate_gap_ns() == pytest.approx(5.0)
        assert calc.four_activate_window_ns() == pytest.approx(25.0)

    def test_row_cycle(self, calc):
        assert calc.row_cycle_ns() == pytest.approx(50.0)

    def test_refresh_times(self, calc):
        assert calc.refresh_ns() == pytest.approx(110.0)
        assert calc.refresh_interval_ns() == pytest.approx(64e6 / 8192)


class TestFrequencyDependentOperations:
    def test_array_latencies_independent_of_frequency(self, calc, ladder):
        # Device-internal timings must not change with bus frequency.
        for access in AccessClass:
            latency = calc.classify_latency_ns(access)
            assert latency == calc.classify_latency_ns(access)

    def test_burst_scales_with_frequency(self, calc, ladder):
        fast = calc.burst_ns(ladder.fastest)
        slow = calc.burst_ns(ladder.slowest)
        assert slow == pytest.approx(fast * 800.0 / 200.0)

    def test_mc_latency_scales_with_frequency(self, calc, ladder):
        fast = calc.mc_latency_ns(ladder.fastest)
        slow = calc.mc_latency_ns(ladder.slowest)
        assert slow == pytest.approx(fast * 4.0)
