"""Cross-mix integration tests: the headline claims on every workload.

These use small traces (fast) but exercise the full pipeline — trace
generation, both simulation runs, models, policy, comparison — for all
twelve Table 1 mixes and both policy variants.
"""

import pytest

from repro.config import scaled_config
from repro.cpu.workloads import MIXES, mix_names
from repro.sim.runner import ExperimentRunner, RunnerSettings

CFG = scaled_config()


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        config=CFG,
        settings=RunnerSettings(instructions_per_core=50_000, seed=21))


@pytest.mark.parametrize("mix", list(MIXES))
def test_memscale_saves_memory_energy_on_every_mix(runner, mix):
    _, cmp = runner.run_memscale(mix)
    assert cmp.memory_energy_savings > 0.03, mix


@pytest.mark.parametrize("mix", list(MIXES))
def test_cpi_bound_respected_on_every_mix(runner, mix):
    _, cmp = runner.run_memscale(mix)
    assert cmp.worst_cpi_increase <= CFG.policy.cpi_bound + 0.025, mix


@pytest.mark.parametrize("mix", mix_names("MID"))
def test_static_policy_within_bound_on_mid(runner, mix):
    cmp = runner.compare_named(mix, "Static")
    assert cmp.worst_cpi_increase <= CFG.policy.cpi_bound


@pytest.mark.parametrize("mix", ["MID1", "MID3"])
def test_memscale_beats_fast_pd(runner, mix):
    fast_pd = runner.compare_named(mix, "Fast-PD")
    _, memscale = runner.run_memscale(mix)
    assert (memscale.memory_energy_savings
            > fast_pd.memory_energy_savings)


@pytest.mark.parametrize("mix", ["MID1", "MID3"])
def test_memscale_beats_decoupled(runner, mix):
    decoupled = runner.compare_named(mix, "Decoupled")
    _, memscale = runner.run_memscale(mix)
    assert (memscale.system_energy_savings
            > decoupled.system_energy_savings)


def test_slow_pd_degrades_more_than_fast_pd(runner):
    slow = runner.compare_named("MID1", "Slow-PD")
    fast = runner.compare_named("MID1", "Fast-PD")
    assert slow.worst_cpi_increase > fast.worst_cpi_increase


def test_memenergy_saves_at_least_as_much_memory(runner):
    _, system = runner.run_memscale("MID1")
    mem_only = runner.compare_named("MID1", "MemScale(MemEnergy)")
    assert (mem_only.memory_energy_savings
            >= system.memory_energy_savings - 0.03)


def test_memory_mixes_run_at_higher_frequency_than_ilp(runner):
    ilp_result, _ = runner.run_memscale("ILP2")
    mem_result, _ = runner.run_memscale("MEM1")
    ilp_mean = sum(s.bus_mhz for s in ilp_result.timeline) / len(
        ilp_result.timeline)
    mem_mean = sum(s.bus_mhz for s in mem_result.timeline) / len(
        mem_result.timeline)
    assert mem_mean > ilp_mean
