"""Unit tests for repro.config (Table 2 parameters and validation)."""

import dataclasses

import pytest

from repro.config import (
    AVAILABLE_BUS_FREQS_MHZ,
    NS_PER_MS,
    NS_PER_US,
    ConfigError,
    CpuConfig,
    DramCurrents,
    DramTimings,
    MemoryOrgConfig,
    PolicyConfig,
    PowerConfig,
    SystemConfig,
    default_config,
    scaled_config,
)


class TestDramTimings:
    def test_table2_defaults(self):
        t = DramTimings()
        assert t.t_rcd_ns == 15.0
        assert t.t_rp_ns == 15.0
        assert t.t_cl_ns == 15.0
        assert t.t_xp_ns == 6.0
        assert t.t_xpdll_ns == 24.0
        assert t.refresh_period_ns == 64.0 * NS_PER_MS

    def test_cycle_denominated_params_converted_at_800mhz(self):
        # Table 2 gives tFAW=20, tRTP=5, tRAS=28, tRRD=4 in 800 MHz cycles.
        t = DramTimings()
        cycle = 1000.0 / 800.0
        assert t.t_faw_ns == pytest.approx(20 * cycle)
        assert t.t_rtp_ns == pytest.approx(5 * cycle)
        assert t.t_ras_ns == pytest.approx(28 * cycle)
        assert t.t_rrd_ns == pytest.approx(4 * cycle)

    def test_trc_is_ras_plus_rp(self):
        t = DramTimings()
        assert t.t_rc_ns == pytest.approx(t.t_ras_ns + t.t_rp_ns)

    def test_trefi_from_retention_window(self):
        t = DramTimings()
        assert t.t_refi_ns == pytest.approx(64.0 * NS_PER_MS / 8192)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DramTimings(), t_cl_ns=0.0).validate()

    def test_rejects_ras_below_rcd(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DramTimings(), t_ras_ns=10.0).validate()

    def test_rejects_refresh_interval_below_rfc(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DramTimings(),
                                refresh_period_ns=8192 * 50.0).validate()


class TestDramCurrents:
    def test_table2_defaults(self):
        c = DramCurrents()
        assert c.vdd == 1.575
        assert c.idd4r == 0.250
        assert c.idd0 == 0.120
        assert c.idd3n == 0.067
        assert c.idd2n == 0.070
        assert c.idd2p == 0.045
        assert c.idd5 == 0.240

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DramCurrents(), idd0=-1.0).validate()

    def test_rejects_static_fraction_out_of_range(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DramCurrents(), static_fraction=1.5).validate()

    def test_rejects_burst_current_below_standby(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DramCurrents(), idd4r=0.01).validate()


class TestMemoryOrgConfig:
    def test_table2_topology(self):
        org = MemoryOrgConfig()
        assert org.channels == 4
        assert org.total_dimms == 8
        assert org.ranks_per_channel == 4
        assert org.total_ranks == 16
        assert org.total_banks == 128

    def test_lines_per_row(self):
        org = MemoryOrgConfig()
        assert org.lines_per_row == 8192 // 64

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(MemoryOrgConfig(), channels=0).validate()

    def test_rejects_misaligned_row_size(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(MemoryOrgConfig(),
                                row_size_bytes=100).validate()


class TestCpuConfig:
    def test_defaults(self):
        cpu = CpuConfig()
        assert cpu.cores == 16
        assert cpu.freq_mhz == 4000.0
        assert cpu.cycle_ns == pytest.approx(0.25)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(CpuConfig(), cores=0).validate()
        with pytest.raises(ConfigError):
            dataclasses.replace(CpuConfig(), cpi_cpu=0.0).validate()


class TestPowerConfig:
    def test_mc_power_range(self):
        p = PowerConfig()
        assert p.mc_peak_w == 15.0
        assert p.mc_idle_w == pytest.approx(7.5)  # 50% proportionality

    def test_register_power_range(self):
        p = PowerConfig()
        assert p.register_peak_w_per_dimm == 0.5
        assert p.register_idle_w_per_dimm == pytest.approx(0.25)

    def test_proportionality_moves_idle_power(self):
        p = dataclasses.replace(PowerConfig(), proportionality_idle_frac=0.0)
        assert p.mc_idle_w == 0.0
        p = dataclasses.replace(PowerConfig(), proportionality_idle_frac=1.0)
        assert p.mc_idle_w == p.mc_peak_w

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(PowerConfig(),
                                memory_power_fraction=0.0).validate()
        with pytest.raises(ConfigError):
            dataclasses.replace(PowerConfig(),
                                proportionality_idle_frac=2.0).validate()

    def test_rejects_bad_voltage_range(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(PowerConfig(), mc_vmax=0.5).validate()


class TestPolicyConfig:
    def test_defaults(self):
        p = PolicyConfig()
        assert p.cpi_bound == 0.10
        assert p.epoch_ns == 5.0 * NS_PER_MS
        assert p.profile_ns == 300.0 * NS_PER_US

    def test_transition_penalty_at_800mhz(self):
        p = PolicyConfig()
        assert p.transition_penalty_ns(800.0) == pytest.approx(512 * 1.25 + 28)

    def test_transition_penalty_grows_at_lower_frequency(self):
        p = PolicyConfig()
        assert p.transition_penalty_ns(200.0) > p.transition_penalty_ns(800.0)

    def test_rejects_profile_longer_than_epoch(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(PolicyConfig(), profile_ns=6.0 * NS_PER_MS,
                                epoch_ns=5.0 * NS_PER_MS).validate()


class TestSystemConfig:
    def test_default_is_valid(self):
        default_config().validate()

    def test_ten_frequencies(self):
        assert len(AVAILABLE_BUS_FREQS_MHZ) == 10
        assert max(AVAILABLE_BUS_FREQS_MHZ) == 800.0
        assert min(AVAILABLE_BUS_FREQS_MHZ) == 200.0

    def test_sorted_bus_freqs_descending(self):
        cfg = default_config()
        freqs = cfg.sorted_bus_freqs()
        assert freqs == sorted(freqs, reverse=True)
        assert freqs[0] == 800.0

    def test_rejects_duplicate_frequencies(self):
        cfg = dataclasses.replace(default_config(),
                                  bus_freqs_mhz=(800.0, 800.0))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_rejects_empty_frequency_set(self):
        cfg = dataclasses.replace(default_config(), bus_freqs_mhz=())
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_with_policy_returns_new_config(self):
        cfg = default_config()
        cfg2 = cfg.with_policy(cpi_bound=0.05)
        assert cfg2.policy.cpi_bound == 0.05
        assert cfg.policy.cpi_bound == 0.10  # original untouched

    def test_with_org_and_cpu_helpers(self):
        cfg = default_config().with_org(channels=2).with_cpu(cores=32)
        assert cfg.org.channels == 2
        assert cfg.cpu.cores == 32

    def test_describe_keys(self):
        d = default_config().describe()
        for key in ("cores", "channels", "cpi_bound", "epoch_ns"):
            assert key in d


class TestScaledConfig:
    def test_scaled_epoch_lengths(self):
        cfg = scaled_config(epoch_ns=50_000.0, profile_ns=5_000.0)
        assert cfg.policy.epoch_ns == 50_000.0
        assert cfg.policy.profile_ns == 5_000.0

    def test_transition_cost_shrinks_proportionally(self):
        paper = default_config()
        scaled = scaled_config(epoch_ns=paper.policy.epoch_ns / 250)
        ratio_paper = (paper.policy.transition_penalty_ns(800.0)
                       / paper.policy.epoch_ns)
        ratio_scaled = (scaled.policy.transition_penalty_ns(800.0)
                        / scaled.policy.epoch_ns)
        assert ratio_scaled == pytest.approx(ratio_paper, rel=1e-6)

    def test_physical_parameters_unchanged(self):
        cfg = scaled_config()
        assert cfg.timings == default_config().timings
        assert cfg.currents == default_config().currents
