"""Golden-result snapshot: frozen full results of the smoke sweep.

``tests/golden/smoke_results.json`` pins the complete serialized
``RunResult`` and ``PolicyComparison`` of MID1 under MemScale and Static
(cores=4, instructions_per_core=8000, seed=2011, serial, no cache) at
the moment the snapshot was taken. Any change to simulator arithmetic —
timing, counters, power, performance, policy — shows up here as a
field-level diff, which is far more diagnostic than an end-to-end
savings drift.

The snapshot is intentionally exact (``==`` on the JSON round-trip, no
tolerances): the simulator is deterministic, so the only legitimate way
this test fails is an intentional behavior change — regenerate the
snapshot (see ``_regenerate`` below) and bump ``CACHE_FORMAT`` in the
same commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.cache import CACHE_FORMAT
from repro.sim.parallel import run_sweep
from repro.sim.runner import RunnerSettings
from repro.sim.serialize import comparison_to_dict, run_result_to_dict

GOLDEN_PATH = Path(__file__).parent / "golden" / "smoke_results.json"

SETTINGS = RunnerSettings(cores=4, instructions_per_core=8_000, seed=2011)
POLICIES = ("MemScale", "Static")


def _jsonify(data):
    """Round-trip through JSON so numpy scalars/arrays compare as the
    plain types the golden file stores."""
    return json.loads(json.dumps(data))


def _current_runs():
    outcomes = run_sweep(["MID1"], list(POLICIES), settings=SETTINGS,
                         jobs=1, cache_dir=None)
    return [
        {"mix": o.mix, "policy": o.policy,
         "result": run_result_to_dict(o.result),
         "comparison": comparison_to_dict(o.comparison)}
        for o in outcomes
    ]


def _regenerate():  # pragma: no cover - manual tool
    """Rewrite the snapshot (run via ``python -c`` after an intentional
    behavior change; bump CACHE_FORMAT in the same commit)."""
    golden = json.loads(GOLDEN_PATH.read_text())
    golden["cache_format"] = CACHE_FORMAT
    golden["runs"] = _jsonify(_current_runs())
    GOLDEN_PATH.write_text(
        json.dumps(golden, indent=1, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return _jsonify(_current_runs())


def test_snapshot_tracks_cache_format(golden):
    # The snapshot freezes simulator behavior; so does the cache format.
    # They must move together, or stale caches would survive a behavior
    # change the snapshot already acknowledges.
    assert golden["cache_format"] == CACHE_FORMAT


def test_golden_run_matrix(golden):
    pairs = [(r["mix"], r["policy"]) for r in golden["runs"]]
    assert pairs == [("MID1", p) for p in POLICIES]


def _diff(path, got, want, out):
    """Collect leaf-level differences for a readable failure message."""
    if isinstance(want, dict) and isinstance(got, dict):
        for key in sorted(set(want) | set(got)):
            _diff(f"{path}.{key}", got.get(key), want.get(key), out)
    elif isinstance(want, list) and isinstance(got, list) \
            and len(want) == len(got):
        for i, (g, w) in enumerate(zip(got, want)):
            _diff(f"{path}[{i}]", g, w, out)
    elif got != want:
        out.append(f"{path}: got {got!r}, golden {want!r}")


@pytest.mark.parametrize("index,policy", list(enumerate(POLICIES)))
def test_results_match_golden_exactly(golden, current, index, policy):
    want = golden["runs"][index]
    got = current[index]
    assert got["policy"] == want["policy"] == policy
    mismatches: list = []
    _diff("result", got["result"], want["result"], mismatches)
    _diff("comparison", got["comparison"], want["comparison"], mismatches)
    assert not mismatches, (
        f"{len(mismatches)} field(s) drifted from the golden snapshot "
        f"(regenerate it and bump CACHE_FORMAT if intentional):\n  "
        + "\n  ".join(mismatches[:20]))


def test_headline_savings(golden):
    # The paper-facing numbers the README quotes, restated here so a
    # snapshot regeneration that silently degrades them gets noticed in
    # review even if the field-level diff is rubber-stamped.
    by_policy = {r["policy"]: r["comparison"] for r in golden["runs"]}
    assert by_policy["MemScale"]["memory_energy_savings"] == \
        pytest.approx(0.301, abs=5e-4)
    assert by_policy["MemScale"]["system_energy_savings"] == \
        pytest.approx(0.123, abs=5e-4)
    assert by_policy["Static"]["memory_energy_savings"] == \
        pytest.approx(0.373, abs=5e-4)
    assert by_policy["Static"]["system_energy_savings"] == \
        pytest.approx(0.165, abs=5e-4)
