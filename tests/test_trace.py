"""Unit and property tests for the trace format."""

import json

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cpu.trace import (CoreTrace, WorkloadTrace,
                             columnar_sidecar_path)


def make_core_trace(n=10, app="swim", app_id=0, gap=100, wb_every=2):
    gaps = np.full(n, gap, dtype=np.int64)
    reads = np.arange(n, dtype=np.int64)
    wbs = np.where(np.arange(n) % wb_every == 0,
                   np.arange(n, dtype=np.int64) + 1000, -1).astype(np.int64)
    return CoreTrace(app_name=app, app_id=app_id, gaps=gaps,
                     read_addrs=reads, wb_addrs=wbs)


class TestCoreTrace:
    def test_lengths_must_match(self):
        with pytest.raises(ValueError):
            CoreTrace("x", 0, np.zeros(3, np.int64), np.zeros(2, np.int64),
                      np.zeros(3, np.int64))

    def test_negative_gaps_rejected(self):
        with pytest.raises(ValueError):
            CoreTrace("x", 0, np.array([-1], np.int64),
                      np.zeros(1, np.int64), np.full(1, -1, np.int64))

    def test_totals(self):
        t = make_core_trace(n=10, gap=100, wb_every=2)
        assert t.total_instructions == 1000
        assert t.total_reads == 10
        assert t.total_writebacks == 5
        assert len(t) == 10

    def test_rpki_wpki(self):
        t = make_core_trace(n=10, gap=100, wb_every=2)
        assert t.rpki == pytest.approx(10.0)
        assert t.wpki == pytest.approx(5.0)

    def test_rpki_zero_instructions(self):
        t = CoreTrace("x", 0, np.zeros(1, np.int64), np.zeros(1, np.int64),
                      np.full(1, -1, np.int64))
        assert t.rpki == 0.0


class TestWorkloadTrace:
    def test_app_names_unique_ordered(self):
        wt = WorkloadTrace("mix", [
            make_core_trace(app="a", app_id=0),
            make_core_trace(app="b", app_id=1),
            make_core_trace(app="a", app_id=0),
        ])
        assert wt.app_names == ["a", "b"]

    def test_cores_of_app(self):
        wt = WorkloadTrace("mix", [
            make_core_trace(app="a"), make_core_trace(app="b"),
            make_core_trace(app="a"),
        ])
        assert wt.cores_of_app("a") == [0, 2]
        assert wt.cores_of_app("missing") == []

    def test_aggregate_rpki(self):
        wt = WorkloadTrace("mix", [make_core_trace(n=10, gap=100),
                                   make_core_trace(n=10, gap=300)])
        # 20 reads / 4000 instructions
        assert wt.rpki == pytest.approx(5.0)

    def test_save_load_roundtrip(self, tmp_path):
        wt = WorkloadTrace("MID1", [make_core_trace(app="ammp", app_id=0),
                                    make_core_trace(app="gap", app_id=1)])
        path = tmp_path / "trace.npz"
        wt.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded.name == "MID1"
        assert len(loaded) == 2
        assert loaded.cores[0].app_name == "ammp"
        assert loaded.cores[1].app_id == 1
        for orig, new in zip(wt.cores, loaded.cores):
            np.testing.assert_array_equal(orig.gaps, new.gaps)
            np.testing.assert_array_equal(orig.read_addrs, new.read_addrs)
            np.testing.assert_array_equal(orig.wb_addrs, new.wb_addrs)


class TestColumnarFormat:
    """The mmap-able flat layout the experiment cache stores."""

    def make_mix(self):
        return WorkloadTrace("MID1", [
            make_core_trace(n=10, app="ammp", app_id=0),
            make_core_trace(n=7, app="gap", app_id=1, gap=50),
        ])

    def test_roundtrip(self, tmp_path):
        wt = self.make_mix()
        path = tmp_path / "trace.npy"
        wt.save_columnar(path)
        loaded = WorkloadTrace.load_columnar(path)
        assert loaded.name == "MID1"
        assert [c.app_name for c in loaded.cores] == ["ammp", "gap"]
        assert [c.app_id for c in loaded.cores] == [0, 1]
        for orig, new in zip(wt.cores, loaded.cores):
            np.testing.assert_array_equal(orig.gaps, new.gaps)
            np.testing.assert_array_equal(orig.read_addrs, new.read_addrs)
            np.testing.assert_array_equal(orig.wb_addrs, new.wb_addrs)

    def test_sidecar_written_next_to_data(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        assert path.exists()
        assert columnar_sidecar_path(path).exists()

    def test_mmap_load_returns_readonly_views(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        loaded = WorkloadTrace.load_columnar(path, mmap=True)
        core = loaded.cores[0]
        assert isinstance(core.gaps, np.memmap) or \
            isinstance(core.gaps.base, np.memmap)
        with pytest.raises(ValueError):
            core.gaps[0] = 1  # the shared map must be read-only

    def test_non_mmap_load(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        loaded = WorkloadTrace.load_columnar(path, mmap=False)
        assert not isinstance(loaded.cores[0].gaps.base, np.memmap)
        np.testing.assert_array_equal(loaded.cores[0].gaps,
                                      self.make_mix().cores[0].gaps)

    def test_missing_data_half_names_the_orphan(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        path.unlink()
        with pytest.raises(FileNotFoundError) as exc:
            WorkloadTrace.load_columnar(path)
        message = str(exc.value)
        assert f"data file {path}" in message
        assert "sidecar" not in message.split("missing ")[1].split(";")[0]
        assert "repro cache --prune" in message

    def test_missing_sidecar_half_names_the_orphan(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        columnar_sidecar_path(path).unlink()
        with pytest.raises(FileNotFoundError) as exc:
            WorkloadTrace.load_columnar(path)
        message = str(exc.value)
        assert f"sidecar {columnar_sidecar_path(path)}" in message
        assert "repro cache --prune" in message

    def test_both_halves_missing_names_both(self, tmp_path):
        path = tmp_path / "absent.npy"
        with pytest.raises(FileNotFoundError, match="data file .* and "
                                                    "sidecar"):
            WorkloadTrace.load_columnar(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        sidecar = columnar_sidecar_path(path)
        meta = json.loads(sidecar.read_text())
        meta["version"] = 99
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            WorkloadTrace.load_columnar(path)

    def test_out_of_range_sidecar_rejected(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        sidecar = columnar_sidecar_path(path)
        meta = json.loads(sidecar.read_text())
        meta["cores"][-1]["count"] += 1
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            WorkloadTrace.load_columnar(path)

    def test_bad_shape_rejected(self, tmp_path):
        path = tmp_path / "trace.npy"
        self.make_mix().save_columnar(path)
        np.save(str(path), np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            WorkloadTrace.load_columnar(path)


class TestRoundtripProperty:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=10_000),   # gap
        st.integers(min_value=0, max_value=2**40),    # read addr
        st.integers(min_value=-1, max_value=2**40),   # wb addr
    ), min_size=1, max_size=50))
    def test_stats_invariants(self, records):
        gaps = np.array([r[0] for r in records], dtype=np.int64)
        reads = np.array([r[1] for r in records], dtype=np.int64)
        wbs = np.array([r[2] for r in records], dtype=np.int64)
        t = CoreTrace("x", 0, gaps, reads, wbs)
        assert t.total_reads == len(records)
        assert 0 <= t.total_writebacks <= t.total_reads
        if t.total_instructions > 0:
            assert t.wpki <= t.rpki
