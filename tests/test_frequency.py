"""Unit tests for the frequency ladder and operating points."""

import pytest
from hypothesis import given, strategies as st

from repro.config import default_config
from repro.core.frequency import (
    BURST_BUS_CYCLES,
    MC_PROCESSING_CYCLES,
    FrequencyLadder,
    FrequencyPoint,
)


@pytest.fixture(scope="module")
def ladder():
    return FrequencyLadder(default_config())


class TestFrequencyPoint:
    def test_mc_runs_at_double_bus_frequency(self, ladder):
        for point in ladder:
            assert point.mc_mhz == pytest.approx(2.0 * point.bus_mhz)

    def test_cycle_times(self, ladder):
        fastest = ladder.fastest
        assert fastest.bus_cycle_ns == pytest.approx(1.25)
        assert fastest.mc_cycle_ns == pytest.approx(0.625)

    def test_burst_is_four_bus_cycles(self, ladder):
        for point in ladder:
            assert point.burst_ns == pytest.approx(
                BURST_BUS_CYCLES * 1000.0 / point.bus_mhz)

    def test_mc_latency_is_five_mc_cycles(self, ladder):
        for point in ladder:
            assert point.mc_latency_ns == pytest.approx(
                MC_PROCESSING_CYCLES * 1000.0 / point.mc_mhz)

    def test_relative_speed(self, ladder):
        slow = ladder.slowest
        fast = ladder.fastest
        assert slow.relative_speed(fast) == pytest.approx(200.0 / 800.0)
        assert fast.relative_speed(fast) == pytest.approx(1.0)


class TestFrequencyLadder:
    def test_length_and_ordering(self, ladder):
        assert len(ladder) == 10
        freqs = [p.bus_mhz for p in ladder]
        assert freqs == sorted(freqs, reverse=True)

    def test_fastest_slowest(self, ladder):
        assert ladder.fastest.bus_mhz == 800.0
        assert ladder.slowest.bus_mhz == 200.0

    def test_indices_match_positions(self, ladder):
        for i, point in enumerate(ladder):
            assert point.index == i
            assert ladder[i] is point

    def test_voltage_interpolation_endpoints(self, ladder):
        cfg = default_config()
        assert ladder.fastest.mc_voltage == pytest.approx(cfg.power.mc_vmax)
        assert ladder.slowest.mc_voltage == pytest.approx(cfg.power.mc_vmin)

    def test_voltage_monotone_with_frequency(self, ladder):
        volts = [p.mc_voltage for p in ladder]
        assert volts == sorted(volts, reverse=True)

    def test_at_bus_mhz_exact_lookup(self, ladder):
        assert ladder.at_bus_mhz(467.0).bus_mhz == 467.0

    def test_at_bus_mhz_unknown_raises(self, ladder):
        with pytest.raises(ValueError, match="not an available"):
            ladder.at_bus_mhz(450.0)

    def test_nearest(self, ladder):
        assert ladder.nearest(460.0).bus_mhz == 467.0
        assert ladder.nearest(1000.0).bus_mhz == 800.0
        assert ladder.nearest(0.0).bus_mhz == 200.0

    def test_neighbours_interior(self, ladder):
        point = ladder.at_bus_mhz(467.0)
        neighbour_freqs = {p.bus_mhz for p in ladder.neighbours(point)}
        assert neighbour_freqs == {533.0, 400.0}

    def test_neighbours_at_ends(self, ladder):
        assert [p.bus_mhz for p in ladder.neighbours(ladder.fastest)] == [733.0]
        assert [p.bus_mhz for p in ladder.neighbours(ladder.slowest)] == [267.0]

    def test_single_frequency_ladder(self):
        cfg = default_config().replace(bus_freqs_mhz=(800.0,))
        single = FrequencyLadder(cfg)
        assert len(single) == 1
        assert single.fastest is single.slowest
        # With one MC frequency, voltage pins to the maximum.
        assert single.fastest.mc_voltage == pytest.approx(cfg.power.mc_vmax)


class TestScalingProperties:
    @given(st.sampled_from([800.0, 733.0, 667.0, 600.0, 533.0,
                            467.0, 400.0, 333.0, 267.0, 200.0]))
    def test_burst_time_inverse_in_frequency(self, bus_mhz):
        ladder = FrequencyLadder(default_config())
        point = ladder.at_bus_mhz(bus_mhz)
        assert point.burst_ns * point.bus_mhz == pytest.approx(
            BURST_BUS_CYCLES * 1000.0)

    def test_burst_monotone_decreasing_with_frequency(self):
        ladder = FrequencyLadder(default_config())
        bursts = [p.burst_ns for p in ladder]
        assert bursts == sorted(bursts)  # ascending as frequency descends
