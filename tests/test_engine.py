"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.memsim.engine import EventEngine, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert EventEngine().now == 0.0

    def test_custom_start_time(self):
        assert EventEngine(start_time_ns=42.0).now == 42.0

    def test_schedule_and_step(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(engine.now))
        assert engine.step() is True
        assert fired == [5.0]
        assert engine.now == 5.0

    def test_step_empty_returns_false(self):
        assert EventEngine().step() is False

    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(10.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.schedule(5.0, lambda: order.append("middle"))
        engine.run()
        assert order == ["early", "middle", "late"]

    def test_ties_fire_in_scheduling_order(self):
        engine = EventEngine()
        order = []
        for i in range(5):
            engine.schedule(3.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_in_past_raises(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda: None)
        engine.step()
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            EventEngine().schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        engine = EventEngine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(2.0, lambda: fired.append(("inner", engine.now)))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_pending_excludes_cancelled(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.pending == 1


class TestCancelledHead:
    """Regression: a cancelled head event with an otherwise-empty queue
    must behave exactly like an empty queue in every engine entry point
    (lazy deletion, see ``EventEngine._drop_cancelled``)."""

    def make_engine_with_cancelled_only_event(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(5.0, lambda: fired.append(5))
        handle.cancel()
        return engine, fired

    def test_peek_time_reports_empty(self):
        engine, _ = self.make_engine_with_cancelled_only_event()
        assert engine.peek_time() is None

    def test_step_reports_no_events_and_keeps_clock(self):
        engine, fired = self.make_engine_with_cancelled_only_event()
        assert engine.step() is False
        assert engine.now == 0.0
        assert fired == []
        assert engine.events_processed == 0

    def test_run_until_still_advances_clock(self):
        engine, fired = self.make_engine_with_cancelled_only_event()
        engine.run_until(100.0)
        assert engine.now == 100.0
        assert fired == []

    def test_run_drains_without_firing(self):
        engine, fired = self.make_engine_with_cancelled_only_event()
        engine.run()
        assert fired == []
        assert engine.pending == 0

    def test_pending_is_zero(self):
        engine, _ = self.make_engine_with_cancelled_only_event()
        assert engine.pending == 0

    def test_cancel_head_beyond_cutoff_then_run_until(self):
        # The cancelled head lies beyond the cutoff: run_until must not
        # fire it, and must leave the clock at the cutoff.
        engine = EventEngine()
        fired = []
        handle = engine.schedule(50.0, lambda: fired.append(50))
        handle.cancel()
        engine.run_until(10.0)
        assert engine.now == 10.0
        assert fired == []

    def test_callback_cancels_same_time_successor(self):
        # An event cancelling its same-timestamp successor leaves the
        # queue with a cancelled head; the engine must then be empty.
        engine = EventEngine()
        fired = []
        later = engine.schedule(5.0, lambda: fired.append("later"))
        engine.schedule_at(0.0, later.cancel)
        engine.schedule_at(5.0, lambda: fired.append("first"))
        engine.run()
        assert fired == ["first"]
        assert engine.peek_time() is None

    def test_scheduling_after_cancelled_only_queue(self):
        engine, fired = self.make_engine_with_cancelled_only_event()
        assert engine.peek_time() is None
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [2]


class TestRunUntil:
    def test_advances_clock_even_when_queue_empty(self):
        engine = EventEngine()
        engine.run_until(100.0)
        assert engine.now == 100.0

    def test_runs_events_up_to_and_including_boundary(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(5))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.schedule(10.5, lambda: fired.append(10.5))
        engine.run_until(10.0)
        assert fired == [5, 10]
        assert engine.now == 10.0
        engine.run_until(11.0)
        assert fired == [5, 10, 10.5]

    def test_backwards_raises(self):
        engine = EventEngine()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_peek_time(self):
        engine = EventEngine()
        assert engine.peek_time() is None
        engine.schedule(7.0, lambda: None)
        assert engine.peek_time() == 7.0


class TestRun:
    def test_max_events_limit(self):
        engine = EventEngine()
        fired = []

        def recur():
            fired.append(engine.now)
            engine.schedule(1.0, recur)

        engine.schedule(0.0, recur)
        engine.run(max_events=10)
        assert len(fired) == 10

    def test_events_processed_counter(self):
        engine = EventEngine()
        for i in range(4):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.events_processed == 4


class TestTombstoneCompaction:
    """Cancelled entries must not accumulate: once tombstones outnumber
    live entries (and the queue is past the minimum size), the heap is
    compacted in place and physically shrinks."""

    def test_queue_shrinks_when_tombstones_dominate(self):
        engine = EventEngine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(20)]
        assert len(engine._queue) == 20
        for handle in handles[:11]:  # 11 * 2 > 20 triggers compaction
            handle.cancel()
        assert len(engine._queue) == 9
        assert engine.pending == 9

    def test_small_queues_are_never_compacted(self):
        engine = EventEngine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(4)]
        for handle in handles:
            handle.cancel()
        # below _COMPACT_MIN: lazy deletion only, no compaction pass
        assert len(engine._queue) == 4
        assert engine.pending == 0

    def test_surviving_events_fire_in_order_after_compaction(self):
        engine = EventEngine()
        fired = []
        keep = []
        for i in range(24):
            handle = engine.schedule(float(i + 1),
                                     lambda i=i: fired.append(i))
            if i % 2:
                keep.append(i)
            else:
                handle.cancel()
        assert len(engine._queue) < 24
        engine.run()
        assert fired == keep

    def test_compaction_preserves_queue_identity_mid_run(self):
        # run_until holds a local reference to the queue list; a callback
        # that triggers compaction must not swap the list out from under
        # it. 16 pending cancels from inside the first event crosses the
        # threshold mid-loop.
        engine = EventEngine()
        fired = []
        doomed = [engine.schedule(50.0 + i, lambda: fired.append("doomed"))
                  for i in range(16)]

        def cancel_all():
            for handle in doomed:
                handle.cancel()

        engine.schedule(1.0, cancel_all)
        engine.schedule(2.0, lambda: fired.append("after"))
        engine.run_until(100.0)
        assert fired == ["after"]

    def test_cancel_via_raw_entry_tombstone(self):
        engine = EventEngine()
        fired = []
        entry = engine.post_housekeeping(5.0, lambda: fired.append(1))
        engine.tombstone(entry)
        engine.tombstone(entry)  # idempotent
        engine.run()
        assert fired == []


class TestHousekeeping:
    def test_housekeeping_events_fire_like_normal_ones(self):
        engine = EventEngine()
        fired = []
        engine.post_housekeeping(2.0, lambda: fired.append("hk"))
        engine.post(1.0, lambda: fired.append("workload"))
        engine.run()
        assert fired == ["workload", "hk"]

    def test_workload_horizon_ignores_housekeeping_and_tombstones(self):
        engine = EventEngine()
        engine.post_housekeeping(5.0, lambda: None)
        dead = engine.schedule(7.0, lambda: None)
        dead.cancel()
        engine.post_at(9.0, lambda: None)
        assert engine.workload_horizon(100.0) == 9.0

    def test_workload_horizon_caps_at_bound(self):
        engine = EventEngine()
        engine.post_at(50.0, lambda: None)
        assert engine.workload_horizon(20.0) == 20.0

    def test_workload_horizon_cache_sees_new_posts(self):
        engine = EventEngine()
        engine.post_at(50.0, lambda: None)
        assert engine.workload_horizon(100.0) == 50.0  # primes the cache
        engine.post_at(30.0, lambda: None)
        assert engine.workload_horizon(100.0) == 30.0

    def test_workload_horizon_cache_advances_past_dispatch(self):
        engine = EventEngine()
        engine.post_at(10.0, lambda: None)
        engine.post_at(40.0, lambda: None)
        assert engine.workload_horizon(100.0) == 10.0
        engine.run_until(20.0)  # dispatches the 10 ns event
        assert engine.workload_horizon(100.0) == 40.0

    def test_reserved_seq_matches_normal_allocation(self):
        engine = EventEngine()
        a = engine.reserve_seq()
        b = engine.reserve_seq()
        assert b == a + 1
        event = engine.schedule(1.0, lambda: None)
        assert event.seq == b + 1

    def test_reserve_seq_block_matches_serial_reservation(self):
        engine = EventEngine()
        base = engine.reserve_seq_block(2)
        # the block covers base+1 .. base+2, like two reserve_seq calls
        assert engine.reserve_seq() == base + 3

    def test_push_reserved_orders_by_reserved_seq(self):
        # Two entries at the same timestamp: the one carrying the earlier
        # reserved seq must fire first, regardless of push order.
        engine = EventEngine()
        fired = []
        first = engine.reserve_seq()
        second = engine.reserve_seq()
        engine.push_reserved(3.0, second, lambda: fired.append("second"))
        engine.push_reserved(3.0, first, lambda: fired.append("first"))
        engine.run()
        assert fired == ["first", "second"]


class TestFastForwardDelegate:
    def test_delegate_only_sees_housekeeping_heads(self):
        engine = EventEngine()
        seen = []

        def delegate(head, bound_ns):
            seen.append((head[0], bound_ns))
            return False  # decline: normal execution proceeds

        engine.set_fast_forward(delegate)
        engine.post(1.0, lambda: None)
        engine.post_housekeeping(2.0, lambda: None)
        engine.run_until(10.0)
        assert seen == [(2.0, 10.0)]
        assert engine.events_processed == 2

    def test_delegate_absorbing_the_head_skips_dispatch(self):
        engine = EventEngine()
        fired = []
        engine.post_housekeeping(2.0, lambda: fired.append("hk"))

        def delegate(head, bound_ns):
            engine.pop_absorbed_head()
            engine.count_fast_forwarded(1)
            return True

        engine.set_fast_forward(delegate)
        engine.run_until(10.0)
        assert fired == []
        assert engine.events_processed == 0
        assert engine.events_fast_forwarded == 1
        assert engine.now == 10.0

    def test_delegate_may_absorb_via_tombstone(self):
        engine = EventEngine()
        fired = []
        entry = engine.post_housekeeping(2.0, lambda: fired.append("hk"))

        def delegate(head, bound_ns):
            engine.tombstone(entry)
            engine.count_fast_forwarded(1)
            return True

        engine.set_fast_forward(delegate)
        engine.run_until(10.0)
        assert fired == []
        assert engine.events_processed == 0
        assert engine.events_fast_forwarded == 1
        assert engine.now == 10.0

    def test_counts_are_disjoint(self):
        engine = EventEngine()
        engine.post(1.0, lambda: None)
        engine.run_until(5.0)
        engine.count_fast_forwarded(7)
        assert engine.events_processed == 1
        assert engine.events_fast_forwarded == 7


class TestOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_fire_times_are_sorted(self, delays):
        engine = EventEngine()
        fire_times = []
        for d in delays:
            engine.schedule(d, lambda: fire_times.append(engine.now))
        engine.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_run_until_partitions_events(self, delays, cutoff):
        engine = EventEngine()
        fired = []
        for d in delays:
            engine.schedule(d, lambda d=d: fired.append(d))
        engine.run_until(cutoff)
        assert all(d <= cutoff for d in fired)
        assert sorted(fired) == sorted(d for d in delays if d <= cutoff)
