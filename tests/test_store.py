"""Tests for the sharded content-addressed result store (sim/store.py):
outcome round-trips, record schemas, query filters, and the
deterministic digest the crash-resume checks compare."""

import copy
import json

import pytest

from repro.sim.parallel import (CapOutcome, JobFailure, MultiDomainOutcome,
                                SweepJob, run_sweep)
from repro.sim.runner import RunnerSettings
from repro.sim.serialize import run_result_to_dict
from repro.sim.store import (STORE_FORMAT, ResultStore, deterministic_digest,
                             failure_record, ok_record, outcome_from_dict,
                             outcome_to_dict)

SETTINGS = RunnerSettings(cores=4, instructions_per_core=4_000, seed=7)


@pytest.fixture(scope="module")
def sweep_outcome():
    """One real SweepOutcome (module-scoped: simulate once)."""
    return run_sweep(["MID1"], ["Static"], settings=SETTINGS, jobs=1,
                     cache_dir=None)[0]


def _cap_outcome(base):
    return CapOutcome(
        mix=base.mix, budget_fraction=0.8, budget_w=10.5,
        governor="Cap-gov", result=base.result, comparison=base.comparison,
        min_perf=0.93, avg_power_w=9.8,
        cap={"violation_count": 0, "epochs_accounted": 4},
        wall_s=base.wall_s, cache_hits=1, telemetry_path=None)


def _md_outcome(base):
    return MultiDomainOutcome(
        mix=base.mix, budget_fraction=0.7, budget_w=40.0,
        governor="MultiDomain-gov", coordinated=True,
        result=base.result, comparison=base.comparison,
        min_perf=0.91, avg_power_w=30.0, avg_core_power_w=20.0,
        core_energy_j=1.5, system_energy_j=4.0,
        summary={"epochs_decided": 4}, wall_s=base.wall_s)


def _job(label="MID1/Static"):
    mix, policy = label.split("/")
    return {"kind": "policy", "mix": mix, "policy": policy,
            "budget_fraction": None, "coordinated": None, "label": label}


def _failure():
    return JobFailure(job=SweepJob("MID1", "Static"), label="MID1/Static",
                      error_type="ValueError", message="boom",
                      traceback="Traceback ...", attempts=2, wall_s=0.1)


class TestOutcomeRoundTrip:
    def test_sweep_outcome(self, sweep_outcome):
        back = outcome_from_dict(outcome_to_dict(sweep_outcome))
        assert isinstance(back, type(sweep_outcome))
        assert (back.mix, back.policy) == (sweep_outcome.mix,
                                           sweep_outcome.policy)
        assert run_result_to_dict(back.result) \
            == run_result_to_dict(sweep_outcome.result)
        assert back.comparison.system_energy_savings \
            == sweep_outcome.comparison.system_energy_savings

    def test_cap_outcome(self, sweep_outcome):
        outcome = _cap_outcome(sweep_outcome)
        back = outcome_from_dict(outcome_to_dict(outcome))
        assert isinstance(back, CapOutcome)
        assert back.budget_fraction == 0.8
        assert back.cap == outcome.cap
        assert back.min_perf == outcome.min_perf

    def test_multidomain_outcome(self, sweep_outcome):
        outcome = _md_outcome(sweep_outcome)
        back = outcome_from_dict(outcome_to_dict(outcome))
        assert isinstance(back, MultiDomainOutcome)
        assert back.coordinated is True
        assert back.system_energy_j == outcome.system_energy_j
        assert back.summary == outcome.summary

    def test_rejects_unknown_payloads(self, sweep_outcome):
        with pytest.raises(TypeError):
            outcome_to_dict("not an outcome")
        bad = outcome_to_dict(sweep_outcome)
        bad["kind"] = "mystery"
        with pytest.raises(ValueError, match="mystery"):
            outcome_from_dict(bad)

    def test_round_trip_is_json_stable(self, sweep_outcome):
        """Serializing a deserialized outcome reproduces the bytes —
        the property store identity checks rely on."""
        first = outcome_to_dict(sweep_outcome)
        second = outcome_to_dict(outcome_from_dict(first))
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(second, sort_keys=True)


class TestRecords:
    def test_ok_record_schema(self, sweep_outcome):
        record = ok_record("ab" * 32, _job(), sweep_outcome, "cfg", "set")
        assert record["format"] == STORE_FORMAT
        assert record["status"] == "ok"
        assert record["job"]["label"] == "MID1/Static"
        assert record["outcome"]["kind"] == "policy"
        assert "error" not in record

    def test_failure_record_schema(self):
        record = failure_record("cd" * 32, _job(), _failure(), "cfg", "set")
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert record["error"]["error_type"] == "ValueError"
        assert "boom" in record["error"]["message"]
        assert "outcome" not in record


class TestDeterministicDigest:
    def test_ignores_volatile_fields(self, sweep_outcome):
        record = ok_record("ab" * 32, _job(), sweep_outcome, "cfg", "set")
        other = copy.deepcopy(record)
        other["attempts"] = 5
        other["wall_s"] = 99.0
        other["outcome"]["wall_s"] = 99.0
        other["outcome"]["cache_hits"] = 42
        other["outcome"]["telemetry_path"] = "/elsewhere.jsonl"
        assert deterministic_digest(record) == deterministic_digest(other)

    def test_sensitive_to_result_content(self, sweep_outcome):
        record = ok_record("ab" * 32, _job(), sweep_outcome, "cfg", "set")
        other = copy.deepcopy(record)
        other["outcome"]["result"]["wall_time_ns"] += 1
        assert deterministic_digest(record) != deterministic_digest(other)

    def test_failure_digest_ignores_traceback(self):
        a = failure_record("cd" * 32, _job(), _failure(), "cfg", "set")
        b = copy.deepcopy(a)
        b["error"]["traceback"] = "different addresses 0xdeadbeef"
        b["error"]["message"] = "boom (retry 3)"
        assert deterministic_digest(a) == deterministic_digest(b)


class TestResultStore:
    def test_put_get_round_trip_and_sharding(self, tmp_path, sweep_outcome):
        store = ResultStore(tmp_path / "s")
        key = "ab" + "0" * 62
        record = ok_record(key, _job(), sweep_outcome, "cfg", "set")
        path = store.put(record)
        assert path.parent.name == "ab"  # two-hex-char shard
        assert store.get(key)["status"] == "ok"
        assert store.status(key) == "ok"

    def test_missing_and_corrupt_records_read_as_none(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.get("ee" + "0" * 62) is None
        key = "ff" + "0" * 62
        path = store.path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{ truncated")
        assert store.get(key) is None
        path.write_text(json.dumps({"format": 999, "key": key}))
        assert store.get(key) is None  # unknown format
        assert store.status(key) is None

    def test_put_requires_a_key(self, tmp_path):
        with pytest.raises(ValueError, match="key"):
            ResultStore(tmp_path / "s").put({"status": "ok"})

    def test_query_filters(self, tmp_path, sweep_outcome):
        store = ResultStore(tmp_path / "s")
        store.put(ok_record("aa" + "0" * 62, _job("MID1/Static"),
                            sweep_outcome, "cfg", "set"))
        store.put(failure_record("bb" + "0" * 62, _job("MID2/MemScale"),
                                 _failure(), "cfg", "set"))
        assert len(store.query()) == 2
        assert len(store.query(mix="MID1")) == 1
        assert len(store.query(policy="MemScale")) == 1
        assert len(store.query(status="failed")) == 1
        assert len(store.query(kind="policy")) == 2
        assert store.query(mix="MID1", status="failed") == []

    def test_query_matches_point_labels(self, tmp_path, sweep_outcome):
        store = ResultStore(tmp_path / "s")
        job = {"kind": "cap", "mix": "MID1", "policy": None,
               "budget_fraction": 0.8, "coordinated": None,
               "label": "MID1/Cap0.80"}
        store.put(ok_record("cc" + "0" * 62, job,
                            _cap_outcome(sweep_outcome), "cfg", "set"))
        assert len(store.query(policy="Cap0.80")) == 1
        assert store.query(policy="Cap0.90") == []

    def test_counts_and_digests(self, tmp_path, sweep_outcome):
        store = ResultStore(tmp_path / "s")
        assert store.counts() == {"total": 0, "ok": 0, "failed": 0}
        store.put(ok_record("aa" + "0" * 62, _job(), sweep_outcome,
                            "cfg", "set"))
        store.put(failure_record("bb" + "0" * 62, _job("MID2/MemScale"),
                                 _failure(), "cfg", "set"))
        assert store.counts() == {"total": 2, "ok": 1, "failed": 1}
        digests = store.digests()
        assert set(digests) == {"aa" + "0" * 62, "bb" + "0" * 62}

    def test_records_skips_unreadable_files(self, tmp_path, sweep_outcome):
        store = ResultStore(tmp_path / "s")
        store.put(ok_record("aa" + "0" * 62, _job(), sweep_outcome,
                            "cfg", "set"))
        junk = store.root / "zz"
        junk.mkdir(parents=True)
        (junk / ("zz" + "0" * 62 + ".json")).write_text("not json")
        assert len(list(store.records())) == 1
