"""Tests for row-buffer management policies (closed vs open page)."""

import dataclasses

import pytest

from repro.config import ConfigError, MemoryOrgConfig, scaled_config
from repro.memsim.address import MemoryLocation
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest, RequestKind

CLOSED = scaled_config()
OPEN = CLOSED.with_org(row_policy="open")


def make_controller(config):
    engine = EventEngine()
    mc = MemoryController(engine, config, refresh_enabled=False, n_cores=2)
    return engine, mc


def read(mc, row, column=0, done=None):
    request = MemRequest(
        RequestKind.READ,
        MemoryLocation(channel=0, rank=0, bank=0, row=row, column=column),
        on_complete=(lambda r: done.append(r)) if done is not None else None)
    mc.submit(request)
    return request


class TestConfig:
    def test_default_is_closed(self):
        assert MemoryOrgConfig().row_policy == "closed"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(MemoryOrgConfig(),
                                row_policy="adaptive").validate()


class TestOpenPage:
    def test_later_same_row_access_hits(self):
        engine, mc = make_controller(OPEN)
        read(mc, row=5, column=0)
        engine.run()
        read(mc, row=5, column=1)
        engine.run()
        # under open-page the row stayed open across the idle gap
        assert mc.counters.rbhc == 1
        assert mc.counters.cbmc == 1

    def test_conflicting_row_pays_open_miss(self):
        engine, mc = make_controller(OPEN)
        read(mc, row=5)
        engine.run()
        read(mc, row=9)
        engine.run()
        assert mc.counters.obmc == 1

    def test_open_row_miss_is_slowest(self):
        engine, mc = make_controller(OPEN)
        first = read(mc, row=5)
        engine.run()
        conflict = read(mc, row=9)
        engine.run()
        assert (conflict.complete_ns - conflict.arrive_bank_ns
                > first.complete_ns - first.arrive_bank_ns)


class TestClosedPage:
    def test_later_same_row_access_misses(self):
        engine, mc = make_controller(CLOSED)
        read(mc, row=5, column=0)
        engine.run()
        read(mc, row=5, column=1)
        engine.run()
        assert mc.counters.rbhc == 0
        assert mc.counters.cbmc == 2

    def test_no_open_row_misses_without_queued_conflicts(self):
        engine, mc = make_controller(CLOSED)
        for row in (1, 2, 3):
            read(mc, row=row)
            engine.run()
        assert mc.counters.obmc == 0


class TestPolicyComparison:
    def test_open_page_wins_for_row_local_streams(self):
        """A single-threaded row-sequential stream favours open page."""
        latencies = {}
        for name, config in (("closed", CLOSED), ("open", OPEN)):
            engine, mc = make_controller(config)
            done = []
            total = 0.0
            for column in range(8):
                request = read(mc, row=3, column=column, done=done)
                engine.run()
                total += request.total_latency_ns
            latencies[name] = total
        assert latencies["open"] < latencies["closed"]
