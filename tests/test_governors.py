"""Tests for governors: baselines and the MemScale governor wiring."""

import pytest

from repro.config import scaled_config
from repro.core.baselines import (
    DECOUPLED_DEVICE_MHZ,
    STATIC_BASELINE_BUS_MHZ,
    BaselineGovernor,
    DecoupledDimmGovernor,
    StaticFrequencyGovernor,
)
from repro.core.energy_model import EnergyModel
from repro.core.governor import MemScaleGovernor
from repro.core.policy import MemScalePolicy
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from repro.memsim.states import PowerdownMode
from tests.conftest import make_delta

CFG = scaled_config()


def make_controller(governor):
    engine = EventEngine()
    mc = MemoryController(engine, CFG,
                          powerdown_mode=governor.powerdown_mode,
                          refresh_enabled=False, n_cores=4)
    governor.setup(mc)
    return engine, mc


class TestBaselineGovernor:
    def test_names(self):
        assert BaselineGovernor().name == "Baseline"
        assert BaselineGovernor(PowerdownMode.FAST_EXIT).name == "Fast-PD"
        assert BaselineGovernor(PowerdownMode.SLOW_EXIT).name == "Slow-PD"

    def test_powerdown_modes(self):
        assert BaselineGovernor().powerdown_mode is PowerdownMode.NONE
        assert (BaselineGovernor(PowerdownMode.FAST_EXIT).powerdown_mode
                is PowerdownMode.FAST_EXIT)

    def test_setup_leaves_max_frequency(self):
        engine, mc = make_controller(BaselineGovernor())
        assert mc.freq.bus_mhz == 800.0
        assert mc.frozen_until_ns == 0.0

    def test_profile_hook_is_noop(self):
        gov = BaselineGovernor()
        engine, mc = make_controller(gov)
        gov.on_profile_end(make_delta(CFG), mc, 1000.0)
        assert mc.freq.bus_mhz == 800.0


class TestStaticGovernor:
    def test_default_static_frequency(self):
        gov = StaticFrequencyGovernor()
        assert gov.bus_mhz == STATIC_BASELINE_BUS_MHZ
        engine, mc = make_controller(gov)
        assert mc.freq.bus_mhz == 467.0

    def test_no_boot_transition_penalty(self):
        engine, mc = make_controller(StaticFrequencyGovernor())
        assert mc.frozen_until_ns == 0.0

    def test_custom_frequency(self):
        engine, mc = make_controller(StaticFrequencyGovernor(333.0))
        assert mc.freq.bus_mhz == 333.0

    def test_invalid_frequency_raises_at_setup(self):
        gov = StaticFrequencyGovernor(123.0)
        with pytest.raises(ValueError):
            make_controller(gov)


class TestDecoupledGovernor:
    def test_device_latency_installed(self):
        gov = DecoupledDimmGovernor()
        engine, mc = make_controller(gov)
        # 4-cycle burst at 400 vs 800 MHz: 10 - 5 = 5 ns extra
        assert mc.device_extra_latency_ns == pytest.approx(5.0)
        assert mc.freq.bus_mhz == 800.0

    def test_device_clock_reported_for_power_model(self):
        gov = DecoupledDimmGovernor()
        engine, mc = make_controller(gov)
        assert gov.device_bus_mhz(mc) == DECOUPLED_DEVICE_MHZ

    def test_rejects_device_faster_than_channel(self):
        gov = DecoupledDimmGovernor(device_mhz=1600.0)
        with pytest.raises(ValueError):
            make_controller(gov)

    def test_rejects_nonpositive_device_clock(self):
        with pytest.raises(ValueError):
            DecoupledDimmGovernor(device_mhz=0.0)


class TestMemScaleGovernor:
    def _make(self, use_powerdown=False):
        energy = EnergyModel(CFG, rest_power_w=40.0)
        policy = MemScalePolicy(CFG, energy, n_cores=4)
        return MemScaleGovernor(policy, use_powerdown=use_powerdown)

    def test_names(self):
        assert self._make().name == "MemScale"
        assert self._make(use_powerdown=True).name == "MemScale+Fast-PD"

    def test_powerdown_wiring(self):
        assert self._make().powerdown_mode is PowerdownMode.NONE
        assert (self._make(True).powerdown_mode is PowerdownMode.FAST_EXIT)

    def test_profile_end_reprograms_frequency_and_logs(self):
        gov = self._make()
        engine, mc = make_controller(gov)
        delta = make_delta(CFG, tlm_per_core=0.5, bto=0.0, cto=0.0,
                           reads=2.0, writes=0.0, busy_frac=0.001)
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        assert mc.freq.bus_mhz < 800.0
        assert len(gov.frequency_log) == 1
        assert gov.frequency_log[0][1] == mc.freq.bus_mhz

    def test_epoch_end_updates_slack(self):
        gov = self._make()
        engine, mc = make_controller(gov)
        delta = make_delta(CFG, interval_ns=CFG.policy.epoch_ns,
                           tic_per_core=100.0, tlm_per_core=0.0)
        gov.on_epoch_end(delta, mc, CFG.policy.epoch_ns)
        assert any(s != 0 for s in gov.policy.slack_ns)
