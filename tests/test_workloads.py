"""Tests for the synthetic SPEC-like workload generator (Table 1)."""

import numpy as np
import pytest

from repro.cpu.workloads import (
    APP_PROFILES,
    CORE_REGION_STRIDE,
    MIXES,
    TraceGenerator,
    generate_workload,
    mix_names,
)


class TestMixTable:
    def test_twelve_mixes(self):
        assert len(MIXES) == 12

    def test_categories(self):
        assert mix_names("ILP") == ["ILP1", "ILP2", "ILP3", "ILP4"]
        assert mix_names("MID") == ["MID1", "MID2", "MID3", "MID4"]
        assert mix_names("MEM") == ["MEM1", "MEM2", "MEM3", "MEM4"]
        assert len(mix_names()) == 12

    def test_table1_targets_recorded(self):
        assert MIXES["MEM1"].target_rpki == 17.03
        assert MIXES["MEM1"].target_wpki == 3.03
        assert MIXES["ILP2"].target_rpki == 0.16
        assert MIXES["MID3"].apps == ("apsi", "bzip2", "ammp", "gap")

    def test_every_mix_app_has_a_profile(self):
        for mix in MIXES.values():
            for app in mix.apps:
                assert app in APP_PROFILES

    def test_apsi_has_phase_change(self):
        assert len(APP_PROFILES["apsi"].phases) == 2


class TestGeneration:
    @pytest.fixture(scope="class")
    def mid1(self):
        return generate_workload("MID1", cores=16,
                                 instructions_per_core=100_000, seed=3)

    def test_core_count_and_replication(self, mid1):
        assert len(mid1) == 16
        for app in MIXES["MID1"].apps:
            assert len(mid1.cores_of_app(app)) == 4

    def test_instructions_per_core_exact(self, mid1):
        for core in mid1.cores:
            assert core.total_instructions == 100_000

    def test_rpki_calibrated_to_table1(self, mid1):
        assert mid1.rpki == pytest.approx(MIXES["MID1"].target_rpki, rel=0.05)

    def test_wpki_calibrated_to_table1(self, mid1):
        assert mid1.wpki == pytest.approx(MIXES["MID1"].target_wpki, rel=0.25)

    @pytest.mark.parametrize("mix", ["ILP1", "ILP3", "MID2", "MID3",
                                     "MEM1", "MEM2", "MEM4"])
    def test_all_mixes_calibrate(self, mix):
        wt = generate_workload(mix, cores=16, instructions_per_core=150_000,
                               seed=11)
        assert wt.rpki == pytest.approx(MIXES[mix].target_rpki, rel=0.06)
        # WPKI is probabilistic; allow wider tolerance
        assert wt.wpki == pytest.approx(MIXES[mix].target_wpki, rel=0.35)

    def test_deterministic_for_same_seed(self):
        a = generate_workload("ILP2", instructions_per_core=20_000, seed=5)
        b = generate_workload("ILP2", instructions_per_core=20_000, seed=5)
        for ca, cb in zip(a.cores, b.cores):
            np.testing.assert_array_equal(ca.gaps, cb.gaps)
            np.testing.assert_array_equal(ca.read_addrs, cb.read_addrs)
            np.testing.assert_array_equal(ca.wb_addrs, cb.wb_addrs)

    def test_different_seeds_differ(self):
        a = generate_workload("ILP2", instructions_per_core=20_000, seed=5)
        b = generate_workload("ILP2", instructions_per_core=20_000, seed=6)
        assert any(not np.array_equal(ca.read_addrs, cb.read_addrs)
                   for ca, cb in zip(a.cores, b.cores))

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            generate_workload("NOPE")

    def test_core_count_must_be_multiple_of_four(self):
        with pytest.raises(ValueError):
            generate_workload("MID1", cores=10)

    def test_eight_core_variant(self):
        wt = generate_workload("MEM4", cores=8,
                               instructions_per_core=20_000, seed=1)
        assert len(wt) == 8
        for app in MIXES["MEM4"].apps:
            assert len(wt.cores_of_app(app)) == 2

    def test_cores_use_disjoint_address_regions(self, mid1):
        for i, core in enumerate(mid1.cores):
            lo = i * CORE_REGION_STRIDE
            hi = (i + 1) * CORE_REGION_STRIDE
            assert core.read_addrs.min() >= lo
            assert core.read_addrs.max() < hi

    def test_memory_mixes_are_heavier_than_ilp(self):
        ilp = generate_workload("ILP1", instructions_per_core=50_000, seed=2)
        mem = generate_workload("MEM1", instructions_per_core=50_000, seed=2)
        assert mem.rpki > 10 * ilp.rpki


class TestSpatialLocality:
    def test_streaming_app_has_sequential_runs(self):
        wt = generate_workload("MEM1", cores=4,
                               instructions_per_core=100_000, seed=9)
        swim = wt.cores[wt.cores_of_app("swim")[0]]
        diffs = np.diff(swim.read_addrs)
        seq_frac = float((diffs == 1).mean())
        assert seq_frac > 0.5  # swim streams (stream_prob 0.85)

    def test_pointer_chaser_less_sequential(self):
        wt = generate_workload("MID2", cores=4,
                               instructions_per_core=100_000, seed=9)
        twolf = wt.cores[wt.cores_of_app("twolf")[0]]
        diffs = np.diff(twolf.read_addrs)
        seq_frac = float((diffs == 1).mean())
        assert seq_frac < 0.5


class TestPhaseStructureInTraces:
    def test_apsi_miss_rate_rises_in_second_half(self):
        wt = generate_workload("MID3", cores=4,
                               instructions_per_core=200_000, seed=4)
        apsi = wt.cores[wt.cores_of_app("apsi")[0]]
        cum = np.cumsum(apsi.gaps)
        half = apsi.total_instructions // 2
        first_half_misses = int((cum <= half).sum())
        second_half_misses = len(apsi) - first_half_misses
        # phase 2 intensity is ~6x phase 1
        assert second_half_misses > 2 * first_half_misses
