"""Unit tests for memory request objects."""

import pytest

from repro.memsim.address import MemoryLocation
from repro.memsim.request import MemRequest, RequestKind


def make_request(kind=RequestKind.READ):
    return MemRequest(kind, MemoryLocation(1, 2, 3, 4, 5),
                      core_id=7, app_id=2)


class TestMemRequest:
    def test_ids_are_unique_and_increasing(self):
        a, b = make_request(), make_request()
        assert b.request_id > a.request_id

    def test_kind_predicates(self):
        assert make_request(RequestKind.READ).is_read
        assert not make_request(RequestKind.WRITE).is_read

    def test_location_carried(self):
        request = make_request()
        assert request.location.channel == 1
        assert request.location.bank_key() == (1, 2, 3)

    def test_latency_unset_before_completion(self):
        request = make_request()
        assert request.total_latency_ns == -1.0
        assert request.bank_queue_ns == -1.0

    def test_latency_after_timestamps(self):
        request = make_request()
        request.issue_ns = 10.0
        request.arrive_bank_ns = 15.0
        request.bank_start_ns = 18.0
        request.complete_ns = 60.0
        assert request.total_latency_ns == pytest.approx(50.0)
        assert request.bank_queue_ns == pytest.approx(3.0)

    def test_flags_default_false(self):
        request = make_request()
        assert not request.row_hit
        assert not request.open_row_miss
        assert not request.powerdown_exit

    def test_repr_mentions_location(self):
        text = repr(make_request())
        assert "ch=1" in text and "bank=3" in text

    def test_callback_stored(self):
        sink = []
        request = MemRequest(RequestKind.READ, MemoryLocation(0, 0, 0, 0, 0),
                             on_complete=sink.append)
        request.on_complete(request)
        assert sink == [request]
