"""Tests for the throughput benchmark harness (sim/perfbench.py):
record schema, baseline seeding, the regression gate, and the
machine-fingerprint skip."""

import json

import pytest

from repro.sim import perfbench
from repro.sim.perfbench import (
    PerfRegressionError,
    SCENARIOS,
    machine_fingerprint,
    run_perfbench,
    run_scenario,
)

SMOKE = ["smoke"]


def test_scenarios_are_pinned():
    # The gate is only meaningful against a fixed workload: scenario
    # names, mixes, and seeds are part of the benchmark's contract.
    by_name = {s.name: s for s in SCENARIOS}
    assert set(by_name) == {"smoke", "mid1", "ilp", "ladder"}
    assert all(s.seed == 2011 for s in SCENARIOS)
    assert by_name["smoke"].mix == "MID1" and by_name["mid1"].mix == "MID1"
    assert by_name["smoke"].policies == ("Baseline", "MemScale", "Static")
    # the low-MPKI scenario the idle-period fast-forward path targets
    assert by_name["ilp"].mix == "ILP2"
    assert by_name["ilp"].policies == ("Baseline", "Fast-PD", "MemScale")
    # the scenario-library rung (absent from older committed baselines;
    # the gate skips scenarios the baseline file lacks)
    assert by_name["ladder"].mix == "mix2"
    assert by_name["ladder"].policies == ("Baseline", "MemScale")


def test_run_scenario_counts_events():
    smoke = next(s for s in SCENARIOS if s.name == "smoke")
    best = run_scenario(smoke, repeats=1)
    assert best["events"] > 0
    assert best["wall_s"] > 0
    assert best["events_per_sec"] == best["events"] / best["wall_s"]


def test_run_scenario_rejects_bad_repeats():
    with pytest.raises(ValueError, match="repeats"):
        run_scenario(SCENARIOS[0], repeats=0)


def test_event_metric_is_fast_forward_invariant():
    # The metric counts *simulated* events (processed + fast-forwarded):
    # the numerator must be identical with the batch path on or off, so
    # throughputs are comparable across the two modes.
    smoke = next(s for s in SCENARIOS if s.name == "smoke")
    on = run_scenario(smoke, repeats=1, fast_forward=True)
    off = run_scenario(smoke, repeats=1, fast_forward=False)
    assert on["events"] == off["events"]
    assert off["events_fast_forwarded"] == 0
    assert on["events_fast_forwarded"] > 0


def test_no_gate_mode_reports_but_never_raises(tmp_path, capsys):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    data = json.loads(out.read_text())
    data["baseline"]["smoke"]["events_per_sec"] *= 1000.0
    out.write_text(json.dumps(data))
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, gate=False)
    printed = capsys.readouterr().out
    assert "not gated" in printed
    assert "baseline" in printed and "current" in printed


def test_unknown_scenario_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown scenarios"):
        run_perfbench(output=str(tmp_path / "b.json"),
                      scenarios=["nope"], quiet=True)


def test_first_run_seeds_baseline_and_schema(tmp_path):
    out = tmp_path / "b.json"
    record = run_perfbench(output=str(out), repeats=1, scenarios=SMOKE,
                           quiet=True)
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == 1
    assert on_disk["baseline"]["smoke"] == on_disk["latest"]["smoke"]
    assert on_disk["baseline_machine"] == machine_fingerprint()
    assert set(on_disk["machine"]) == {"platform", "machine", "python",
                                       "cpu_count"}
    assert record["latest"]["smoke"]["events"] > 0


def test_gate_trips_on_regression(tmp_path):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    data = json.loads(out.read_text())
    # Pretend the recorded baseline was enormously faster.
    data["baseline"]["smoke"]["events_per_sec"] *= 1000.0
    out.write_text(json.dumps(data))
    with pytest.raises(PerfRegressionError, match="smoke"):
        run_perfbench(output=str(out), repeats=1, scenarios=SMOKE,
                      quiet=True)
    # The failing run still records its numbers for post-mortems.
    assert json.loads(out.read_text())["latest"]["smoke"]["events"] > 0


def test_gate_skipped_on_other_machine(tmp_path):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    data = json.loads(out.read_text())
    data["baseline"]["smoke"]["events_per_sec"] *= 1000.0
    data["baseline_machine"] = {"platform": "someone-elses-laptop"}
    out.write_text(json.dumps(data))
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)


def test_update_baseline_reseeds(tmp_path):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    data = json.loads(out.read_text())
    data["baseline"]["smoke"]["events_per_sec"] *= 1000.0
    out.write_text(json.dumps(data))
    record = run_perfbench(output=str(out), repeats=1, scenarios=SMOKE,
                           update_baseline=True, quiet=True)
    assert record["baseline"]["smoke"] == record["latest"]["smoke"]


def test_speedup_reported_against_pre_pr(tmp_path):
    out = tmp_path / "b.json"
    out.write_text(json.dumps(
        {"pre_pr": {"smoke": {"events": 1, "wall_s": 1.0,
                              "events_per_sec": 1.0}}}))
    record = run_perfbench(output=str(out), repeats=1, scenarios=SMOKE,
                           quiet=True)
    assert record["speedup_vs_pre_pr"]["smoke"] == \
        record["latest"]["smoke"]["events_per_sec"]
    # pre_pr numbers are frozen: they survive the rewrite untouched.
    assert record["pre_pr"]["smoke"]["events_per_sec"] == 1.0


def test_committed_bench_file_is_consistent():
    # The repo's own BENCH_perf.json must stay parseable and claim the
    # busy-period absorption PR's target: >= 1.5x events/sec on mid1
    # and ladder, per the frozen matched-window pair (pre_pr = old code
    # in a HEAD worktree, post_rewrite = new code, alternating runs on
    # one host — 'latest' is volatile and legitimately dips with host
    # load). ilp is pinned only to "no regression beyond host noise":
    # its events are already ~90% absorbed by idle fast-forward, so the
    # surrogate deliberately bypasses it.
    from pathlib import Path
    path = Path(__file__).parent.parent / "BENCH_perf.json"
    data = json.loads(path.read_text())
    for name in ("smoke", "mid1", "ilp", "ladder"):
        pre = data["pre_pr"][name]["events_per_sec"]
        post = data["post_rewrite"][name]["events_per_sec"]
        assert pre > 0 and post > 0
        assert data["baseline"][name]["events_per_sec"] > 0
        assert data["latest"][name]["events_per_sec"] > 0
    for name in ("mid1", "ladder"):
        pre = data["pre_pr"][name]["events_per_sec"]
        post = data["post_rewrite"][name]["events_per_sec"]
        assert post / pre >= 1.5
    assert (data["post_rewrite"]["ilp"]["events_per_sec"]
            / data["pre_pr"]["ilp"]["events_per_sec"]) >= 0.85
    # The steady-state surrogate engaged on the measured runs of the
    # scenarios that claim the speedup.
    for name in ("mid1", "ladder"):
        assert data["post_rewrite"][name]["events_steady_skipped"] > 0


def test_git_sha_shape():
    sha = perfbench.git_sha()
    assert sha == "unknown" or (len(sha) == 40
                                and all(c in "0123456789abcdef" for c in sha))


def test_no_baseline_note_printed_on_first_run(tmp_path, capsys):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE)
    printed = capsys.readouterr().out
    assert "no baseline yet" in printed
    assert "gate skipped" in printed


def test_gate_report_shows_both_sides(tmp_path, capsys):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    base = json.loads(out.read_text())["baseline"]["smoke"]["events_per_sec"]
    # gate=False: the report under test is printed either way, but a
    # loaded machine can dip a single-repeat measurement through the
    # floor and the raise would pre-empt the formatting assertions.
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, gate=False)
    printed = capsys.readouterr().out
    # Both the current and the baseline events/sec, not just a ratio.
    assert f"baseline {base:.0f} events/sec" in printed
    assert "current" in printed and "floor" in printed


def test_gate_failure_names_both_numbers(tmp_path):
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    data = json.loads(out.read_text())
    data["baseline"]["smoke"]["events_per_sec"] *= 1000.0
    out.write_text(json.dumps(data))
    with pytest.raises(PerfRegressionError) as exc:
        run_perfbench(output=str(out), repeats=1, scenarios=SMOKE,
                      quiet=True)
    message = str(exc.value)
    assert "current" in message and "baseline" in message
    assert "events/sec" in message


def test_machine_mismatch_prints_advisory_warning(tmp_path, capsys):
    # A baseline recorded elsewhere must not silently disarm the gate:
    # the report has to say, loudly, that the numbers are advisory.
    out = tmp_path / "b.json"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE, quiet=True)
    data = json.loads(out.read_text())
    data["baseline"]["smoke"]["events_per_sec"] *= 1000.0
    data["baseline_machine"] = {"platform": "someone-elses-laptop"}
    out.write_text(json.dumps(data))
    capsys.readouterr()
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE)
    printed = capsys.readouterr().out
    assert "WARNING" in printed
    assert "different" in printed and "machine" in printed
    assert "ADVISORY" in printed
    assert "--update-baseline" in printed
    # ...and the thousand-fold "regression" still does not raise.


def test_median_of_repeats_is_default(tmp_path):
    assert perfbench.DEFAULT_REPEATS == 3
    out = tmp_path / "b.json"
    record = run_perfbench(output=str(out), repeats=2, scenarios=SMOKE,
                           quiet=True)
    assert record["repeats"] == 2
    # Deterministic workload: the event count is repeat-invariant, so
    # whichever repeat the median picks must carry the same total.
    smoke = next(s for s in SCENARIOS if s.name == "smoke")
    assert record["latest"]["smoke"]["events"] \
        == run_scenario(smoke, repeats=1)["events"]


def test_profile_writes_dump_and_prints_hotspots(tmp_path, capsys):
    out = tmp_path / "b.json"
    dump = tmp_path / "perf.pstats"
    run_perfbench(output=str(out), repeats=1, scenarios=SMOKE,
                  quiet=True, profile=True, profile_out=str(dump))
    printed = capsys.readouterr().out
    assert "hot spots by cumulative time" in printed
    assert str(dump) in printed
    assert dump.exists() and dump.stat().st_size > 0
    # The dump is a loadable pstats file with real samples in it.
    import pstats
    stats = pstats.Stats(str(dump))
    assert stats.total_calls > 0
