"""Tests for the per-channel DFS extension (Section 6 future work)."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.energy_model import EnergyModel
from repro.core.extensions import PerChannelMemScaleGovernor
from repro.core.policy import MemScalePolicy
from repro.core.power_model import PowerModel
from repro.core.frequency import FrequencyLadder
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from tests.conftest import make_delta

CFG = scaled_config()
LADDER = FrequencyLadder(CFG)


def make_governor(n_cores=4):
    energy = EnergyModel(CFG, rest_power_w=40.0)
    policy = MemScalePolicy(CFG, energy, n_cores=n_cores)
    return PerChannelMemScaleGovernor(policy)


def make_controller():
    engine = EventEngine()
    return engine, MemoryController(engine, CFG, refresh_enabled=False,
                                    n_cores=4)


class TestControllerPerChannel:
    def test_channels_default_to_global_frequency(self):
        engine, mc = make_controller()
        mc.set_frequency_by_bus_mhz(400.0)
        assert all(f == 400.0 for f in mc.channel_bus_mhz_list())

    def test_channel_override(self):
        engine, mc = make_controller()
        penalty = mc.set_channel_frequency(2, mc.ladder.at_bus_mhz(333.0))
        assert penalty > 0
        assert mc.channel_freq(2).bus_mhz == 333.0
        assert mc.channel_freq(0).bus_mhz == 800.0

    def test_same_channel_frequency_is_free(self):
        engine, mc = make_controller()
        assert mc.set_channel_frequency(1, mc.freq) == 0.0

    def test_global_change_clears_overrides(self):
        engine, mc = make_controller()
        mc.set_channel_frequency(1, mc.ladder.at_bus_mhz(200.0))
        mc.set_frequency_by_bus_mhz(467.0)
        assert mc.channel_freq(1).bus_mhz == 467.0

    def test_invalid_channel_rejected(self):
        engine, mc = make_controller()
        with pytest.raises(ValueError):
            mc.set_channel_frequency(99, mc.ladder.fastest)

    def test_burst_uses_channel_clock(self):
        from repro.memsim.request import MemRequest, RequestKind
        from repro.memsim.address import MemoryLocation
        engine, mc = make_controller()
        mc.set_channel_frequency(0, mc.ladder.at_bus_mhz(200.0))
        engine.run_until(mc.channel_frozen_until_ns(0))
        done = []
        req = MemRequest(RequestKind.READ,
                         MemoryLocation(0, 0, 0, 0, 0),
                         on_complete=lambda r: done.append(r))
        mc.submit(req)
        engine.run()
        # burst at 200 MHz: 20 ns instead of 5 ns
        assert req.complete_ns - req.bus_start_ns == pytest.approx(20.0)


class TestPowerModelPerChannel:
    def test_per_channel_background_derating(self):
        model = PowerModel(CFG)
        delta = make_delta(CFG)
        uniform = model.measure(delta, LADDER.fastest)
        mixed = model.measure(delta, LADDER.fastest,
                              channel_bus_mhz=[800.0, 800.0, 200.0, 200.0])
        assert mixed.background_w < uniform.background_w
        assert mixed.pll_reg_w < uniform.pll_reg_w
        assert mixed.mc_w == pytest.approx(uniform.mc_w)

    def test_uniform_list_matches_scalar_path(self):
        model = PowerModel(CFG)
        delta = make_delta(CFG)
        scalar = model.measure(delta, LADDER.fastest)
        listed = model.measure(delta, LADDER.fastest,
                               channel_bus_mhz=[800.0] * 4)
        assert listed.background_w == pytest.approx(scalar.background_w)
        assert listed.pll_reg_w == pytest.approx(scalar.pll_reg_w, rel=0.02)

    def test_wrong_length_rejected(self):
        model = PowerModel(CFG)
        with pytest.raises(ValueError):
            model.measure(make_delta(CFG), LADDER.fastest,
                          channel_bus_mhz=[800.0])


class TestPerChannelGovernor:
    def test_reports_channel_clocks(self):
        gov = make_governor()
        engine, mc = make_controller()
        assert gov.channel_bus_mhz(mc) == [800.0] * 4

    def test_balanced_load_never_drops(self):
        gov = make_governor()
        engine, mc = make_controller()
        delta = make_delta(CFG, tlm_per_core=20.0)  # even channel split
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        assert gov.per_channel_drops == 0
        freqs = set(mc.channel_bus_mhz_list())
        assert len(freqs) == 1

    def test_skewed_load_drops_cold_channels(self):
        import dataclasses
        gov = make_governor()
        engine, mc = make_controller()
        delta = make_delta(CFG, tlm_per_core=20.0, busy_frac=0.1)
        # concentrate traffic on channel 0
        busy = delta.channel_busy_ns.copy()
        busy[:] = [8000.0, 10.0, 10.0, 10.0]
        reads = delta.channel_reads.copy()
        reads[:] = [1000.0, 2.0, 2.0, 2.0]
        delta = dataclasses.replace(delta, channel_busy_ns=busy,
                                    channel_reads=reads)
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        freqs = mc.channel_bus_mhz_list()
        if gov.policy.decisions[-1].chosen.index < len(mc.ladder) - 1:
            assert gov.per_channel_drops >= 1
            assert min(freqs[1:]) < freqs[0] or len(set(freqs)) > 1

    def test_no_refinement_at_ladder_floor(self):
        gov = make_governor()
        engine, mc = make_controller()
        # compute-bound: the global decision lands on the slowest point,
        # leaving nothing lower for refinement
        delta = make_delta(CFG, tlm_per_core=0.2, bto=0.0, cto=0.0,
                           reads=1.0, writes=0.0, busy_frac=0.0005)
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        if mc.freq.bus_mhz == 200.0:
            assert gov.per_channel_drops == 0


class TestRefinementEdgeCases:
    """Degenerate profiles: empty counter sets and single-app mixes."""

    def test_empty_profile_never_refines(self):
        # No accesses at all (idle epoch): refinement must bail before
        # dividing by the zero access total.
        gov = make_governor()
        engine, mc = make_controller()
        delta = make_delta(CFG, tlm_per_core=0.0, reads=0.0, writes=0.0,
                           busy_frac=0.0, bto=0.0, cto=0.0)
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        assert gov.per_channel_drops == 0
        assert len(set(mc.channel_bus_mhz_list())) == 1

    def test_zero_utilization_with_accesses_never_refines(self):
        # Accesses recorded but no measured channel busy time (can
        # happen on a profile slice boundary): mean utilization is 0,
        # so no channel can qualify as "well below the mean".
        gov = make_governor()
        engine, mc = make_controller()
        delta = make_delta(CFG, busy_frac=0.0)
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        assert gov.per_channel_drops == 0

    def test_single_app_mix_end_to_end(self):
        # One core / one app: the per-core feasibility reduction must
        # work on a length-1 vector.
        gov = make_governor(n_cores=1)
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=False,
                              n_cores=1)
        delta = make_delta(CFG, n_cores=1)
        gov.on_profile_end(delta, mc, CFG.policy.epoch_ns)
        assert len(gov.policy.decisions) == 1
        assert len(gov.policy.decisions[-1].predicted_cpi) == 1

    def test_single_channel_config(self):
        # A 1-channel organization: the "coldest channel" set is the
        # whole machine; dropping it below the mean is impossible, so
        # the governor must hold a uniform frequency.
        cfg = scaled_config().with_org(channels=1, dimms_per_channel=8)
        energy = EnergyModel(cfg, rest_power_w=40.0)
        policy = MemScalePolicy(cfg, energy, n_cores=4)
        gov = PerChannelMemScaleGovernor(policy)
        engine = EventEngine()
        mc = MemoryController(engine, cfg, refresh_enabled=False, n_cores=4)
        delta = make_delta(cfg)
        gov.on_profile_end(delta, mc, cfg.policy.epoch_ns)
        assert gov.per_channel_drops == 0
        assert len(mc.channel_bus_mhz_list()) == 1
