"""Focused tests on the DDR3 inter-command windows (tFAW, tRRD, tRC).

These issue carefully-placed request bursts at a real controller and
verify the rank-level activation throttles from first principles.
"""

import pytest

from repro.config import scaled_config
from repro.memsim.address import MemoryLocation
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest, RequestKind

CFG = scaled_config()


def drive_reads(locations):
    engine = EventEngine()
    mc = MemoryController(engine, CFG, refresh_enabled=False, n_cores=1)
    done = []
    for loc in locations:
        mc.submit(MemRequest(RequestKind.READ, loc,
                             on_complete=done.append))
    engine.run()
    return mc, done


class TestFourActivateWindow:
    def test_fifth_activate_waits_for_tfaw(self):
        # five simultaneous requests to five banks of ONE rank
        locs = [MemoryLocation(0, 0, bank, 0, 0) for bank in range(5)]
        mc, done = drive_reads(locs)
        acts = sorted(r.act_ns for r in done)
        # the 5th activate must sit at least tFAW after the 1st
        assert acts[4] - acts[0] >= CFG.timings.t_faw_ns - 1e-6

    def test_ranks_have_independent_windows(self):
        # five requests spread over two ranks: no tFAW stall needed
        locs = [MemoryLocation(0, rank % 2, bank, 0, 0)
                for rank, bank in ((0, 0), (1, 0), (0, 1), (1, 1), (0, 2))]
        mc, done = drive_reads(locs)
        per_rank = {}
        for r in done:
            per_rank.setdefault(r.location.rank, []).append(r.act_ns)
        for acts in per_rank.values():
            acts.sort()
            # within a rank, consecutive activates spaced >= tRRD only
            for a, b in zip(acts, acts[1:]):
                assert b - a >= CFG.timings.t_rrd_ns - 1e-6


class TestMinActivateGap:
    def test_trrd_spacing_two_banks(self):
        locs = [MemoryLocation(0, 0, 0, 0, 0), MemoryLocation(0, 0, 1, 0, 0)]
        mc, done = drive_reads(locs)
        acts = sorted(r.act_ns for r in done)
        assert acts[1] - acts[0] >= CFG.timings.t_rrd_ns - 1e-6


class TestRowCycle:
    def test_same_bank_activates_spaced_by_trc(self):
        locs = [MemoryLocation(0, 0, 0, row, 0) for row in (1, 2)]
        mc, done = drive_reads(locs)
        acts = sorted(r.act_ns for r in done)
        assert acts[1] - acts[0] >= CFG.timings.t_rc_ns - 1e-6

    def test_row_hit_not_throttled_by_trc(self):
        # same row back-to-back: second is a hit, no new activate
        locs = [MemoryLocation(0, 0, 0, 7, col) for col in (0, 1)]
        mc, done = drive_reads(locs)
        assert mc.counters.rbhc == 1
        hit = [r for r in done if r.row_hit][0]
        miss = [r for r in done if not r.row_hit][0]
        # the hit performed no activate and starts as soon as the miss
        # releases the bank, well before a tRC would have elapsed
        assert hit.act_ns == -1.0
        assert hit.bank_start_ns - miss.bank_start_ns < CFG.timings.t_rc_ns
