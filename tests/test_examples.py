"""Smoke tests for the examples/ scripts.

Each example is run as a real subprocess (the way a user runs it) at a
tiny instruction count via the ``REPRO_EXAMPLE_INSTRUCTIONS`` override,
and must exit cleanly while printing its headline output.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

# (script, string that must appear in stdout)
EXAMPLES = [
    ("quickstart.py", "bus frequencies used"),
    ("phase_timeline.py", "system energy savings"),
    ("policy_shootout.py", "Comparing"),
    ("model_playground.py", "SER-minimal frequency"),
    ("per_channel_dfs.py", "per-channel governor"),
    ("custom_workload.py", "CPI increase"),
    ("multidomain_budget.py", "Per-domain budget split"),
]


def run_example(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_EXAMPLE_INSTRUCTIONS"] = "8000"
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=str(REPO_ROOT))


def test_every_example_is_covered():
    on_disk = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert on_disk == sorted(name for name, _ in EXAMPLES)


@pytest.mark.parametrize("script,needle", EXAMPLES,
                         ids=[name for name, _ in EXAMPLES])
def test_example_runs_clean(script, needle):
    proc = run_example(script)
    assert proc.returncode == 0, proc.stderr
    assert needle in proc.stdout


def test_unknown_mix_fails_with_message():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "NOPE"],
        capture_output=True, text=True, timeout=60, env=env,
        cwd=str(REPO_ROOT))
    assert proc.returncode != 0
    assert "unknown mix" in proc.stderr
