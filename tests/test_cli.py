"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SCALE = ["--instructions", "25000"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "run", "figure", "timeline", "stats",
                    "best-static", "sweep", "bench", "cap", "multidomain",
                    "governors", "cache", "service", "query"):
            args = parser.parse_args(
                [cmd] + (["MID1"] if cmd in ("run", "timeline", "stats",
                                             "best-static") else
                         ["5"] if cmd == "figure" else
                         ["status", "--dir", "d"] if cmd == "service" else
                         ["--dir", "d"] if cmd == "query" else []))
            assert args.command == cmd


class TestCommands:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1", *SCALE)
        assert code == 0
        assert "Table 1" in out
        assert "MEM1" in out

    def test_run_memscale(self, capsys):
        code, out = run_cli(capsys, "run", "ILP2", *SCALE)
        assert code == 0
        assert "memory energy savings" in out
        assert "worst CPI increase" in out

    def test_run_unknown_mix(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "NOPE", *SCALE])

    def test_run_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "MID1", "--policy", "Bogus", *SCALE])

    def test_run_with_custom_bound(self, capsys):
        code, out = run_cli(capsys, "run", "ILP2", "--bound", "0.05", *SCALE)
        assert code == 0

    def test_stats(self, capsys):
        code, out = run_cli(capsys, "stats", "MID3", *SCALE)
        assert code == 0
        assert "apsi" in out
        assert "bank entropy" in out

    def test_timeline(self, capsys):
        code, out = run_cli(capsys, "timeline", "ILP2", *SCALE)
        assert code == 0
        assert "bus MHz" in out

    def test_figure_5(self, capsys):
        code, out = run_cli(capsys, "figure", "5", *SCALE)
        assert code == 0
        assert "fig5_6_energy_savings" in out
        assert "MEM1" in out

    def test_figure_unsupported(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "7", *SCALE])

    def test_best_static(self, capsys):
        code, out = run_cli(capsys, "best-static", "ILP2", *SCALE)
        assert code == 0
        assert "best static frequency" in out
        assert "MemScale" in out


class TestSweepCommand:
    SMALL = ["--instructions", "8000", "--cores", "4"]

    def test_sweep_serial(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "sweep", "--mixes", "MID1", "--policies", "MemScale",
            "Static", "--jobs", "1", "--cache-dir", str(tmp_path / "c"),
            *self.SMALL)
        assert code == 0
        assert "sweep: 1 mixes x 2 policies" in out
        assert "MemScale" in out and "Static" in out

    def test_sweep_parallel_with_telemetry_and_save(self, capsys, tmp_path):
        save = tmp_path / "results.json"
        code, out = run_cli(
            capsys, "sweep", "--mixes", "MID1", "ILP1",
            "--policies", "MemScale", "--jobs", "2",
            "--cache-dir", str(tmp_path / "c"),
            "--telemetry", str(tmp_path / "t"),
            "--save", str(save), *self.SMALL)
        assert code == 0
        assert (tmp_path / "t" / "MID1__MemScale.jsonl").exists()
        from repro.sim.serialize import load_results
        loaded = load_results(save)
        assert len(loaded) == 4  # 2 results + 2 comparisons

    def test_sweep_rejects_unknown_mix(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--mixes", "NOPE", "--jobs", "1",
                  "--cache-dir", str(tmp_path / "c"), *self.SMALL])

    def test_sweep_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--mixes", "MID1", "--policies", "Bogus",
                  "--jobs", "1", "--cache-dir", str(tmp_path / "c"),
                  *self.SMALL])

    def test_sweep_no_cache(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "sweep", "--mixes", "MID1", "--policies", "Static",
            "--jobs", "1", "--no-cache", *self.SMALL)
        assert code == 0
        assert "cache=disabled" in out


class TestBenchCommand:
    def test_smoke_passes(self, capsys, tmp_path):
        """The `make bench-smoke` target: 2 workers, tiny mix, parallel
        path end to end (wired into tier-1 via this test)."""
        code, out = run_cli(capsys, "bench", "--smoke", "--jobs", "2",
                            "--cache-dir", str(tmp_path / "c"))
        assert code == 0
        assert "SMOKE OK" in out
        assert "cap: capped leg passed" in out

    def test_requires_smoke_flag(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--cache-dir", str(tmp_path / "c")])


class TestCapCommand:
    def test_cap_smoke_passes(self, capsys, tmp_path):
        """The acceptance smoke: a 2-point budget sweep whose enforcement
        and fairness checks must hold (wired into tier-1 here)."""
        code, out = run_cli(capsys, "cap", "--smoke", "--jobs", "1",
                            "--cache-dir", str(tmp_path / "c"))
        assert code == 0
        assert "CAP SMOKE OK" in out
        assert "power-cap sweep" in out

    def test_cap_custom_budgets(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "cap", "--mixes", "MID1", "--budgets", "0.9",
            "--jobs", "1", "--cache-dir", str(tmp_path / "c"),
            "--instructions", "8000", "--cores", "4")
        assert code == 0
        assert "90%" in out        # the budget column
        assert "min perf" in out   # the fairness column

    def test_cap_rejects_unknown_mix(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cap", "--mixes", "NOPE", "--jobs", "1",
                  "--cache-dir", str(tmp_path / "c"),
                  "--instructions", "8000", "--cores", "4"])


class TestGovernorsCommand:
    def test_lists_every_registered_governor(self, capsys):
        from repro.sim.runner import GOVERNOR_INFO, POLICY_NAMES

        code, out = run_cli(capsys, "governors")
        assert code == 0
        for name, _, _, _, _ in GOVERNOR_INFO:
            assert name in out
        for name in POLICY_NAMES:
            assert name in out
        assert "MemScale/channel" in out
        assert "MultiDomain" in out

    def test_lists_config_knobs_and_doc_pointers(self, capsys):
        from repro.sim.runner import GOVERNOR_INFO

        code, out = run_cli(capsys, "governors")
        assert code == 0
        assert "config knobs" in out     # the knobs column
        for _, _, _, knobs, doc in GOVERNOR_INFO:
            assert knobs in out
            assert doc in out
        assert "docs/governors.md" in out

    def test_unknown_policy_error_names_alternatives(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "MID1", "--policy", "Bogus",
                  "--instructions", "8000"])
        message = str(exc.value)
        assert "Bogus" in message
        assert "MemScale" in message  # the listing, not a bare KeyError
        assert "docs/governors.md" in message  # the developer-guide pointer


class TestMultiDomainCommand:
    def test_multidomain_smoke_passes(self, capsys, tmp_path):
        """The acceptance smoke: under a budget infeasible for either
        domain alone, the coordinated governor finds a feasible split,
        never exceeds the budget, and beats memory-only capping on
        system energy (wired into tier-1 here)."""
        code, out = run_cli(capsys, "multidomain", "--smoke", "--jobs", "1",
                            "--cache-dir", str(tmp_path / "c"))
        assert code == 0
        assert "MULTIDOMAIN SMOKE OK" in out
        assert "multi-domain budget sweep" in out
        assert "MultiDomain-" in out and "Cap-" in out

    def test_multidomain_custom_budgets(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "multidomain", "--mixes", "MID1", "--budgets", "0.8",
            "--jobs", "1", "--cache-dir", str(tmp_path / "c"),
            "--instructions", "8000", "--cores", "4")
        assert code == 0
        assert "80%" in out        # the budget column
        assert "core W" in out     # the per-domain split column

    def test_multidomain_rejects_unknown_mix(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["multidomain", "--mixes", "NOPE", "--jobs", "1",
                  "--cache-dir", str(tmp_path / "c"),
                  "--instructions", "8000", "--cores", "4"])


class TestValidateFlag:
    """--validate arms the DDR3 protocol validator (PR-2 tentpole)."""

    SMALL = ["--instructions", "8000", "--cores", "4"]

    def test_run_with_validator(self, capsys):
        code, out = run_cli(capsys, "run", "MID1", "--validate",
                            *self.SMALL)
        assert code == 0
        assert "protocol validator: armed, zero violations" in out

    def test_sweep_with_validator(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "sweep", "--mixes", "MID1", "--policies", "MemScale",
            "--jobs", "1", "--cache-dir", str(tmp_path / "c"),
            "--validate", *self.SMALL)
        assert code == 0
        assert "protocol validator: armed on every simulated run" in out

    def test_bench_smoke_with_validator(self, capsys, tmp_path):
        """The `make validate` target: armed smoke end to end."""
        code, out = run_cli(capsys, "bench", "--smoke", "--jobs", "2",
                            "--cache-dir", str(tmp_path / "c"),
                            "--validate")
        assert code == 0
        assert "SMOKE OK" in out
        assert "validator: armed leg passed" in out


class TestFastForwardFlag:
    """--no-fast-forward disables idle-period batching everywhere; the
    output must be indistinguishable (results are byte-identical)."""

    SMALL = ["--instructions", "8000", "--cores", "4"]

    def test_flag_parses_on_every_simulating_command(self):
        parser = build_parser()
        for argv in (["run", "MID1", "--no-fast-forward"],
                     ["sweep", "--no-fast-forward"],
                     ["cap", "--smoke", "--no-fast-forward"],
                     ["bench", "--smoke", "--no-fast-forward"],
                     ["perfbench", "--no-fast-forward"]):
            args = parser.parse_args(argv)
            assert args.no_fast_forward is True

    def test_run_output_identical_either_way(self, capsys):
        code_on, out_on = run_cli(capsys, "run", "ILP2", *self.SMALL)
        code_off, out_off = run_cli(capsys, "run", "ILP2",
                                    "--no-fast-forward", *self.SMALL)
        assert code_on == code_off == 0
        assert out_on == out_off


class TestCacheCommand:
    def populate(self, cache_dir):
        from repro.sim.cache import ExperimentCache
        from repro.sim.runner import ExperimentRunner, RunnerSettings
        runner = ExperimentRunner(
            settings=RunnerSettings(cores=4, instructions_per_core=8_000,
                                    seed=7),
            cache=ExperimentCache(cache_dir))
        runner.trace("MID1")

    def test_stats_on_empty_cache(self, capsys, tmp_path):
        code, out = run_cli(capsys, "cache",
                            "--cache-dir", str(tmp_path / "c"))
        assert code == 0
        assert "trace entries    : 0" in out
        assert "run entries      : 0" in out
        assert "pruned" not in out

    def test_stats_after_population(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        self.populate(cache_dir)
        code, out = run_cli(capsys, "cache", "--cache-dir", str(cache_dir))
        assert code == 0
        assert "trace entries    : 1" in out
        assert str(cache_dir) in out

    def test_prune_empties_the_cache(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        self.populate(cache_dir)
        code, out = run_cli(capsys, "cache", "--cache-dir", str(cache_dir),
                            "--prune")
        assert code == 0
        assert "pruned 2 files" in out  # columnar trace + sidecar
        code, out = run_cli(capsys, "cache", "--cache-dir", str(cache_dir))
        assert "trace entries    : 0" in out


class TestServiceCommand:
    SMALL = ["--instructions", "8000", "--cores", "4", "--seed", "7"]

    def test_smoke_leg(self, capsys, tmp_path):
        """The `make service-smoke` target: poisoned job isolated,
        resume heals it, store digest-identical to a serial sweep."""
        code, out = run_cli(capsys, "service", "smoke",
                            "--dir", str(tmp_path / "svc"), "--jobs", "1")
        assert code == 0
        assert "SERVICE SMOKE OK" in out
        assert "poisoned job isolated (MID1/MemScale)" in out

    def test_run_status_query_resume_round_trip(self, capsys, tmp_path):
        directory = str(tmp_path / "svc")
        code, out = run_cli(
            capsys, "service", "run", "--dir", directory,
            "--mixes", "MID1", "--policies", "Static", "MemScale",
            "--jobs", "1", "--retries", "0",
            "--fail-label", "MID1/MemScale", *self.SMALL)
        assert code == 0
        assert "FAILED" in out and "InjectedFailure" in out
        assert "1 ok, 1 failed" in out

        code, out = run_cli(capsys, "service", "status",
                            "--dir", directory)
        assert code == 0
        assert "enqueued             : 2" in out
        assert "failed               : 1" in out
        assert "pending: MID1/MemScale (failed)" in out

        code, out = run_cli(capsys, "query", "--dir", directory,
                            "--status", "failed")
        assert code == 0
        assert "InjectedFailure" in out
        assert "1 of 2 records matched" in out

        code, out = run_cli(capsys, "service", "resume",
                            "--dir", directory)
        assert code == 0
        assert "2 ok, 0 failed" in out

        code, out = run_cli(capsys, "query", "--dir", directory,
                            "--status", "ok", "--jsonl")
        assert code == 0
        import json
        records = [json.loads(line) for line in out.splitlines() if line]
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records)

    def test_rerun_is_idempotent(self, capsys, tmp_path):
        directory = str(tmp_path / "svc")
        argv = ["service", "run", "--dir", directory, "--mixes", "MID1",
                "--policies", "Static", "--jobs", "1", *self.SMALL]
        code, out = run_cli(capsys, *argv)
        assert code == 0
        code, out = run_cli(capsys, *argv)
        assert code == 0
        assert "1 ok, 0 failed, 0 never-ran of 1 enqueued" in out

    def test_run_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["service", "run", "--dir", str(tmp_path / "svc"),
                  "--policies", "Bogus", "--jobs", "1", *self.SMALL])

    def test_cap_kind_needs_budgets(self, tmp_path):
        with pytest.raises(SystemExit, match="--budgets"):
            main(["service", "run", "--dir", str(tmp_path / "svc"),
                  "--kind", "cap", "--jobs", "1", *self.SMALL])

    def test_status_on_non_service_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="no service ledger meta"):
            main(["service", "status", "--dir", str(tmp_path / "empty")])


class TestCacheOrphanDisplay:
    def test_orphan_files_are_reported(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        TestCacheCommand().populate(cache_dir)
        next(cache_dir.glob("traces/*.npy")).unlink()
        code, out = run_cli(capsys, "cache", "--cache-dir", str(cache_dir))
        assert code == 0
        assert "orphan files     : 1" in out
        assert "trace entries    : 0" in out
        code, out = run_cli(capsys, "cache", "--cache-dir", str(cache_dir),
                            "--prune")
        assert code == 0
        code, out = run_cli(capsys, "cache", "--cache-dir", str(cache_dir))
        assert "orphan files" not in out
