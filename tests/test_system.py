"""End-to-end tests for the system simulator and experiment runner."""

import numpy as np
import pytest

from repro.config import NS_PER_US, scaled_config
from repro.core.baselines import BaselineGovernor, StaticFrequencyGovernor
from repro.cpu.workloads import generate_workload
from repro.sim.results import ENERGY_COMPONENTS
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator

CFG = scaled_config()


@pytest.fixture(scope="module")
def small_runner():
    return ExperimentRunner(
        config=CFG,
        settings=RunnerSettings(instructions_per_core=40_000, seed=13))


@pytest.fixture(scope="module")
def mid1_baseline(small_runner):
    return small_runner.baseline("MID1")


@pytest.fixture(scope="module")
def mid1_memscale(small_runner):
    return small_runner.run_memscale("MID1")


class TestBaselineRun:
    def test_completes_and_reports(self, mid1_baseline):
        r = mid1_baseline
        assert r.governor == "Baseline"
        assert r.workload == "MID1"
        assert r.wall_time_ns > 0
        assert r.epochs >= 1
        assert len(r.core_apps) == 16

    def test_all_cores_reached_target(self, mid1_baseline):
        assert all(t is not None and t > 0
                   for t in mid1_baseline.core_time_at_target_ns)
        assert mid1_baseline.wall_time_ns == max(
            mid1_baseline.core_time_at_target_ns)

    def test_energy_components_present_and_positive(self, mid1_baseline):
        for component in ENERGY_COMPONENTS:
            assert component in mid1_baseline.energy_j
        assert mid1_baseline.energy_j["background"] > 0
        assert mid1_baseline.energy_j["mc"] > 0
        assert mid1_baseline.memory_energy_j > 0

    def test_no_transitions_in_baseline(self, mid1_baseline):
        assert mid1_baseline.transition_count == 0
        assert all(s.bus_mhz == 800.0 for s in mid1_baseline.timeline)

    def test_timeline_per_epoch(self, mid1_baseline):
        assert len(mid1_baseline.timeline) == mid1_baseline.epochs
        for sample in mid1_baseline.timeline:
            assert sample.memory_power_w > 0
            assert len(sample.channel_util) == CFG.org.channels
            assert all(0.0 <= u <= 1.0 for u in sample.channel_util)

    def test_cpi_at_least_cpu_floor(self, mid1_baseline):
        cpis = mid1_baseline.core_cpi(CFG.cpu.cycle_ns)
        assert np.all(cpis >= CFG.cpu.cpi_cpu)

    def test_runs_are_deterministic(self, small_runner, mid1_baseline):
        again = small_runner.run_governor("MID1", BaselineGovernor())
        assert again.wall_time_ns == mid1_baseline.wall_time_ns
        assert again.memory_energy_j == pytest.approx(
            mid1_baseline.memory_energy_j)


class TestMemScaleRun:
    def test_saves_memory_energy(self, mid1_memscale):
        _, cmp = mid1_memscale
        assert cmp.memory_energy_savings > 0.10

    def test_saves_system_energy(self, mid1_memscale):
        _, cmp = mid1_memscale
        assert cmp.system_energy_savings > 0.0

    def test_respects_cpi_bound(self, mid1_memscale):
        _, cmp = mid1_memscale
        assert cmp.worst_cpi_increase <= CFG.policy.cpi_bound + 0.02

    def test_uses_lower_frequencies(self, mid1_memscale):
        result, _ = mid1_memscale
        freqs = [s.bus_mhz for s in result.timeline]
        assert min(freqs) < 800.0

    def test_transitions_recorded(self, mid1_memscale):
        result, _ = mid1_memscale
        assert result.transition_count >= 1


class TestSimulatorValidation:
    def test_empty_workload_rejected(self):
        from repro.cpu.trace import WorkloadTrace
        with pytest.raises(ValueError):
            SystemSimulator(CFG, WorkloadTrace("empty", []),
                            BaselineGovernor())

    def test_max_epochs_guard(self):
        trace = generate_workload("ILP2", cores=4,
                                  instructions_per_core=100_000, seed=1)
        sim = SystemSimulator(CFG, trace, BaselineGovernor(), max_epochs=1)
        with pytest.raises(RuntimeError, match="did not reach"):
            sim.run()

    def test_explicit_target(self):
        trace = generate_workload("ILP2", cores=4,
                                  instructions_per_core=50_000, seed=1)
        sim = SystemSimulator(CFG, trace, BaselineGovernor(),
                              target_instructions=10_000)
        result = sim.run()
        assert result.target_instructions == 10_000


class TestRunner:
    def test_trace_cached(self, small_runner):
        assert small_runner.trace("MID1") is small_runner.trace("MID1")

    def test_baseline_cached(self, small_runner, mid1_baseline):
        assert small_runner.baseline("MID1") is mid1_baseline

    def test_rest_power_positive(self, small_runner):
        rest = small_runner.rest_power_w("MID1")
        # 40% fraction => rest is 1.5x DIMM power
        dimm = small_runner.baseline("MID1").avg_dimm_power_w
        assert rest == pytest.approx(1.5 * dimm)

    def test_named_governor_construction(self, small_runner):
        for name in ("Baseline", "Fast-PD", "Slow-PD", "Static",
                     "Decoupled", "MemScale", "MemScale(MemEnergy)",
                     "MemScale+Fast-PD"):
            governor = small_runner.make_named_governor("MID1", name)
            assert governor is not None

    def test_unknown_policy_rejected(self, small_runner):
        with pytest.raises(ValueError):
            small_runner.make_named_governor("MID1", "Bogus")

    def test_static_comparison(self, small_runner):
        cmp = small_runner.compare(
            "MID1", StaticFrequencyGovernor())
        assert cmp.memory_energy_savings > 0
        assert cmp.worst_cpi_increase < CFG.policy.cpi_bound


class TestCategoryOrdering:
    """The headline shape: ILP saves most, MEM least (Figure 5)."""

    @pytest.fixture(scope="class")
    def savings(self, small_runner):
        out = {}
        for mix in ("ILP2", "MID1", "MEM2"):
            _, cmp = small_runner.run_memscale(mix)
            out[mix] = cmp
        return out

    def test_ilp_saves_most_memory_energy(self, savings):
        assert (savings["ILP2"].memory_energy_savings
                > savings["MID1"].memory_energy_savings
                > savings["MEM2"].memory_energy_savings)

    def test_all_bounded(self, savings):
        for cmp in savings.values():
            assert cmp.worst_cpi_increase <= CFG.policy.cpi_bound + 0.02

    def test_all_save_memory_energy(self, savings):
        for cmp in savings.values():
            assert cmp.memory_energy_savings > 0
