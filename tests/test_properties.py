"""Property-based invariants of the memory-system simulator.

Hypothesis drives randomized request streams through a real controller
and checks conservation and ordering invariants that must hold for any
workload: every request completes exactly once, latencies decompose
monotonically, counters are consistent with completions, and state-time
accounting always sums to wall-clock time.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import scaled_config
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest, RequestKind
from repro.memsim.states import PowerdownMode

CFG = scaled_config()

#: A request spec: (delay offset ns, line address, is_read).
request_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
        st.integers(min_value=0, max_value=1 << 20),
        st.booleans(),
    ),
    min_size=1, max_size=60,
)


def drive(specs, powerdown=PowerdownMode.NONE):
    engine = EventEngine()
    mc = MemoryController(engine, CFG, powerdown_mode=powerdown,
                          refresh_enabled=False, n_cores=2)
    completed = []
    for delay, addr, is_read in specs:
        def submit(addr=addr, is_read=is_read):
            if is_read:
                mc.submit_read(addr, on_complete=completed.append)
            else:
                mc.submit_writeback(addr)
        engine.schedule(delay, submit)
    engine.run()
    return engine, mc, completed


class TestConservation:
    @given(request_specs)
    @settings(max_examples=40, deadline=None)
    def test_every_request_completes_exactly_once(self, specs):
        engine, mc, completed = drive(specs)
        reads = sum(1 for _, _, r in specs if r)
        writes = len(specs) - reads
        assert mc.completed_reads == reads
        assert mc.completed_writes == writes
        assert len(completed) == reads
        assert mc.pending_requests == 0

    @given(request_specs)
    @settings(max_examples=40, deadline=None)
    def test_counters_match_completions(self, specs):
        engine, mc, _ = drive(specs)
        n = len(specs)
        # every access is classified exactly once
        assert mc.counters.rbhc + mc.counters.obmc + mc.counters.cbmc == n
        # every request sampled the queue accumulators exactly once
        assert mc.counters.btc == n
        assert mc.counters.ctc == n
        # every non-hit performed an activate
        assert mc.counters.pocc == n - mc.counters.rbhc

    @given(request_specs)
    @settings(max_examples=40, deadline=None)
    def test_latency_decomposition_is_ordered(self, specs):
        engine, mc, completed = drive(specs)
        for request in completed:
            assert request.issue_ns <= request.arrive_bank_ns
            assert request.arrive_bank_ns <= request.bank_start_ns
            assert request.bank_start_ns < request.bank_done_ns
            assert request.bank_done_ns <= request.bus_start_ns
            assert request.bus_start_ns < request.complete_ns

    @given(request_specs)
    @settings(max_examples=30, deadline=None)
    def test_minimum_latency_floor(self, specs):
        """No request can beat MC + fastest array access + burst."""
        engine, mc, completed = drive(specs)
        floor = (CFG.timings.t_cl_ns  # best case: row hit
                 + 5 * 0.625          # MC processing at 1600 MHz
                 + 4 * 1.25)          # burst at 800 MHz
        for request in completed:
            assert request.total_latency_ns >= floor - 1e-9

    @given(request_specs)
    @settings(max_examples=25, deadline=None)
    def test_state_time_accounting_sums_to_wall_clock(self, specs):
        engine, mc, _ = drive(specs)
        mc.sync_accounting()
        wall = engine.now
        totals = mc.counters.rank_state_ns.sum(axis=1)
        assert np.allclose(totals, wall, atol=1e-6)

    @given(request_specs)
    @settings(max_examples=25, deadline=None)
    def test_powerdown_mode_preserves_conservation(self, specs):
        engine, mc, completed = drive(specs,
                                      powerdown=PowerdownMode.FAST_EXIT)
        reads = sum(1 for _, _, r in specs if r)
        assert len(completed) == reads
        assert mc.pending_requests == 0


class TestBusExclusivity:
    @given(request_specs)
    @settings(max_examples=30, deadline=None)
    def test_bursts_on_one_channel_never_overlap(self, specs):
        engine, mc, completed = drive(specs)
        by_channel = {}
        for request in completed:
            by_channel.setdefault(request.location.channel, []).append(
                (request.bus_start_ns, request.complete_ns))
        for intervals in by_channel.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    @given(request_specs)
    @settings(max_examples=30, deadline=None)
    def test_channel_busy_time_equals_burst_sum(self, specs):
        engine, mc, _ = drive(specs)
        n = len(specs)
        burst = 4 * 1.25
        assert mc.counters.channel_busy_ns.sum() == pytest.approx(n * burst)


class TestFrequencyInvariance:
    @given(request_specs,
           st.sampled_from([800.0, 533.0, 333.0, 200.0]))
    @settings(max_examples=25, deadline=None)
    def test_all_requests_complete_at_any_frequency(self, specs, bus_mhz):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=False, n_cores=2)
        mc.set_frequency_by_bus_mhz(bus_mhz)
        completed = []
        for delay, addr, is_read in specs:
            def submit(addr=addr, is_read=is_read):
                if is_read:
                    mc.submit_read(addr, on_complete=completed.append)
                else:
                    mc.submit_writeback(addr)
            engine.schedule(delay, submit)
        engine.run()
        reads = sum(1 for _, _, r in specs if r)
        assert len(completed) == reads
        assert mc.pending_requests == 0

    @given(st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=20, deadline=None)
    def test_isolated_read_slower_at_lower_frequency(self, addr):
        latencies = []
        for bus_mhz in (800.0, 200.0):
            engine = EventEngine()
            mc = MemoryController(engine, CFG, refresh_enabled=False,
                                  n_cores=1)
            mc.set_frequency_by_bus_mhz(bus_mhz)
            engine.run_until(mc.frozen_until_ns)
            done = []
            mc.submit_read(addr, on_complete=done.append)
            engine.run()
            latencies.append(done[0].total_latency_ns)
        assert latencies[1] > latencies[0]
