"""Property-based invariants of the memory-system simulator.

Hypothesis drives randomized request streams through a real controller
and checks conservation and ordering invariants that must hold for any
workload: every request completes exactly once, latencies decompose
monotonically, counters are consistent with completions, and state-time
accounting always sums to wall-clock time.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemoryOrgConfig, scaled_config
from repro.memsim.address import AddressMapper, MemoryLocation
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest, RequestKind
from repro.memsim.states import PowerdownMode

CFG = scaled_config()

#: A request spec: (delay offset ns, line address, is_read).
request_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
        st.integers(min_value=0, max_value=1 << 20),
        st.booleans(),
    ),
    min_size=1, max_size=60,
)


def drive(specs, powerdown=PowerdownMode.NONE):
    engine = EventEngine()
    mc = MemoryController(engine, CFG, powerdown_mode=powerdown,
                          refresh_enabled=False, n_cores=2)
    completed = []
    for delay, addr, is_read in specs:
        def submit(addr=addr, is_read=is_read):
            if is_read:
                mc.submit_read(addr, on_complete=completed.append)
            else:
                mc.submit_writeback(addr)
        engine.schedule(delay, submit)
    engine.run()
    return engine, mc, completed


class TestConservation:
    @given(request_specs)
    @settings(max_examples=40, deadline=None)
    def test_every_request_completes_exactly_once(self, specs):
        engine, mc, completed = drive(specs)
        reads = sum(1 for _, _, r in specs if r)
        writes = len(specs) - reads
        assert mc.completed_reads == reads
        assert mc.completed_writes == writes
        assert len(completed) == reads
        assert mc.pending_requests == 0

    @given(request_specs)
    @settings(max_examples=40, deadline=None)
    def test_counters_match_completions(self, specs):
        engine, mc, _ = drive(specs)
        n = len(specs)
        # every access is classified exactly once
        assert mc.counters.rbhc + mc.counters.obmc + mc.counters.cbmc == n
        # every request sampled the queue accumulators exactly once
        assert mc.counters.btc == n
        assert mc.counters.ctc == n
        # every non-hit performed an activate
        assert mc.counters.pocc == n - mc.counters.rbhc

    @given(request_specs)
    @settings(max_examples=40, deadline=None)
    def test_latency_decomposition_is_ordered(self, specs):
        engine, mc, completed = drive(specs)
        for request in completed:
            assert request.issue_ns <= request.arrive_bank_ns
            assert request.arrive_bank_ns <= request.bank_start_ns
            assert request.bank_start_ns < request.bank_done_ns
            assert request.bank_done_ns <= request.bus_start_ns
            assert request.bus_start_ns < request.complete_ns

    @given(request_specs)
    @settings(max_examples=30, deadline=None)
    def test_minimum_latency_floor(self, specs):
        """No request can beat MC + fastest array access + burst."""
        engine, mc, completed = drive(specs)
        floor = (CFG.timings.t_cl_ns  # best case: row hit
                 + 5 * 0.625          # MC processing at 1600 MHz
                 + 4 * 1.25)          # burst at 800 MHz
        for request in completed:
            assert request.total_latency_ns >= floor - 1e-9

    @given(request_specs)
    @settings(max_examples=25, deadline=None)
    def test_state_time_accounting_sums_to_wall_clock(self, specs):
        engine, mc, _ = drive(specs)
        mc.sync_accounting()
        wall = engine.now
        totals = np.array(mc.counters.rank_state_ns).sum(axis=1)
        assert np.allclose(totals, wall, atol=1e-6)

    @given(request_specs)
    @settings(max_examples=25, deadline=None)
    def test_powerdown_mode_preserves_conservation(self, specs):
        engine, mc, completed = drive(specs,
                                      powerdown=PowerdownMode.FAST_EXIT)
        reads = sum(1 for _, _, r in specs if r)
        assert len(completed) == reads
        assert mc.pending_requests == 0


class TestBusExclusivity:
    @given(request_specs)
    @settings(max_examples=30, deadline=None)
    def test_bursts_on_one_channel_never_overlap(self, specs):
        engine, mc, completed = drive(specs)
        by_channel = {}
        for request in completed:
            by_channel.setdefault(request.location.channel, []).append(
                (request.bus_start_ns, request.complete_ns))
        for intervals in by_channel.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    @given(request_specs)
    @settings(max_examples=30, deadline=None)
    def test_channel_busy_time_equals_burst_sum(self, specs):
        engine, mc, _ = drive(specs)
        n = len(specs)
        burst = 4 * 1.25
        assert sum(mc.counters.channel_busy_ns) == pytest.approx(n * burst)


class TestFrequencyInvariance:
    @given(request_specs,
           st.sampled_from([800.0, 533.0, 333.0, 200.0]))
    @settings(max_examples=25, deadline=None)
    def test_all_requests_complete_at_any_frequency(self, specs, bus_mhz):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=False, n_cores=2)
        mc.set_frequency_by_bus_mhz(bus_mhz)
        completed = []
        for delay, addr, is_read in specs:
            def submit(addr=addr, is_read=is_read):
                if is_read:
                    mc.submit_read(addr, on_complete=completed.append)
                else:
                    mc.submit_writeback(addr)
            engine.schedule(delay, submit)
        engine.run()
        reads = sum(1 for _, _, r in specs if r)
        assert len(completed) == reads
        assert mc.pending_requests == 0

    @given(st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=20, deadline=None)
    def test_isolated_read_slower_at_lower_frequency(self, addr):
        latencies = []
        for bus_mhz in (800.0, 200.0):
            engine = EventEngine()
            mc = MemoryController(engine, CFG, refresh_enabled=False,
                                  n_cores=1)
            mc.set_frequency_by_bus_mhz(bus_mhz)
            engine.run_until(mc.frozen_until_ns)
            done = []
            mc.submit_read(addr, on_complete=done.append)
            engine.run()
            latencies.append(done[0].total_latency_ns)
        assert latencies[1] > latencies[0]


#: Randomized but always-valid memory geometries for the address mapper.
#: Tests draw addresses below each geometry's capacity, where encode is
#: a true inverse of decode (beyond it the row index wraps).
geometries = st.builds(
    lambda channels, banks, ranks, lines, rows: MemoryOrgConfig(
        channels=channels, dimms_per_channel=1, ranks_per_dimm=ranks,
        banks_per_rank=banks, rows_per_bank=rows,
        cache_line_bytes=64, row_size_bytes=64 * lines),
    channels=st.integers(min_value=1, max_value=8),
    banks=st.integers(min_value=1, max_value=16),
    ranks=st.integers(min_value=1, max_value=4),
    lines=st.integers(min_value=1, max_value=256),
    rows=st.integers(min_value=1 << 16, max_value=1 << 20),
)


class TestAddressMapping:
    """decode/encode are mutually inverse bijections on any geometry."""

    @given(geometries, st.data())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_from_address(self, org, data):
        org.validate()
        mapper = AddressMapper(org)
        # Stay below the geometry's capacity in cache lines: beyond it
        # the row index wraps (decode is total, encode inverts only the
        # non-wrapped range).
        capacity = (org.channels * org.ranks_per_channel
                    * org.banks_per_rank * org.rows_per_bank
                    * org.lines_per_row)
        addr = data.draw(
            st.integers(0, min(capacity, 1 << 40) - 1), label="addr")
        loc = mapper.decode(addr)
        assert 0 <= loc.channel < org.channels
        assert 0 <= loc.rank < org.ranks_per_channel
        assert 0 <= loc.bank < org.banks_per_rank
        assert 0 <= loc.row < org.rows_per_bank
        assert 0 <= loc.column < org.lines_per_row
        assert mapper.encode(loc) == addr

    @given(geometries, st.data())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_from_location(self, org, data):
        mapper = AddressMapper(org)
        loc = MemoryLocation(
            channel=data.draw(st.integers(0, org.channels - 1)),
            rank=data.draw(st.integers(0, org.ranks_per_channel - 1)),
            bank=data.draw(st.integers(0, org.banks_per_rank - 1)),
            row=data.draw(st.integers(0, org.rows_per_bank - 1)),
            column=data.draw(st.integers(0, org.lines_per_row - 1)),
        )
        assert mapper.decode(mapper.encode(loc)) == loc

    @given(geometries, st.data())
    @settings(max_examples=100, deadline=None)
    def test_decode_is_injective(self, org, data):
        mapper = AddressMapper(org)
        capacity = (org.channels * org.ranks_per_channel
                    * org.banks_per_rank * org.rows_per_bank
                    * org.lines_per_row)
        addrs = data.draw(
            st.lists(st.integers(0, min(capacity, 1 << 40) - 1),
                     min_size=2, max_size=50, unique=True), label="addrs")
        locations = [mapper.decode(a) for a in addrs]
        assert len(set(locations)) == len(locations)

    @given(geometries)
    @settings(max_examples=50, deadline=None)
    def test_consecutive_lines_interleave_channels(self, org):
        # Cache-line interleaving: consecutive addresses walk channels
        # round-robin before anything else changes.
        mapper = AddressMapper(org)
        for addr in range(min(4 * org.channels, 64)):
            assert mapper.decode(addr).channel == addr % org.channels


#: An event plan: per event a (delay, cancel_me) pair. Cancellation is
#: decided up front so the expected firing set is computable.
event_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1, max_size=80,
)


class TestEngineOrderingUnderCancellation:
    """The event loop's contract survives arbitrary cancellation."""

    @given(event_plans)
    @settings(max_examples=100, deadline=None)
    def test_fired_events_sorted_and_cancelled_skipped(self, plan):
        engine = EventEngine()
        fired = []
        events = []
        for i, (delay, _) in enumerate(plan):
            events.append(engine.schedule(
                delay, lambda i=i: fired.append((engine.now, i))))
        for event, (_, cancel_me) in zip(events, plan):
            if cancel_me:
                event.cancel()
        engine.run()
        expected = [i for i, (_, c) in enumerate(plan) if not c]
        assert sorted(f[1] for f in fired) == expected
        # (time, insertion seq) ordering: times never decrease, and ties
        # fire in submission order.
        times = [t for t, _ in fired]
        assert times == sorted(times)
        for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
            if t1 == t2:
                assert i1 < i2
        assert engine.pending == 0

    @given(event_plans, st.data())
    @settings(max_examples=100, deadline=None)
    def test_callbacks_cancelling_future_events(self, plan, data):
        # Cancels issued *from inside callbacks* (the simulator's actual
        # pattern) must prevent later-scheduled victims from firing.
        engine = EventEngine()
        fired = []
        events = []
        victims = {}
        for i, (delay, _) in enumerate(plan):
            def callback(i=i):
                fired.append(i)
                victim = victims.get(i)
                if victim is not None:
                    victim.cancel()
            events.append(engine.schedule(delay, callback))
        # Each cancelling event picks a victim that fires strictly later.
        order = sorted(range(len(plan)), key=lambda i: (plan[i][0], i))
        for pos, i in enumerate(order):
            if plan[i][1] and pos + 1 < len(order):
                target_pos = data.draw(
                    st.integers(pos + 1, len(order) - 1), label="victim")
                victims[i] = events[order[target_pos]]
        engine.run()
        # Exactly the never-cancelled events fired, once each, in
        # (time, seq) order; victims sort strictly after their canceller,
        # so every cancel lands before its victim would have popped.
        expected = [i for i in order if not events[i].cancelled]
        assert fired == expected
        assert engine.pending == 0
        assert engine.events_processed >= len(fired)
