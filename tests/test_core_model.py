"""Tests for the trace-driven in-order core model."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.cpu.core_model import Core, CpuCluster
from repro.cpu.trace import CoreTrace
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine

CFG = scaled_config()


def make_trace(gaps, app="test", wb_every=0):
    gaps = np.asarray(gaps, dtype=np.int64)
    n = len(gaps)
    reads = np.arange(n, dtype=np.int64) * 64  # spread over banks
    if wb_every:
        wbs = np.where(np.arange(n) % wb_every == 0,
                       reads + 7, -1).astype(np.int64)
    else:
        wbs = np.full(n, -1, dtype=np.int64)
    return CoreTrace(app_name=app, app_id=0, gaps=gaps,
                     read_addrs=reads, wb_addrs=wbs)


def make_system(traces, loop=True):
    engine = EventEngine()
    controller = MemoryController(engine, CFG, refresh_enabled=False,
                                  n_cores=len(traces))
    cluster = CpuCluster(engine, controller, CFG.cpu, traces,
                         loop_traces=loop)
    return engine, controller, cluster


class TestSingleCore:
    def test_empty_trace_rejected(self):
        engine = EventEngine()
        controller = MemoryController(engine, CFG, refresh_enabled=False,
                                      n_cores=1)
        empty = CoreTrace("x", 0, np.zeros(0, np.int64),
                          np.zeros(0, np.int64), np.zeros(0, np.int64))
        with pytest.raises(ValueError):
            Core(engine, controller, CFG.cpu, empty, core_id=0)

    def test_replay_commits_all_instructions(self):
        engine, controller, cluster = make_system(
            [make_trace([100, 200, 300])], loop=False)
        cluster.start()
        engine.run()
        core = cluster.cores[0]
        assert core.finished
        # gaps plus one committed instruction per completed miss
        assert core.instructions_committed == 600 + 3
        assert core.misses_issued == 3

    def test_counters_match_core_state(self):
        engine, controller, cluster = make_system(
            [make_trace([50, 50])], loop=False)
        cluster.start()
        engine.run()
        assert controller.counters.tic[0] == cluster.cores[0].instructions_committed
        assert controller.counters.tlm[0] == 2

    def test_compute_time_respects_cpi_cpu(self):
        engine, controller, cluster = make_system(
            [make_trace([1000])], loop=False)
        cluster.start()
        engine.run()
        core = cluster.cores[0]
        compute_ns = 1000 * CFG.cpu.cpi_cpu * CFG.cpu.cycle_ns
        # total time is compute plus one memory round trip
        assert engine.now >= compute_ns
        assert engine.now < compute_ns + 200.0

    def test_blocking_one_outstanding_miss(self):
        engine, controller, cluster = make_system(
            [make_trace([10, 10, 10])], loop=False)
        cluster.start()
        core = cluster.cores[0]
        # run a tiny bit past the first issue: the core must be blocked
        engine.run_until(10 * CFG.cpu.cpi_cpu * CFG.cpu.cycle_ns + 1.0)
        assert core.blocked
        engine.run()
        assert not core.blocked

    def test_trace_wraps_when_looping(self):
        engine, controller, cluster = make_system([make_trace([10, 10])],
                                                  loop=True)
        cluster.start()
        engine.run_until(5_000.0)
        core = cluster.cores[0]
        assert core.trace_passes >= 1
        assert core.misses_issued > 2

    def test_writebacks_do_not_block(self):
        t_with = make_trace([100, 100], wb_every=1)
        t_without = make_trace([100, 100])
        e1, _, c1 = make_system([t_with], loop=False)
        e2, _, c2 = make_system([t_without], loop=False)
        c1.start()
        c2.start()
        e1.run()
        e2.run()
        # writebacks may add queueing but no synchronous stall: same
        # order of magnitude completion
        assert e1.now < e2.now * 1.5

    def test_double_start_rejected(self):
        engine, controller, cluster = make_system([make_trace([10])])
        cluster.start()
        with pytest.raises(RuntimeError):
            cluster.cores[0].start()


class TestTargets:
    def test_time_at_target_recorded(self):
        engine, controller, cluster = make_system([make_trace([100, 100])],
                                                  loop=True)
        cluster.set_target(150)
        cluster.start()
        engine.run_until(10_000.0)
        core = cluster.cores[0]
        assert core.reached_target
        assert 0 < core.time_at_target_ns <= 10_000.0

    def test_target_monotone_with_size(self):
        times = []
        for target in (100, 200):
            engine, controller, cluster = make_system(
                [make_trace([100, 100])], loop=True)
            cluster.set_target(target)
            cluster.start()
            engine.run_until(10_000.0)
            times.append(cluster.cores[0].time_at_target_ns)
        assert times[0] < times[1]

    def test_invalid_target_rejected(self):
        engine, controller, cluster = make_system([make_trace([10])])
        with pytest.raises(ValueError):
            cluster.set_target(0)

    def test_all_reached_target(self):
        engine, controller, cluster = make_system(
            [make_trace([10, 10]), make_trace([5000, 5000])], loop=True)
        cluster.set_target(30)
        cluster.start()
        engine.run_until(100.0)
        assert not cluster.all_reached_target()
        engine.run_until(50_000.0)
        assert cluster.all_reached_target()


class TestProgressiveCommit:
    def test_sync_commits_partial_gap(self):
        engine, controller, cluster = make_system([make_trace([10_000])],
                                                  loop=False)
        cluster.start()
        # halfway through the compute gap
        halfway_ns = 5_000 * CFG.cpu.cpi_cpu * CFG.cpu.cycle_ns
        engine.run_until(halfway_ns)
        cluster.sync_committed()
        committed = cluster.cores[0].instructions_committed
        assert committed == pytest.approx(5_000, abs=2)

    def test_sync_is_idempotent_at_same_time(self):
        engine, controller, cluster = make_system([make_trace([1000])],
                                                  loop=False)
        cluster.start()
        engine.run_until(100.0)
        cluster.sync_committed()
        first = cluster.cores[0].instructions_committed
        cluster.sync_committed()
        assert cluster.cores[0].instructions_committed == first

    def test_total_unchanged_by_syncing(self):
        # With and without mid-run syncs, the final committed count match.
        engine1, _, c1 = make_system([make_trace([100, 100, 100])],
                                     loop=False)
        c1.start()
        engine1.run()
        total_plain = c1.cores[0].instructions_committed

        engine2, _, c2 = make_system([make_trace([100, 100, 100])],
                                     loop=False)
        c2.start()
        while engine2.step():
            c2.sync_committed()
        assert c2.cores[0].instructions_committed == total_plain


class TestCluster:
    def test_requires_traces(self):
        engine = EventEngine()
        controller = MemoryController(engine, CFG, refresh_enabled=False,
                                      n_cores=1)
        with pytest.raises(ValueError):
            CpuCluster(engine, controller, CFG.cpu, [])

    def test_min_instructions_committed(self):
        engine, controller, cluster = make_system(
            [make_trace([10]), make_trace([10_000])], loop=False)
        cluster.start()
        engine.run()
        assert (cluster.min_instructions_committed()
                == min(c.instructions_committed for c in cluster.cores))
