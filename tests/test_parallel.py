"""Tests for the parallel runner (sim/parallel.py) and the on-disk
cache (sim/cache.py): hit/miss/invalidation semantics, corruption
fallback, and serial-vs-parallel determinism."""

import json

import pytest

from repro.config import scaled_config
from repro.cpu.trace import columnar_sidecar_path
from repro.cpu.workloads import MIXES
from repro.sim.cache import ExperimentCache
from repro.sim.parallel import (
    generate_traces,
    run_sweep,
    sweep_table,
    telemetry_filename,
)
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.serialize import run_result_to_dict
from repro.sim.telemetry import load_telemetry

SETTINGS = RunnerSettings(cores=4, instructions_per_core=8_000, seed=7)


def result_bytes(result):
    """Canonical byte representation for exact-equality assertions."""
    return json.dumps(run_result_to_dict(result), sort_keys=True).encode()


class TestCache:
    def test_trace_miss_then_hit(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        runner.trace("MID1")
        assert (cache.hits, cache.misses) == (0, 1)
        # A fresh runner over the same cache loads instead of generating.
        cache2 = ExperimentCache(tmp_path)
        runner2 = ExperimentRunner(settings=SETTINGS, cache=cache2)
        trace = runner2.trace("MID1")
        assert (cache2.hits, cache2.misses) == (1, 0)
        assert trace.rpki == runner.trace("MID1").rpki

    def test_baseline_miss_then_hit_is_identical(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        first = runner.baseline("MID1")
        runner2 = ExperimentRunner(settings=SETTINGS,
                                   cache=ExperimentCache(tmp_path))
        second = runner2.baseline("MID1")
        assert result_bytes(first) == result_bytes(second)

    def test_config_change_invalidates_baseline(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        config = scaled_config()
        key_a = cache.baseline_key(config, "MID1", 4, 8_000, 7)
        key_b = cache.baseline_key(config.with_policy(cpi_bound=0.05),
                                   "MID1", 4, 8_000, 7)
        assert key_a != key_b

    def test_settings_change_invalidates_trace(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        assert cache.trace_key("MID1", 4, 8_000, 7) \
            != cache.trace_key("MID1", 4, 8_000, 8)
        assert cache.trace_key("MID1", 4, 8_000, 7) \
            != cache.trace_key("MID1", 4, 16_000, 7)
        assert cache.trace_key("MID1", 4, 8_000, 7) \
            != cache.trace_key("MID2", 4, 8_000, 7)

    def test_trace_key_ignores_config(self, tmp_path):
        """Config sweeps (Figures 12-15) must share one trace per mix."""
        cache = ExperimentCache(tmp_path)
        runner_a = ExperimentRunner(config=scaled_config(),
                                    settings=SETTINGS, cache=cache)
        runner_a.trace("MID1")
        cache_b = ExperimentCache(tmp_path)
        runner_b = ExperimentRunner(
            config=scaled_config().with_policy(cpi_bound=0.05),
            settings=SETTINGS, cache=cache_b)
        runner_b.trace("MID1")
        assert cache_b.hits == 1

    def test_corrupted_trace_falls_back_to_regeneration(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        expected = runner.trace("MID1")
        path = cache._trace_path(
            cache.trace_key("MID1", SETTINGS.cores,
                            SETTINGS.instructions_per_core, SETTINGS.seed))
        path.write_bytes(b"not an npz file")
        cache2 = ExperimentCache(tmp_path)
        runner2 = ExperimentRunner(settings=SETTINGS, cache=cache2)
        regenerated = runner2.trace("MID1")
        assert cache2.hits == 0 and cache2.misses == 1
        assert not path.exists() or path.stat().st_size > 20
        assert regenerated.rpki == expected.rpki

    def test_corrupted_baseline_falls_back_to_rerun(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        expected = runner.baseline("MID1")
        key = cache.baseline_key(runner.config, "MID1", SETTINGS.cores,
                                 SETTINGS.instructions_per_core,
                                 SETTINGS.seed)
        cache._run_path(key).write_text("{ truncated json")
        cache2 = ExperimentCache(tmp_path)
        runner2 = ExperimentRunner(settings=SETTINGS, cache=cache2)
        rerun = runner2.baseline("MID1")
        assert result_bytes(rerun) == result_bytes(expected)

    def test_entries_counts_stored_artifacts(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        assert cache.entries == 0
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        runner.baseline("MID1")
        assert cache.entries == 2  # one trace + one baseline run

    def test_cached_trace_loads_as_shared_memory_map(self, tmp_path):
        import numpy as np
        cache = ExperimentCache(tmp_path)
        ExperimentRunner(settings=SETTINGS, cache=cache).trace("MID1")
        cache2 = ExperimentCache(tmp_path)
        trace = ExperimentRunner(settings=SETTINGS, cache=cache2).trace("MID1")
        assert cache2.hits == 1
        base = trace.cores[0].gaps.base
        assert isinstance(base, np.memmap)
        # every core slices the same on-disk map — the zero-copy fan-out
        assert all(c.gaps.base is base for c in trace.cores)

    def test_legacy_npz_entry_is_still_readable(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        expected = runner.trace("MID1")
        key = cache.trace_key("MID1", SETTINGS.cores,
                              SETTINGS.instructions_per_core, SETTINGS.seed)
        # rewrite the entry as an old-format compressed archive
        cache._trace_path(key).unlink()
        columnar_sidecar_path(cache._trace_path(key)).unlink()
        expected.save(cache._legacy_trace_path(key))
        cache2 = ExperimentCache(tmp_path)
        trace = ExperimentRunner(settings=SETTINGS, cache=cache2).trace("MID1")
        assert cache2.hits == 1
        assert trace.rpki == expected.rpki
        assert cache2.entries == 1

    def test_stats_reports_counts_and_footprint(self, tmp_path):
        cache = ExperimentCache(tmp_path / "c")
        empty = cache.stats()
        assert empty["trace_entries"] == 0
        assert empty["run_entries"] == 0
        assert empty["total_bytes"] == 0
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        runner.baseline("MID1")
        stats = cache.stats()
        assert stats["trace_entries"] == 1
        assert stats["legacy_trace_entries"] == 0
        assert stats["run_entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["root"] == str(cache.root)

    def test_prune_removes_everything_but_the_root(self, tmp_path):
        cache = ExperimentCache(tmp_path / "c")
        ExperimentRunner(settings=SETTINGS, cache=cache).baseline("MID1")
        before = cache.stats()["total_bytes"]
        removed = cache.prune()
        assert removed["files_removed"] >= 3  # trace + sidecar + run
        assert removed["bytes_removed"] == before
        assert cache.stats()["total_bytes"] == 0
        assert cache.entries == 0
        # the cache still works after a prune
        cache2 = ExperimentCache(cache.root)
        ExperimentRunner(settings=SETTINGS, cache=cache2).trace("MID1")
        assert cache2.misses == 1
        assert cache2.entries == 1

    def test_prune_on_missing_root_is_a_noop(self, tmp_path):
        cache = ExperimentCache(tmp_path / "never-created")
        assert cache.prune() == {"files_removed": 0, "bytes_removed": 0}


class TestRunSweep:
    def test_rejects_unknown_inputs(self):
        with pytest.raises(ValueError, match="unknown mix"):
            run_sweep(["NOPE"], ["MemScale"], settings=SETTINGS,
                      cache_dir=None, jobs=1)
        with pytest.raises(ValueError, match="unknown policy"):
            run_sweep(["MID1"], ["NOPE"], settings=SETTINGS,
                      cache_dir=None, jobs=1)
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                      cache_dir=None, jobs=0)

    def test_outcomes_in_input_order(self, tmp_path):
        outcomes = run_sweep(["MID2", "MID1"], ["Static", "MemScale"],
                             settings=SETTINGS, jobs=1,
                             cache_dir=tmp_path / "c")
        assert [(o.mix, o.policy) for o in outcomes] == [
            ("MID2", "Static"), ("MID2", "MemScale"),
            ("MID1", "Static"), ("MID1", "MemScale")]
        assert sweep_table(outcomes)  # report rows render

    def test_parallel_matches_serial_byte_identically(self, tmp_path):
        mixes, policies = ["MID1", "ILP1"], ["MemScale", "Static"]
        serial = run_sweep(mixes, policies, settings=SETTINGS, jobs=1,
                           cache_dir=None)
        parallel = run_sweep(mixes, policies, settings=SETTINGS, jobs=2,
                             cache_dir=tmp_path / "c")
        for a, b in zip(serial, parallel):
            assert (a.mix, a.policy) == (b.mix, b.policy)
            assert result_bytes(a.result) == result_bytes(b.result)
            assert a.comparison.system_energy_savings \
                == b.comparison.system_energy_savings

    def test_four_workers_match_serial_byte_identically(self, tmp_path):
        # Worker count must never leak into results: fan-out only
        # changes scheduling, the per-run simulation is sequential.
        mixes, policies = ["MID1"], ["MemScale", "Static"]
        serial = run_sweep(mixes, policies, settings=SETTINGS, jobs=1,
                           cache_dir=None)
        wide = run_sweep(mixes, policies, settings=SETTINGS, jobs=4,
                         cache_dir=tmp_path / "c")
        for a, b in zip(serial, wide):
            assert (a.mix, a.policy) == (b.mix, b.policy)
            assert result_bytes(a.result) == result_bytes(b.result)

    def test_validator_does_not_perturb_results(self, tmp_path):
        # The DDR3 protocol validator is an observer: arming it must not
        # change a single bit of the simulation outcome.
        plain = run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                          jobs=1, cache_dir=None)
        armed = run_sweep(["MID1"], ["MemScale"],
                          config=scaled_config().replace(
                              validate_protocol=True),
                          settings=SETTINGS, jobs=1, cache_dir=None)
        assert result_bytes(plain[0].result) == result_bytes(armed[0].result)
        assert plain[0].comparison.system_energy_savings \
            == armed[0].comparison.system_energy_savings

    def test_rerun_with_warm_cache_is_identical(self, tmp_path):
        cold = run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                         jobs=2, cache_dir=tmp_path / "c")
        warm = run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                         jobs=2, cache_dir=tmp_path / "c")
        assert result_bytes(cold[0].result) == result_bytes(warm[0].result)
        assert warm[0].cache_hits >= 2  # trace + baseline both from disk

    def test_baseline_policy_compares_to_itself(self, tmp_path):
        outcomes = run_sweep(["MID1"], ["Baseline"], settings=SETTINGS,
                             jobs=1, cache_dir=tmp_path / "c")
        cmp = outcomes[0].comparison
        assert cmp.memory_energy_savings == pytest.approx(0.0)
        assert cmp.worst_cpi_increase == pytest.approx(0.0)

    def test_telemetry_files_written_per_run(self, tmp_path):
        outcomes = run_sweep(["MID1"], ["MemScale", "Static"],
                             settings=SETTINGS, jobs=2,
                             cache_dir=tmp_path / "c",
                             telemetry_dir=tmp_path / "t")
        for o in outcomes:
            assert o.telemetry_path is not None
            records = load_telemetry(o.telemetry_path)
            assert len(records) == o.result.epochs
            # Governor names may embed detail (e.g. "Static-467MHz").
            assert records[0]["governor"].startswith(o.policy)

    def test_telemetry_filename_is_filesystem_safe(self):
        name = telemetry_filename("MID1", "MemScale(MemEnergy)")
        assert "(" not in name and ")" not in name
        assert name.endswith(".jsonl")


class TestGenerateTraces:
    def test_matches_serial_generation(self, tmp_path):
        import numpy as np
        traces = generate_traces(["MID1", "ILP1"], settings=SETTINGS,
                                 jobs=2, cache_dir=tmp_path / "c")
        runner = ExperimentRunner(settings=SETTINGS)
        for mix in ("MID1", "ILP1"):
            expected = runner.trace(mix)
            got = traces[mix]
            assert len(got) == len(expected)
            for a, b in zip(expected.cores, got.cores):
                assert np.array_equal(a.gaps, b.gaps)
                assert np.array_equal(a.read_addrs, b.read_addrs)
                assert np.array_equal(a.wb_addrs, b.wb_addrs)

    def test_all_mixes_resolve(self, tmp_path):
        traces = generate_traces(list(MIXES)[:3], settings=SETTINGS,
                                 jobs=1, cache_dir=None)
        assert len(traces) == 3
