"""Tests for the parallel runner (sim/parallel.py) and the on-disk
cache (sim/cache.py): hit/miss/invalidation semantics, corruption
fallback, and serial-vs-parallel determinism."""

import json
import os
import signal
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.cpu.trace import columnar_sidecar_path
from repro.cpu.workloads import MIXES
from repro.sim.cache import ExperimentCache
from repro.sim.parallel import (
    JobFailure,
    SweepJob,
    _run_job,
    default_jobs,
    execute_jobs,
    generate_traces,
    run_sweep,
    split_outcomes,
    sweep_table,
    telemetry_filename,
)
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.serialize import run_result_to_dict
from repro.sim.telemetry import load_telemetry

SETTINGS = RunnerSettings(cores=4, instructions_per_core=8_000, seed=7)


def result_bytes(result):
    """Canonical byte representation for exact-equality assertions."""
    return json.dumps(run_result_to_dict(result), sort_keys=True).encode()


class TestCache:
    def test_trace_miss_then_hit(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        runner.trace("MID1")
        assert (cache.hits, cache.misses) == (0, 1)
        # A fresh runner over the same cache loads instead of generating.
        cache2 = ExperimentCache(tmp_path)
        runner2 = ExperimentRunner(settings=SETTINGS, cache=cache2)
        trace = runner2.trace("MID1")
        assert (cache2.hits, cache2.misses) == (1, 0)
        assert trace.rpki == runner.trace("MID1").rpki

    def test_baseline_miss_then_hit_is_identical(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        first = runner.baseline("MID1")
        runner2 = ExperimentRunner(settings=SETTINGS,
                                   cache=ExperimentCache(tmp_path))
        second = runner2.baseline("MID1")
        assert result_bytes(first) == result_bytes(second)

    def test_config_change_invalidates_baseline(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        config = scaled_config()
        key_a = cache.baseline_key(config, "MID1", 4, 8_000, 7)
        key_b = cache.baseline_key(config.with_policy(cpi_bound=0.05),
                                   "MID1", 4, 8_000, 7)
        assert key_a != key_b

    def test_settings_change_invalidates_trace(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        assert cache.trace_key("MID1", 4, 8_000, 7) \
            != cache.trace_key("MID1", 4, 8_000, 8)
        assert cache.trace_key("MID1", 4, 8_000, 7) \
            != cache.trace_key("MID1", 4, 16_000, 7)
        assert cache.trace_key("MID1", 4, 8_000, 7) \
            != cache.trace_key("MID2", 4, 8_000, 7)

    def test_trace_key_ignores_config(self, tmp_path):
        """Config sweeps (Figures 12-15) must share one trace per mix."""
        cache = ExperimentCache(tmp_path)
        runner_a = ExperimentRunner(config=scaled_config(),
                                    settings=SETTINGS, cache=cache)
        runner_a.trace("MID1")
        cache_b = ExperimentCache(tmp_path)
        runner_b = ExperimentRunner(
            config=scaled_config().with_policy(cpi_bound=0.05),
            settings=SETTINGS, cache=cache_b)
        runner_b.trace("MID1")
        assert cache_b.hits == 1

    def test_corrupted_trace_falls_back_to_regeneration(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        expected = runner.trace("MID1")
        path = cache._trace_path(
            cache.trace_key("MID1", SETTINGS.cores,
                            SETTINGS.instructions_per_core, SETTINGS.seed))
        path.write_bytes(b"not an npz file")
        cache2 = ExperimentCache(tmp_path)
        runner2 = ExperimentRunner(settings=SETTINGS, cache=cache2)
        regenerated = runner2.trace("MID1")
        assert cache2.hits == 0 and cache2.misses == 1
        assert not path.exists() or path.stat().st_size > 20
        assert regenerated.rpki == expected.rpki

    def test_corrupted_baseline_falls_back_to_rerun(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        expected = runner.baseline("MID1")
        key = cache.baseline_key(runner.config, "MID1", SETTINGS.cores,
                                 SETTINGS.instructions_per_core,
                                 SETTINGS.seed)
        cache._run_path(key).write_text("{ truncated json")
        cache2 = ExperimentCache(tmp_path)
        runner2 = ExperimentRunner(settings=SETTINGS, cache=cache2)
        rerun = runner2.baseline("MID1")
        assert result_bytes(rerun) == result_bytes(expected)

    def test_entries_counts_stored_artifacts(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        assert cache.entries == 0
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        runner.baseline("MID1")
        assert cache.entries == 2  # one trace + one baseline run

    def test_cached_trace_loads_as_shared_memory_map(self, tmp_path):
        import numpy as np
        cache = ExperimentCache(tmp_path)
        ExperimentRunner(settings=SETTINGS, cache=cache).trace("MID1")
        cache2 = ExperimentCache(tmp_path)
        trace = ExperimentRunner(settings=SETTINGS, cache=cache2).trace("MID1")
        assert cache2.hits == 1
        base = trace.cores[0].gaps.base
        assert isinstance(base, np.memmap)
        # every core slices the same on-disk map — the zero-copy fan-out
        assert all(c.gaps.base is base for c in trace.cores)

    def test_legacy_npz_entry_is_still_readable(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        expected = runner.trace("MID1")
        key = cache.trace_key("MID1", SETTINGS.cores,
                              SETTINGS.instructions_per_core, SETTINGS.seed)
        # rewrite the entry as an old-format compressed archive
        cache._trace_path(key).unlink()
        columnar_sidecar_path(cache._trace_path(key)).unlink()
        expected.save(cache._legacy_trace_path(key))
        cache2 = ExperimentCache(tmp_path)
        trace = ExperimentRunner(settings=SETTINGS, cache=cache2).trace("MID1")
        assert cache2.hits == 1
        assert trace.rpki == expected.rpki
        assert cache2.entries == 1

    def test_stats_reports_counts_and_footprint(self, tmp_path):
        cache = ExperimentCache(tmp_path / "c")
        empty = cache.stats()
        assert empty["trace_entries"] == 0
        assert empty["run_entries"] == 0
        assert empty["total_bytes"] == 0
        runner = ExperimentRunner(settings=SETTINGS, cache=cache)
        runner.baseline("MID1")
        stats = cache.stats()
        assert stats["trace_entries"] == 1
        assert stats["legacy_trace_entries"] == 0
        assert stats["run_entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["root"] == str(cache.root)

    def test_prune_removes_everything_but_the_root(self, tmp_path):
        cache = ExperimentCache(tmp_path / "c")
        ExperimentRunner(settings=SETTINGS, cache=cache).baseline("MID1")
        before = cache.stats()["total_bytes"]
        removed = cache.prune()
        assert removed["files_removed"] >= 3  # trace + sidecar + run
        assert removed["bytes_removed"] == before
        assert cache.stats()["total_bytes"] == 0
        assert cache.entries == 0
        # the cache still works after a prune
        cache2 = ExperimentCache(cache.root)
        ExperimentRunner(settings=SETTINGS, cache=cache2).trace("MID1")
        assert cache2.misses == 1
        assert cache2.entries == 1

    def test_prune_on_missing_root_is_a_noop(self, tmp_path):
        cache = ExperimentCache(tmp_path / "never-created")
        assert cache.prune() == {"files_removed": 0, "bytes_removed": 0}


class TestRunSweep:
    def test_rejects_unknown_inputs(self):
        with pytest.raises(ValueError, match="unknown mix"):
            run_sweep(["NOPE"], ["MemScale"], settings=SETTINGS,
                      cache_dir=None, jobs=1)
        with pytest.raises(ValueError, match="unknown policy"):
            run_sweep(["MID1"], ["NOPE"], settings=SETTINGS,
                      cache_dir=None, jobs=1)
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                      cache_dir=None, jobs=0)

    def test_outcomes_in_input_order(self, tmp_path):
        outcomes = run_sweep(["MID2", "MID1"], ["Static", "MemScale"],
                             settings=SETTINGS, jobs=1,
                             cache_dir=tmp_path / "c")
        assert [(o.mix, o.policy) for o in outcomes] == [
            ("MID2", "Static"), ("MID2", "MemScale"),
            ("MID1", "Static"), ("MID1", "MemScale")]
        assert sweep_table(outcomes)  # report rows render

    def test_parallel_matches_serial_byte_identically(self, tmp_path):
        mixes, policies = ["MID1", "ILP1"], ["MemScale", "Static"]
        serial = run_sweep(mixes, policies, settings=SETTINGS, jobs=1,
                           cache_dir=None)
        parallel = run_sweep(mixes, policies, settings=SETTINGS, jobs=2,
                             cache_dir=tmp_path / "c")
        for a, b in zip(serial, parallel):
            assert (a.mix, a.policy) == (b.mix, b.policy)
            assert result_bytes(a.result) == result_bytes(b.result)
            assert a.comparison.system_energy_savings \
                == b.comparison.system_energy_savings

    def test_four_workers_match_serial_byte_identically(self, tmp_path):
        # Worker count must never leak into results: fan-out only
        # changes scheduling, the per-run simulation is sequential.
        mixes, policies = ["MID1"], ["MemScale", "Static"]
        serial = run_sweep(mixes, policies, settings=SETTINGS, jobs=1,
                           cache_dir=None)
        wide = run_sweep(mixes, policies, settings=SETTINGS, jobs=4,
                         cache_dir=tmp_path / "c")
        for a, b in zip(serial, wide):
            assert (a.mix, a.policy) == (b.mix, b.policy)
            assert result_bytes(a.result) == result_bytes(b.result)

    def test_validator_does_not_perturb_results(self, tmp_path):
        # The DDR3 protocol validator is an observer: arming it must not
        # change a single bit of the simulation outcome.
        plain = run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                          jobs=1, cache_dir=None)
        armed = run_sweep(["MID1"], ["MemScale"],
                          config=scaled_config().replace(
                              validate_protocol=True),
                          settings=SETTINGS, jobs=1, cache_dir=None)
        assert result_bytes(plain[0].result) == result_bytes(armed[0].result)
        assert plain[0].comparison.system_energy_savings \
            == armed[0].comparison.system_energy_savings

    def test_rerun_with_warm_cache_is_identical(self, tmp_path):
        cold = run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                         jobs=2, cache_dir=tmp_path / "c")
        warm = run_sweep(["MID1"], ["MemScale"], settings=SETTINGS,
                         jobs=2, cache_dir=tmp_path / "c")
        assert result_bytes(cold[0].result) == result_bytes(warm[0].result)
        assert warm[0].cache_hits >= 2  # trace + baseline both from disk

    def test_baseline_policy_compares_to_itself(self, tmp_path):
        outcomes = run_sweep(["MID1"], ["Baseline"], settings=SETTINGS,
                             jobs=1, cache_dir=tmp_path / "c")
        cmp = outcomes[0].comparison
        assert cmp.memory_energy_savings == pytest.approx(0.0)
        assert cmp.worst_cpi_increase == pytest.approx(0.0)

    def test_telemetry_files_written_per_run(self, tmp_path):
        outcomes = run_sweep(["MID1"], ["MemScale", "Static"],
                             settings=SETTINGS, jobs=2,
                             cache_dir=tmp_path / "c",
                             telemetry_dir=tmp_path / "t")
        for o in outcomes:
            assert o.telemetry_path is not None
            records = load_telemetry(o.telemetry_path)
            assert len(records) == o.result.epochs
            # Governor names may embed detail (e.g. "Static-467MHz").
            assert records[0]["governor"].startswith(o.policy)

    def test_telemetry_filename_is_filesystem_safe(self):
        name = telemetry_filename("MID1", "MemScale(MemEnergy)")
        assert "(" not in name and ")" not in name
        assert name.endswith(".jsonl")


class TestGenerateTraces:
    def test_matches_serial_generation(self, tmp_path):
        import numpy as np
        traces = generate_traces(["MID1", "ILP1"], settings=SETTINGS,
                                 jobs=2, cache_dir=tmp_path / "c")
        runner = ExperimentRunner(settings=SETTINGS)
        for mix in ("MID1", "ILP1"):
            expected = runner.trace(mix)
            got = traces[mix]
            assert len(got) == len(expected)
            for a, b in zip(expected.cores, got.cores):
                assert np.array_equal(a.gaps, b.gaps)
                assert np.array_equal(a.read_addrs, b.read_addrs)
                assert np.array_equal(a.wb_addrs, b.wb_addrs)

    def test_all_mixes_resolve(self, tmp_path):
        traces = generate_traces(list(MIXES)[:3], settings=SETTINGS,
                                 jobs=1, cache_dir=None)
        assert len(traces) == 3


# -- fault isolation --------------------------------------------------------
# Worker functions must live at module level: the fork pool pickles them
# by reference.

def _echo_job(args):
    return f"ran:{args}"


def _raise_on_poison(args):
    if args == "poison":
        raise ValueError("simulated job failure")
    return f"ran:{args}"


def _kill_worker_on_poison(args):
    if args == "poison":
        os.kill(os.getpid(), signal.SIGKILL)
    return f"ran:{args}"


def _fail_until_marker(args):
    """Fail until a marker file exists (then create it): attempt #1
    fails, attempt #2 succeeds — exercises the retry path."""
    marker = Path(args)
    if not marker.exists():
        marker.write_text("seen")
        raise RuntimeError("transient failure")
    return f"ran:{args}"


class TestExecuteJobs:
    def test_inline_failure_is_isolated(self):
        jobs_meta = [SweepJob("MID1", "Static"), SweepJob("MID1", "MemScale"),
                     SweepJob("MID2", "Static")]
        results = execute_jobs(_raise_on_poison, ["a", "poison", "c"],
                               jobs_meta, jobs=1)
        assert results[0] == "ran:a"
        assert results[2] == "ran:c"
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.label == "MID1/MemScale"
        assert failure.mix == "MID1"
        assert failure.error_type == "ValueError"
        assert "simulated job failure" in failure.message
        assert "simulated job failure" in failure.traceback
        assert failure.attempts == 1
        assert "after 1 attempt)" in failure.summary()

    def test_pool_failure_is_isolated(self):
        results = execute_jobs(_raise_on_poison, ["a", "poison", "c"],
                               ["a", "poison", "c"], jobs=2, retries=2)
        assert results[0] == "ran:a"
        assert results[2] == "ran:c"
        assert isinstance(results[1], JobFailure)
        assert results[1].attempts == 3  # 1 + retries, then recorded
        assert "after 3 attempts)" in results[1].summary()

    def test_killed_worker_becomes_a_failure_record(self):
        """A job that SIGKILLs its own worker (OOM-kill stand-in) must
        not cost the rest of the sweep — the broken-pool survivors
        retry in isolation and only the poison job records a failure."""
        args = ["a", "b", "poison", "c", "d"]
        results = execute_jobs(_kill_worker_on_poison, args, args, jobs=2)
        for i, arg in enumerate(args):
            if arg == "poison":
                continue
            assert results[i] == f"ran:{arg}", f"job {arg} was lost"
        failure = results[2]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "BrokenProcessPool"
        assert "worker process died" in failure.message

    def test_retry_recovers_a_transient_failure(self, tmp_path):
        marker = str(tmp_path / "marker")
        results = execute_jobs(_fail_until_marker, [marker], [marker],
                               jobs=1, retries=1)
        assert results == [f"ran:{marker}"]

    def test_on_outcome_fires_once_per_settled_job(self):
        settled = []
        results = execute_jobs(
            _raise_on_poison, ["a", "poison"], ["a", "poison"], jobs=1,
            on_outcome=lambda i, outcome: settled.append((i, outcome)))
        assert [i for i, _ in settled] == [0, 1]
        assert settled[0][1] == results[0]
        assert settled[1][1] is results[1]

    def test_meta_length_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="jobs_meta"):
            execute_jobs(_echo_job, ["a"], [], jobs=1)

    def test_real_sweep_job_failure_yields_partial_results(self, tmp_path):
        """The acceptance shape: one bad job in an otherwise good sweep
        returns N-1 full outcomes plus one structured failure."""
        config = scaled_config()
        good_job = SweepJob("MID1", "Static")
        bad_job = SweepJob("MID1", "NotAPolicy")  # worker-side ValueError
        job_args = [(config, SETTINGS, job, None, None)
                    for job in (good_job, bad_job)]
        results = execute_jobs(_run_job, job_args, [good_job, bad_job],
                               jobs=1)
        good, bad = split_outcomes(results)
        assert len(good) == 1 and len(bad) == 1
        assert good[0].policy == "Static"
        assert good[0].result.epochs > 0
        assert bad[0].label == "MID1/NotAPolicy"
        assert bad[0].error_type == "ValueError"


class TestDefaultJobs:
    def test_prefers_scheduling_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        assert default_jobs() == 2

    def test_affinity_is_capped_at_eight(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(range(32)))
        assert default_jobs() == 8

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_jobs() == 3


class TestSplitAndTable:
    def _failure(self):
        return JobFailure(job=SweepJob("MID1", "MemScale"),
                          label="MID1/MemScale", error_type="ValueError",
                          message="boom", attempts=2, wall_s=0.5)

    def test_split_outcomes_partitions(self, tmp_path):
        good_run = run_sweep(["MID1"], ["Static"], settings=SETTINGS,
                             jobs=1, cache_dir=tmp_path / "c")
        outcomes = [good_run[0], self._failure()]
        good, bad = split_outcomes(outcomes)
        assert good == [good_run[0]]
        assert bad == [outcomes[1]]

    def test_sweep_table_renders_failed_rows(self, tmp_path):
        good_run = run_sweep(["MID1"], ["Static"], settings=SETTINGS,
                             jobs=1, cache_dir=tmp_path / "c")
        rows = sweep_table([good_run[0], self._failure()])
        assert rows[0][0] == "MID1" and rows[0][1] == "Static"
        assert rows[1][:4] == ["MID1", "MemScale", "FAILED", "ValueError"]


class TestCacheOrphans:
    def _populated(self, tmp_path):
        cache = ExperimentCache(tmp_path / "c")
        ExperimentRunner(settings=SETTINGS, cache=cache).baseline("MID1")
        return cache

    def test_lone_sidecar_is_an_orphan(self, tmp_path):
        cache = self._populated(tmp_path)
        npy = next(cache.root.glob("traces/*.npy"))
        npy.unlink()
        stats = cache.stats()
        assert stats["trace_entries"] == 0
        assert stats["orphan_files"] == 1
        assert cache.entries == 1  # only the run entry remains usable

    def test_lone_data_file_is_an_orphan(self, tmp_path):
        cache = self._populated(tmp_path)
        sidecar = next(cache.root.glob("traces/*.npy.meta.json"))
        sidecar.unlink()
        stats = cache.stats()
        assert stats["trace_entries"] == 0
        assert stats["orphan_files"] == 1

    def test_complete_pair_is_not_an_orphan(self, tmp_path):
        stats = self._populated(tmp_path).stats()
        assert stats["trace_entries"] == 1
        assert stats["orphan_files"] == 0

    def test_prune_sweeps_orphans(self, tmp_path):
        cache = self._populated(tmp_path)
        next(cache.root.glob("traces/*.npy")).unlink()
        before = cache.stats()["total_bytes"]
        removed = cache.prune()
        assert removed["bytes_removed"] == before
        assert cache.stats()["orphan_files"] == 0
        assert cache.stats()["total_bytes"] == 0
