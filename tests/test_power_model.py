"""Unit and property tests for the DDR3/MC power model."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.core.frequency import FrequencyLadder
from repro.core.power_model import PowerBreakdown, PowerModel
from tests.conftest import make_delta

CFG = default_config()
MODEL = PowerModel(CFG)
LADDER = FrequencyLadder(CFG)

FREQS = st.sampled_from([p.bus_mhz for p in LADDER])


def freq(bus_mhz):
    return LADDER.at_bus_mhz(bus_mhz)


class TestBreakdownArithmetic:
    def test_dram_w_sums_components(self):
        b = PowerBreakdown(1, 2, 3, 4, 5, 6, 7)
        assert b.dram_w == 15
        assert b.dimm_w == 21
        assert b.memory_w == 28

    def test_scaled(self):
        b = PowerBreakdown(1, 2, 3, 4, 5, 6, 7).scaled(2.0)
        assert b.background_w == 2
        assert b.mc_w == 14


class TestBackgroundPower:
    def test_all_standby_positive(self):
        delta = make_delta(CFG, act_frac=0.0)
        p = MODEL.background_power_w(delta, 800.0)
        assert p > 0

    def test_powerdown_cheaper_than_standby(self):
        standby = MODEL.background_power_w(
            make_delta(CFG, act_frac=0.0, pre_pd_frac=0.0), 800.0)
        powered_down = MODEL.background_power_w(
            make_delta(CFG, act_frac=0.0, pre_pd_frac=1.0), 800.0)
        assert powered_down < standby

    def test_active_costlier_than_precharge_standby(self):
        # IDD3N (67mA) < IDD2N (70mA) in Table 2 is unusual but faithful;
        # verify the model follows the configured currents either way.
        active = MODEL.background_power_w(
            make_delta(CFG, act_frac=1.0), 800.0)
        pre = MODEL.background_power_w(
            make_delta(CFG, act_frac=0.0), 800.0)
        ratio = CFG.currents.idd3n / CFG.currents.idd2n
        assert active / pre == pytest.approx(ratio, rel=1e-6)

    def test_scales_linearly_with_frequency_above_static_floor(self):
        delta = make_delta(CFG)
        p800 = MODEL.background_power_w(delta, 800.0)
        p400 = MODEL.background_power_w(delta, 400.0)
        s = CFG.currents.static_fraction
        expected_ratio = (s + (1 - s) * 0.5) / 1.0
        assert p400 / p800 == pytest.approx(expected_ratio, rel=1e-9)

    def test_zero_interval_gives_zero(self):
        delta = make_delta(CFG, interval_ns=10.0)
        delta = dataclasses.replace(delta, interval_ns=0.0)
        assert MODEL.background_power_w(delta, 800.0) == 0.0


class TestActivityPower:
    def test_actpre_proportional_to_activations(self):
        a = MODEL.actpre_power_w(make_delta(CFG, pocc=100.0))
        b = MODEL.actpre_power_w(make_delta(CFG, pocc=200.0))
        assert b == pytest.approx(2 * a)

    def test_rdwr_power_proportional_to_busy_time(self):
        a = MODEL.rdwr_power_w(make_delta(CFG, busy_frac=0.1))
        b = MODEL.rdwr_power_w(make_delta(CFG, busy_frac=0.2))
        assert b == pytest.approx(2 * a)

    def test_rdwr_zero_without_accesses(self):
        delta = make_delta(CFG, reads=0.0, writes=0.0, busy_frac=0.0)
        assert MODEL.rdwr_power_w(delta) == 0.0

    def test_termination_zero_with_single_rank_channels(self):
        cfg = CFG.with_org(dimms_per_channel=1, ranks_per_dimm=1)
        model = PowerModel(cfg)
        delta = make_delta(cfg)
        assert model.termination_power_w(delta) == 0.0

    def test_termination_positive_with_multiple_ranks(self):
        assert MODEL.termination_power_w(make_delta(CFG)) > 0

    def test_refresh_power_counts_refreshes(self):
        quiet = MODEL.refresh_power_w(make_delta(CFG, refreshes=0.0))
        busy = MODEL.refresh_power_w(make_delta(CFG, refreshes=2.0))
        assert quiet == 0.0
        assert busy > 0


class TestPllRegAndMc:
    def test_pll_reg_scales_with_frequency(self):
        full = MODEL.pll_reg_power_w(0.5, 800.0)
        half = MODEL.pll_reg_power_w(0.5, 400.0)
        assert half == pytest.approx(full / 2)

    def test_register_power_grows_with_utilization(self):
        idle = MODEL.pll_reg_power_w(0.0, 800.0)
        busy = MODEL.pll_reg_power_w(1.0, 800.0)
        assert busy > idle
        # the delta is the register swing across all DIMMs
        expected = (CFG.power.register_peak_w_per_dimm
                    - CFG.power.register_idle_w_per_dimm) * CFG.org.total_dimms
        assert busy - idle == pytest.approx(expected)

    def test_mc_power_at_peak(self):
        p = MODEL.mc_power_w(1.0, LADDER.fastest)
        assert p == pytest.approx(CFG.power.mc_peak_w)

    def test_mc_power_at_idle_max_freq(self):
        p = MODEL.mc_power_w(0.0, LADDER.fastest)
        assert p == pytest.approx(CFG.power.mc_idle_w)

    def test_mc_dvfs_scales_superlinearly(self):
        # P proportional to V^2 f: halving frequency more than halves power.
        full = MODEL.mc_power_w(0.5, LADDER.fastest)
        half = MODEL.mc_power_w(0.5, LADDER.at_bus_mhz(400.0))
        assert half < full / 2

    def test_mc_power_monotone_in_frequency(self):
        powers = [MODEL.mc_power_w(0.5, p) for p in LADDER]
        assert powers == sorted(powers, reverse=True)

    def test_utilization_clamped(self):
        assert (MODEL.mc_power_w(2.0, LADDER.fastest)
                == pytest.approx(CFG.power.mc_peak_w))
        assert (MODEL.mc_power_w(-1.0, LADDER.fastest)
                == pytest.approx(CFG.power.mc_idle_w))


class TestMeasure:
    def test_all_components_nonnegative(self):
        b = MODEL.measure(make_delta(CFG), LADDER.fastest)
        for field in dataclasses.fields(b):
            assert getattr(b, field.name) >= 0

    def test_memory_power_decreases_with_frequency(self):
        delta = make_delta(CFG)
        p800 = MODEL.measure(delta, LADDER.fastest).memory_w
        p200 = MODEL.measure(delta, LADDER.slowest).memory_w
        assert p200 < p800

    def test_device_clock_decoupling(self):
        delta = make_delta(CFG)
        coupled = MODEL.measure(delta, LADDER.fastest)
        decoupled = MODEL.measure(delta, LADDER.fastest,
                                  device_bus_mhz=400.0)
        # device background drops, but PLL/REG and MC stay at full speed
        assert decoupled.background_w < coupled.background_w
        assert decoupled.pll_reg_w == pytest.approx(coupled.pll_reg_w)
        assert decoupled.mc_w == pytest.approx(coupled.mc_w)

    @given(FREQS)
    @settings(max_examples=20, deadline=None)
    def test_measure_nonnegative_for_all_frequencies(self, bus_mhz):
        b = MODEL.measure(make_delta(CFG), freq(bus_mhz))
        assert b.memory_w >= 0


class TestPredict:
    def test_predict_at_same_frequency_close_to_measure(self):
        # a self-consistent delta: recorded busy time equals the burst
        # time implied by the access counts at the measured frequency
        reads, writes = 90.0, 10.0
        busy_frac = ((reads + writes) * LADDER.fastest.burst_ns
                     / (CFG.org.channels * 10_000.0))
        delta = make_delta(CFG, reads=reads, writes=writes,
                           busy_frac=busy_frac)
        measured = MODEL.measure(delta, LADDER.fastest)
        predicted = MODEL.predict(delta, LADDER.fastest, time_scale=1.0)
        assert predicted.memory_w == pytest.approx(measured.memory_w,
                                                   rel=0.05)

    def test_predict_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            MODEL.predict(make_delta(CFG), LADDER.fastest, time_scale=0.0)

    def test_predicted_power_lower_at_lower_frequency(self):
        delta = make_delta(CFG)
        fast = MODEL.predict(delta, LADDER.fastest, time_scale=1.0)
        slow = MODEL.predict(delta, LADDER.slowest, time_scale=1.1)
        assert slow.memory_w < fast.memory_w

    def test_longer_runtime_spreads_actpre_power(self):
        delta = make_delta(CFG)
        short = MODEL.predict(delta, LADDER.fastest, time_scale=1.0)
        long = MODEL.predict(delta, LADDER.fastest, time_scale=2.0)
        # same activation count over twice the time = half the power
        assert long.actpre_w == pytest.approx(short.actpre_w / 2)

    @given(FREQS, st.floats(min_value=1.0, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_predict_components_nonnegative(self, bus_mhz, scale):
        b = MODEL.predict(make_delta(CFG), freq(bus_mhz), time_scale=scale)
        for field in dataclasses.fields(b):
            assert getattr(b, field.name) >= 0


class TestProportionalityKnob:
    def test_less_proportional_hardware_draws_more_at_idle(self):
        flat = PowerModel(CFG.with_power(proportionality_idle_frac=1.0))
        prop = PowerModel(CFG.with_power(proportionality_idle_frac=0.0))
        assert (flat.mc_power_w(0.0, LADDER.fastest)
                > prop.mc_power_w(0.0, LADDER.fastest))
        assert (flat.pll_reg_power_w(0.0, 800.0)
                > prop.pll_reg_power_w(0.0, 800.0))

    def test_peak_power_unchanged_by_proportionality(self):
        flat = PowerModel(CFG.with_power(proportionality_idle_frac=1.0))
        prop = PowerModel(CFG.with_power(proportionality_idle_frac=0.0))
        assert (flat.mc_power_w(1.0, LADDER.fastest)
                == pytest.approx(prop.mc_power_w(1.0, LADDER.fastest)))
