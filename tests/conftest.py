"""Shared fixtures for the MemScale reproduction test suite.

Simulation fixtures are session-scoped and deliberately tiny (tens of
thousands of instructions) so the full suite stays fast while still
exercising every subsystem end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NS_PER_US, SystemConfig, default_config, scaled_config
from repro.core.frequency import FrequencyLadder
from repro.memsim.controller import MemoryController
from repro.memsim.counters import _STATE_ORDER, CounterDelta
from repro.memsim.engine import EventEngine
from repro.sim.runner import ExperimentRunner, RunnerSettings


@pytest.fixture(scope="session")
def paper_config() -> SystemConfig:
    """The unmodified Table 2 configuration."""
    return default_config()


@pytest.fixture(scope="session")
def test_config() -> SystemConfig:
    """Scaled configuration used by simulation tests."""
    return scaled_config(epoch_ns=20 * NS_PER_US, profile_ns=2 * NS_PER_US)


@pytest.fixture(scope="session")
def ladder(test_config) -> FrequencyLadder:
    return FrequencyLadder(test_config)


@pytest.fixture()
def engine() -> EventEngine:
    return EventEngine()


@pytest.fixture()
def controller(engine, test_config) -> MemoryController:
    """A fresh memory controller with refresh disabled for determinism."""
    return MemoryController(engine, test_config, refresh_enabled=False,
                            n_cores=4)


@pytest.fixture(scope="session")
def runner(test_config) -> ExperimentRunner:
    """Shared runner with tiny traces; baselines are cached across tests."""
    return ExperimentRunner(
        config=test_config,
        settings=RunnerSettings(instructions_per_core=40_000, seed=7))


def make_delta(config: SystemConfig, *, interval_ns: float = 10_000.0,
               tic_per_core: float = 10_000.0, tlm_per_core: float = 20.0,
               n_cores: int = 4, bto: float = 10.0, btc: float = 100.0,
               cto: float = 30.0, ctc: float = 100.0, rbhc: float = 5.0,
               obmc: float = 3.0, cbmc: float = 92.0, epdc: float = 0.0,
               pocc: float = 95.0, reads: float = 90.0, writes: float = 10.0,
               busy_frac: float = 0.2, refreshes: float = 0.0,
               pre_pd_frac: float = 0.0, act_frac: float = 0.3
               ) -> CounterDelta:
    """Hand-build a plausible CounterDelta for model unit tests.

    Rank state time is split between active standby (``act_frac``),
    precharge powerdown (``pre_pd_frac``), and precharge standby (the
    remainder). Channel busy time is spread evenly.
    """
    org = config.org
    n_ranks = org.total_ranks
    n_channels = org.channels
    pre_stby_frac = 1.0 - act_frac - pre_pd_frac
    if pre_stby_frac < 0:
        raise ValueError("state fractions exceed 1.0")
    rank_state = np.zeros((n_ranks, len(_STATE_ORDER)))
    rank_state[:, 0] = act_frac * interval_ns        # active standby
    rank_state[:, 1] = pre_stby_frac * interval_ns   # precharge standby
    rank_state[:, 3] = pre_pd_frac * interval_ns     # precharge powerdown
    ops = reads + writes
    channel_reads = np.full(n_channels, reads / n_channels)
    channel_writes = np.full(n_channels, writes / n_channels)
    return CounterDelta(
        interval_ns=interval_ns,
        tic=np.full(n_cores, tic_per_core),
        tlm=np.full(n_cores, tlm_per_core),
        bto=bto, btc=btc, cto=cto, ctc=ctc,
        rbhc=rbhc, obmc=obmc, cbmc=cbmc, epdc=epdc, pocc=pocc,
        reads=reads, writes=writes,
        rank_state_ns=rank_state,
        refreshes=np.full(n_ranks, refreshes),
        channel_busy_ns=np.full(n_channels, busy_frac * interval_ns),
        channel_reads=channel_reads,
        channel_writes=channel_writes,
    )


@pytest.fixture()
def delta_factory(test_config):
    """Factory fixture wrapping :func:`make_delta` with the test config."""
    def factory(**kwargs):
        return make_delta(test_config, **kwargs)
    return factory
