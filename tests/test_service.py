"""Tests for the crash-safe sweep service (sim/service.py): persistent
queue semantics, failure isolation + retry limits, crash resume (both a
controlled interrupt and a real SIGKILL of an in-flight `repro service
run`), and byte-identity of a resumed store against an uninterrupted
serial sweep."""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.sim.parallel import (JobFailure, run_placement_sweep, run_sweep,
                                split_outcomes)
from repro.sim.runner import RunnerSettings
from repro.sim.serialize import run_result_to_dict
from repro.sim.service import (LEDGER_NAME, LOCK_NAME, JobSpec,
                               ServiceError, ServiceLock, SweepService,
                               cap_specs, multidomain_specs,
                               placement_specs, policy_specs, read_ledger,
                               scenario_specs)
from repro.sim.store import deterministic_digest

SETTINGS = RunnerSettings(cores=4, instructions_per_core=4_000, seed=7)


def result_bytes(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True).encode()


def make_service(root, **kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("retries", 0)
    return SweepService(root, **kwargs)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec("mystery", "MID1")
        with pytest.raises(ValueError, match="policy"):
            JobSpec("policy", "MID1")
        with pytest.raises(ValueError, match="multidomain"):
            JobSpec("multidomain", "MID1", budget_fraction=0.8)

    def test_labels(self):
        assert JobSpec("policy", "MID1", policy="Static").label \
            == "MID1/Static"
        assert JobSpec("cap", "MID1", budget_fraction=0.8).label \
            == "MID1/Cap0.80"
        assert JobSpec("cap", "MID1").label == "MID1/Throttle"
        assert JobSpec("multidomain", "MID1", budget_fraction=0.7,
                       coordinated=True).label == "MID1/MD0.70"

    def test_key_is_content_addressed(self):
        spec = JobSpec("policy", "MID1", policy="Static")
        assert spec.key("cfg", "set") == spec.key("cfg", "set")
        assert spec.key("cfg", "set") != spec.key("cfg2", "set")
        assert spec.key("cfg", "set") != spec.key("cfg", "set2")
        other = JobSpec("policy", "MID1", policy="MemScale")
        assert spec.key("cfg", "set") != other.key("cfg", "set")

    def test_dict_round_trip(self):
        spec = JobSpec("multidomain", "MID2", budget_fraction=0.7,
                       coordinated=False)
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert spec.job_dict()["label"] == "MID2/MemOnly0.70"

    def test_builders_match_sweep_order(self):
        assert [s.label for s in policy_specs(["MID1"], ["A", "B"])] \
            == ["MID1/A", "MID1/B"]
        assert [s.label for s in cap_specs(["MID1"], [0.9])] \
            == ["MID1/Cap0.90", "MID1/Throttle"]
        assert [s.label
                for s in cap_specs(["MID1"], [0.9],
                                   include_throttle=False)] \
            == ["MID1/Cap0.90"]
        assert [s.label for s in multidomain_specs(["MID1"], [0.8])] \
            == ["MID1/MD0.80", "MID1/MemOnly0.80"]


class TestLedger:
    def test_truncated_tail_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"type": "meta"}\n{"type": "enq')
        records, skipped = read_ledger(path)
        assert [r["type"] for r in records] == ["meta"]
        assert skipped == 1

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"type": "meta"}\nGARBAGE\n{"type": "done"}\n')
        with pytest.raises(ServiceError, match="corrupt ledger line 2"):
            read_ledger(path)

    def test_missing_ledger_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == ([], 0)


class TestQueue:
    def test_submit_is_idempotent_and_composes(self, tmp_path):
        svc = make_service(tmp_path / "s")
        specs = policy_specs(["MID1"], ["Static"])
        assert len(svc.submit(specs)) == 1
        assert svc.submit(specs) == []  # resubmit adds nothing
        superset = policy_specs(["MID1"], ["Static", "MemScale"])
        added = svc.submit(superset)
        assert [s.label for s in added] == ["MID1/MemScale"]
        assert len(svc.enqueued()) == 2

    def test_mismatched_config_is_rejected(self, tmp_path):
        svc = make_service(tmp_path / "s")
        svc.submit(policy_specs(["MID1"], ["Static"]))
        other = make_service(
            tmp_path / "s",
            settings=RunnerSettings(cores=4, instructions_per_core=4_000,
                                    seed=8))
        with pytest.raises(ServiceError, match="different config"):
            other.submit(policy_specs(["MID1"], ["Static"]))

    def test_open_requires_a_service_directory(self, tmp_path):
        with pytest.raises(ServiceError, match="meta"):
            SweepService.open(tmp_path / "nothing")


class TestFailureIsolation:
    def test_poisoned_job_yields_failure_record(self, tmp_path):
        svc = make_service(tmp_path / "s")
        out = svc.run(policy_specs(["MID1"], ["Static", "MemScale"]),
                      fail_labels=["MID1/MemScale"])
        good, bad = split_outcomes(out)
        assert len(good) == 1 and len(bad) == 1
        failure = bad[0]
        assert failure.error_type == "InjectedFailure"
        assert failure.label == "MID1/MemScale"
        assert "injected failure" in failure.message
        assert failure.attempts == 1
        record = svc.store.get(svc.key_of(
            JobSpec("policy", "MID1", policy="MemScale")))
        assert record["status"] == "failed"
        assert "InjectedFailure" in record["error"]["traceback"]

    def test_retry_limit_is_honored(self, tmp_path):
        svc = make_service(tmp_path / "s", retries=2)
        out = svc.run(policy_specs(["MID1"], ["MemScale"]),
                      fail_labels=["MID1/MemScale"])
        _, bad = split_outcomes(out)
        assert bad[0].attempts == 3  # 1 + 2 retries, then recorded

    def test_resume_heals_an_injected_failure(self, tmp_path):
        svc = make_service(tmp_path / "s")
        svc.run(policy_specs(["MID1"], ["Static", "MemScale"]),
                fail_labels=["MID1/MemScale"])
        assert svc.status()["failed"] == 1
        resumed = SweepService.open(tmp_path / "s").resume()
        good, bad = split_outcomes(resumed)
        assert not bad and len(good) == 2


class TestCrashResume:
    def test_interrupt_then_resume_runs_only_the_rest(self, tmp_path):
        svc = make_service(tmp_path / "s")
        specs = policy_specs(["MID1"], ["Static", "MemScale"])
        # Controlled interrupt: stop after one job, like a crash between
        # two jobs would.
        svc.run(specs, max_jobs=1)
        status = svc.status()
        assert (status["ok"], status["pending"]) == (1, 1)
        done_key = svc.key_of(specs[0])
        done_path = svc.store.path(done_key)
        stamp = done_path.stat().st_mtime_ns

        resumed = SweepService.open(tmp_path / "s").resume()
        assert len(resumed) == 2
        # The finished job was not re-executed: its record is untouched.
        assert done_path.stat().st_mtime_ns == stamp

        # Byte-identical to an uninterrupted serial sweep.
        reference = run_sweep(["MID1"], ["Static", "MemScale"],
                              settings=SETTINGS, jobs=1, cache_dir=None)
        for mine, ref in zip(resumed, reference):
            assert result_bytes(mine.result) == result_bytes(ref.result)

    def test_resumed_store_digests_match_uninterrupted_run(self, tmp_path):
        specs = policy_specs(["MID1"], ["Static", "MemScale"])
        interrupted = make_service(tmp_path / "a")
        interrupted.run(specs, max_jobs=1)
        SweepService.open(tmp_path / "a").resume()

        uninterrupted = make_service(tmp_path / "b")
        uninterrupted.run(specs)
        a = {r["key"]: deterministic_digest(r)
             for r in interrupted.store.records()}
        b = {r["key"]: deterministic_digest(r)
             for r in uninterrupted.store.records()}
        assert a == b and len(a) == 2

    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        """The acceptance scenario: SIGKILL an in-flight `repro service
        run`, then resume; completed outcomes survive, only unfinished
        jobs re-execute, and the final results are byte-identical to an
        uninterrupted serial run."""
        directory = tmp_path / "svc"
        policies = ["Static", "MemScale", "Fast-PD", "Slow-PD",
                    "Decoupled", "Baseline"]
        argv = [sys.executable, "-m", "repro", "service", "run",
                "--dir", str(directory), "--mixes", "MID1",
                "--policies", *policies, "--jobs", "1", "--retries", "0",
                "--instructions", "120000", "--cores", "4", "--seed", "7"]
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[1]
                                  / "src"))
        proc = subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        store_glob = directory / "store"
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it
                if list(store_glob.glob("*/*.json")):
                    break  # at least one job landed: kill mid-sweep
                time.sleep(0.001)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)

        survivors = {p: p.stat().st_mtime_ns
                     for p in store_glob.glob("*/*.json")}
        assert survivors, "completed outcomes must survive the kill"
        assert len(survivors) < len(policies), \
            "the kill must land mid-sweep, not after it finished"

        resumed_svc = SweepService.open(directory)
        pending_before = {key for key, _ in resumed_svc.pending()}
        assert pending_before
        resumed = resumed_svc.resume()
        good, bad = split_outcomes(resumed)
        assert not bad and len(good) == len(policies)
        # Survivor records were not rewritten (only unfinished jobs ran)
        # — except a job that was mid-flight when the ledger line made
        # it down but the kill hit, which legitimately re-runs.
        for path, stamp in survivors.items():
            key = path.stem
            if key not in pending_before:
                assert path.stat().st_mtime_ns == stamp

        reference = run_sweep(
            ["MID1"], policies,
            settings=RunnerSettings(cores=4, instructions_per_core=120_000,
                                    seed=7),
            jobs=1, cache_dir=None)
        for mine, ref in zip(good, reference):
            assert (mine.mix, mine.policy) == (ref.mix, ref.policy)
            assert result_bytes(mine.result) == result_bytes(ref.result)


class TestOpenRoundTrip:
    def test_open_rebuilds_config_and_settings(self, tmp_path):
        config = scaled_config().with_policy(cpi_bound=0.05)
        svc = make_service(tmp_path / "s", config=config, retries=3)
        svc.submit(policy_specs(["MID1"], ["Static"]))
        reopened = SweepService.open(tmp_path / "s")
        assert reopened.settings == SETTINGS
        assert reopened.config_hash == svc.config_hash
        assert reopened.config.policy.cpi_bound == 0.05
        assert reopened.retries == 3
        assert reopened.cache_dir == svc.cache_dir
        # overrides win over the recorded values
        assert SweepService.open(tmp_path / "s", jobs=1, retries=0).retries \
            == 0

    def test_results_and_ledger_survive_reopen(self, tmp_path):
        svc = make_service(tmp_path / "s")
        svc.run(policy_specs(["MID1"], ["Static"]))
        results = SweepService.open(tmp_path / "s").results()
        assert len(results) == 1
        assert not isinstance(results[0], JobFailure)
        records, skipped = read_ledger(tmp_path / "s" / LEDGER_NAME)
        assert skipped == 0
        assert [r["type"] for r in records] \
            == ["meta", "enqueue", "done"]


class TestServiceKinds:
    def test_cap_jobs_run_through_the_service(self, tmp_path):
        svc = make_service(tmp_path / "s")
        out = svc.run(cap_specs(["MID1"], [0.9], include_throttle=True))
        good, bad = split_outcomes(out)
        assert not bad and len(good) == 2
        budget, throttle = good
        assert budget.budget_fraction == 0.9
        assert throttle.budget_fraction is None
        assert svc.store.query(kind="cap", status="ok")

    def test_multidomain_jobs_run_through_the_service(self, tmp_path):
        svc = make_service(tmp_path / "s")
        out = svc.run(multidomain_specs(["MID1"], [0.8],
                                        include_memory_only=False))
        good, bad = split_outcomes(out)
        assert not bad and len(good) == 1
        assert good[0].coordinated is True
        assert svc.store.query(kind="multidomain", status="ok")

    def test_placement_jobs_run_through_the_service(self, tmp_path):
        svc = make_service(tmp_path / "s")
        out = svc.run(placement_specs(["MID1"]))
        good, bad = split_outcomes(out)
        assert not bad and len(good) == 2
        placed, reference = good
        assert placed.placed is True and reference.placed is False
        assert placed.placement is not None
        assert placed.placement["pages_allocated"] > 0
        assert reference.placement is None
        assert svc.store.query(kind="placement", status="ok")
        assert [s.label for s in placement_specs(["MID1"])] \
            == ["MID1/Placed", "MID1/NoPlacement"]
        assert [s.label
                for s in placement_specs(["MID1"],
                                         include_reference=False)] \
            == ["MID1/Placed"]


class TestScenarioKind:
    def test_spec_validation_and_round_trip(self):
        with pytest.raises(ValueError, match="device"):
            JobSpec("scenario", "mix2", policy="MemScale")
        spec = JobSpec("scenario", "mix2", policy="MemScale",
                       device="stt-mram")
        assert spec.label == "mix2/MemScale@stt-mram"
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert [s.label for s in scenario_specs(["mix2"], ["MemScale"],
                                                ["ddr3-1333", "ddr3l"])] \
            == ["mix2/MemScale@ddr3-1333", "mix2/MemScale@ddr3l"]

    def test_device_free_keys_unchanged_by_the_device_field(self):
        # Pre-scenario service directories content-address their jobs
        # without a device entry; adding the field must not shift the
        # keys of any existing kind.
        spec = JobSpec("policy", "MID1", policy="Static")
        payload = {"format": 1, "kind": "policy", "mix": "MID1",
                   "policy": "Static", "budget_fraction": None,
                   "coordinated": None, "config": "c", "settings": "s"}
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode()).hexdigest()
        assert spec.key("c", "s") == expected

    def test_scenario_jobs_run_through_the_service(self, tmp_path):
        svc = make_service(tmp_path / "s")
        out = svc.run(scenario_specs(["mix2"], ["MemScale"],
                                     ["ddr3-1333", "stt-mram"]))
        good, bad = split_outcomes(out)
        assert not bad and len(good) == 2
        ddr3, stt = good
        assert (ddr3.device, stt.device) == ("ddr3-1333", "stt-mram")
        # The STT-MRAM-like table has near-zero standby power, so its
        # background share of DIMM energy must sit well below DDR3's.
        assert stt.background_share < ddr3.background_share
        assert svc.store.query(kind="scenario", status="ok")


class TestServiceLock:
    def test_second_locker_fails_fast(self, tmp_path):
        root = tmp_path / "s"
        with ServiceLock(root):
            assert (root / LOCK_NAME).exists()
            with pytest.raises(ServiceError, match="another service "
                                                   "process holds"):
                ServiceLock(root).acquire()
        # Released on exit: a later locker succeeds.
        with ServiceLock(root):
            pass

    def test_run_holds_the_directory_lock(self, tmp_path):
        calls = []

        class Probe(SweepService):
            def _execute(self, pending, **kwargs):
                with pytest.raises(ServiceError, match="holds the lock"):
                    ServiceLock(self.root).acquire()
                calls.append("probed")
                return super()._execute(pending, **kwargs)

        svc = Probe(tmp_path / "s", settings=SETTINGS, jobs=1, retries=0)
        svc.run(policy_specs(["MID1"], ["Static"]))
        assert calls == ["probed"]
        # After run() returns the lock is free again.
        ServiceLock(tmp_path / "s").acquire()


class TestPlacementDifferential:
    """The placement acceptance differential: the same placement specs
    run serially, with worker fan-out, and through a SIGKILLed-then-
    resumed service must land byte-identical store records."""

    def test_serial_vs_parallel_store_digests_match(self, tmp_path):
        specs = placement_specs(["MID1", "MID2"])
        serial = make_service(tmp_path / "serial", jobs=1)
        serial.run(specs)
        fanned = make_service(tmp_path / "fanned", jobs=4)
        fanned.run(specs)
        a = {r["key"]: deterministic_digest(r)
             for r in serial.store.records()}
        b = {r["key"]: deterministic_digest(r)
             for r in fanned.store.records()}
        assert a == b and len(a) == 4

    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        directory = tmp_path / "svc"
        mixes = ["MID1", "MID2", "MID3", "MID4"]
        argv = [sys.executable, "-m", "repro", "service", "run",
                "--dir", str(directory), "--kind", "placement",
                "--mixes", *mixes, "--jobs", "1", "--retries", "0",
                "--instructions", "60000", "--cores", "4", "--seed", "7"]
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[1]
                                  / "src"))
        proc = subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        store_glob = directory / "store"
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it
                if list(store_glob.glob("*/*.json")):
                    break  # at least one job landed: kill mid-sweep
                time.sleep(0.001)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)

        survivors = list(store_glob.glob("*/*.json"))
        assert survivors, "completed outcomes must survive the kill"
        assert len(survivors) < 2 * len(mixes), \
            "the kill must land mid-sweep, not after it finished"

        resumed_svc = SweepService.open(directory)
        resumed = resumed_svc.resume()
        good, bad = split_outcomes(resumed)
        assert not bad and len(good) == 2 * len(mixes)

        settings = RunnerSettings(cores=4, instructions_per_core=60_000,
                                  seed=7)
        reference = run_placement_sweep(mixes, settings=settings, jobs=1,
                                        cache_dir=None)
        for mine, ref in zip(good, reference):
            assert (mine.mix, mine.placed) == (ref.mix, ref.placed)
            assert result_bytes(mine.result) == result_bytes(ref.result)

        # digest-level: the resumed store matches an uninterrupted one
        uninterrupted = make_service(tmp_path / "b", settings=settings)
        uninterrupted.run(placement_specs(mixes))
        a = {r["key"]: deterministic_digest(r)
             for r in resumed_svc.store.records()}
        b = {r["key"]: deterministic_digest(r)
             for r in uninterrupted.store.records()}
        assert a == b and len(a) == 2 * len(mixes)
