"""End-to-end tests for CapGovernor in the real epoch loop: ledger
accounting, telemetry snapshot fields, the infeasible counter, graceful
degradation, and per-channel programming."""

import pytest

from repro.cap import BudgetSchedule, CapGovernor
from repro.config import NS_PER_US, scaled_config
from repro.sim import ListTelemetry
from repro.sim.telemetry import TELEMETRY_SCHEMA_VERSION
from repro.sim.runner import ExperimentRunner, RunnerSettings

CFG = scaled_config(epoch_ns=20 * NS_PER_US, profile_ns=2 * NS_PER_US)
SETTINGS = RunnerSettings(cores=4, instructions_per_core=8_000, seed=2011)


@pytest.fixture(scope="module")
def cap_runner():
    return ExperimentRunner(config=CFG, settings=SETTINGS)


class TestMakeCapGovernor:
    def test_requires_exactly_one_budget_source(self, cap_runner):
        with pytest.raises(ValueError, match="exactly one"):
            cap_runner.make_cap_governor("MID1")
        with pytest.raises(ValueError, match="exactly one"):
            cap_runner.make_cap_governor("MID1", budget_w=20.0,
                                         budget_fraction=0.8)

    def test_fraction_must_be_positive(self, cap_runner):
        with pytest.raises(ValueError, match="positive"):
            cap_runner.make_cap_governor("MID1", budget_fraction=0.0)

    def test_fraction_calibrates_against_baseline(self, cap_runner):
        governor = cap_runner.make_cap_governor("MID1", budget_fraction=0.8)
        expected = 0.8 * cap_runner.baseline("MID1").avg_memory_power_w
        assert governor.budget.min_watts == pytest.approx(expected)
        assert governor.name == f"Cap-{expected:.2f}W"

    def test_schedule_accepted(self, cap_runner):
        schedule = BudgetSchedule(steps=((0.0, 30.0), (1000.0, 20.0)))
        governor = cap_runner.make_cap_governor("MID1", schedule=schedule)
        assert governor.budget.min_watts == 20.0


class TestRunUnderCap:
    def test_ledger_accounts_every_decided_epoch(self, cap_runner):
        governor = cap_runner.make_cap_governor("MID1", budget_fraction=0.9)
        result = cap_runner.run_governor("MID1", governor)
        summary = governor.cap_summary()
        assert result.epochs > 0
        assert summary["epochs_accounted"] > 0
        assert summary["epochs_decided"] == summary["epochs_accounted"]
        assert summary["peak_power_w"] > 0

    def test_no_silent_overshoot(self, cap_runner):
        # The acceptance invariant: either the peak accounted power sits
        # inside the budget's tolerance band, or violations were booked.
        governor = cap_runner.make_cap_governor("MID1", budget_fraction=0.75)
        cap_runner.run_governor("MID1", governor)
        summary = governor.cap_summary()
        budget = governor.budget
        band = budget.min_watts * (1.0 + budget.tolerance_frac)
        assert (summary["peak_power_w"] <= band + 1e-9
                or summary["violation_count"] > 0)

    def test_unreachable_budget_counts_infeasible_epochs(self, cap_runner):
        # 1 mW can never be met: every epoch must take the
        # throttle-hardest fallback and be counted, and the ledger must
        # record the (unavoidable) violations rather than hide them.
        governor = cap_runner.make_cap_governor("MID1", budget_w=0.001)
        cap_runner.run_governor("MID1", governor)
        summary = governor.cap_summary()
        assert governor.infeasible_epochs == summary["epochs_decided"]
        assert summary["violation_count"] == summary["epochs_accounted"]
        ladder = governor.allocator.ladder
        assert all(mhz == ladder.slowest.bus_mhz
                   for _, mhz in governor.frequency_log)

    def test_generous_budget_never_infeasible(self, cap_runner):
        governor = cap_runner.make_cap_governor("MID1", budget_w=1e6)
        cap_runner.run_governor("MID1", governor)
        assert governor.infeasible_epochs == 0
        assert governor.cap_summary()["violation_count"] == 0

    def test_telemetry_carries_cap_fields(self, cap_runner):
        governor = cap_runner.make_cap_governor("MID1", budget_fraction=0.9)
        sink = ListTelemetry()
        cap_runner.run_governor("MID1", governor, telemetry=sink)
        assert sink.records
        for record in sink.records:
            assert record["schema"] == TELEMETRY_SCHEMA_VERSION
            assert record["budget_w"] == pytest.approx(
                governor.budget.min_watts)
            assert record["predicted_power_w"] > 0
            assert record["cap_feasible"] in (True, False)
            assert 0.0 < record["min_perf_norm"] <= 1.0

    def test_snapshot_empty_before_first_decision(self, cap_runner):
        governor = cap_runner.make_cap_governor("MID1", budget_fraction=0.9)
        assert governor.telemetry_snapshot() == {}

    def test_cap_beats_naive_throttle_on_fairness(self, cap_runner):
        from repro.core.baselines import StaticFrequencyGovernor

        governor = cap_runner.make_cap_governor("MID1", budget_fraction=0.75)
        cmp_cap = cap_runner.compare("MID1", governor)
        slowest = min(CFG.sorted_bus_freqs())
        cmp_throttle = cap_runner.compare(
            "MID1", StaticFrequencyGovernor(bus_mhz=slowest))
        min_perf = 1.0 / (1.0 + cmp_cap.worst_cpi_increase)
        throttle_perf = 1.0 / (1.0 + cmp_throttle.worst_cpi_increase)
        assert min_perf >= throttle_perf - 1e-9
