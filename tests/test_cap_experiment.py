"""Tests for the cap-sweep experiment plumbing: run_cap_sweep's
structure, determinism with the on-disk cache, row flattening, table
rendering, and the v2 telemetry it streams."""

import pytest

from repro.analysis import cap_summary_table
from repro.config import NS_PER_US, scaled_config
from repro.sim import load_telemetry, run_cap_sweep
from repro.sim.telemetry import TELEMETRY_SCHEMA_VERSION
from repro.sim.experiments import cap_outcome_row, cap_sweep
from repro.sim.parallel import cap_label
from repro.sim.runner import RunnerSettings

CFG = scaled_config(epoch_ns=20 * NS_PER_US, profile_ns=2 * NS_PER_US)
SETTINGS = RunnerSettings(cores=4, instructions_per_core=8_000, seed=2011)
FRACTIONS = (0.9, 0.75)


@pytest.fixture(scope="module")
def outcomes(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cap_cache")
    return run_cap_sweep(["MID1"], FRACTIONS, config=CFG, settings=SETTINGS,
                         jobs=1, cache_dir=str(cache))


class TestRunCapSweep:
    def test_one_outcome_per_point_plus_throttle(self, outcomes):
        labels = [cap_label(o.budget_fraction) for o in outcomes]
        assert labels == ["Cap0.90", "Cap0.75", "Throttle"]

    def test_throttle_row_has_no_cap_bookkeeping(self, outcomes):
        throttle = outcomes[-1]
        assert throttle.budget_fraction is None
        assert throttle.budget_w is None
        assert throttle.cap is None
        assert throttle.governor.startswith("Static")

    def test_capped_rows_carry_ledger(self, outcomes):
        for o in outcomes[:-1]:
            assert o.budget_w > 0
            assert o.cap["epochs_accounted"] > 0
            assert "violation_count" in o.cap
            assert "infeasible_epochs" in o.cap
            assert 0.0 < o.min_perf <= 1.0

    def test_tighter_budget_never_uses_more_power(self, outcomes):
        by_frac = {o.budget_fraction: o for o in outcomes}
        assert by_frac[0.75].avg_power_w <= by_frac[0.9].avg_power_w + 1e-9

    def test_cap_at_least_as_fair_as_throttle(self, outcomes):
        throttle = outcomes[-1]
        for o in outcomes[:-1]:
            assert o.min_perf >= throttle.min_perf - 1e-9

    def test_deterministic_under_cache(self, outcomes, tmp_path):
        again = run_cap_sweep(["MID1"], FRACTIONS, config=CFG,
                              settings=SETTINGS, jobs=1,
                              cache_dir=str(tmp_path / "fresh"))
        for a, b in zip(outcomes, again):
            assert a.avg_power_w == b.avg_power_w
            assert a.min_perf == b.min_perf
            assert a.cap == b.cap

    def test_throttle_can_be_excluded(self, tmp_path):
        out = run_cap_sweep(["MID1"], (0.9,), config=CFG, settings=SETTINGS,
                            jobs=1, cache_dir=str(tmp_path / "c"),
                            include_throttle=False)
        assert [o.budget_fraction for o in out] == [0.9]

    def test_rejects_empty_inputs(self, tmp_path):
        with pytest.raises(ValueError):
            run_cap_sweep([], (0.9,), config=CFG, settings=SETTINGS, jobs=1,
                          cache_dir=str(tmp_path / "c"))
        with pytest.raises(ValueError):
            run_cap_sweep(["MID1"], (), config=CFG, settings=SETTINGS,
                          jobs=1, cache_dir=str(tmp_path / "c"),
                          include_throttle=False)

    def test_telemetry_streams_v2_records(self, tmp_path):
        tdir = tmp_path / "telemetry"
        out = run_cap_sweep(["MID1"], (0.9,), config=CFG, settings=SETTINGS,
                            jobs=1, cache_dir=str(tmp_path / "c"),
                            telemetry_dir=str(tdir),
                            include_throttle=False)
        records = load_telemetry(out[0].telemetry_path)
        assert records
        assert all(r["schema"] == TELEMETRY_SCHEMA_VERSION
                   for r in records)
        assert all(r["budget_w"] is not None for r in records)


class TestRowsAndTable:
    def test_cap_outcome_row_shape(self, outcomes):
        row = cap_outcome_row(outcomes[0])
        assert row["workload"] == "MID1"
        assert row["budget_fraction"] == 0.9
        assert row["violations"] == outcomes[0].cap["violation_count"]
        throttle_row = cap_outcome_row(outcomes[-1])
        assert throttle_row["budget_w"] is None
        assert throttle_row["violations"] is None

    def test_table_renders_none_as_dash(self, outcomes):
        table = cap_summary_table([cap_outcome_row(o) for o in outcomes])
        lines = table.splitlines()
        assert lines[0] == "power-cap sweep"
        throttle_line = next(line for line in lines
                             if outcomes[-1].governor in line)
        # All the budget/ledger columns are None for the throttle
        # reference and must render as bare dashes.
        assert throttle_line.split().count("-") >= 4

    def test_experiment_api_wraps_sweep(self, tmp_path):
        result = cap_sweep(mixes=["MID1"], budget_fractions=(0.9,),
                           config=CFG, settings=SETTINGS, jobs=1,
                           cache_dir=str(tmp_path / "c"))
        assert result.name == "cap_sweep"
        assert len(result.rows) == 2  # one capped point + throttle
        assert result.column("workload") == ["MID1", "MID1"]
