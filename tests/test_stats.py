"""Tests for trace statistics and inspection."""

import numpy as np
import pytest

from repro.config import MemoryOrgConfig
from repro.cpu.stats import (
    core_stats,
    expected_channel_utilization,
    workload_stats,
)
from repro.cpu.trace import CoreTrace, WorkloadTrace
from repro.cpu.workloads import generate_workload

ORG = MemoryOrgConfig()


def make_trace(addrs, gaps=None, app="x"):
    addrs = np.asarray(addrs, dtype=np.int64)
    if gaps is None:
        gaps = np.full(len(addrs), 100, dtype=np.int64)
    wbs = np.full(len(addrs), -1, dtype=np.int64)
    return CoreTrace(app, 0, np.asarray(gaps, dtype=np.int64), addrs, wbs)


class TestCoreStats:
    def test_basic_counts(self):
        s = core_stats(make_trace([0, 1, 2, 3]), ORG)
        assert s.misses == 4
        assert s.instructions == 400
        assert s.rpki == pytest.approx(10.0)
        assert s.unique_lines == 4

    def test_sequential_fraction(self):
        s = core_stats(make_trace([10, 11, 12, 500]), ORG)
        assert s.sequential_fraction == pytest.approx(2 / 3)

    def test_gap_cv_zero_for_constant_gaps(self):
        s = core_stats(make_trace([1, 2, 3], gaps=[100, 100, 100]), ORG)
        assert s.gap_cv == pytest.approx(0.0)

    def test_gap_cv_positive_for_bursty_gaps(self):
        s = core_stats(make_trace([1, 2, 3, 4],
                                  gaps=[1, 1, 1, 997]), ORG)
        assert s.gap_cv > 1.0

    def test_channel_spread_sequential_is_uniform(self):
        s = core_stats(make_trace(range(400)), ORG)
        for frac in s.channel_spread.values():
            assert frac == pytest.approx(0.25)

    def test_channel_spread_strided_concentrates(self):
        addrs = np.arange(100) * ORG.channels  # all on channel 0
        s = core_stats(make_trace(addrs), ORG)
        assert s.channel_spread[0] == pytest.approx(1.0)
        assert s.channel_spread[1] == 0.0

    def test_bank_entropy_range(self):
        uniform = core_stats(make_trace(range(10_000)), ORG)
        single = core_stats(make_trace([0] * 100), ORG)
        assert 0.9 < uniform.bank_entropy <= 1.0
        assert single.bank_entropy == pytest.approx(0.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            core_stats(make_trace([]), ORG)


class TestWorkloadStats:
    def test_per_app_representatives(self):
        wt = generate_workload("MID1", cores=8,
                               instructions_per_core=30_000, seed=3)
        stats = workload_stats(wt, ORG)
        assert set(stats.per_app) == set(wt.app_names)
        assert stats.cores == 8
        assert stats.rpki == pytest.approx(wt.rpki)

    def test_most_intensive_app(self):
        wt = generate_workload("MID3", cores=4,
                               instructions_per_core=50_000, seed=3)
        stats = workload_stats(wt, ORG)
        assert stats.most_intensive_app == "apsi"


class TestExpectedUtilization:
    def test_scales_with_burst_time(self):
        wt = generate_workload("MEM1", cores=16,
                               instructions_per_core=20_000, seed=3)
        low = expected_channel_utilization(wt, ORG, cpi_cpu=2.0,
                                           cpu_cycle_ns=0.25, burst_ns=5.0)
        high = expected_channel_utilization(wt, ORG, cpi_cpu=2.0,
                                            cpu_cycle_ns=0.25, burst_ns=20.0)
        assert high == pytest.approx(4 * low)
        assert low > 0

    def test_memory_mixes_busier(self):
        mem = generate_workload("MEM1", cores=16,
                                instructions_per_core=20_000, seed=3)
        ilp = generate_workload("ILP1", cores=16,
                                instructions_per_core=20_000, seed=3)
        args = dict(org=ORG, cpi_cpu=2.0, cpu_cycle_ns=0.25, burst_ns=5.0)
        assert (expected_channel_utilization(mem, **args)
                > 10 * expected_channel_utilization(ilp, **args))
