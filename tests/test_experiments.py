"""Tests for the programmatic experiment API (tiny scales)."""

import pytest

from repro.config import scaled_config
from repro.sim import experiments
from repro.sim.runner import ExperimentRunner, RunnerSettings

SMALL = RunnerSettings(instructions_per_core=30_000, seed=5)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(config=scaled_config(), settings=SMALL)


class TestEnergySavings:
    def test_rows_per_mix(self, runner):
        result = experiments.energy_savings(runner, mixes=["ILP2", "MID1"])
        assert [r["workload"] for r in result.rows] == ["ILP2", "MID1"]
        for row in result.rows:
            assert row["policy"] == "MemScale"
            assert -1.0 < row["memory_savings"] < 1.0
            assert row["worst_cpi_increase"] >= row["avg_cpi_increase"] - 1e-9

    def test_column_accessor(self, runner):
        result = experiments.energy_savings(runner, mixes=["ILP2"])
        assert result.column("workload") == ["ILP2"]


class TestPolicyComparison:
    def test_policies_times_mixes(self, runner):
        result = experiments.policy_comparison(
            runner, mixes=["MID1"], policies=["Fast-PD", "Static"])
        assert len(result.rows) == 2
        assert {r["policy"] for r in result.rows} == {"Fast-PD",
                                                      "Static-467MHz"}


class TestSweeps:
    def test_cpi_bound_sweep_shape(self):
        result = experiments.sensitivity_cpi_bound(
            bounds=(0.02, 0.10), settings=SMALL, mixes=["MID1"])
        assert len(result.rows) == 2
        assert [r["cpi_bound"] for r in result.rows] == [0.02, 0.10]
        # looser bound saves at least as much energy
        assert (result.rows[1]["system_savings"]
                >= result.rows[0]["system_savings"] - 0.02)

    def test_channels_sweep_shape(self):
        result = experiments.sensitivity_channels(
            channels=(2, 4), settings=SMALL, mixes=["MID1"])
        assert [r["channels"] for r in result.rows] == [2, 4]

    def test_memory_fraction_sweep_direction(self):
        result = experiments.sensitivity_memory_fraction(
            fractions=(0.3, 0.5), settings=SMALL, mixes=["MID1"])
        assert (result.rows[1]["system_savings"]
                > result.rows[0]["system_savings"])

    def test_proportionality_sweep_direction(self):
        result = experiments.sensitivity_proportionality(
            idle_fracs=(0.0, 1.0), settings=SMALL, mixes=["MID1"])
        assert (result.rows[1]["system_savings"]
                > result.rows[0]["system_savings"])


class TestTimeline:
    def test_rows_match_epochs(self, runner):
        result = experiments.timeline(runner, "MID1")
        assert len(result.rows) >= 1
        for row in result.rows:
            assert row["bus_mhz"] in runner.config.bus_freqs_mhz
            assert 0.0 <= row["mean_channel_util"] <= 1.0
            assert row["memory_power_w"] > 0


class TestBestStatic:
    def test_oracle_satisfies_bound(self, runner):
        bus_mhz, cmp = experiments.best_static_frequency(runner, "MID1")
        assert bus_mhz in runner.config.bus_freqs_mhz
        assert cmp.worst_cpi_increase <= runner.config.policy.cpi_bound
        assert cmp.system_energy_savings > 0

    def test_impossible_bound_raises(self, runner):
        with pytest.raises(RuntimeError):
            experiments.best_static_frequency(runner, "MEM1",
                                              cpi_bound=-1.0)
