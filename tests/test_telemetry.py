"""Tests for the per-epoch telemetry stream (sim/telemetry.py)."""

import json

import pytest

from repro.config import NS_PER_US, scaled_config
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator
from repro.sim.telemetry import (
    EPOCH_RECORD_FIELDS,
    EPOCH_RECORD_FIELDS_V1,
    EPOCH_RECORD_FIELDS_V2,
    EPOCH_RECORD_FIELDS_V3,
    TELEMETRY_SCHEMA_VERSION,
    JsonlTelemetry,
    ListTelemetry,
    epoch_record,
    load_telemetry,
    read_telemetry,
    validate_epoch_record,
)

SETTINGS = RunnerSettings(cores=4, instructions_per_core=20_000, seed=7)

#: Every schema version ever written, with the exact field tuple a
#: writer of that version emitted. New schema bumps add one entry here
#: and the forward-compat matrix below covers them automatically.
VERSION_FIELDS = {
    1: EPOCH_RECORD_FIELDS_V1,
    2: EPOCH_RECORD_FIELDS_V2,
    3: EPOCH_RECORD_FIELDS_V3,
    4: EPOCH_RECORD_FIELDS,
}


def _record_for_version(version):
    """A valid record exactly as a writer of ``version`` emitted it."""
    record = epoch_record(
        workload="MID1", governor="MemScale", epoch=0,
        t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
        actual_cpi={}, energy_j={}, memory_power_w=0.0,
        channel_util=[])
    keep = set(VERSION_FIELDS[version])
    for name in list(record):
        if name not in keep:
            del record[name]
    record["schema"] = version
    return record


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(settings=SETTINGS)


class TestSchema:
    def test_epoch_record_has_every_schema_field(self):
        record = epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=20_000.0, bus_mhz=800.0,
            actual_cpi={"ammp": 2.0}, energy_j={"mc": 0.1},
            memory_power_w=25.0, channel_util=[0.1, 0.2, 0.3, 0.4])
        assert tuple(record) == EPOCH_RECORD_FIELDS
        validate_epoch_record(record)

    def test_governor_state_fields_default_to_null(self):
        record = epoch_record(
            workload="MID1", governor="Baseline", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        assert record["predicted_cpi"] is None
        assert record["slack_ns"] is None
        assert record["limited_by_slack"] is None

    def test_validate_rejects_missing_field(self):
        record = epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        del record["bus_mhz"]
        with pytest.raises(ValueError, match="missing"):
            validate_epoch_record(record)

    def test_validate_rejects_wrong_schema_version(self):
        record = epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        record["schema"] = TELEMETRY_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            validate_epoch_record(record)

    def test_cap_fields_default_to_null(self):
        record = epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        for name in ("budget_w", "predicted_power_w", "cap_feasible",
                     "min_perf_norm"):
            assert record[name] is None

    def test_cap_fields_flow_from_governor_state(self):
        record = epoch_record(
            workload="MID1", governor="Cap-20.00W", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[],
            governor_state={"budget_w": 20.0, "predicted_power_w": 18.5,
                            "cap_feasible": True, "min_perf_norm": 0.97})
        assert record["budget_w"] == 20.0
        assert record["cap_feasible"] is True
        validate_epoch_record(record)

    def test_v2_record_missing_cap_field_rejected(self):
        record = epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        del record["budget_w"]
        with pytest.raises(ValueError, match="missing"):
            validate_epoch_record(record)

    def test_bad_cap_field_types_rejected(self):
        record = epoch_record(
            workload="MID1", governor="Cap-20.00W", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        record["budget_w"] = "twenty"
        with pytest.raises(ValueError, match="budget_w"):
            validate_epoch_record(record)
        record["budget_w"] = None
        record["cap_feasible"] = 1.5
        with pytest.raises(ValueError, match="cap_feasible"):
            validate_epoch_record(record)

    def test_per_domain_fields_default_to_null(self):
        record = epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        for name in ("core_freq_mhz", "core_power_w",
                     "domain_budget_split"):
            assert record[name] is None
        validate_epoch_record(record)

    def test_per_domain_fields_flow_from_governor_state(self):
        record = epoch_record(
            workload="MID1", governor="MultiDomain-25.00W", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[],
            governor_state={"budget_w": 25.0, "predicted_power_w": 22.0,
                            "cap_feasible": True, "min_perf_norm": 0.96,
                            "core_freq_mhz": 3600.0, "core_power_w": 11.2,
                            "domain_budget_split": {"core_w": 11.2,
                                                    "memory_w": 10.8}})
        assert record["core_freq_mhz"] == 3600.0
        assert record["core_power_w"] == 11.2
        assert record["domain_budget_split"]["memory_w"] == 10.8
        validate_epoch_record(record)

    def test_v3_record_missing_per_domain_field_rejected(self):
        record = epoch_record(
            workload="MID1", governor="MultiDomain-25.00W", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        del record["domain_budget_split"]
        with pytest.raises(ValueError, match="missing"):
            validate_epoch_record(record)

    def test_bad_per_domain_field_types_rejected(self):
        record = epoch_record(
            workload="MID1", governor="MultiDomain-25.00W", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[])
        record["core_freq_mhz"] = "fast"
        with pytest.raises(ValueError, match="core_freq_mhz"):
            validate_epoch_record(record)
        record["core_freq_mhz"] = None
        record["domain_budget_split"] = [11.2, 10.8]
        with pytest.raises(ValueError, match="domain_budget_split"):
            validate_epoch_record(record)

class TestForwardCompatMatrix:
    """Every historical schema version loads through every reader.

    Replaces the per-version acceptance tests that accumulated with each
    schema bump: the matrix is (version x reader), so adding v5 means
    appending one entry to ``VERSION_FIELDS``.
    """

    @pytest.mark.parametrize("version", sorted(VERSION_FIELDS))
    def test_versioned_record_has_exactly_its_fields(self, version):
        record = _record_for_version(version)
        assert tuple(record) == VERSION_FIELDS[version]

    @pytest.mark.parametrize("reader",
                             ["validate", "read", "load"])
    @pytest.mark.parametrize("version", sorted(VERSION_FIELDS))
    def test_old_records_still_load(self, version, reader, tmp_path):
        record = _record_for_version(version)
        if reader == "validate":
            validate_epoch_record(record)
            return
        path = tmp_path / f"v{version}.jsonl"
        path.write_text(json.dumps(record) + "\n")
        if reader == "read":
            records, skipped = read_telemetry(path)
            assert skipped == 0
        else:
            records = load_telemetry(path)
        assert records == [record]

    @pytest.mark.parametrize("version", sorted(VERSION_FIELDS))
    def test_versioned_record_missing_its_last_field_rejected(
            self, version):
        record = _record_for_version(version)
        del record[VERSION_FIELDS[version][-1]]
        with pytest.raises(ValueError, match="missing"):
            validate_epoch_record(record)

    def test_current_version_is_the_matrix_maximum(self):
        assert TELEMETRY_SCHEMA_VERSION == max(VERSION_FIELDS)
        assert VERSION_FIELDS[TELEMETRY_SCHEMA_VERSION] \
            == EPOCH_RECORD_FIELDS


class TestSimulatorEmission:
    def test_disabled_by_default(self, runner):
        trace = runner.trace("MID1")
        sim = SystemSimulator(runner.config, trace,
                              runner.make_memscale_governor("MID1"))
        assert sim._telemetry is None
        sim.run()  # no sink: must run exactly as before

    def test_one_record_per_epoch(self, runner):
        sink = ListTelemetry()
        governor = runner.make_memscale_governor("MID1")
        result = runner.run_governor("MID1", governor, telemetry=sink)
        assert len(sink.records) == result.epochs
        for i, record in enumerate(sink.records):
            validate_epoch_record(record)
            assert record["epoch"] == i
            assert record["workload"] == "MID1"
            assert record["governor"] == "MemScale"
        # Epochs tile the run: each record starts where the last ended.
        for prev, cur in zip(sink.records, sink.records[1:]):
            assert cur["t_start_ns"] == prev["t_end_ns"]

    def test_memscale_records_carry_policy_state(self, runner):
        sink = ListTelemetry()
        governor = runner.make_memscale_governor("MID1")
        runner.run_governor("MID1", governor, telemetry=sink)
        # Any epoch after a frequency decision has prediction + slack.
        decided = [r for r in sink.records if r["predicted_cpi"] is not None]
        assert decided, "no epoch carried policy state"
        for record in decided:
            assert len(record["predicted_cpi"]) == SETTINGS.cores
            assert len(record["slack_ns"]) == SETTINGS.cores
            assert isinstance(record["limited_by_slack"], bool)
            assert all(f > 0 for f in record["feasible_bus_mhz"])

    def test_baseline_records_have_null_policy_state(self, runner):
        from repro.core.baselines import BaselineGovernor
        sink = ListTelemetry()
        runner.run_governor("MID1", BaselineGovernor(), telemetry=sink)
        assert sink.records
        for record in sink.records:
            assert record["predicted_cpi"] is None
            assert record["slack_ns"] is None

    def test_epoch_energy_sums_to_run_total(self, runner):
        sink = ListTelemetry()
        governor = runner.make_memscale_governor("MID2")
        result = runner.run_governor("MID2", governor, telemetry=sink)
        for component, total in result.energy_j.items():
            streamed = sum(r["energy_j"].get(component, 0.0)
                           for r in sink.records)
            assert streamed == pytest.approx(total, rel=1e-9), component

    def test_telemetry_does_not_change_results(self, runner):
        from repro.sim.serialize import run_result_to_dict
        plain = runner.run_governor("MID1",
                                    runner.make_memscale_governor("MID1"))
        sink = ListTelemetry()
        observed = runner.run_governor(
            "MID1", runner.make_memscale_governor("MID1"), telemetry=sink)
        assert (json.dumps(run_result_to_dict(plain), sort_keys=True)
                == json.dumps(run_result_to_dict(observed), sort_keys=True))


class TestJsonlSink:
    def test_round_trip_through_file(self, runner, tmp_path):
        path = tmp_path / "mid1.jsonl"
        with JsonlTelemetry(path) as sink:
            governor = runner.make_memscale_governor("MID1")
            result = runner.run_governor("MID1", governor, telemetry=sink)
        records = load_telemetry(path)
        assert len(records) == result.epochs
        assert all(r["kind"] == "epoch" for r in records)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTelemetry(path) as sink:
            sink.emit(epoch_record(
                workload="MID1", governor="MemScale", epoch=0,
                t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
                actual_cpi={}, energy_j={}, memory_power_w=0.0,
                channel_util=[]))
        assert len(load_telemetry(path)) == 1

    def test_load_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1, "kind": "epoch"}\n')
        with pytest.raises(ValueError):
            load_telemetry(path)


class TestTruncatedTail:
    """A run killed mid-write leaves a partial final JSONL line; the
    readers must skip (and count) it rather than lose the file."""

    def _valid_line(self):
        return json.dumps(epoch_record(
            workload="MID1", governor="MemScale", epoch=0,
            t_start_ns=0.0, t_end_ns=1.0, bus_mhz=800.0,
            actual_cpi={}, energy_j={}, memory_power_w=0.0,
            channel_util=[]))

    def test_truncated_final_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._valid_line() + '\n{"schema": 3, "kind": "ep')
        records, skipped = read_telemetry(path)
        assert len(records) == 1
        assert skipped == 1
        assert load_telemetry(path) == records

    def test_intact_file_skips_nothing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._valid_line() + "\n")
        records, skipped = read_telemetry(path)
        assert (len(records), skipped) == (1, 0)

    def test_truncation_before_the_tail_still_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"broken\n' + self._valid_line() + "\n")
        with pytest.raises(ValueError):
            read_telemetry(path)

    def test_parseable_but_invalid_tail_still_raises(self, tmp_path):
        # Only an *unparseable* final line is the truncation signature;
        # a well-formed record violating the schema is real corruption.
        path = tmp_path / "t.jsonl"
        path.write_text(self._valid_line()
                        + '\n{"schema": 1, "kind": "epoch"}\n')
        with pytest.raises(ValueError, match="missing"):
            read_telemetry(path)
