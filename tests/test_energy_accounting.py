"""Consistency tests on the simulator's energy integration.

Energy is integrated per epoch segment at the frequency active during
that segment; these tests check the bookkeeping against independent
reconstructions (average power x time, timeline power samples, and
cross-policy background arithmetic).
"""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.baselines import BaselineGovernor, StaticFrequencyGovernor
from repro.cpu.workloads import generate_workload
from repro.sim.results import ENERGY_COMPONENTS
from repro.sim.system import SystemSimulator

CFG = scaled_config()


@pytest.fixture(scope="module")
def workload():
    return generate_workload("MID2", cores=8,
                             instructions_per_core=40_000, seed=41)


@pytest.fixture(scope="module")
def baseline_run(workload):
    return SystemSimulator(CFG, workload, BaselineGovernor()).run()


class TestEnergyBookkeeping:
    def test_total_equals_power_times_time(self, baseline_run):
        r = baseline_run
        assert r.memory_energy_j == pytest.approx(
            r.avg_memory_power_w * r.sim_time_s)

    def test_timeline_power_reconstructs_energy(self, baseline_run):
        """Sum of per-epoch power x epoch length ~ integrated energy.

        Not exact (profiling segments are folded into epochs), but at a
        single fixed frequency the two views must agree closely.
        """
        r = baseline_run
        prev = 0.0
        reconstructed = 0.0
        for sample in r.timeline:
            seconds = (sample.time_ns - prev) * 1e-9
            reconstructed += sample.memory_power_w * seconds
            prev = sample.time_ns
        assert reconstructed == pytest.approx(r.memory_energy_j, rel=0.02)

    def test_all_components_tracked(self, baseline_run):
        assert set(baseline_run.energy_j) == set(ENERGY_COMPONENTS)
        for component, joules in baseline_run.energy_j.items():
            assert joules >= 0, component

    def test_background_dominates_for_balanced_mix(self, baseline_run):
        e = baseline_run.energy_j
        assert e["background"] > e["rdwr"]
        assert e["background"] > e["actpre"]

    def test_static_frequency_cuts_frequency_scaled_components(
            self, workload, baseline_run):
        static = SystemSimulator(
            CFG, workload, StaticFrequencyGovernor(400.0)).run()
        base = baseline_run
        # MC power scales ~V^2 f: the 400 MHz run's MC *power* collapses
        mc_power_ratio = ((static.energy_j["mc"] / static.sim_time_s)
                          / (base.energy_j["mc"] / base.sim_time_s))
        assert mc_power_ratio < 0.45
        # PLL/REG power scales ~linearly with frequency
        reg_power_ratio = ((static.energy_j["pll_reg"] / static.sim_time_s)
                           / (base.energy_j["pll_reg"] / base.sim_time_s))
        assert 0.35 < reg_power_ratio < 0.75

    def test_rdwr_energy_grows_at_lower_frequency(self, workload,
                                                  baseline_run):
        """Section 2.2: lowering frequency increases read/write energy
        almost linearly (same power, longer bursts)."""
        static = SystemSimulator(
            CFG, workload, StaticFrequencyGovernor(400.0)).run()
        assert static.energy_j["rdwr"] > baseline_run.energy_j["rdwr"]

    def test_refresh_energy_constant_rate(self, workload, baseline_run):
        """Refresh power is wall-time driven, independent of frequency."""
        static = SystemSimulator(
            CFG, workload, StaticFrequencyGovernor(400.0)).run()
        p_base = baseline_run.energy_j["refresh"] / baseline_run.sim_time_s
        p_static = static.energy_j["refresh"] / static.sim_time_s
        assert p_static == pytest.approx(p_base, rel=0.15)
