"""Tests for the runtime DDR3 protocol validator (memsim/validate.py).

Three layers:

* unit tests driving each constraint checker directly with hand-built
  illegal command sequences (collect mode, so several violations can be
  inspected);
* validator-pinned regressions reproducing the exact pre-fix behavior of
  the PR-2 bugfixes as hook sequences and asserting the validator flags
  them;
* property-based tests (hypothesis) replaying randomized address
  streams x powerdown modes x row policies x mid-run frequency switches
  against a real armed controller, asserting zero violations — plus
  armed full-system runs (MemScale smoke, 4-frequency static ladder).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.core.frequency import FrequencyLadder
from repro.memsim.address import MemoryLocation
from repro.memsim.controller import (
    MemoryController,
    WRITEBACK_QUEUE_CAPACITY,
)
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest, RequestKind
from repro.memsim.states import PowerdownMode, RankPowerState
from repro.memsim.timing import AccessClass
from repro.memsim.validate import (
    ProtocolValidator,
    ProtocolViolation,
    Violation,
)

CFG = scaled_config()
LADDER = FrequencyLadder(CFG)
T = CFG.timings
T_REFI = T.t_refi_ns


def make_validator(mode="collect"):
    return ProtocolValidator(CFG, mode=mode)


def make_request(kind=RequestKind.READ, channel=0, rank=0, bank=0, row=0):
    return MemRequest(kind, MemoryLocation(channel=channel, rank=rank,
                                           bank=bank, row=row, column=0))


def service(v, time_ns, channel=0, rank=0, bank=0, row=0,
            access=AccessClass.CLOSED_BANK_MISS):
    """Drive one service-start hook with a legal closed-bank activate."""
    request = make_request(channel=channel, rank=rank, bank=bank, row=row)
    request.act_ns = time_ns
    v.on_service_start(channel, rank, bank, request, access, time_ns,
                       time_ns + T.t_rcd_ns + T.t_cl_ns)
    return request


def rules(v):
    return [violation.rule for violation in v.violations]


class TestViolationPlumbing:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ProtocolValidator(CFG, mode="warn")

    def test_collect_mode_accumulates(self):
        v = make_validator()
        service(v, 0.0, bank=0)
        service(v, 1.0, bank=1)  # tRRD violation: gap 1 < 5
        assert v.violation_count == 1
        assert rules(v) == ["tRRD"]

    def test_raise_mode_raises_structured(self):
        v = make_validator(mode="raise")
        service(v, 0.0, bank=0)
        with pytest.raises(ProtocolViolation) as exc:
            service(v, 1.0, bank=1)
        assert exc.value.violation.rule == "tRRD"
        assert exc.value.violation.required_ns == pytest.approx(T.t_rrd_ns)
        assert exc.value.violation.actual_ns == pytest.approx(1.0)
        assert "tRRD" in str(exc.value)

    def test_report_schema(self):
        v = make_validator()
        service(v, 0.0, bank=0)
        service(v, 1.0, bank=1)
        report = v.report()
        assert report["schema"] == 1
        assert report["mode"] == "collect"
        assert report["violation_count"] == 1
        assert report["checks"]["tRRD"] >= 1
        entry = report["violations"][0]
        assert entry["rule"] == "tRRD"
        assert entry["rank"] == 0

    def test_violation_to_dict_omits_none(self):
        violation = Violation(rule="tFAW", time_ns=1.0, message="m", rank=2)
        d = violation.to_dict()
        assert d == {"rule": "tFAW", "time_ns": 1.0, "message": "m",
                     "rank": 2}


class TestBankConstraints:
    def test_trrd_spacing_enforced(self):
        v = make_validator()
        service(v, 100.0, bank=0)
        service(v, 100.0 + T.t_rrd_ns - 1.0, bank=1)
        assert rules(v) == ["tRRD"]

    def test_trrd_exact_gap_is_legal(self):
        v = make_validator()
        service(v, 100.0, bank=0)
        service(v, 100.0 + T.t_rrd_ns, bank=1)
        assert v.violation_count == 0

    def test_tfaw_window_enforced(self):
        v = make_validator()
        # four activates spaced exactly tRRD apart, then a fifth inside
        # the 4-activate window (gaps satisfy tRRD so only tFAW fires)
        for i in range(4):
            service(v, i * (T.t_rrd_ns + 1.0), bank=i)
        fifth = 3 * (T.t_rrd_ns + 1.0) + T.t_rrd_ns + 1.0
        assert fifth < T.t_faw_ns
        service(v, fifth, bank=4)
        assert rules(v) == ["tFAW"]

    def test_trc_same_bank_enforced(self):
        v = make_validator()
        service(v, 0.0, bank=0, row=0)
        # open-row miss on the same bank re-activates before tRC elapsed
        request = make_request(bank=0, row=1)
        request.act_ns = T.t_rp_ns + 5.0  # inline tRP satisfied, tRC not
        v.on_service_start(0, 0, 0, request, AccessClass.OPEN_ROW_MISS,
                           0.0, request.act_ns + T.t_rcd_ns + T.t_cl_ns)
        assert "tRC" in rules(v)

    def test_tras_before_precharge_enforced(self):
        v = make_validator()
        service(v, 0.0, bank=0)
        v.on_precharge(0, 0, 0, T.t_ras_ns - 5.0,
                       T.t_ras_ns - 5.0 + T.t_rp_ns)
        assert rules(v) == ["tRAS"]

    def test_trp_duration_enforced(self):
        v = make_validator()
        service(v, 0.0, bank=0)
        v.on_precharge(0, 0, 0, T.t_ras_ns, T.t_ras_ns + T.t_rp_ns - 2.0)
        assert rules(v) == ["tRP"]

    def test_activate_before_precharge_end_enforced(self):
        v = make_validator()
        service(v, 0.0, bank=0)
        pre_end = T.t_ras_ns + T.t_rp_ns
        v.on_precharge(0, 0, 0, T.t_ras_ns, pre_end)
        service(v, pre_end - 1.0, bank=0)
        assert "tRP" in rules(v)

    def test_trcd_data_ready_enforced(self):
        v = make_validator()
        request = make_request()
        request.act_ns = 0.0
        v.on_service_start(0, 0, 0, request, AccessClass.CLOSED_BANK_MISS,
                           0.0, T.t_rcd_ns + T.t_cl_ns - 1.0)
        assert "tRCD" in rules(v)

    def test_row_hit_tcl_enforced(self):
        v = make_validator()
        service(v, 0.0, bank=0, row=7)
        request = make_request(bank=0, row=7)
        v.on_service_start(0, 0, 0, request, AccessClass.ROW_HIT,
                           100.0, 100.0 + T.t_cl_ns - 2.0)
        assert "tCL" in rules(v)

    def test_row_state_consistency(self):
        v = make_validator()
        # claiming a row hit with no open row is inconsistent
        request = make_request(bank=0, row=3)
        v.on_service_start(0, 0, 0, request, AccessClass.ROW_HIT,
                           0.0, T.t_cl_ns)
        assert "row-state" in rules(v)

    def test_row_state_tracks_precharge(self):
        v = make_validator()
        service(v, 0.0, bank=0, row=3)
        v.on_precharge(0, 0, 0, T.t_ras_ns, T.t_ras_ns + T.t_rp_ns)
        # after the precharge the bank is closed: a row hit is illegal...
        request = make_request(bank=0, row=3)
        v.on_service_start(0, 0, 0, request, AccessClass.ROW_HIT,
                           100.0, 100.0 + T.t_cl_ns)
        assert "row-state" in rules(v)


class TestChannelConstraints:
    def test_bus_overlap_detected(self):
        v = make_validator()
        a, b = make_request(), make_request(bank=1)
        a.bank_done_ns = 0.0
        b.bank_done_ns = 0.0
        v.on_burst(0, a, 0.0, 5.0)
        v.on_burst(0, b, 3.0, 8.0)
        assert "bus-overlap" in rules(v)

    def test_distinct_channels_may_overlap(self):
        v = make_validator()
        a, b = make_request(channel=0), make_request(channel=1)
        a.bank_done_ns = 0.0
        b.bank_done_ns = 0.0
        v.on_burst(0, a, 0.0, 5.0)
        v.on_burst(1, b, 3.0, 8.0)
        assert v.violation_count == 0

    def test_burst_before_bank_done_detected(self):
        v = make_validator()
        a = make_request()
        a.bank_done_ns = 10.0
        v.on_burst(0, a, 5.0, 10.0)
        assert "bus-order" in rules(v)

    def test_burst_length_matches_channel_clock(self):
        v = make_validator()
        v.on_global_freeze(0.0, LADDER.fastest)  # 800 MHz: burst 5 ns
        a = make_request()
        a.bank_done_ns = 0.0
        v.on_burst(0, a, 10.0, 30.0)  # 20 ns is the 200 MHz burst
        assert "burst-length" in rules(v)


class TestFreezeWindows:
    def test_service_inside_global_freeze_detected(self):
        v = make_validator()
        v.on_global_freeze(100.0, LADDER.at_bus_mhz(400.0))
        service(v, 50.0)
        assert "freeze-service" in rules(v)

    def test_burst_inside_channel_freeze_detected(self):
        v = make_validator()
        point = LADDER.at_bus_mhz(200.0)
        v.on_channel_freeze(2, 100.0, point)
        a = make_request(channel=2)
        a.bank_done_ns = 0.0
        v.on_burst(2, a, 50.0, 50.0 + point.burst_ns)
        assert "freeze-burst" in rules(v)

    def test_channel_freeze_does_not_gate_other_channels(self):
        v = make_validator()
        v.on_channel_freeze(2, 100.0, LADDER.at_bus_mhz(200.0))
        service(v, 10.0, channel=0)
        assert v.violation_count == 0

    def test_freeze_cleared_forgets_windows(self):
        v = make_validator()
        v.on_global_freeze(100.0, LADDER.at_bus_mhz(400.0))
        v.on_freeze_cleared()
        service(v, 10.0)
        assert v.violation_count == 0

    def test_mc_latency_swallowed_by_freeze_detected(self):
        """The exact pre-fix `submit` bug: a request submitted during a
        freeze window arrived at freeze-end, paying no MC latency."""
        v = make_validator()
        point = LADDER.at_bus_mhz(400.0)
        v.on_global_freeze(100.0, point)
        request = make_request()
        v.on_submit(request, 50.0, point.mc_latency_ns)
        v.on_arrive(request, 100.0)  # pre-fix arrival: max(latency, freeze)
        assert rules(v) == ["mc-latency"]

    def test_mc_latency_after_freeze_is_legal(self):
        v = make_validator()
        point = LADDER.at_bus_mhz(400.0)
        v.on_global_freeze(100.0, point)
        request = make_request()
        v.on_submit(request, 50.0, point.mc_latency_ns)
        v.on_arrive(request, 100.0 + point.mc_latency_ns)
        assert v.violation_count == 0


class TestRefreshConstraints:
    def test_first_due_past_trefi_detected(self):
        """The exact pre-fix stagger bug: rank k's first refresh timer
        fired at tREFI + k/16 * tREFI, beyond the refresh interval."""
        v = make_validator()
        v.on_refresh_due(3, T_REFI + 3.0 / 16.0 * T_REFI)
        assert rules(v) == ["refresh-cadence"]

    def test_first_due_within_trefi_is_legal(self):
        v = make_validator()
        v.on_refresh_due(3, T_REFI - 3.0 / 16.0 * T_REFI)
        assert v.violation_count == 0

    def test_timer_gap_beyond_trefi_detected(self):
        v = make_validator()
        v.on_refresh_due(0, 0.5 * T_REFI)
        v.on_refresh_due(0, 2.0 * T_REFI)
        assert "refresh-cadence" in rules(v)

    def test_refresh_overlap_detected(self):
        v = make_validator()
        v.on_refresh_issue(0, 0.0, T.t_rfc_ns, False)
        v.on_refresh_issue(0, T.t_rfc_ns / 2.0, 1.5 * T.t_rfc_ns, False)
        assert "refresh-overlap" in rules(v)

    def test_short_refresh_cycle_detected(self):
        v = make_validator()
        v.on_refresh_issue(0, 0.0, T.t_rfc_ns - 10.0, False)
        assert "tRFC" in rules(v)

    def test_service_inside_refresh_window_detected(self):
        v = make_validator()
        v.on_refresh_issue(0, 0.0, T.t_rfc_ns, False)
        service(v, T.t_rfc_ns / 2.0, rank=0)
        assert "refresh-window" in rules(v)

    def test_issue_gap_within_postponement_budget_is_legal(self):
        v = make_validator()
        v.on_refresh_issue(0, 0.0, T.t_rfc_ns, False)
        v.on_refresh_issue(0, 5.0 * T_REFI, 5.0 * T_REFI + T.t_rfc_ns, False)
        assert v.violation_count == 0

    def test_issue_gap_beyond_postponement_budget_detected(self):
        v = make_validator()
        v.on_refresh_issue(0, 0.0, T.t_rfc_ns, False)
        late = 10.0 * T_REFI
        v.on_refresh_issue(0, late, late + T.t_rfc_ns, False)
        assert "refresh-cadence" in rules(v)


class TestPowerdownConstraints:
    def test_entry_with_busy_bank_detected(self):
        v = make_validator()
        v.on_rank_state(0, RankPowerState.ACTIVE_STANDBY,
                        RankPowerState.ACTIVE_POWERDOWN, 100.0,
                        any_bank_busy=True)
        assert "powerdown-entry" in rules(v)

    def test_precharge_powerdown_with_open_row_detected(self):
        v = make_validator()
        service(v, 0.0, rank=0, bank=0, row=5)  # opens row 5
        v.on_rank_state(0, RankPowerState.PRECHARGE_STANDBY,
                        RankPowerState.PRECHARGE_POWERDOWN, 100.0,
                        any_bank_busy=False)
        assert "powerdown-entry" in rules(v)

    def test_entry_inside_refresh_window_detected(self):
        v = make_validator()
        v.on_refresh_issue(0, 0.0, T.t_rfc_ns, False)
        v.on_rank_state(0, RankPowerState.PRECHARGE_STANDBY,
                        RankPowerState.PRECHARGE_POWERDOWN,
                        T.t_rfc_ns / 2.0, any_bank_busy=False)
        assert "powerdown-entry" in rules(v)

    def test_legal_entry_and_exit_counted(self):
        v = make_validator()
        v.on_rank_state(0, RankPowerState.PRECHARGE_STANDBY,
                        RankPowerState.PRECHARGE_POWERDOWN, 100.0,
                        any_bank_busy=False)
        v.on_powerdown_exit(0, 200.0)
        v.on_rank_state(0, RankPowerState.PRECHARGE_POWERDOWN,
                        RankPowerState.PRECHARGE_STANDBY, 200.0,
                        any_bank_busy=False)
        v.finalize()
        assert v.violation_count == 0

    def test_exit_without_epdc_event_detected(self):
        v = make_validator()
        v.on_rank_state(0, RankPowerState.PRECHARGE_STANDBY,
                        RankPowerState.PRECHARGE_POWERDOWN, 100.0,
                        any_bank_busy=False)
        # CKE comes back up with neither an EPDC event nor a refresh wake
        v.on_rank_state(0, RankPowerState.PRECHARGE_POWERDOWN,
                        RankPowerState.PRECHARGE_STANDBY, 200.0,
                        any_bank_busy=False)
        v.finalize()
        assert "powerdown-exit-epdc" in rules(v)

    def test_refresh_wake_balances_exit(self):
        v = make_validator()
        v.on_rank_state(0, RankPowerState.PRECHARGE_STANDBY,
                        RankPowerState.PRECHARGE_POWERDOWN, 100.0,
                        any_bank_busy=False)
        v.on_rank_state(0, RankPowerState.PRECHARGE_POWERDOWN,
                        RankPowerState.PRECHARGE_STANDBY, 200.0,
                        any_bank_busy=False)
        v.on_refresh_issue(0, 200.0, 200.0 + T.t_rfc_ns,
                           was_powered_down=True)
        v.finalize()
        assert v.violation_count == 0


def park(v, rank=0, t=100.0):
    """Drive a legal self-refresh entry (hook order matches rank.py)."""
    v.on_sr_enter(rank, t)
    v.on_rank_state(rank, RankPowerState.PRECHARGE_STANDBY,
                    RankPowerState.SELF_REFRESH, t, any_bank_busy=False)


def unpark(v, rank=0, t=500.0, entered=100.0, for_access=False):
    """Drive a legal exit: ``on_sr_exit`` fires *before* the rank-state
    change (the transition clears the validator's in-SR flag)."""
    ready = max(t, entered + T.t_ckesr_ns) + T.t_xs_ns
    v.on_sr_exit(rank, t, ready, for_access)
    v.on_rank_state(rank, RankPowerState.SELF_REFRESH,
                    RankPowerState.PRECHARGE_STANDBY, t,
                    any_bank_busy=False)
    return ready


class TestSelfRefreshConstraints:
    """Each illegal sequence is mutation-style: deleting the rule from
    the validator makes the matching test fail."""

    def test_activate_while_parked_detected(self):
        v = make_validator()
        park(v)
        service(v, 200.0, rank=0)
        assert "sr-activate" in rules(v)

    def test_service_inside_exit_window_detected(self):
        v = make_validator()
        park(v, t=100.0)
        ready = unpark(v, t=500.0, entered=100.0)
        service(v, ready - 10.0, rank=0)
        assert "sr-exit" in rules(v)

    def test_service_after_exit_window_is_legal(self):
        v = make_validator()
        park(v, t=100.0)
        ready = unpark(v, t=500.0, entered=100.0)
        service(v, ready, rank=0)
        assert v.violation_count == 0

    def test_refresh_timer_tick_while_parked_detected(self):
        v = make_validator()
        park(v)
        v.on_refresh_due(0, 200.0)
        assert "sr-refresh" in rules(v)

    def test_external_refresh_issue_while_parked_detected(self):
        v = make_validator()
        park(v)
        v.on_refresh_issue(0, 200.0, 200.0 + T.t_rfc_ns, False)
        assert "sr-refresh" in rules(v)

    def test_short_exit_window_detected(self):
        v = make_validator()
        park(v, t=100.0)
        # ready before the tCKESR residual plus tXS elapse
        v.on_sr_exit(0, 500.0, 500.0 + T.t_xs_ns - 1.0, False)
        assert "sr-exit" in rules(v)

    def test_exit_must_cover_residual_tckesr(self):
        v = make_validator()
        park(v, t=100.0)
        # exit immediately: the unexpired tCKESR residency extends the
        # window beyond a bare tXS
        v.on_sr_exit(0, 100.0, 100.0 + T.t_xs_ns, False)
        assert "sr-exit" in rules(v)

    def test_exit_without_entry_detected(self):
        v = make_validator()
        v.on_sr_exit(0, 500.0, 500.0 + T.t_xs_ns, False)
        assert "sr-exit" in rules(v)

    def test_double_entry_detected(self):
        v = make_validator()
        park(v)
        v.on_sr_enter(0, 300.0)
        assert "sr-entry" in rules(v)

    def test_entry_with_open_row_detected(self):
        v = make_validator()
        service(v, 0.0, rank=0, bank=2, row=5)  # opens row 5
        v.on_sr_enter(0, 100.0)
        assert "sr-entry" in rules(v)

    def test_entry_with_pending_refresh_detected(self):
        v = make_validator()
        v.on_refresh_due(0, 50.0)  # pending: due but never issued
        v.on_sr_enter(0, 100.0)
        assert "sr-entry" in rules(v)

    def test_entry_inside_refresh_window_detected(self):
        v = make_validator()
        v.on_refresh_due(0, 50.0)
        v.on_refresh_issue(0, 50.0, 50.0 + T.t_rfc_ns, False)
        v.on_sr_enter(0, 50.0 + T.t_rfc_ns / 2.0)
        assert "sr-entry" in rules(v)

    def test_legal_policy_park_cycle_balances(self):
        v = make_validator()
        park(v, t=100.0)
        unpark(v, t=500.0, entered=100.0, for_access=False)
        v.finalize()
        assert v.violation_count == 0

    def test_legal_demand_wake_balances(self):
        v = make_validator()
        park(v, t=100.0)
        v.on_powerdown_exit(0, 500.0)  # EPDC recorded on the access path
        unpark(v, t=500.0, entered=100.0, for_access=True)
        v.finalize()
        assert v.violation_count == 0

    def test_unpark_without_exit_category_detected(self):
        v = make_validator()
        park(v, t=100.0)
        # CKE comes back up without on_sr_exit (no EPDC, no policy
        # unpark): the exit-accounting conservation must flag it
        v.on_rank_state(0, RankPowerState.SELF_REFRESH,
                        RankPowerState.PRECHARGE_STANDBY, 500.0,
                        any_bank_busy=False)
        v.finalize()
        assert "powerdown-exit-epdc" in rules(v)

    def test_refresh_cadence_restarts_at_exit(self):
        v = make_validator()
        v.on_refresh_due(0, 0.5 * T_REFI)
        v.on_refresh_issue(0, 0.5 * T_REFI, 0.5 * T_REFI + T.t_rfc_ns,
                           False)
        park(v, t=T_REFI)
        # parked across many tREFI: the device refreshed itself, so the
        # first external tick after the exit is *not* a cadence gap
        exit_t = 20.0 * T_REFI
        unpark(v, t=exit_t, entered=T_REFI)
        v.on_refresh_due(0, exit_t + T_REFI)
        v.on_refresh_issue(0, exit_t + T_REFI,
                           exit_t + T_REFI + T.t_rfc_ns, False)
        v.finalize()
        assert v.violation_count == 0


class TestConservation:
    def test_wb_capacity_overflow_detected(self):
        v = make_validator()
        v.on_wb_occupancy(0, WRITEBACK_QUEUE_CAPACITY + 1, 0.0)
        assert "wb-capacity" in rules(v)

    def test_negative_wb_occupancy_detected(self):
        v = make_validator()
        v.on_wb_occupancy(0, -1, 0.0)
        assert "wb-occupancy" in rules(v)

    def test_timestamp_chain_audited(self):
        v = make_validator()
        request = make_request()
        request.issue_ns = 0.0
        request.arrive_mc_ns = 0.0
        request.arrive_bank_ns = 5.0
        request.bank_start_ns = 5.0
        request.bank_done_ns = 40.0
        request.bus_start_ns = 40.0
        request.complete_ns = 30.0  # completes before its burst started
        v.on_complete(request, 30.0)
        assert "timestamps" in rules(v)

    def test_submitted_completed_balance_on_live_controller(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG.replace(validate_protocol=True),
                              refresh_enabled=False, n_cores=4)
        for i in range(8):
            mc.submit_read(i * 4096)
        engine.run()
        mc.validator.finalize()  # raise mode: any imbalance would throw
        assert mc.validator.submitted == 8
        assert mc.validator.completed == 8

    def test_rank_state_integral_mismatch_detected(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=False, n_cores=4)
        v = ProtocolValidator(CFG, mode="collect")
        mc.attach_validator(v)
        done = []
        mc.submit_read(0, on_complete=lambda r: done.append(r))
        engine.run()
        # corrupt one rank's state-time integral behind the validator
        mc.counters.rank_state_ns[0][0] += 123.0
        v.finalize()
        assert "conservation" in rules(v)


class TestValidatorOverheadPath:
    def test_hooks_disabled_by_default(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG, refresh_enabled=False, n_cores=4)
        assert mc.validator is None

    def test_config_flag_arms_validator(self):
        engine = EventEngine()
        mc = MemoryController(engine, CFG.replace(validate_protocol=True),
                              refresh_enabled=False, n_cores=4)
        assert isinstance(mc.validator, ProtocolValidator)
        assert mc.ranks[0].validator is mc.validator


POWERDOWN_MODES = [PowerdownMode.NONE, PowerdownMode.FAST_EXIT,
                   PowerdownMode.SLOW_EXIT]


class TestRandomizedProtocol:
    """Property tests: randomized traffic on a real armed controller.

    The validator runs in raise mode, so any timing or invariant
    violation fails the test at the exact offending command.
    """

    @pytest.mark.parametrize("row_policy", ["closed", "open"])
    @pytest.mark.parametrize("powerdown", POWERDOWN_MODES)
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_random_traffic_zero_violations(self, row_policy, powerdown,
                                            data):
        cfg = (scaled_config().with_org(row_policy=row_policy)
               .replace(validate_protocol=True))
        engine = EventEngine()
        mc = MemoryController(engine, cfg, powerdown_mode=powerdown,
                              refresh_enabled=True, n_cores=4)
        n_ops = data.draw(st.integers(min_value=30, max_value=120),
                          label="n_ops")
        for _ in range(n_ops):
            action = data.draw(st.integers(min_value=0, max_value=9),
                               label="action")
            if action == 0:
                mhz = data.draw(st.sampled_from(cfg.bus_freqs_mhz),
                                label="bus_mhz")
                mc.set_frequency_by_bus_mhz(mhz)
            elif action == 1:
                channel = data.draw(
                    st.integers(min_value=0,
                                max_value=cfg.org.channels - 1),
                    label="channel")
                mhz = data.draw(st.sampled_from(cfg.bus_freqs_mhz),
                                label="channel_mhz")
                mc.set_channel_frequency(channel, mc.ladder.at_bus_mhz(mhz))
            else:
                addr = data.draw(st.integers(min_value=0,
                                             max_value=(1 << 20) - 1),
                                 label="line_addr")
                if data.draw(st.booleans(), label="is_read"):
                    mc.submit_read(addr)
                else:
                    # the LLC applies backpressure before the writeback
                    # queue can overflow; model that here
                    channel = mc.mapper.decode(addr).channel
                    if (mc.wb_queue_occupancy(channel)
                            < WRITEBACK_QUEUE_CAPACITY):
                        mc.submit_writeback(addr)
            gap = data.draw(st.floats(min_value=0.0, max_value=40.0),
                            label="gap_ns")
            engine.run_until(engine.now + gap)
        # drain everything (several tREFI so refreshes keep ticking)
        engine.run_until(engine.now + 60_000.0)
        assert mc.pending_requests == 0
        mc.validator.finalize()
        assert mc.validator.violation_count == 0

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_hot_bank_bursts_zero_violations(self, seed):
        """Same-bank/same-row pressure: row hits, tRC back-pressure, and
        bus blocking all in one bank while frequencies walk the ladder."""
        cfg = scaled_config().replace(validate_protocol=True)
        engine = EventEngine()
        mc = MemoryController(engine, cfg,
                              powerdown_mode=PowerdownMode.FAST_EXIT,
                              refresh_enabled=True, n_cores=4)
        ladder_walk = (800.0, 533.0, 333.0, 200.0, 800.0)
        for step, mhz in enumerate(ladder_walk):
            mc.set_frequency_by_bus_mhz(mhz)
            base = (seed + step * 7919) % (1 << 18)
            for i in range(24):
                # alternate one hot line and a scatter of others
                mc.submit_read(base if i % 3 else base + i * 613)
                engine.run_until(engine.now + float(i % 5))
            engine.run_until(engine.now + 2_000.0)
        engine.run_until(engine.now + 60_000.0)
        assert mc.pending_requests == 0
        mc.validator.finalize()
        assert mc.validator.violation_count == 0


class TestArmedSystemRuns:
    """Full-system runs (CPU cluster + governor + epoch loop), armed."""

    def _runner(self, **overrides):
        from repro.sim.runner import ExperimentRunner, RunnerSettings
        cfg = scaled_config().replace(validate_protocol=True)
        settings = RunnerSettings(cores=4, instructions_per_core=4_000,
                                  seed=2011)
        return ExperimentRunner(config=cfg, settings=settings, cache=None)

    def test_memscale_with_powerdown_zero_violations(self):
        runner = self._runner()
        result, cmp = runner.run_named_policy("MID1", "MemScale+Fast-PD")
        assert result.epochs >= 1

    def test_four_frequency_static_sweep_zero_violations(self):
        from repro.core.baselines import StaticFrequencyGovernor
        runner = self._runner()
        for mhz in (800.0, 600.0, 400.0, 200.0):
            result = runner.run_governor(
                "MID1", StaticFrequencyGovernor(bus_mhz=mhz))
            assert result.sim_time_ns > 0
