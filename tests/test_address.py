"""Unit and property tests for physical address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.config import MemoryOrgConfig
from repro.memsim.address import AddressMapper, MemoryLocation


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(MemoryOrgConfig())


class TestDecode:
    def test_line_zero(self, mapper):
        loc = mapper.decode(0)
        assert loc == MemoryLocation(channel=0, rank=0, bank=0, row=0, column=0)

    def test_consecutive_lines_interleave_channels(self, mapper):
        channels = [mapper.decode(i).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_channel_stride_walks_banks(self, mapper):
        org = MemoryOrgConfig()
        banks = [mapper.decode(i * org.channels).bank
                 for i in range(org.banks_per_rank)]
        assert banks == list(range(org.banks_per_rank))

    def test_fields_within_bounds(self, mapper):
        org = MemoryOrgConfig()
        for addr in [0, 1, 12345, 999_999, 123_456_789]:
            loc = mapper.decode(addr)
            assert 0 <= loc.channel < org.channels
            assert 0 <= loc.rank < org.ranks_per_channel
            assert 0 <= loc.bank < org.banks_per_rank
            assert 0 <= loc.row < org.rows_per_bank
            assert 0 <= loc.column < org.lines_per_row

    def test_negative_address_raises(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_bank_key_identity(self, mapper):
        loc = mapper.decode(4242)
        assert loc.bank_key() == (loc.channel, loc.rank, loc.bank)


class TestEncodeDecodeRoundtrip:
    @given(st.integers(min_value=0, max_value=2**34))
    def test_roundtrip_within_capacity(self, addr):
        mapper = AddressMapper(MemoryOrgConfig())
        org = mapper.org
        capacity_lines = (org.channels * org.ranks_per_channel
                          * org.banks_per_rank * org.rows_per_bank
                          * org.lines_per_row)
        addr = addr % capacity_lines
        assert mapper.encode(mapper.decode(addr)) == addr

    @given(st.integers(min_value=0, max_value=2**40))
    def test_decode_total_distinct_banks(self, addr):
        mapper = AddressMapper(MemoryOrgConfig())
        loc = mapper.decode(addr)
        # same line decodes identically every time (purity)
        assert mapper.decode(addr) == loc


class TestSmallOrganizations:
    def test_single_channel_org(self):
        org = MemoryOrgConfig(channels=1)
        mapper = AddressMapper(org)
        assert all(mapper.decode(i).channel == 0 for i in range(16))

    def test_two_channel_spread(self):
        org = MemoryOrgConfig(channels=2)
        mapper = AddressMapper(org)
        assert [mapper.decode(i).channel for i in range(4)] == [0, 1, 0, 1]
