"""Unit and property tests for application phase schedules."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.phases import FLAT, Phase, PhaseSchedule


class TestPhase:
    def test_valid_phase(self):
        p = Phase(0.5, 2.0)
        assert p.fraction == 0.5
        assert p.intensity == 2.0

    def test_rejects_zero_fraction(self):
        with pytest.raises(ValueError):
            Phase(0.0, 1.0)

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValueError):
            Phase(1.5, 1.0)

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError):
            Phase(0.5, -1.0)


class TestPhaseSchedule:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            PhaseSchedule([])

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PhaseSchedule([Phase(0.5, 1.0), Phase(0.4, 1.0)])

    def test_normalizes_mean_intensity_to_one(self):
        sched = PhaseSchedule([Phase(0.5, 2.0), Phase(0.5, 6.0)])
        mean = sum(p.fraction * p.intensity for p in sched.phases)
        assert mean == pytest.approx(1.0)

    def test_relative_intensities_preserved(self):
        sched = PhaseSchedule([Phase(0.5, 1.0), Phase(0.5, 3.0)])
        ratio = sched.phases[1].intensity / sched.phases[0].intensity
        assert ratio == pytest.approx(3.0)

    def test_rejects_all_zero_intensity(self):
        with pytest.raises(ValueError):
            PhaseSchedule([Phase(1.0, 0.0)])

    def test_flat_schedule(self):
        assert len(FLAT) == 1
        assert FLAT.phases[0].intensity == pytest.approx(1.0)


class TestSegments:
    def test_segments_sum_to_total(self):
        sched = PhaseSchedule([Phase(0.45, 0.25), Phase(0.55, 1.6)])
        segs = sched.segments(100_000)
        assert sum(n for n, _ in segs) == 100_000

    def test_segment_proportions(self):
        sched = PhaseSchedule([Phase(0.25, 1.0), Phase(0.75, 1.0)])
        segs = sched.segments(1000)
        assert segs[0][0] == 250
        assert segs[1][0] == 750

    def test_single_phase_single_segment(self):
        segs = FLAT.segments(500)
        assert segs == [(500, 1.0)]

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            FLAT.segments(0)

    def test_tiny_totals_still_cover_everything(self):
        sched = PhaseSchedule([Phase(0.45, 0.25), Phase(0.55, 1.6)])
        for total in (1, 2, 3):
            segs = sched.segments(total)
            assert sum(n for n, _ in segs) == total
            assert all(n > 0 for n, _ in segs)

    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1,
                 max_size=6),
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=6,
                 max_size=6),
        st.integers(min_value=1, max_value=1_000_000),
    )
    def test_property_segments_partition_instructions(self, raw_fracs,
                                                      intensities, total):
        fracs = [f / sum(raw_fracs) for f in raw_fracs]
        # repair rounding on the last fraction
        fracs[-1] = 1.0 - sum(fracs[:-1])
        if fracs[-1] <= 0:
            return
        phases = [Phase(f, i) for f, i in zip(fracs, intensities)]
        sched = PhaseSchedule(phases)
        segs = sched.segments(total)
        assert sum(n for n, _ in segs) == total
        assert all(n > 0 for n, _ in segs)
        mean = sum(p.fraction * p.intensity for p in sched.phases)
        assert mean == pytest.approx(1.0, rel=1e-9)
