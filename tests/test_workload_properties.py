"""Property-based tests on the workload generator and full-run physics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import scaled_config
from repro.cpu.workloads import MIXES, generate_workload
from repro.sim.runner import ExperimentRunner, RunnerSettings

CFG = scaled_config()


class TestGeneratorProperties:
    @given(st.sampled_from(sorted(MIXES)), st.integers(0, 1_000_000))
    @settings(max_examples=15, deadline=None)
    def test_calibration_holds_for_any_seed(self, mix, seed):
        wt = generate_workload(mix, cores=8, instructions_per_core=60_000,
                               seed=seed)
        target = MIXES[mix].target_rpki
        assert wt.rpki == pytest.approx(target, rel=0.12)
        assert wt.wpki <= wt.rpki
        for core in wt.cores:
            assert core.total_instructions == 60_000
            assert core.read_addrs.min() >= 0
            assert core.gaps.min() >= 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_mix_identity_is_stable_across_seeds(self, seed):
        wt = generate_workload("MID3", cores=4,
                               instructions_per_core=20_000, seed=seed)
        assert [c.app_name for c in wt.cores] == list(MIXES["MID3"].apps)


class TestRunPhysics:
    """Full-run invariants that must hold regardless of policy."""

    @pytest.fixture(scope="class")
    def runs(self):
        runner = ExperimentRunner(
            config=CFG,
            settings=RunnerSettings(instructions_per_core=30_000, seed=33))
        base = runner.baseline("MID2")
        policy_run, cmp = runner.run_memscale("MID2")
        return base, policy_run, cmp

    def test_energy_components_sum(self, runs):
        base, policy_run, _ = runs
        for r in (base, policy_run):
            assert r.memory_energy_j == pytest.approx(
                sum(r.energy_j.values()))
            assert r.dimm_energy_j < r.memory_energy_j

    def test_power_within_physical_envelope(self, runs):
        base, policy_run, _ = runs
        for r in (base, policy_run):
            # 8 ECC DIMMs + MC can draw neither zero nor kilowatts
            assert 5.0 < r.avg_memory_power_w < 120.0

    def test_policy_run_never_faster_than_baseline(self, runs):
        base, policy_run, _ = runs
        assert policy_run.wall_time_ns >= base.wall_time_ns * 0.999

    def test_policy_memory_power_below_baseline(self, runs):
        base, policy_run, _ = runs
        assert policy_run.avg_memory_power_w < base.avg_memory_power_w

    def test_epoch_samples_cover_run(self, runs):
        _, policy_run, _ = runs
        times = [s.time_ns for s in policy_run.timeline]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(policy_run.sim_time_ns)

    def test_comparison_consistent_with_runs(self, runs):
        base, policy_run, cmp = runs
        expected = 1.0 - policy_run.memory_energy_j / base.memory_energy_j
        assert cmp.memory_energy_savings == pytest.approx(expected)
