"""The docs link checker (tools/check_docs_links.py) — the repo's own
docs must pass it, and it must actually catch rot."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py")
check_docs_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs_links)


def test_repo_docs_have_no_dangling_links():
    assert check_docs_links.dangling(REPO_ROOT) == []


def test_main_exit_status(capsys):
    assert check_docs_links.main(["check_docs_links.py",
                                  str(REPO_ROOT)]) == 0
    assert "docs links OK" in capsys.readouterr().out


def test_detects_dangling_markdown_link(tmp_path):
    (tmp_path / "README.md").write_text(
        "see [the guide](docs/missing.md) for details\n")
    bad = check_docs_links.dangling(tmp_path)
    assert [(p.name, line, target) for p, line, target in bad] == [
        ("README.md", 1, "docs/missing.md")]


def test_detects_dangling_code_reference(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "notes.md").write_text(
        "the logic lives in `src/nowhere/ghost.py` now\n")
    bad = check_docs_links.dangling(tmp_path)
    assert len(bad) == 1
    assert bad[0][2] == "src/nowhere/ghost.py"


def test_accepts_valid_references(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text("x = 1\n")
    (tmp_path / "docs" / "guide.md").write_text("# guide\n")
    (tmp_path / "README.md").write_text(
        "read [the guide](docs/guide.md); code in `mod.py` and\n"
        "`src/mod.py`; externals like <https://example.com> and\n"
        "[site](https://example.com/x.md) are skipped, as are\n"
        "[anchors](#section) and knobs like `epoch_us`.\n")
    (tmp_path / "docs" / "other.md").write_text(
        "sibling [guide](guide.md) resolves relative to docs/\n")
    assert check_docs_links.dangling(tmp_path) == []


def test_main_reports_failures(tmp_path, capsys):
    (tmp_path / "README.md").write_text("[x](gone.md)\n")
    assert check_docs_links.main(["check_docs_links.py",
                                  str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "README.md:1" in out and "gone.md" in out
