"""Unit tests for the reporting helpers."""

import pytest

from repro.analysis import (
    bar,
    format_bar_chart,
    format_series,
    format_table,
    percent,
    savings_table,
)


class TestFormatTable:
    def test_alignment_and_rows(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_floats_formatted(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestPercentAndBar:
    def test_percent(self):
        assert percent(0.123) == "+12.3%"
        assert percent(-0.05) == "-5.0%"

    def test_bar_full_and_empty(self):
        assert bar(1.0, scale=1.0, width=10) == "#" * 10
        assert bar(0.0, scale=1.0, width=10) == ""

    def test_bar_clamps(self):
        assert bar(5.0, scale=1.0, width=10) == "#" * 10
        assert bar(-1.0, scale=1.0, width=10) == ""

    def test_bar_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            bar(0.5, scale=0.0)


class TestCharts:
    def test_bar_chart_lines(self):
        out = format_bar_chart([("a", 0.5), ("long", 0.25)], scale=1.0,
                               width=8, title="chart")
        lines = out.splitlines()
        assert lines[0] == "chart"
        assert len(lines) == 3
        assert "50.0%" in lines[1]

    def test_series(self):
        out = format_series([1.0, 2.0], [10.0, 20.0], "t", "v",
                            y_format="{:.0f}")
        assert "10" in out and "20" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1.0], [1.0, 2.0], "t", "v")


class TestSavingsTable:
    def test_rows_and_columns(self):
        out = savings_table({"MID1": {"mem": 0.4, "sys": 0.15}})
        assert "MID1" in out
        assert "+40.0%" in out
        assert "+15.0%" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            savings_table({})


class TestCapSummaryTable:
    ROW = {
        "workload": "MID1", "governor": "Cap-20.00W",
        "budget_fraction": 0.9, "budget_w": 20.0, "avg_power_w": 19.2,
        "violations": 0, "time_over_frac": 0.0, "infeasible_epochs": 1,
        "min_perf": 0.95, "worst_cpi_increase": 0.05,
        "system_savings": 0.08,
    }

    def test_renders_all_columns(self):
        from repro.analysis import cap_summary_table
        out = cap_summary_table([self.ROW])
        assert "power-cap sweep" in out
        assert "90%" in out
        assert "20.00" in out
        assert "0.950" in out
        assert "+5.0%" in out and "+8.0%" in out

    def test_empty_rejected(self):
        from repro.analysis import cap_summary_table
        with pytest.raises(ValueError, match="no cap results"):
            cap_summary_table([])

    def test_none_budget_columns_render_as_dash(self):
        from repro.analysis import cap_summary_table
        throttle = dict(self.ROW, governor="Static-200MHz",
                        budget_fraction=None, budget_w=None,
                        violations=None, time_over_frac=None,
                        infeasible_epochs=None)
        out = cap_summary_table([throttle], title=None)
        row_line = out.splitlines()[-1]
        assert row_line.split().count("-") >= 5

    def test_single_row_single_app_mix(self):
        from repro.analysis import cap_summary_table
        row = dict(self.ROW, workload="ILP1", min_perf=1.0)
        out = cap_summary_table([row])
        assert "ILP1" in out
        assert "1.000" in out
