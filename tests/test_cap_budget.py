"""Unit tests for the power-budget tracker (cap/budget.py): schedule
semantics, ledger accounting, the tolerance dead-band, and the
no-silent-overshoot bookkeeping (peak power is always recorded)."""

import pytest

from repro.cap import BudgetSchedule, PowerBudget


class TestBudgetSchedule:
    def test_static(self):
        s = BudgetSchedule.static(25.0)
        assert s.watts_at(0.0) == 25.0
        assert s.watts_at(1e12) == 25.0
        assert s.min_watts == 25.0

    def test_steps_apply_from_start_time(self):
        s = BudgetSchedule(steps=((0.0, 30.0), (1000.0, 20.0),
                                  (5000.0, 25.0)))
        assert s.watts_at(0.0) == 30.0
        assert s.watts_at(999.9) == 30.0
        assert s.watts_at(1000.0) == 20.0
        assert s.watts_at(4999.0) == 20.0
        assert s.watts_at(5000.0) == 25.0
        assert s.min_watts == 20.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BudgetSchedule.static(10.0).watts_at(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BudgetSchedule(steps=())

    def test_first_step_must_start_at_zero(self):
        with pytest.raises(ValueError, match="t=0"):
            BudgetSchedule(steps=((10.0, 20.0),))

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            BudgetSchedule(steps=((0.0, 20.0), (50.0, 10.0), (20.0, 30.0)))

    def test_duplicate_starts_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BudgetSchedule(steps=((0.0, 20.0), (0.0, 10.0)))

    def test_nonpositive_watts_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            BudgetSchedule(steps=((0.0, 0.0),))


class TestPowerBudgetConstruction:
    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            PowerBudget()
        with pytest.raises(ValueError, match="exactly one"):
            PowerBudget(watts=10.0, schedule=BudgetSchedule.static(10.0))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            PowerBudget(watts=10.0, tolerance_frac=-0.1)

    def test_min_watts_and_budget_at(self):
        b = PowerBudget(schedule=BudgetSchedule(
            steps=((0.0, 30.0), (100.0, 18.0))))
        assert b.min_watts == 18.0
        assert b.budget_at(0.0) == 30.0
        assert b.budget_at(100.0) == 18.0


class TestAccounting:
    def test_within_budget_is_not_a_violation(self):
        b = PowerBudget(watts=20.0)
        assert b.account(0.0, 1000.0, 19.0) is False
        s = b.stats()
        assert s.epochs_accounted == 1
        assert s.violation_count == 0
        assert s.time_over_cap_ns == 0.0
        assert s.total_time_ns == 1000.0
        assert s.time_over_cap_fraction == 0.0

    def test_dead_band_absorbs_tiny_overshoot(self):
        b = PowerBudget(watts=20.0, tolerance_frac=0.01)
        # 0.9% over: inside the band, not a violation — but the peak is
        # still recorded, so the overshoot is never silent.
        assert b.account(0.0, 1000.0, 20.18) is False
        assert b.stats().violation_count == 0
        assert b.stats().peak_power_w == pytest.approx(20.18)

    def test_violation_recorded_with_magnitude_and_duration(self):
        b = PowerBudget(watts=20.0, tolerance_frac=0.0)
        assert b.account(0.0, 1000.0, 25.0) is True
        s = b.stats()
        assert s.violation_count == 1
        assert s.time_over_cap_ns == 1000.0
        assert s.max_over_w == pytest.approx(5.0)
        assert s.excess_energy_j == pytest.approx(5.0 * 1000.0 * 1e-9)
        assert b.violations == [(0.0, 1000.0, 25.0, 20.0)]

    def test_budget_judged_at_epoch_start(self):
        # The cap steps down at t=500 mid-epoch; the epoch that started
        # at t=0 is judged against the old 30 W cap, the next one
        # against the new 10 W cap.
        b = PowerBudget(schedule=BudgetSchedule(
            steps=((0.0, 30.0), (500.0, 10.0))), tolerance_frac=0.0)
        assert b.account(0.0, 1000.0, 25.0) is False
        assert b.account(1000.0, 2000.0, 25.0) is True

    def test_peak_tracks_maximum_across_epochs(self):
        b = PowerBudget(watts=50.0)
        b.account(0.0, 1.0, 10.0)
        b.account(1.0, 2.0, 30.0)
        b.account(2.0, 3.0, 20.0)
        assert b.stats().peak_power_w == 30.0

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            PowerBudget(watts=10.0).account(5.0, 5.0, 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PowerBudget(watts=10.0).account(0.0, 1.0, -1.0)

    def test_summary_is_json_shaped(self):
        b = PowerBudget(watts=20.0, tolerance_frac=0.0)
        b.account(0.0, 1000.0, 25.0)
        summary = b.summary()
        assert summary["budget_min_w"] == 20.0
        assert summary["violation_count"] == 1
        assert summary["time_over_cap_fraction"] == 1.0
        assert summary["peak_power_w"] == 25.0
        assert set(summary) == {"budget_min_w", "epochs_accounted",
                                "violation_count", "time_over_cap_fraction",
                                "max_over_w", "excess_energy_j",
                                "peak_power_w"}

    def test_fraction_zero_when_nothing_accounted(self):
        assert PowerBudget(watts=5.0).stats().time_over_cap_fraction == 0.0
