"""The MPKI-laddered scenario library (mix1..mix7).

Table 1 gives twelve category-grouped mixes; what a sensitivity study
actually wants is a *ladder* — a single ordered axis from high-MPKI
streaming traffic down to ILP-bound compute, so "where does the policy
stop winning" is one sweep, not a scavenger hunt across categories.
This module registers seven rungs modeled on the Kill-Llama
SPEC2017/GAP/STREAM ladder, composed from the existing Table 1
application profiles and calibrated (like every Table 1 mix) to an
explicit aggregate RPKI/WPKI target per rung.

Importing this module (or the :mod:`repro.scenarios` package) registers
every rung with :func:`repro.cpu.workloads.register_mix`, after which
the rungs behave exactly like Table 1 mixes everywhere a mix name is
accepted: ``generate_mix``, ``run_sweep``, the service queue, the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cpu.workloads import MixSpec, register_mix

#: Category tag carried by every ladder rung's MixSpec.
SCENARIO_CATEGORY = "SCN"


@dataclass(frozen=True)
class ScenarioSpec:
    """One rung of the MPKI ladder."""

    name: str
    rung: int                #: 1 = most memory-intensive
    description: str
    apps: Tuple[str, ...]    #: application profiles composed per core group
    target_rpki: float       #: calibrated aggregate reads/kilo-instruction
    target_wpki: float       #: calibrated aggregate writebacks/kilo-instr.

    def mix_spec(self) -> MixSpec:
        """The workload-layer registration record for this rung."""
        return MixSpec(name=self.name, category=SCENARIO_CATEGORY,
                       apps=self.apps, target_rpki=self.target_rpki,
                       target_wpki=self.target_wpki)


#: The ladder, strictly descending in aggregate RPKI.
SCENARIO_LADDER: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        "mix1", 1, "streaming, saturating (STREAM-like)",
        ("swim", "applu", "swim", "applu"), 20.00, 4.70),
    ScenarioSpec(
        "mix2", 2, "memory-bound, mixed access patterns",
        ("art", "lucas", "galgel", "equake"), 12.60, 2.20),
    ScenarioSpec(
        "mix3", 3, "memory-leaning, moderate bandwidth",
        ("fma3d", "mgrid", "equake", "lucas"), 8.60, 1.10),
    ScenarioSpec(
        "mix4", 4, "balanced, cache-hostile (GAP-like)",
        ("astar", "twolf", "facerec", "apsi"), 3.10, 0.15),
    ScenarioSpec(
        "mix5", 5, "balanced, cache-friendly",
        ("ammp", "gap", "wupwise", "vpr"), 1.70, 0.04),
    ScenarioSpec(
        "mix6", 6, "compute-bound with residual traffic",
        ("vortex", "gcc", "sixtrack", "mesa"), 0.37, 0.06),
    ScenarioSpec(
        "mix7", 7, "ILP-bound, near-silent memory",
        ("perlbmk", "crafty", "gzip", "eon"), 0.16, 0.01),
)

#: Name -> rung spec, in ladder order.
SCENARIO_MIXES: Dict[str, ScenarioSpec] = {
    s.name: s for s in SCENARIO_LADDER
}

for _spec in SCENARIO_LADDER:
    register_mix(_spec.mix_spec())
del _spec


def scenario_names() -> List[str]:
    """Ladder rung names, most memory-intensive first."""
    return [s.name for s in SCENARIO_LADDER]


def scenario_listing() -> str:
    """One line per rung (CLI help and ``repro scenarios`` output)."""
    lines = []
    for s in SCENARIO_LADDER:
        apps = ",".join(s.apps)
        lines.append(f"  {s.name:<6} rpki {s.target_rpki:>6.2f}  "
                     f"wpki {s.target_wpki:>5.2f}  {s.description} "
                     f"({apps})")
    return "\n".join(lines)
