"""External trace ingestion (DRAMSim2 k6 and generic CSV).

Every workload the harness replays today is synthetic. This module
converts *real* memory traces — the DRAMSim2 ``k6`` request format and a
generic CSV — into the native :class:`~repro.cpu.trace.WorkloadTrace`
so trace-driven traffic flows through the exact same replay, cache, and
sweep machinery as the Table 1 mixes.

k6 lines are ``addr cmd cycle`` — a hex byte address, a command
mnemonic (``P_MEM_RD``/``P_FETCH``/``READ`` style reads,
``P_MEM_WR``/``WRITE`` style writes), and a cycle stamp::

    0x7f1bc0 P_MEM_RD 17
    0x2a0400 P_MEM_WR 25

CSV rows are ``addr,cmd,cycle`` with the same command vocabulary, an
optional header row, and hex (``0x``-prefixed) or decimal addresses.

Conversion semantics (documented proxies, all surfaced in the
:class:`ImportSummary`):

* **address re-interleaving** — external physical addresses were laid
  out for some other machine's geometry; we densely remap the distinct
  cache lines onto ``[0, footprint)`` preserving address order and
  adjacency (sequential streams stay sequential, so they still walk
  channels-then-banks under the native interleaver), then fold modulo
  the configured capacity;
* **instruction gaps** — the trace carries cycles, not instructions;
  we charge one instruction per cycle, so a read's gap is the cycle
  delta since the previous read (writes in between contribute their
  deltas to the next read);
* **writebacks** — k6 writes carry no eviction linkage; each write is
  queued FIFO and attached as the writeback of the next read, the
  closed-page analogue of a dirty eviction accompanying a miss;
* **core assignment** — k6 traces are already core-merged, so requests
  are dealt round-robin across the configured cores.
"""

from __future__ import annotations

import csv as _csv
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Tuple, Union

import numpy as np

from repro.config import MemoryOrgConfig
from repro.cpu.trace import CoreTrace, WorkloadTrace

PathLike = Union[str, Path]

#: Command mnemonics accepted as reads / writes (DRAMSim2 k6 and mase
#: vocabularies plus the obvious generic spellings).
READ_COMMANDS = frozenset(
    {"READ", "RD", "P_MEM_RD", "P_FETCH", "P_LOCK_RD", "IFETCH"})
WRITE_COMMANDS = frozenset({"WRITE", "WR", "P_MEM_WR", "P_LOCK_WR"})

TRACE_FORMATS = ("k6", "csv")


class TraceFormatError(ValueError):
    """A trace file violates its declared format."""


@dataclass(frozen=True)
class ImportSummary:
    """What an ingestion run saw and which proxies it applied."""

    name: str
    source: str
    format: str
    requests: int
    reads: int
    writes: int
    #: Writes left in the FIFO at end of trace (no read to attach to).
    unattached_writebacks: int
    #: Cycle stamps that went backwards (clamped to zero-length gaps).
    non_monotonic_cycles: int
    distinct_lines: int
    #: Footprint of the remapped trace in cache lines.
    footprint_lines: int
    first_cycle: int
    last_cycle: int
    cores: int
    #: Aggregate reads/kilo-instruction under the 1-instr/cycle proxy.
    rpki: float


def _parse_addr(token: str, lineno: int, source: str) -> int:
    try:
        addr = int(token, 16) if token.lower().startswith("0x") \
            else int(token, 0)
    except ValueError:
        # k6 addresses are hex even without the 0x prefix.
        try:
            addr = int(token, 16)
        except ValueError:
            raise TraceFormatError(
                f"{source}:{lineno}: bad address {token!r}") from None
    if addr < 0:
        raise TraceFormatError(f"{source}:{lineno}: negative address {token!r}")
    return addr


def _classify(cmd: str, lineno: int, source: str) -> bool:
    """True for a write, False for a read; raises on unknown commands."""
    upper = cmd.upper()
    if upper in WRITE_COMMANDS:
        return True
    if upper in READ_COMMANDS:
        return False
    raise TraceFormatError(
        f"{source}:{lineno}: unknown command {cmd!r} "
        f"(reads: {sorted(READ_COMMANDS)}, writes: {sorted(WRITE_COMMANDS)})")


def _parse_cycle(token: str, lineno: int, source: str) -> int:
    try:
        cycle = int(token)
    except ValueError:
        raise TraceFormatError(
            f"{source}:{lineno}: bad cycle stamp {token!r}") from None
    if cycle < 0:
        raise TraceFormatError(f"{source}:{lineno}: negative cycle {token!r}")
    return cycle


def iter_k6(fh: IO[str], source: str = "<k6>"
            ) -> Iterator[Tuple[int, bool, int]]:
    """Stream ``(byte_addr, is_write, cycle)`` from a k6 text file.

    Blank lines and ``#``/``;`` comments are skipped; anything else
    must be exactly three whitespace-separated fields.
    """
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", ";")):
            continue
        fields = line.split()
        if len(fields) != 3:
            raise TraceFormatError(
                f"{source}:{lineno}: expected 'addr cmd cycle', "
                f"got {len(fields)} fields")
        addr, cmd, cycle = fields
        yield (_parse_addr(addr, lineno, source),
               _classify(cmd, lineno, source),
               _parse_cycle(cycle, lineno, source))


def iter_csv(fh: IO[str], source: str = "<csv>"
             ) -> Iterator[Tuple[int, bool, int]]:
    """Stream ``(byte_addr, is_write, cycle)`` from ``addr,cmd,cycle`` CSV.

    A header row (any row whose first cell is not a number) is skipped.
    """
    reader = _csv.reader(fh)
    for lineno, row in enumerate(reader, start=1):
        cells = [c.strip() for c in row if c.strip()]
        if not cells:
            continue
        if len(cells) != 3:
            raise TraceFormatError(
                f"{source}:{lineno}: expected 'addr,cmd,cycle', "
                f"got {len(cells)} cells")
        if lineno == 1:
            try:
                _parse_addr(cells[0], lineno, source)
            except TraceFormatError:
                continue  # header row
        addr, cmd, cycle = cells
        yield (_parse_addr(addr, lineno, source),
               _classify(cmd, lineno, source),
               _parse_cycle(cycle, lineno, source))


def detect_format(path: PathLike) -> str:
    """``"csv"`` if the first data line contains commas, else ``"k6"``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith(("#", ";")):
                continue
            return "csv" if "," in line else "k6"
    raise TraceFormatError(f"{path}: empty trace file")


def read_records(path: PathLike, fmt: str = "auto"
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
    """Parse a trace file into ``(addrs, is_write, cycles, format)``."""
    if fmt == "auto":
        fmt = detect_format(path)
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r}; "
                         f"choose from {list(TRACE_FORMATS) + ['auto']}")
    parse = iter_k6 if fmt == "k6" else iter_csv
    addrs: List[int] = []
    writes: List[bool] = []
    cycles: List[int] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for addr, is_write, cycle in parse(fh, source=str(path)):
            addrs.append(addr)
            writes.append(is_write)
            cycles.append(cycle)
    if not addrs:
        raise TraceFormatError(f"{path}: trace contains no requests")
    return (np.asarray(addrs, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            np.asarray(cycles, dtype=np.int64), fmt)


def reinterleave(line_addrs: np.ndarray, org: MemoryOrgConfig) -> np.ndarray:
    """Densely remap foreign cache-line addresses onto the configured
    geometry.

    ``np.unique`` + ``searchsorted`` maps the distinct lines onto
    ``[0, footprint)`` *monotonically*: relative order and adjacency of
    lines survive, so a sequential stream remains sequential and still
    interleaves channels-first under :class:`~repro.memsim.address
    .AddressMapper`. The result is folded modulo the configured
    capacity in case the footprint exceeds the machine.
    """
    unique = np.unique(line_addrs)
    remapped = np.searchsorted(unique, line_addrs).astype(np.int64)
    capacity = (org.channels * org.ranks_per_channel * org.banks_per_rank
                * org.rows_per_bank * org.lines_per_row)
    return remapped % capacity


def convert_records(name: str, addrs: np.ndarray, is_write: np.ndarray,
                    cycles: np.ndarray, org: MemoryOrgConfig,
                    cores: int = 16) -> Tuple[WorkloadTrace, int, int]:
    """Build a :class:`WorkloadTrace` from parsed request records.

    Returns ``(trace, unattached_writebacks, non_monotonic_cycles)``.
    """
    if cores <= 0:
        raise ValueError(f"core count must be positive, got {cores}")
    lines = reinterleave(addrs // org.cache_line_bytes, org)
    gaps_all = np.diff(cycles, prepend=cycles[0])
    non_monotonic = int((gaps_all < 0).sum())
    gaps_all = np.maximum(gaps_all, 0)

    per_core_gaps: List[List[int]] = [[] for _ in range(cores)]
    per_core_reads: List[List[int]] = [[] for _ in range(cores)]
    per_core_wbs: List[List[int]] = [[] for _ in range(cores)]
    pending: "deque[int]" = deque()
    carry = 0
    next_core = 0
    for i in range(len(lines)):
        if is_write[i]:
            pending.append(int(lines[i]))
            carry += int(gaps_all[i])
            continue
        core = next_core
        next_core = (next_core + 1) % cores
        per_core_gaps[core].append(int(gaps_all[i]) + carry)
        carry = 0
        per_core_reads[core].append(int(lines[i]))
        per_core_wbs[core].append(pending.popleft() if pending else -1)

    if not any(per_core_reads):
        raise TraceFormatError(
            f"trace {name!r} contains no read requests; nothing to replay")
    core_traces = [
        CoreTrace(app_name=name, app_id=0,
                  gaps=np.asarray(per_core_gaps[c], dtype=np.int64),
                  read_addrs=np.asarray(per_core_reads[c], dtype=np.int64),
                  wb_addrs=np.asarray(per_core_wbs[c], dtype=np.int64))
        for c in range(cores)
    ]
    return WorkloadTrace(name=name, cores=core_traces), len(pending), \
        non_monotonic


def import_trace(path: PathLike, name: str, org: MemoryOrgConfig,
                 cores: int = 16, fmt: str = "auto"
                 ) -> Tuple[WorkloadTrace, ImportSummary]:
    """Parse + re-interleave + convert one external trace file."""
    addrs, is_write, cycles, fmt = read_records(path, fmt)
    trace, unattached, non_monotonic = convert_records(
        name, addrs, is_write, cycles, org, cores=cores)
    lines = addrs // org.cache_line_bytes
    distinct = int(np.unique(lines).size)
    summary = ImportSummary(
        name=name, source=str(path), format=fmt,
        requests=len(addrs),
        reads=int((~is_write).sum()), writes=int(is_write.sum()),
        unattached_writebacks=unattached,
        non_monotonic_cycles=non_monotonic,
        distinct_lines=distinct,
        footprint_lines=distinct,
        first_cycle=int(cycles[0]), last_cycle=int(cycles[-1]),
        cores=cores, rpki=trace.rpki)
    return trace, summary
