"""Scenario subsystem: real traces, an MPKI ladder, device tables.

Three pillars turn the harness from a synthetic-only reproduction into
a workload platform:

* :mod:`repro.scenarios.ingest` — streaming parsers for the DRAMSim2
  k6 format and generic CSV, converting external traces into the
  native columnar trace store with address re-interleaving onto the
  configured geometry;
* :mod:`repro.scenarios.library` — the MPKI-laddered ``mix1``..``mix7``
  registry (high-MPKI streaming down to ILP-bound), registered with
  the workload layer on import so the rungs plug into ``generate_mix``,
  ``run_sweep``, the service queue, and the CLI like Table 1 mixes;
* :mod:`repro.scenarios.devices` — named, validated timing/power
  presets (DDR3-1333 baseline, DDR3L low-voltage, STT-MRAM-like) so
  sweeps span (mix x policy x device).

Importing this package registers the ladder as a side effect; the
workload layer's :func:`repro.cpu.workloads.lookup_mix` does that
import lazily on the first unknown mix name, so sweep workers in
spawned processes resolve ladder rungs without any explicit import.
"""

from repro.scenarios.devices import (
    DEFAULT_DEVICE,
    DEVICE_TABLES,
    DeviceTable,
    apply_device,
    device_listing,
    device_names,
    lookup_device,
)
from repro.scenarios.fit import (
    TraceFit,
    WindowProfile,
    fit_trace,
    row_hit_flags,
    seed_mix_from_fit,
)
from repro.scenarios.ingest import (
    READ_COMMANDS,
    TRACE_FORMATS,
    WRITE_COMMANDS,
    ImportSummary,
    TraceFormatError,
    detect_format,
    import_trace,
    iter_csv,
    iter_k6,
    read_records,
    reinterleave,
)
from repro.scenarios.library import (
    SCENARIO_CATEGORY,
    SCENARIO_LADDER,
    SCENARIO_MIXES,
    ScenarioSpec,
    scenario_listing,
    scenario_names,
)

__all__ = [
    "DEFAULT_DEVICE",
    "DEVICE_TABLES",
    "DeviceTable",
    "ImportSummary",
    "READ_COMMANDS",
    "SCENARIO_CATEGORY",
    "SCENARIO_LADDER",
    "SCENARIO_MIXES",
    "ScenarioSpec",
    "TraceFit",
    "TraceFormatError",
    "TRACE_FORMATS",
    "WindowProfile",
    "WRITE_COMMANDS",
    "apply_device",
    "detect_format",
    "device_listing",
    "device_names",
    "fit_trace",
    "import_trace",
    "iter_csv",
    "iter_k6",
    "lookup_device",
    "read_records",
    "reinterleave",
    "row_hit_flags",
    "scenario_listing",
    "scenario_names",
    "seed_mix_from_fit",
]
