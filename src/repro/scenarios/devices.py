"""Named device technology tables.

MemScale's evaluation is pinned to one part — DDR3-1333 with the Table 2
timing/current numbers. The energy results, however, swing heavily with
the device technology (Trehan et al. show intensity composition and
device numbers interact): a low-voltage DDR3L part shrinks every IDD
term, and an STT-MRAM-like part inverts the background-power picture
entirely — near-zero standby draw and no refresh, at the cost of a slow
asymmetric write. A :class:`DeviceTable` bundles a named, validated
``(DramTimings, DramCurrents)`` pair so sweeps can span
(mix x policy x device) instead of frequencies alone.

Every preset passes ``DramTimings.validate`` / ``DramCurrents.validate``
and is exercised under the armed DDR3 protocol checker by the
``repro scenarios --smoke`` acceptance leg: the state machine the
validator checks (activate/precharge ordering, powerdown windows,
refresh intervals) is technology-agnostic, only the constants move.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.config import DramCurrents, DramTimings, SystemConfig

#: One simulated year; with 8192 rows this keeps ``t_refi > t_rfc``
#: valid (the timing invariant) while guaranteeing no refresh ever
#: fires inside any realistic run — the STT-MRAM retention proxy.
_NO_REFRESH_PERIOD_NS = 3.15e16


@dataclass(frozen=True)
class DeviceTable:
    """A named memory device technology: timings plus currents."""

    name: str
    description: str
    timings: DramTimings
    currents: DramCurrents

    def validate(self) -> None:
        self.timings.validate()
        self.currents.validate()


def _ddr3_1333() -> DeviceTable:
    return DeviceTable(
        name="ddr3-1333",
        description="Table 2 baseline part (DDR3-1333, 1.575 V)",
        timings=DramTimings(),
        currents=DramCurrents(),
    )


def _ddr3l() -> DeviceTable:
    """A DDR3L-like low-voltage part.

    1.35 V supply with ~10% lower current draw across the IDD table
    (datasheet-typical for the L grade) but slightly relaxed array
    timings — the lower voltage slows sensing and restore.
    """
    return DeviceTable(
        name="ddr3l",
        description="DDR3L-like low-voltage part (1.35 V, relaxed timing)",
        timings=replace(
            DramTimings(),
            t_rcd_ns=18.0, t_rp_ns=18.0, t_cl_ns=18.0, t_ras_ns=38.0,
        ),
        currents=replace(
            DramCurrents(),
            vdd=1.35,
            idd0=0.110, idd2n=0.062, idd2p=0.038,
            idd3n=0.060, idd3p=0.038,
            idd4r=0.225, idd4w=0.225,
            idd5=0.215, idd6=0.009,
            termination_w_read=0.62, termination_w_write=0.94,
        ),
    )


def _stt_mram() -> DeviceTable:
    """An STT-MRAM-like table: asymmetric R/W, near-zero standby.

    Non-volatile cells need no retention refresh (the refresh period is
    pushed out to a simulated year, so ``t_refi`` stays valid but no
    refresh ever fires) and draw almost nothing in standby/powerdown
    (``static_fraction`` drops to 0.10 — what remains is mostly
    peripheral logic). The cost is the write path: the switching pulse
    makes writes slow (``t_wr``) and expensive (``idd4w`` ~2x ``idd4r``),
    and reads sense slightly slower than DRAM (``t_rcd``).
    """
    return DeviceTable(
        name="stt-mram",
        description=("STT-MRAM-like part (no refresh, near-zero standby, "
                     "slow expensive writes)"),
        timings=replace(
            DramTimings(),
            t_rcd_ns=17.5,       # slower sensing than a DRAM cell
            t_ras_ns=45.0,
            t_wr_ns=37.5,        # switching-pulse write recovery
            refresh_period_ns=_NO_REFRESH_PERIOD_NS,
        ),
        currents=replace(
            DramCurrents(),
            vdd=1.2,
            idd0=0.140,
            idd2n=0.008, idd2p=0.004,
            idd3n=0.010, idd3p=0.004,
            idd4r=0.220, idd4w=0.450,   # asymmetric read/write energy
            idd5=0.002, idd6=0.001,
            static_fraction=0.10,
        ),
    )


#: Registry of named device tables, in ladder order.
DEVICE_TABLES: Dict[str, DeviceTable] = {
    t.name: t for t in (_ddr3_1333(), _ddr3l(), _stt_mram())
}

DEFAULT_DEVICE = "ddr3-1333"


def device_names() -> List[str]:
    return list(DEVICE_TABLES)


def lookup_device(name: str) -> DeviceTable:
    """The named device table; ``KeyError`` lists the registry."""
    try:
        return DEVICE_TABLES[name]
    except KeyError:
        raise KeyError(f"unknown device table {name!r}; "
                       f"available: {device_names()}") from None


def apply_device(config: SystemConfig,
                 device: "str | DeviceTable") -> SystemConfig:
    """``config`` with the device's timings/currents swapped in.

    Only the ``timings`` and ``currents`` sections are replaced — no new
    top-level configuration fields — so the result flows unchanged
    through ``config_to_dict`` / ``config_from_dict`` (the service
    ledger) and the experiment-cache fingerprint: two devices can never
    share a baseline cache entry.
    """
    table = lookup_device(device) if isinstance(device, str) else device
    table.validate()
    cfg = config.replace(timings=table.timings, currents=table.currents)
    cfg.validate()
    return cfg


def device_listing() -> str:
    """One line per registered device (CLI help and error messages)."""
    lines = []
    for table in DEVICE_TABLES.values():
        lines.append(f"  {table.name:<12} {table.description}")
    return "\n".join(lines)
