"""Trace -> phase fitter.

An ingested trace can be replayed verbatim, but replay pins the run to
the trace's exact length and core count. The fitter extracts the
*statistics* the synthetic generator needs — per-window MPKI, read
ratio, row-buffer locality, burstiness, footprint, phase structure — so
an external trace can also seed a synthetic
:class:`~repro.cpu.workloads.AppProfile` (with a fitted
:class:`~repro.cpu.phases.PhaseSchedule`) and scale to any core count
or instruction budget, the same way Table 1 profiles do.

All estimates are documented proxies of the 1-instruction-per-cycle
ingestion model (see :mod:`repro.scenarios.ingest`): windows are
equal-*instruction* slices of the concatenated per-core record stream,
and the row-hit estimate counts back-to-back same-row accesses per
bank, i.e. an upper bound a closed-page controller will not reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import MemoryOrgConfig
from repro.cpu.phases import Phase, PhaseSchedule
from repro.cpu.trace import WorkloadTrace
from repro.cpu.workloads import AppProfile

#: Adjacent fit windows whose intensities differ by less than this
#: relative tolerance merge into one phase.
MERGE_TOLERANCE = 0.125

#: burst_shape (gamma shape of inter-miss gaps) is clamped to the range
#: the Table 1 profiles span.
MIN_BURST_SHAPE = 0.2
MAX_BURST_SHAPE = 5.0


@dataclass(frozen=True)
class WindowProfile:
    """Statistics of one equal-instruction window of the trace."""

    instructions: int
    reads: int
    writebacks: int
    rpki: float
    read_ratio: float     #: reads / (reads + writebacks)
    row_hit_ratio: float  #: back-to-back same-row fraction per bank


@dataclass(frozen=True)
class TraceFit:
    """The fitted statistical profile of an ingested trace."""

    name: str
    windows: Tuple[WindowProfile, ...]
    instructions: int
    rpki: float
    wpki: float
    read_ratio: float
    row_hit_ratio: float
    stream_fraction: float   #: successive-line (delta == 1) read fraction
    burst_shape: float
    working_set_lines: int
    phases: PhaseSchedule

    def to_profile(self, name: "str | None" = None) -> AppProfile:
        """An :class:`AppProfile` reproducing the fitted statistics."""
        rpki = max(self.rpki, 1e-6)
        return AppProfile(
            name=name or self.name,
            rpki=rpki,
            wb_ratio=(self.wpki / rpki) if rpki else 0.0,
            burst_shape=self.burst_shape,
            stream_prob=self.stream_fraction,
            working_set_lines=self.working_set_lines,
            phases=self.phases,
        )


def row_hit_flags(lines: np.ndarray, org: MemoryOrgConfig) -> np.ndarray:
    """Per-access booleans: does this access hit the row its bank has
    open from the *previous* access to that bank?

    Vectorized: decode every line address (same divmod order as
    :class:`~repro.memsim.address.AddressMapper`), group by bank with a
    stable sort (which preserves program order within each bank), and
    compare neighbours.
    """
    if len(lines) == 0:
        return np.zeros(0, dtype=bool)
    addr, channel = np.divmod(lines, org.channels)
    addr, bank = np.divmod(addr, org.banks_per_rank)
    addr, rank = np.divmod(addr, org.ranks_per_channel)
    row = (addr // org.lines_per_row) % org.rows_per_bank
    bank_key = (channel * org.ranks_per_channel + rank) \
        * org.banks_per_rank + bank
    order = np.argsort(bank_key, kind="stable")
    same_bank = bank_key[order][1:] == bank_key[order][:-1]
    same_row = row[order][1:] == row[order][:-1]
    hits_sorted = np.concatenate(([False], same_bank & same_row))
    flags = np.zeros(len(lines), dtype=bool)
    flags[order] = hits_sorted
    return flags


def _merge_windows(fractions: List[float],
                   intensities: List[float]) -> List[Phase]:
    """Collapse adjacent windows with near-equal intensity into phases."""
    phases: List[Tuple[float, float]] = []
    for frac, intensity in zip(fractions, intensities):
        if phases:
            prev_frac, prev_int = phases[-1]
            scale = max(abs(prev_int), abs(intensity), 1e-9)
            if abs(intensity - prev_int) / scale <= MERGE_TOLERANCE:
                total = prev_frac + frac
                merged = (prev_frac * prev_int + frac * intensity) / total
                phases[-1] = (total, merged)
                continue
        phases.append((frac, intensity))
    # Force exact unit sum (PhaseSchedule checks to 1e-9).
    total = sum(f for f, _ in phases)
    phases = [(f / total, i) for f, i in phases]
    drift = 1.0 - sum(f for f, _ in phases)
    phases[-1] = (phases[-1][0] + drift, phases[-1][1])
    return [Phase(f, max(i, 1e-3)) for f, i in phases]


def fit_trace(trace: WorkloadTrace, org: MemoryOrgConfig,
              windows: int = 8) -> TraceFit:
    """Fit the statistical profile of ``trace``.

    The per-core record streams are concatenated in core order; windows
    are equal-instruction slices of that stream. For a trace ingested
    round-robin this interleaves fairly; for a synthetic multi-app mix
    the fit describes the aggregate, not any single app.
    """
    if windows <= 0:
        raise ValueError(f"window count must be positive, got {windows}")
    gaps = np.concatenate([c.gaps for c in trace.cores]) \
        if trace.cores else np.zeros(0, np.int64)
    reads = np.concatenate([c.read_addrs for c in trace.cores]) \
        if trace.cores else np.zeros(0, np.int64)
    wbs = np.concatenate([c.wb_addrs for c in trace.cores]) \
        if trace.cores else np.zeros(0, np.int64)
    if len(reads) == 0:
        raise ValueError(f"trace {trace.name!r} has no reads to fit")
    total_instr = int(gaps.sum())
    if total_instr <= 0:
        raise ValueError(f"trace {trace.name!r} commits no instructions")

    cum = np.cumsum(gaps)
    edges = np.linspace(0, total_instr, windows + 1)[1:]
    window_of = np.searchsorted(edges, cum, side="left")
    window_of = np.minimum(window_of, windows - 1)
    hit_flags = row_hit_flags(reads, org)

    profiles: List[WindowProfile] = []
    fractions: List[float] = []
    intensities: List[float] = []
    bounds = np.concatenate(([0.0], edges))
    overall_rpki = 1000.0 * len(reads) / total_instr
    for w in range(windows):
        mask = window_of == w
        instr = int(round(bounds[w + 1] - bounds[w]))
        n_reads = int(mask.sum())
        n_wbs = int((wbs[mask] >= 0).sum())
        rpki = 1000.0 * n_reads / instr if instr else 0.0
        accesses = n_reads + n_wbs
        hits = int(hit_flags[mask].sum())
        profiles.append(WindowProfile(
            instructions=instr, reads=n_reads, writebacks=n_wbs,
            rpki=rpki,
            read_ratio=n_reads / accesses if accesses else 1.0,
            row_hit_ratio=hits / n_reads if n_reads else 0.0))
        if instr > 0:
            fractions.append(instr / total_instr)
            intensities.append(rpki / overall_rpki if overall_rpki else 0.0)

    n_wbs_total = int((wbs >= 0).sum())
    deltas = np.diff(reads)
    stream = float((deltas == 1).mean()) if len(deltas) else 0.0
    mean_gap = float(gaps.mean())
    var_gap = float(gaps.var())
    if var_gap > 0 and mean_gap > 0:
        shape = mean_gap * mean_gap / var_gap
    else:
        shape = MAX_BURST_SHAPE
    shape = min(max(shape, MIN_BURST_SHAPE), MAX_BURST_SHAPE)
    distinct = int(np.unique(reads).size)
    working_set = 1 << max(10, int(np.ceil(np.log2(max(distinct, 1)))))
    accesses = len(reads) + n_wbs_total

    return TraceFit(
        name=trace.name,
        windows=tuple(profiles),
        instructions=total_instr,
        rpki=overall_rpki,
        wpki=1000.0 * n_wbs_total / total_instr,
        read_ratio=len(reads) / accesses if accesses else 1.0,
        row_hit_ratio=float(hit_flags.mean()),
        stream_fraction=stream,
        burst_shape=shape,
        working_set_lines=working_set,
        phases=PhaseSchedule(_merge_windows(fractions, intensities)),
    )


def seed_mix_from_fit(fit: TraceFit, mix_name: str):
    """Register a synthetic single-app mix reproducing ``fit``.

    Registers the fitted :class:`AppProfile` under ``mix_name`` and a
    one-app :class:`~repro.cpu.workloads.MixSpec` of the same name
    calibrated to the fitted RPKI/WPKI, so ``generate_mix(mix_name)``
    synthesizes phase-faithful traffic at any core count or length.
    Returns the registered mix spec.
    """
    from repro.cpu.workloads import MixSpec, register_app_profile, \
        register_mix
    profile = fit.to_profile(mix_name)
    register_app_profile(profile)
    spec = MixSpec(name=mix_name, category="FIT", apps=(profile.name,),
                   target_rpki=max(fit.rpki, 1e-6),
                   target_wpki=fit.wpki)
    register_mix(spec)
    return spec
