"""Placement policy: hot/cold classification, migration, SR parking.

Runs once per epoch (from :class:`~repro.placement.governor.
PlacementGovernor`). Three mechanisms, in order:

1. **Migration** — the hottest pages living outside the target (hot)
   groups are re-homed into them, up to the per-epoch budget. The copy
   cost is not a constant but real traffic: every migrated line becomes
   a READ from the old location plus a WRITE to the new one, driven
   through the controller by the :class:`MigrationPump` so it is timed,
   power-accounted, and protocol-validated like demand traffic.
2. **Allocation steering** — once the hot set is established, new pages
   are first-touch allocated into hot groups instead of spread.
3. **Parking (adaptive demotion)** — a group with zero accesses for
   ``sr_idle_epochs`` consecutive epochs has all its ranks parked in
   SELF_REFRESH (IDD6 power, refresh suspended). A later demand access
   wakes the rank through the normal powerdown-exit path, paying the
   tCKESR residual plus tXS. Groups touched by in-flight migration
   traffic are never parked in the same epoch.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.config import MemoryOrgConfig, PlacementConfig
from repro.memsim.address import MemoryLocation
from repro.memsim.controller import (WRITEBACK_QUEUE_CAPACITY,
                                     MemoryController)
from repro.memsim.request import MemRequest, RequestKind
from repro.placement.table import PageTable

#: Outstanding migration reads the pump keeps in flight; each completed
#: read submits its paired write and the next read, so copy traffic
#: trickles in behind demand traffic instead of flooding the queues.
MAX_MIGRATION_READS_IN_FLIGHT = 4

#: Writeback-queue headroom the pump preserves: a migration write is
#: deferred while its channel's queue is this close to capacity.
WB_HEADROOM = 4

#: Delay before re-trying a deferred migration write (ns).
WB_RETRY_NS = 200.0


class MigrationPump:
    """Drives page-copy traffic through the controller at a bounded rate."""

    def __init__(self, controller: MemoryController,
                 max_in_flight: int = MAX_MIGRATION_READS_IN_FLIGHT):
        self._controller = controller
        self._engine = controller.engine
        self._max_in_flight = max_in_flight
        self._queue: Deque[Tuple[MemoryLocation, MemoryLocation]] = deque()
        self._reads_in_flight = 0
        self.reads_submitted = 0
        self.writes_submitted = 0
        self.lines_copied = 0

    @property
    def controller(self) -> MemoryController:
        return self._controller

    @property
    def idle(self) -> bool:
        """No copy traffic queued or in flight."""
        return not self._queue and self._reads_in_flight == 0

    @property
    def backlog(self) -> int:
        return len(self._queue) + self._reads_in_flight

    def enqueue(self, pairs: List[Tuple[MemoryLocation,
                                        MemoryLocation]]) -> None:
        self._queue.extend(pairs)
        self._kick()

    def _kick(self) -> None:
        while self._reads_in_flight < self._max_in_flight and self._queue:
            old_loc, new_loc = self._queue.popleft()
            self._reads_in_flight += 1
            self.reads_submitted += 1
            request = MemRequest(
                RequestKind.READ, old_loc,
                on_complete=lambda req, dst=new_loc: self._read_done(dst))
            self._controller.submit(request)

    def _read_done(self, new_loc: MemoryLocation) -> None:
        self._reads_in_flight -= 1
        self._submit_write(new_loc)
        self._kick()

    def _submit_write(self, new_loc: MemoryLocation) -> None:
        controller = self._controller
        occupancy = controller.wb_queue_occupancy(new_loc.channel)
        if occupancy >= WRITEBACK_QUEUE_CAPACITY - WB_HEADROOM:
            # queue near capacity: retry shortly instead of overflowing
            self._engine.post(WB_RETRY_NS,
                              lambda: self._submit_write(new_loc))
            return
        self.writes_submitted += 1
        self.lines_copied += 1
        controller.submit(MemRequest(RequestKind.WRITE, new_loc))

    def stats(self) -> Dict[str, int]:
        return {
            "reads_submitted": self.reads_submitted,
            "writes_submitted": self.writes_submitted,
            "lines_copied": self.lines_copied,
            "backlog": self.backlog,
        }


class PlacementPolicy:
    """Per-epoch page classification, migration planning, and parking."""

    def __init__(self, placement: PlacementConfig, org: MemoryOrgConfig):
        placement.validate()
        self._cfg = placement
        n_groups = org.ranks_per_channel
        hot_n = min(n_groups,
                    max(1, math.ceil(n_groups * placement.hot_group_fraction)))
        #: migration targets; never parked
        self.hot_groups: Tuple[int, ...] = tuple(range(hot_n))
        self._n_groups = n_groups
        self._idle_epochs = [0] * n_groups
        self._target_rr = 0
        self._steered = False
        # per-epoch outputs (telemetry)
        self.last_migrations = 0
        self.last_parked_ranks = 0
        self.total_migrations = 0
        self.total_parks = 0

    def on_epoch_end(self, controller: MemoryController, table: PageTable,
                     pump: MigrationPump) -> Dict[str, int]:
        """One policy step; returns this epoch's placement actions."""
        cfg = self._cfg
        counts = table.collect_epoch()
        group_counts = [0] * self._n_groups
        for page, count in counts.items():
            group_counts[table.group_of(page)] += count

        # 1. migrate hot off-target pages into the hot groups; only plan
        #    new copies once the previous epoch's traffic has drained
        hot_set = set(self.hot_groups)
        migrated_groups = set()
        migrations = 0
        if cfg.migrations_per_epoch > 0 and pump.idle:
            candidates = sorted(
                ((count, page) for page, count in counts.items()
                 if count >= cfg.hot_page_min_accesses
                 and table.group_of(page) not in hot_set),
                reverse=True)
            for count, page in candidates[:cfg.migrations_per_epoch]:
                target = self.hot_groups[self._target_rr
                                         % len(self.hot_groups)]
                self._target_rr += 1
                old_group = table.group_of(page)
                pairs = table.migrate(page, target)
                if not pairs:
                    continue
                pump.enqueue(pairs)
                migrated_groups.add(old_group)
                migrated_groups.add(target)
                migrations += 1
        self.last_migrations = migrations
        self.total_migrations += migrations

        # 2. steer new allocations to the hot set once traffic was seen
        if not self._steered and counts:
            table.steer_to(self.hot_groups)
            self._steered = True

        # 3. park groups that stayed cold (adaptive demotion to SR)
        parked = 0
        copy_active = not pump.idle
        for group in range(self._n_groups):
            active = (group_counts[group] > 0 or group in migrated_groups
                      or group in hot_set)
            if active or copy_active:
                self._idle_epochs[group] = 0
                continue
            self._idle_epochs[group] += 1
            if self._idle_epochs[group] >= cfg.sr_idle_epochs:
                for rank_index in table.group_ranks(group):
                    if controller.ranks[rank_index].enter_self_refresh():
                        parked += 1
        self.last_parked_ranks = parked
        self.total_parks += parked

        return {
            "migrations": migrations,
            "parked_ranks": parked,
            "group_accesses": group_counts,
        }
