"""PlacementGovernor: placement/self-refresh composed with any governor.

Wraps an inner governor (normally
:class:`~repro.core.governor.MemScaleGovernor`) and delegates every
frequency decision to it; at each epoch boundary, after the inner
governor's bookkeeping, it runs one
:class:`~repro.placement.policy.PlacementPolicy` step — classify pages,
enqueue migrations, park cold rank groups. The composition keeps the
two policy families orthogonal: MemScale picks the SER-minimal
frequency for the traffic it sees, placement reshapes *where* that
traffic lands so cold ranks can reach self-refresh.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.governor import Governor
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterDelta
from repro.memsim.states import PowerdownMode, RankPowerState
from repro.placement.policy import MigrationPump, PlacementPolicy


class PlacementGovernor(Governor):
    """Inner governor plus per-epoch page placement and SR parking."""

    def __init__(self, inner: Governor):
        self._inner = inner
        self.name = f"{inner.name}+Placement"
        self._policy: Optional[PlacementPolicy] = None
        self._pump: Optional[MigrationPump] = None
        self._last_stats: Dict[str, object] = {}
        self._last_sr_residency: Optional[List[float]] = None

    @property
    def inner(self) -> Governor:
        return self._inner

    @property
    def pump(self) -> Optional[MigrationPump]:
        return self._pump

    @property
    def policy(self) -> Optional[PlacementPolicy]:
        return self._policy

    @property
    def powerdown_mode(self) -> PowerdownMode:
        return self._inner.powerdown_mode

    def setup(self, controller: MemoryController) -> None:
        if controller.placement is None:
            raise ValueError(
                "PlacementGovernor needs config.placement.enabled=True "
                "(the controller has no page table)")
        self._inner.setup(controller)
        self._policy = PlacementPolicy(controller.config.placement,
                                       controller.config.org)
        self._pump = MigrationPump(controller)

    def on_profile_end(self, delta: CounterDelta,
                       controller: MemoryController,
                       epoch_remaining_ns: float) -> None:
        self._inner.on_profile_end(delta, controller, epoch_remaining_ns)

    def on_epoch_end(self, delta: CounterDelta,
                     controller: MemoryController,
                     epoch_wall_ns: float) -> None:
        self._inner.on_epoch_end(delta, controller, epoch_wall_ns)
        stats = self._policy.on_epoch_end(controller, controller.placement,
                                          self._pump)
        self._last_stats = stats
        n_ranks = delta.rank_state_ns.shape[0]
        self._last_sr_residency = [
            float(delta.rank_state_fraction(r, RankPowerState.SELF_REFRESH))
            for r in range(n_ranks)]

    def device_bus_mhz(self, controller: MemoryController) -> Optional[float]:
        return self._inner.device_bus_mhz(controller)

    def channel_bus_mhz(self, controller: MemoryController
                        ) -> Optional[List[float]]:
        return self._inner.channel_bus_mhz(controller)

    def placement_summary(self) -> Dict[str, object]:
        """Run-level placement accounting (call after the run)."""
        summary: Dict[str, object] = {}
        if self._pump is not None:
            table = self._pump.controller.placement
            if table is not None:
                summary.update(table.stats())
            summary.update(self._pump.stats())
        if self._policy is not None:
            summary["migrations"] = self._policy.total_migrations
            summary["parked_ranks"] = self._policy.total_parks
        return summary

    def telemetry_snapshot(self) -> Dict[str, object]:
        snap = dict(self._inner.telemetry_snapshot())
        snap["migrations_per_epoch"] = self._last_stats.get("migrations")
        if self._last_sr_residency is not None:
            snap["rank_state_residency"] = {
                "self_ref": self._last_sr_residency}
        return snap
