"""Page table: page-granular indirection over the address mapper.

The flat :class:`~repro.memsim.address.AddressMapper` stripes
consecutive lines across channels, banks, and ranks, so every page
touches every rank — the layout that makes rank-level low-power states
useless. The page table replaces the rank digit of the decode with a
per-page *group* assignment:

* a **group** is the set of global ranks sharing one within-channel rank
  index (group ``g`` = ranks ``c * ranks_per_channel + g`` for every
  channel ``c``). A page's lines still interleave over all channels and
  banks — full bus parallelism — but touch only its group's ranks;
* a **frame** is the page-sized slot the page occupies inside its group's
  row space; migration assigns a fresh frame in the destination group.

Decode of ``line_addr`` with ``P`` lines per page, ``C`` channels,
``B`` banks per rank::

    page, offset = divmod(line_addr, P)
    channel      = offset % C
    bank         = (offset // C) % B
    intra        = offset // (C * B)            # line index inside (page, channel, bank)
    line_in_bank = frame * (P // (C * B)) + intra
    row, column  = from line_in_bank, modulo the bank's row space

The table also keeps the per-epoch access counters the placement policy
classifies pages with (hot/cold), mirroring the OS page-access-bit
scanning a real kernel would do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MemoryOrgConfig, PlacementConfig
from repro.memsim.address import MemoryLocation


class PageTable:
    """Page -> (group, frame) mapping with access counting and migration."""

    def __init__(self, org: MemoryOrgConfig, placement: PlacementConfig):
        placement.validate()
        if placement.page_lines % (org.channels * org.banks_per_rank):
            raise ValueError(
                f"page_lines ({placement.page_lines}) must be a multiple of "
                f"channels*banks ({org.channels * org.banks_per_rank}) so "
                f"pages stripe evenly over channels and banks")
        self._channels = org.channels
        self._banks = org.banks_per_rank
        self._lines_per_row = org.lines_per_row
        self._rows_per_bank = org.rows_per_bank
        self._page_lines = placement.page_lines
        self._lines_per_bank_page = (placement.page_lines
                                     // (org.channels * org.banks_per_rank))
        self.n_groups = org.ranks_per_channel
        self._spread_initial = placement.spread_initial
        # page id -> [group, frame, epoch_access_count]
        self._pages: Dict[int, List[int]] = {}
        self._next_frame = [0] * self.n_groups
        #: allocation steering: when set, new pages round-robin over this
        #: group list instead of spreading over all groups
        self._steer: Optional[Tuple[int, ...]] = None
        self._steer_rr = 0
        self._touched: List[int] = []
        # stats
        self.pages_allocated = 0
        self.migrations = 0
        self.migrated_lines = 0

    @property
    def page_lines(self) -> int:
        return self._page_lines

    # -- decode (controller hot path when placement is enabled) -------------

    def decode(self, line_addr: int) -> MemoryLocation:
        """Map a line address through the page table (counts the access)."""
        page, offset = divmod(line_addr, self._page_lines)
        entry = self._pages.get(page)
        if entry is None:
            entry = self._allocate(page)
        if entry[2] == 0:
            self._touched.append(page)
        entry[2] += 1
        channel = offset % self._channels
        rest = offset // self._channels
        bank = rest % self._banks
        intra = rest // self._banks
        line_in_bank = entry[1] * self._lines_per_bank_page + intra
        row_index, column = divmod(line_in_bank, self._lines_per_row)
        return MemoryLocation(channel, entry[0],
                              bank, row_index % self._rows_per_bank, column)

    def _allocate(self, page: int) -> List[int]:
        """First-touch allocation: spread over groups, or follow steering."""
        steer = self._steer
        if steer is not None:
            group = steer[self._steer_rr % len(steer)]
            self._steer_rr += 1
        elif self._spread_initial:
            group = page % self.n_groups
        else:
            group = 0
        frame = self._next_frame[group]
        self._next_frame[group] = frame + 1
        entry = [group, frame, 0]
        self._pages[page] = entry
        self.pages_allocated += 1
        return entry

    # -- policy interface ---------------------------------------------------

    def group_of(self, page: int) -> int:
        return self._pages[page][0]

    def steer_to(self, groups: Optional[Sequence[int]]) -> None:
        """Steer future first-touch allocations to ``groups`` (None clears)."""
        self._steer = tuple(groups) if groups else None

    def collect_epoch(self) -> Dict[int, int]:
        """Access counts of pages touched since the last collection;
        resets the counters (the policy calls this once per epoch)."""
        counts: Dict[int, int] = {}
        pages = self._pages
        for page in self._touched:
            entry = pages[page]
            counts[page] = entry[2]
            entry[2] = 0
        self._touched = []
        return counts

    def _locate(self, group: int, frame: int, offset: int) -> MemoryLocation:
        channel = offset % self._channels
        rest = offset // self._channels
        bank = rest % self._banks
        intra = rest // self._banks
        line_in_bank = frame * self._lines_per_bank_page + intra
        row_index, column = divmod(line_in_bank, self._lines_per_row)
        return MemoryLocation(channel, group, bank,
                              row_index % self._rows_per_bank, column)

    def migrate(self, page: int,
                new_group: int) -> List[Tuple[MemoryLocation,
                                              MemoryLocation]]:
        """Re-home ``page`` onto ``new_group``.

        The mapping switches immediately (demand accesses follow the new
        location); the returned (old, new) line-location pairs are the
        copy traffic the caller must drive through the controller so the
        move is timed and power-accounted.
        """
        if not 0 <= new_group < self.n_groups:
            raise ValueError(f"no such rank group: {new_group}")
        entry = self._pages[page]
        old_group, old_frame = entry[0], entry[1]
        if old_group == new_group:
            return []
        new_frame = self._next_frame[new_group]
        self._next_frame[new_group] = new_frame + 1
        pairs = [(self._locate(old_group, old_frame, offset),
                  self._locate(new_group, new_frame, offset))
                 for offset in range(self._page_lines)]
        entry[0] = new_group
        entry[1] = new_frame
        self.migrations += 1
        self.migrated_lines += len(pairs)
        return pairs

    def group_ranks(self, group: int) -> List[int]:
        """Global rank indices belonging to ``group`` (one per channel)."""
        rpc = self.n_groups
        return [c * rpc + group for c in range(self._channels)]

    def stats(self) -> Dict[str, int]:
        return {
            "pages_allocated": self.pages_allocated,
            "migrations": self.migrations,
            "migrated_lines": self.migrated_lines,
        }
