"""OS-level page-to-rank placement and migration (ROADMAP: rank-aware
placement, deep powerdown, and self-refresh).

MemScale's Section 6 gestures at combining frequency scaling with deeper
rank-level low-power states; what makes those states pay is
*concentrating* hot pages onto few ranks so the rest can be parked (Lu
et al.'s rank-aware migration, the gem5 power-down study). This package
adds that missing layer:

* :class:`~repro.placement.table.PageTable` — a page-granular indirection
  over the interleaved address mapper: each page is homed on a rank
  *group* (the same within-channel rank index on every channel, so full
  channel interleaving is preserved inside a page) and can be re-homed
  at run time;
* :class:`~repro.placement.policy.PlacementPolicy` — per-epoch hot/cold
  page classification from access counters, bounded hot-page migrations
  into a small set of target groups, and self-refresh parking of groups
  that stay idle;
* :class:`~repro.placement.policy.MigrationPump` — issues each migrated
  line as a real READ + WRITE request pair through the memory
  controller, so migration traffic is timed, power-accounted, and
  validator-checked exactly like demand traffic;
* :class:`~repro.placement.governor.PlacementGovernor` — composes the
  placement policy with any inner governor (normally MemScale) through
  the standard Governor protocol.
"""

from repro.placement.governor import PlacementGovernor
from repro.placement.policy import MigrationPump, PlacementPolicy
from repro.placement.table import PageTable

__all__ = [
    "MigrationPump",
    "PageTable",
    "PlacementGovernor",
    "PlacementPolicy",
]
