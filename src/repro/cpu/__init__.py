"""Trace-driven CPU substrate: cores, traces, and synthetic workloads."""

from repro.cpu.core_model import Core, CpuCluster
from repro.cpu.phases import FLAT, Phase, PhaseSchedule
from repro.cpu.trace import CoreTrace, WorkloadTrace
from repro.cpu.workloads import (
    APP_PROFILES,
    MIXES,
    AppProfile,
    MixSpec,
    TraceGenerator,
    generate_workload,
    mix_names,
)

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "Core",
    "CoreTrace",
    "CpuCluster",
    "FLAT",
    "MIXES",
    "MixSpec",
    "Phase",
    "PhaseSchedule",
    "TraceGenerator",
    "WorkloadTrace",
    "generate_workload",
    "mix_names",
]
