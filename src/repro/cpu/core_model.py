"""Trace-driven in-order core model.

Each core replays its :class:`~repro.cpu.trace.CoreTrace` against the
memory controller, matching the processor model of Section 3.3: in-order
execution with a fixed time per CPU instruction and exactly one
outstanding LLC miss — so every nanosecond of extra memory latency shows
up directly in execution time. Writebacks are posted asynchronously and
never block the core.

When a core exhausts its trace it wraps around (the replay loops), so
fixed-duration simulations always have live traffic; per-core committed
instruction counts keep growing monotonically either way.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CpuConfig
from repro.cpu.trace import CoreTrace
from repro.memsim.controller import MemoryController
from repro.memsim.engine import EventEngine
from repro.memsim.request import MemRequest


class Core:
    """One in-order core replaying a trace.

    The trace's numpy arrays are unpacked into plain Python int lists at
    construction: the replay loop touches one element per event, where a
    numpy scalar read plus ``int()`` costs several times a list index.
    The per-instruction time is likewise computed once.
    """

    __slots__ = (
        "_engine", "_controller", "_counters", "_cpu", "_trace", "core_id",
        "app_id", "app_name", "_loop", "_cursor", "_passes", "_len",
        "instructions_committed", "misses_issued", "blocked", "finished",
        "_started", "target_instructions", "time_at_target_ns",
        "_gap_start_ns", "_gap_total", "_gap_done", "_instr_ns",
        "_gaps", "_read_addrs", "_wb_addrs", "on_target_reached",
    )

    def __init__(self, engine: EventEngine, controller: MemoryController,
                 cpu: CpuConfig, trace: CoreTrace, core_id: int,
                 loop_trace: bool = True):
        if len(trace) == 0:
            raise ValueError(f"core {core_id}: empty trace")
        self._engine = engine
        self._controller = controller
        self._counters = controller.counters
        self._cpu = cpu
        self._trace = trace
        self.core_id = core_id
        self.app_id = trace.app_id
        self.app_name = trace.app_name
        self._loop = loop_trace
        self._cursor = 0
        self._passes = 0
        self._len = len(trace)
        # ndarray.tolist() yields the same plain-int lists as a Python
        # loop but in one C pass — and, for a memory-mapped columnar
        # trace, reads the shared pages exactly once per row.
        self._gaps = trace.gaps.tolist()
        self._read_addrs = trace.read_addrs.tolist()
        self._wb_addrs = trace.wb_addrs.tolist()
        self._instr_ns = cpu.cpi_cpu * cpu.cycle_ns
        self.instructions_committed = 0
        self.misses_issued = 0
        self.blocked = False
        self.finished = False
        self._started = False
        self.target_instructions: Optional[int] = None
        self.time_at_target_ns: Optional[float] = None
        #: Optional callback fired once, when the target is first reached.
        self.on_target_reached = None
        # progressive-commit state for the gap currently being executed
        self._gap_start_ns = 0.0
        self._gap_total = 0
        self._gap_done = 0

    @property
    def trace_passes(self) -> int:
        """Complete passes through the trace so far."""
        return self._passes

    @property
    def instruction_time_ns(self) -> float:
        """Wall-clock time per committed CPU instruction."""
        return self._instr_ns

    def set_target(self, instructions: int) -> None:
        """Record the time at which this core commits its N-th instruction.

        Mirrors the paper's measurement window: each application's CPI is
        evaluated over its first N instructions even though replay
        continues until the slowest core finishes.
        """
        if instructions <= 0:
            raise ValueError("target must be positive")
        self.target_instructions = instructions
        self._check_target()

    @property
    def reached_target(self) -> bool:
        return self.time_at_target_ns is not None

    def _check_target(self) -> None:
        if (self.target_instructions is not None
                and self.time_at_target_ns is None
                and self.instructions_committed >= self.target_instructions):
            self.time_at_target_ns = self._engine.now
            if self.on_target_reached is not None:
                self.on_target_reached()

    def start(self) -> None:
        """Begin replay; the first miss issues after its leading gap."""
        if self._started:
            raise RuntimeError(f"core {self.core_id} already started")
        self._started = True
        self._schedule_next_issue()

    # -- replay loop -----------------------------------------------------

    def _schedule_next_issue(self) -> None:
        if self._cursor >= self._len:
            if not self._loop:
                self.finished = True
                return
            self._cursor = 0
            self._passes += 1
        gap = self._gaps[self._cursor]
        self._gap_start_ns = self._engine.now
        self._gap_total = gap
        self._gap_done = 0
        self._engine.post_chain(gap * self._instr_ns,
                                lambda: self._issue(gap))

    def sync_committed(self) -> None:
        """Commit the instructions of the in-progress compute gap.

        Called before counter snapshots so per-interval TIC reflects
        actual progress instead of lumping whole gaps at miss-issue time
        (which would make short profiling windows noisy).
        """
        if self.blocked or self.finished or self._gap_total <= 0:
            return
        elapsed = self._engine.now - self._gap_start_ns
        done = min(self._gap_total, int(elapsed / self._instr_ns))
        if done > self._gap_done:
            delta = done - self._gap_done
            self._gap_done = done
            self.instructions_committed += delta
            self._counters.commit_instructions(self.core_id, delta)
            self._check_target()

    def _issue(self, gap: int) -> None:
        """Commit the rest of the compute gap, then issue the LLC miss.

        Hot path: the target check is inlined (same guard order-
        insensitive conjunction as :meth:`_check_target`) and per-event
        collaborator lookups are hoisted.
        """
        counters = self._counters
        core_id = self.core_id
        remaining = gap - self._gap_done
        self._gap_done = gap
        if remaining > 0:
            committed = self.instructions_committed + remaining
            self.instructions_committed = committed
            counters.tic[core_id] += remaining
        else:
            committed = self.instructions_committed
        target = self.target_instructions
        if (target is not None and self.time_at_target_ns is None
                and committed >= target):
            self.time_at_target_ns = self._engine._now
            if self.on_target_reached is not None:
                self.on_target_reached()
        i = self._cursor
        self._cursor += 1
        read_addr = self._read_addrs[i]
        wb_addr = self._wb_addrs[i]
        controller = self._controller
        if wb_addr >= 0:
            controller.submit_writeback(wb_addr, core_id=core_id,
                                        app_id=self.app_id)
        counters.tlm[core_id] += 1.0
        self.misses_issued += 1
        self.blocked = True
        controller.submit_read(read_addr, core_id=core_id,
                               app_id=self.app_id,
                               on_complete=self._on_miss_complete)

    def _on_miss_complete(self, _request: MemRequest) -> None:
        # The missing instruction itself commits when its data returns.
        self.blocked = False
        committed = self.instructions_committed + 1
        self.instructions_committed = committed
        self._counters.tic[self.core_id] += 1
        target = self.target_instructions
        if (target is not None and self.time_at_target_ns is None
                and committed >= target):
            self.time_at_target_ns = self._engine._now
            if self.on_target_reached is not None:
                self.on_target_reached()
        # inlined _schedule_next_issue (one call per serviced miss)
        cursor = self._cursor
        if cursor >= self._len:
            if not self._loop:
                self.finished = True
                return
            cursor = self._cursor = 0
            self._passes += 1
        gap = self._gaps[cursor]
        self._gap_start_ns = self._engine._now
        self._gap_total = gap
        self._gap_done = 0
        self._engine.post_chain(gap * self._instr_ns,
                                lambda: self._issue(gap))


class CpuCluster:
    """All cores of the simulated server."""

    def __init__(self, engine: EventEngine, controller: MemoryController,
                 cpu: CpuConfig, traces, loop_traces: bool = True):
        if len(traces) == 0:
            raise ValueError("at least one core trace is required")
        self.cores = [
            Core(engine, controller, cpu, trace, core_id=i,
                 loop_trace=loop_traces)
            for i, trace in enumerate(traces)
        ]
        self.reached_count = 0
        # The run loop's stop predicate is called after *every* event, so
        # it must be as close to free as possible: ``all_reached_probe``
        # is the bound ``list.__len__`` of a flag list that goes from
        # empty to one element the moment the last core reaches its
        # target — a C-level call with no Python frame, truthy exactly
        # when every core is done.
        self._all_reached: list = []
        self.all_reached_probe = self._all_reached.__len__
        for core in self.cores:
            core.on_target_reached = self._on_core_reached

    def _on_core_reached(self) -> None:
        self.reached_count += 1
        if self.reached_count >= len(self.cores):
            self._all_reached.append(True)

    def __len__(self) -> int:
        return len(self.cores)

    def start(self) -> None:
        for core in self.cores:
            core.start()

    def min_instructions_committed(self) -> int:
        """Progress of the slowest core (the paper's termination criterion)."""
        return min(core.instructions_committed for core in self.cores)

    def set_target(self, instructions: int) -> None:
        for core in self.cores:
            core.set_target(instructions)

    def sync_committed(self) -> None:
        """Flush partially-executed compute gaps into the counters."""
        for core in self.cores:
            core.sync_committed()

    def all_reached_target(self) -> bool:
        return all(core.reached_target for core in self.cores)

    def all_finished(self) -> bool:
        return all(core.finished for core in self.cores)
