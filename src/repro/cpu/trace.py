"""LLC miss/writeback trace format.

The paper's first simulation step collects memory-access traces (LLC
misses and writebacks) with M5 (Section 4.1); the second step replays
them in the memory-system simulator. This module defines the replayable
trace format: for each core, a sequence of records

    (gap_instructions, read_line_addr, writeback_line_addr)

meaning "commit ``gap_instructions`` instructions, then miss the LLC at
``read_line_addr``; if ``writeback_line_addr >= 0``, the miss also evicts
a dirty line that is written back". Traces are stored as parallel numpy
arrays and support two on-disk formats:

* :meth:`WorkloadTrace.save` / :meth:`WorkloadTrace.load` — a
  compressed ``.npz`` archive, the portable interchange format;
* :meth:`WorkloadTrace.save_columnar` /
  :meth:`WorkloadTrace.load_columnar` — one *uncompressed* flat
  ``.npy`` (a ``(3, total_records)`` int64 matrix: gaps, read
  addresses, writeback addresses, with every core's records
  concatenated) plus a small JSON sidecar mapping cores to column
  ranges. Compressed archive members cannot be memory-mapped, so this
  is the format the experiment cache stores: workers of a parallel
  sweep ``np.load(..., mmap_mode="r")`` the one file and share its
  pages through the OS page cache instead of each decompressing (or
  regenerating) a private copy — the zero-copy fan-out path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

#: Version tag of the columnar (.npy + sidecar) trace layout.
COLUMNAR_TRACE_VERSION = 1


def columnar_sidecar_path(path: "Path | str") -> Path:
    """The JSON sidecar accompanying a columnar trace file."""
    return Path(str(path) + ".meta.json")


@dataclass
class CoreTrace:
    """The access trace replayed by one core."""

    app_name: str
    app_id: int
    gaps: np.ndarray        #: int64, instructions committed before each miss
    read_addrs: np.ndarray  #: int64, cache-line index of each LLC miss
    wb_addrs: np.ndarray    #: int64, writeback line index or -1 for none

    def __post_init__(self) -> None:
        n = len(self.gaps)
        if len(self.read_addrs) != n or len(self.wb_addrs) != n:
            raise ValueError("trace arrays must have equal length")
        if n and self.gaps.min() < 0:
            raise ValueError("instruction gaps must be non-negative")

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def total_instructions(self) -> int:
        """Instructions committed over one full pass of the trace."""
        return int(self.gaps.sum())

    @property
    def total_reads(self) -> int:
        return len(self.read_addrs)

    @property
    def total_writebacks(self) -> int:
        return int((self.wb_addrs >= 0).sum())

    @property
    def rpki(self) -> float:
        """LLC misses per kilo-instruction over the trace."""
        instr = self.total_instructions
        return 1000.0 * self.total_reads / instr if instr else 0.0

    @property
    def wpki(self) -> float:
        """LLC writebacks per kilo-instruction over the trace."""
        instr = self.total_instructions
        return 1000.0 * self.total_writebacks / instr if instr else 0.0


@dataclass
class WorkloadTrace:
    """A multiprogrammed mix: one :class:`CoreTrace` per core."""

    name: str
    cores: List[CoreTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cores)

    @property
    def app_names(self) -> List[str]:
        """Distinct application names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for core in self.cores:
            seen.setdefault(core.app_name, None)
        return list(seen)

    def cores_of_app(self, app_name: str) -> List[int]:
        return [i for i, c in enumerate(self.cores) if c.app_name == app_name]

    @property
    def rpki(self) -> float:
        """Mix-level misses per kilo-instruction (aggregate, as Table 1)."""
        instr = sum(c.total_instructions for c in self.cores)
        reads = sum(c.total_reads for c in self.cores)
        return 1000.0 * reads / instr if instr else 0.0

    @property
    def wpki(self) -> float:
        instr = sum(c.total_instructions for c in self.cores)
        wbs = sum(c.total_writebacks for c in self.cores)
        return 1000.0 * wbs / instr if instr else 0.0

    # -- persistence -----------------------------------------------------

    def save(self, path: "Path | str") -> None:
        """Serialize to a compressed ``.npz`` file."""
        payload: Dict[str, np.ndarray] = {
            "names": np.array([c.app_name for c in self.cores]),
            "app_ids": np.array([c.app_id for c in self.cores], dtype=np.int64),
            "mix_name": np.array([self.name]),
        }
        for i, core in enumerate(self.cores):
            payload[f"gaps_{i}"] = core.gaps
            payload[f"reads_{i}"] = core.read_addrs
            payload[f"wbs_{i}"] = core.wb_addrs
        np.savez_compressed(str(path), **payload)

    @classmethod
    def load(cls, path: "Path | str") -> "WorkloadTrace":
        with np.load(str(path), allow_pickle=False) as data:
            names = [str(s) for s in data["names"]]
            app_ids = data["app_ids"]
            cores = [
                CoreTrace(app_name=names[i], app_id=int(app_ids[i]),
                          gaps=data[f"gaps_{i}"],
                          read_addrs=data[f"reads_{i}"],
                          wb_addrs=data[f"wbs_{i}"])
                for i in range(len(names))
            ]
            return cls(name=str(data["mix_name"][0]), cores=cores)

    def save_columnar(self, path: "Path | str") -> None:
        """Serialize as one flat uncompressed ``.npy`` + JSON sidecar.

        The matrix layout is row-major ``(3, total_records)`` — gaps,
        read addresses, writeback addresses — so each per-core slice of
        a row is contiguous and loading with ``mmap_mode="r"`` hands the
        replayer views without copying or decompressing anything.
        """
        total = sum(len(c) for c in self.cores)
        data = np.empty((3, total), dtype=np.int64)
        meta_cores = []
        offset = 0
        for core in self.cores:
            n = len(core)
            data[0, offset:offset + n] = core.gaps
            data[1, offset:offset + n] = core.read_addrs
            data[2, offset:offset + n] = core.wb_addrs
            meta_cores.append({"app_name": core.app_name,
                               "app_id": core.app_id,
                               "offset": offset, "count": n})
            offset += n
        np.save(str(path), data, allow_pickle=False)
        sidecar = columnar_sidecar_path(path)
        sidecar.write_text(json.dumps({
            "version": COLUMNAR_TRACE_VERSION,
            "name": self.name,
            "cores": meta_cores,
        }))

    @classmethod
    def load_columnar(cls, path: "Path | str",
                      mmap: bool = True) -> "WorkloadTrace":
        """Load a columnar trace; with ``mmap`` (the default) the core
        arrays are read-only views of a shared memory map.

        A columnar entry is a *pair*; losing either half makes the
        other unreadable, so a missing half raises an error naming
        which file is gone and how to clean up, not a bare
        ``FileNotFoundError`` from deep inside ``np.load``.
        """
        data_path = Path(str(path))
        sidecar_path = columnar_sidecar_path(path)
        missing = []
        if not data_path.exists():
            missing.append(f"data file {data_path}")
        if not sidecar_path.exists():
            missing.append(f"sidecar {sidecar_path}")
        if missing:
            raise FileNotFoundError(
                f"columnar trace {data_path} is incomplete: missing "
                + " and ".join(missing)
                + "; the surviving half cannot be loaded alone — remove "
                "the orphan (for cache entries: `repro cache --prune`) "
                "and regenerate or re-import the trace")
        meta = json.loads(sidecar_path.read_text())
        if meta.get("version") != COLUMNAR_TRACE_VERSION:
            raise ValueError(
                f"unsupported columnar trace version: {meta.get('version')}")
        data = np.load(str(path), mmap_mode="r" if mmap else None,
                       allow_pickle=False)
        if data.ndim != 2 or data.shape[0] != 3:
            raise ValueError(f"bad columnar trace shape: {data.shape}")
        cores = []
        for entry in meta["cores"]:
            lo = int(entry["offset"])
            hi = lo + int(entry["count"])
            if hi > data.shape[1]:
                raise ValueError("columnar trace sidecar out of range")
            cores.append(CoreTrace(app_name=str(entry["app_name"]),
                                   app_id=int(entry["app_id"]),
                                   gaps=data[0, lo:hi],
                                   read_addrs=data[1, lo:hi],
                                   wb_addrs=data[2, lo:hi]))
        return cls(name=str(meta["name"]), cores=cores)
