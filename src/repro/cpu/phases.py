"""Application phase behaviour.

SPEC applications exhibit phases with very different memory intensity;
the paper's MID3 timeline (Figure 7) hinges on apsi's "massive phase
change" mid-run. A :class:`PhaseSchedule` describes how an application's
miss rate varies over its instruction stream as a piecewise-constant
multiplier of its base RPKI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Phase:
    """One execution phase.

    ``fraction``   -- share of the app's total instructions in this phase
    ``intensity``  -- RPKI multiplier relative to the app's base RPKI
    """

    fraction: float
    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"phase fraction must be in (0, 1], got {self.fraction}")
        if self.intensity < 0.0:
            raise ValueError(f"phase intensity must be non-negative, got {self.intensity}")


class PhaseSchedule:
    """A normalized sequence of phases covering an app's whole run.

    Normalization rescales intensities so that the *instruction-weighted*
    mean intensity is exactly 1.0 — the app's base RPKI then remains its
    true average miss rate regardless of the phase structure, which keeps
    mix-level RPKI calibration (Table 1) independent of phases.
    """

    def __init__(self, phases: Sequence[Phase]):
        if not phases:
            raise ValueError("at least one phase is required")
        total = sum(p.fraction for p in phases)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"phase fractions must sum to 1.0, got {total}")
        mean = sum(p.fraction * p.intensity for p in phases)
        if mean <= 0.0:
            raise ValueError("phase schedule has zero mean intensity")
        self._phases: Tuple[Phase, ...] = tuple(
            Phase(p.fraction, p.intensity / mean) for p in phases
        )

    @property
    def phases(self) -> Tuple[Phase, ...]:
        return self._phases

    def __len__(self) -> int:
        return len(self._phases)

    def segments(self, total_instructions: int) -> List[Tuple[int, float]]:
        """Split ``total_instructions`` into (instructions, intensity) runs.

        Rounding error is folded into the final segment so the counts sum
        exactly to ``total_instructions``.
        """
        if total_instructions <= 0:
            raise ValueError("total_instructions must be positive")
        out: List[Tuple[int, float]] = []
        assigned = 0
        for i, phase in enumerate(self._phases):
            if i == len(self._phases) - 1:
                count = total_instructions - assigned
            else:
                count = int(round(phase.fraction * total_instructions))
                count = min(count, total_instructions - assigned)
            if count > 0:
                out.append((count, phase.intensity))
            assigned += count
        if not out:
            out.append((total_instructions, self._phases[0].intensity))
        return out


#: A flat, single-phase schedule (the default for most applications).
FLAT = PhaseSchedule([Phase(1.0, 1.0)])
