"""Trace statistics and inspection.

Summarizes the properties of a trace that determine memory-system
behaviour: miss rate, burstiness, spatial locality, and how the access
stream spreads over channels/banks under a given address mapping. Used
to validate synthetic traces against the Table 1 targets and to debug
custom workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.config import MemoryOrgConfig
from repro.cpu.trace import CoreTrace, WorkloadTrace
from repro.memsim.address import AddressMapper


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one core's trace."""

    app_name: str
    instructions: int
    misses: int
    writebacks: int
    rpki: float
    wpki: float
    mean_gap: float          #: mean instructions between misses
    gap_cv: float            #: coefficient of variation (burstiness)
    sequential_fraction: float  #: misses at previous address + 1
    unique_lines: int
    channel_spread: Dict[int, float]  #: fraction of misses per channel
    bank_entropy: float      #: normalized entropy of bank usage [0, 1]


def core_stats(trace: CoreTrace, org: MemoryOrgConfig) -> TraceStats:
    """Compute :class:`TraceStats` for one core trace."""
    mapper = AddressMapper(org)
    gaps = np.asarray(trace.gaps, dtype=np.float64)
    addrs = np.asarray(trace.read_addrs, dtype=np.int64)
    n = len(addrs)
    if n == 0:
        raise ValueError("cannot summarize an empty trace")

    mean_gap = float(gaps.mean())
    gap_cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
    diffs = np.diff(addrs)
    seq_frac = float((diffs == 1).mean()) if n > 1 else 0.0

    channels = addrs % org.channels
    channel_spread = {
        int(c): float((channels == c).mean()) for c in range(org.channels)
    }

    # bank usage entropy over (channel, rank, bank) triples
    bank_ids = np.empty(n, dtype=np.int64)
    ranks_pc = org.ranks_per_channel
    banks_pr = org.banks_per_rank
    locs = addrs
    ch = locs % org.channels
    rest = locs // org.channels
    bank = rest % banks_pr
    rest = rest // banks_pr
    rank = rest % ranks_pc
    bank_ids = (ch * ranks_pc + rank) * banks_pr + bank
    counts = np.bincount(bank_ids % org.total_banks,
                         minlength=org.total_banks).astype(np.float64)
    probs = counts / counts.sum()
    nonzero = probs[probs > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    max_entropy = np.log(org.total_banks)
    bank_entropy = entropy / max_entropy if max_entropy > 0 else 0.0

    return TraceStats(
        app_name=trace.app_name,
        instructions=trace.total_instructions,
        misses=trace.total_reads,
        writebacks=trace.total_writebacks,
        rpki=trace.rpki,
        wpki=trace.wpki,
        mean_gap=mean_gap,
        gap_cv=gap_cv,
        sequential_fraction=seq_frac,
        unique_lines=int(len(np.unique(addrs))),
        channel_spread=channel_spread,
        bank_entropy=bank_entropy,
    )


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregate statistics of a multiprogrammed mix."""

    name: str
    cores: int
    rpki: float
    wpki: float
    per_app: Dict[str, TraceStats]

    @property
    def most_intensive_app(self) -> str:
        return max(self.per_app, key=lambda a: self.per_app[a].rpki)


def workload_stats(workload: WorkloadTrace,
                   org: MemoryOrgConfig) -> WorkloadStats:
    """Aggregate statistics for a mix (one representative per app)."""
    per_app: Dict[str, TraceStats] = {}
    for app in workload.app_names:
        core_index = workload.cores_of_app(app)[0]
        per_app[app] = core_stats(workload.cores[core_index], org)
    return WorkloadStats(
        name=workload.name,
        cores=len(workload),
        rpki=workload.rpki,
        wpki=workload.wpki,
        per_app=per_app,
    )


def expected_channel_utilization(workload: WorkloadTrace,
                                 org: MemoryOrgConfig,
                                 cpi_cpu: float, cpu_cycle_ns: float,
                                 burst_ns: float) -> float:
    """Back-of-envelope mean channel utilization at a given burst time.

    Assumes cores commit at their compute-bound rate; actual utilization
    is lower when memory stalls throttle the cores, so this is an upper
    bound useful for sanity-checking configurations.
    """
    instr_per_ns = len(workload) / (cpi_cpu * cpu_cycle_ns)
    accesses_per_instr = (workload.rpki + workload.wpki) / 1000.0
    busy_per_ns = instr_per_ns * accesses_per_instr * burst_ns
    return busy_per_ns / org.channels
