"""Synthetic SPEC-like workloads (Table 1).

The paper traces SPEC 2000/2006 applications with M5 and replays the
traces. Without the proprietary benchmarks, we synthesize statistically
equivalent traces: each application has a profile (relative memory
intensity, writeback ratio, burstiness, spatial locality, working-set
size, phase structure) and each *mix* is calibrated so its aggregate
RPKI and WPKI match Table 1 exactly. The workload categories — ILP
(compute-bound), MID (balanced), MEM (memory-bound) — therefore retain
the relative intensities that drive every result in Section 4.

See DESIGN.md ("Substitutions") for why this preserves the paper's
behaviour: the energy/performance trade-off depends on the statistics of
the miss stream, not on SPEC instruction semantics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.phases import FLAT, Phase, PhaseSchedule
from repro.cpu.trace import CoreTrace, WorkloadTrace

#: Address-space stride between cores (in cache lines) so applications
#: never alias each other's rows.
CORE_REGION_STRIDE = 1 << 26


@dataclass(frozen=True)
class AppProfile:
    """Statistical profile of one application's LLC miss stream."""

    name: str
    rpki: float            #: base misses per kilo-instruction (relative scale)
    wb_ratio: float        #: writebacks per miss (dirty-eviction probability)
    burst_shape: float     #: gamma shape of inter-miss gaps (<1 = bursty)
    stream_prob: float     #: probability the next miss continues a stream
    working_set_lines: int  #: distinct cache lines the app touches
    phases: PhaseSchedule = FLAT


def _profiles() -> Dict[str, AppProfile]:
    """Per-application profiles.

    Relative ``rpki`` values are chosen so that unscaled mix averages are
    already close to Table 1; exact calibration happens per mix. Apps known
    to stream (swim, applu, mgrid) get high stream probability; pointer
    chasers (ammp, parser, twolf) get low. apsi carries the low->high phase
    change that drives Figure 7.
    """
    table: List[AppProfile] = [
        # -- ILP (compute-intensive) -------------------------------------
        AppProfile("vortex",  0.28, 0.20, 1.0, 0.50, 1 << 15),
        AppProfile("gcc",     0.34, 0.18, 0.8, 0.55, 1 << 16),
        AppProfile("sixtrack", 0.40, 0.10, 1.0, 0.60, 1 << 14),
        AppProfile("mesa",    0.46, 0.15, 1.0, 0.60, 1 << 15),
        AppProfile("perlbmk", 0.10, 0.08, 0.9, 0.45, 1 << 14),
        AppProfile("crafty",  0.12, 0.05, 0.9, 0.40, 1 << 13),
        AppProfile("gzip",    0.20, 0.06, 1.2, 0.70, 1 << 14),
        AppProfile("eon",     0.22, 0.05, 1.0, 0.50, 1 << 13),
        # -- MID (balanced) ----------------------------------------------
        AppProfile("ammp",    2.00, 0.02, 0.7, 0.35, 1 << 17),
        AppProfile("gap",     1.50, 0.02, 0.8, 0.45, 1 << 16),
        AppProfile("wupwise", 1.60, 0.03, 1.0, 0.65, 1 << 17),
        AppProfile("vpr",     1.78, 0.03, 0.7, 0.35, 1 << 16),
        AppProfile("astar",   2.80, 0.04, 0.7, 0.40, 1 << 17),
        AppProfile("parser",  2.26, 0.03, 0.7, 0.35, 1 << 16),
        AppProfile("twolf",   2.58, 0.04, 0.7, 0.30, 1 << 16),
        AppProfile("facerec", 2.80, 0.04, 1.0, 0.60, 1 << 17),
        AppProfile("apsi",    4.34, 0.06, 0.8, 0.50, 1 << 17,
                    PhaseSchedule([Phase(0.45, 0.25), Phase(0.55, 1.60)])),
        AppProfile("bzip2",   1.80, 0.08, 0.9, 0.55, 1 << 16),
        # -- MEM (memory-intensive) ----------------------------------------
        AppProfile("swim",    22.00, 0.25, 1.2, 0.85, 1 << 19),
        AppProfile("applu",   18.00, 0.22, 1.2, 0.85, 1 << 19),
        AppProfile("art",     16.00, 0.12, 0.9, 0.70, 1 << 18),
        AppProfile("lucas",   12.12, 0.15, 1.0, 0.75, 1 << 18),
        AppProfile("fma3d",    6.50, 0.05, 0.9, 0.60, 1 << 18),
        AppProfile("mgrid",    5.58, 0.04, 1.2, 0.85, 1 << 18),
        AppProfile("galgel",  12.00, 0.25, 1.0, 0.75, 1 << 18),
        AppProfile("equake",  10.40, 0.22, 0.9, 0.65, 1 << 18),
    ]
    return {p.name: p for p in table}


APP_PROFILES: Dict[str, AppProfile] = _profiles()

#: The built-in Table 1 application names; :func:`register_app_profile`
#: refuses to shadow them.
_BUILTIN_PROFILE_NAMES = frozenset(APP_PROFILES)


def register_app_profile(profile: AppProfile) -> None:
    """Add a non-Table-1 application profile (e.g. a fitted trace).

    Shadowing a built-in Table 1 profile is refused — the paper's mixes
    are calibrated against those exact numbers. Re-registering the same
    name replaces the previous extra profile.
    """
    if profile.name in _BUILTIN_PROFILE_NAMES:
        raise ValueError(
            f"cannot shadow built-in app profile {profile.name!r}")
    APP_PROFILES[profile.name] = profile


@dataclass(frozen=True)
class MixSpec:
    """One multiprogrammed workload of Table 1."""

    name: str
    category: str            #: "ILP", "MID", or "MEM"
    apps: Tuple[str, ...]    #: the four applications (each replicated)
    target_rpki: float       #: Table 1 aggregate RPKI
    target_wpki: float       #: Table 1 aggregate WPKI


#: The 12 workloads of Table 1, verbatim.
MIXES: Dict[str, MixSpec] = {
    m.name: m for m in [
        MixSpec("ILP1", "ILP", ("vortex", "gcc", "sixtrack", "mesa"), 0.37, 0.06),
        MixSpec("ILP2", "ILP", ("perlbmk", "crafty", "gzip", "eon"), 0.16, 0.01),
        MixSpec("ILP3", "ILP", ("sixtrack", "mesa", "perlbmk", "crafty"), 0.27, 0.01),
        MixSpec("ILP4", "ILP", ("vortex", "mesa", "perlbmk", "crafty"), 0.24, 0.06),
        MixSpec("MID1", "MID", ("ammp", "gap", "wupwise", "vpr"), 1.72, 0.01),
        MixSpec("MID2", "MID", ("astar", "parser", "twolf", "facerec"), 2.61, 0.09),
        MixSpec("MID3", "MID", ("apsi", "bzip2", "ammp", "gap"), 2.41, 0.16),
        MixSpec("MID4", "MID", ("wupwise", "vpr", "astar", "parser"), 2.11, 0.07),
        MixSpec("MEM1", "MEM", ("swim", "applu", "art", "lucas"), 17.03, 3.03),
        MixSpec("MEM2", "MEM", ("fma3d", "mgrid", "galgel", "equake"), 8.62, 0.25),
        MixSpec("MEM3", "MEM", ("swim", "applu", "galgel", "equake"), 15.60, 3.71),
        MixSpec("MEM4", "MEM", ("art", "lucas", "mgrid", "fma3d"), 8.96, 0.33),
    ]
}


#: Mixes registered beyond Table 1 — the scenario ladder, fitted
#: traces, anything user code adds through :func:`register_mix`.
EXTRA_MIXES: Dict[str, MixSpec] = {}


def register_mix(spec: MixSpec) -> None:
    """Register a non-Table-1 mix so every mix-name consumer finds it.

    Shadowing a Table 1 name is refused (those targets are the paper's
    contract), as is re-registering an extra name with a *different*
    spec; registering the identical spec again is a no-op, so repeated
    imports of a registering module stay safe.
    """
    if spec.name in MIXES:
        raise ValueError(f"cannot shadow built-in mix {spec.name!r}")
    existing = EXTRA_MIXES.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(
            f"mix {spec.name!r} already registered with a different spec")
    EXTRA_MIXES[spec.name] = spec


def _load_scenarios() -> None:
    """Import the scenario library for its registration side effect.

    Lazy so that :mod:`repro.cpu.workloads` stays import-cycle-free
    (the scenario library imports *this* module); sweep workers in
    spawned processes resolve ladder names through this hook without
    any explicit import on their side.
    """
    from repro import scenarios  # noqa: F401  (registers the ladder)


def lookup_mix(mix_name: str) -> MixSpec:
    """The named mix — Table 1 first, then registered extras."""
    if mix_name in MIXES:
        return MIXES[mix_name]
    if mix_name not in EXTRA_MIXES:
        _load_scenarios()
    if mix_name in EXTRA_MIXES:
        return EXTRA_MIXES[mix_name]
    raise KeyError(f"unknown mix {mix_name!r}; "
                   f"available: {known_mix_names()}")


def known_mix_names() -> List[str]:
    """Every resolvable mix name: Table 1 plus registered extras."""
    _load_scenarios()
    return list(MIXES) + sorted(EXTRA_MIXES)


def mix_names(category: Optional[str] = None) -> List[str]:
    """All mix names, optionally restricted to one category."""
    if category is None:
        return list(MIXES)
    return [name for name, mix in MIXES.items() if mix.category == category]


class TraceGenerator:
    """Deterministic synthetic trace generator, calibrated to Table 1."""

    def __init__(self, seed: int = 2011):
        self._seed = seed

    def generate_mix(self, mix_name: str, cores: int = 16,
                     instructions_per_core: int = 200_000) -> WorkloadTrace:
        """Generate the named mix (Table 1 or registered) for ``cores``.

        Each of the mix's applications is replicated ``cores // k``
        times, where ``k`` is the app count (Table 1 uses 4 apps x4 on
        16 cores). The mix's aggregate RPKI and WPKI are calibrated to
        the spec's targets.
        """
        mix = lookup_mix(mix_name)
        k = len(mix.apps)
        if cores % k != 0:
            raise ValueError(
                f"core count must be a multiple of {k}, got {cores}")
        replicas = cores // k
        profiles = [APP_PROFILES[a] for a in mix.apps]
        rpki_scale = mix.target_rpki / float(np.mean([p.rpki for p in profiles]))
        eff_rpki = {p.name: p.rpki * rpki_scale for p in profiles}
        mean_wb = float(np.mean([eff_rpki[p.name] * p.wb_ratio for p in profiles]))
        wb_scale = (mix.target_wpki / mean_wb) if mean_wb > 0 else 0.0

        cores_out: List[CoreTrace] = []
        core_index = 0
        for replica in range(replicas):
            for app_id, profile in enumerate(profiles):
                rng = np.random.default_rng(
                    (self._seed, zlib.crc32(mix_name.encode()), core_index))
                trace = self._generate_core(
                    profile, app_id, core_index, rng,
                    instructions=instructions_per_core,
                    rpki=eff_rpki[profile.name],
                    wb_prob=min(1.0, profile.wb_ratio * wb_scale),
                )
                cores_out.append(trace)
                core_index += 1
        return WorkloadTrace(name=mix_name, cores=cores_out)

    def _generate_core(self, profile: AppProfile, app_id: int, core_index: int,
                       rng: np.random.Generator, instructions: int,
                       rpki: float, wb_prob: float) -> CoreTrace:
        gaps_parts: List[np.ndarray] = []
        for seg_instr, intensity in profile.phases.segments(instructions):
            seg_rpki = max(rpki * intensity, 1e-6)
            gaps_parts.append(self._segment_gaps(seg_instr, seg_rpki,
                                                 profile.burst_shape, rng))
        gaps = np.concatenate(gaps_parts) if gaps_parts else np.zeros(0, np.int64)
        n = len(gaps)
        read_addrs = self._stream_addresses(n, profile, core_index, rng)
        wb_flags = rng.random(n) < wb_prob
        wb_local = rng.integers(0, profile.working_set_lines, size=n)
        wb_addrs = np.where(wb_flags,
                            core_index * CORE_REGION_STRIDE + wb_local,
                            -1).astype(np.int64)
        return CoreTrace(app_name=profile.name, app_id=app_id,
                         gaps=gaps, read_addrs=read_addrs, wb_addrs=wb_addrs)

    @staticmethod
    def _segment_gaps(seg_instr: int, seg_rpki: float, shape: float,
                      rng: np.random.Generator) -> np.ndarray:
        """Inter-miss instruction gaps for one phase segment.

        Gamma-distributed gaps with mean ``1000 / rpki``; the vector is
        rescaled so the segment commits exactly ``seg_instr`` instructions,
        keeping mix RPKI calibration exact in expectation.
        """
        mean_gap = 1000.0 / seg_rpki
        n_misses = max(1, int(round(seg_instr / mean_gap)))
        raw = rng.gamma(shape, mean_gap / shape, size=n_misses)
        raw = np.maximum(raw, 1.0)
        scaled = raw * (seg_instr / raw.sum())
        gaps = np.floor(scaled).astype(np.int64)
        # fold rounding remainder into the final gap
        gaps[-1] += seg_instr - int(gaps.sum())
        if gaps[-1] < 0:
            gaps[-1] = 0
        return gaps

    @staticmethod
    def _stream_addresses(n: int, profile: AppProfile, core_index: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Addresses with tunable spatial locality.

        With probability ``stream_prob`` a miss continues the current
        sequential stream (next cache line); otherwise it jumps to a random
        line of the working set. Implemented with a vectorized
        run-decomposition rather than a Python loop.
        """
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        ws = profile.working_set_lines
        jump = rng.random(n) >= profile.stream_prob
        jump[0] = True
        idx = np.arange(n)
        last_jump = np.maximum.accumulate(np.where(jump, idx, 0))
        jump_bases = np.zeros(n, dtype=np.int64)
        jump_bases[jump] = rng.integers(0, ws, size=int(jump.sum()))
        base = jump_bases[last_jump]
        offset = idx - last_jump
        local = (base + offset) % ws
        return (core_index * CORE_REGION_STRIDE + local).astype(np.int64)


def generate_workload(mix_name: str, cores: int = 16,
                      instructions_per_core: int = 200_000,
                      seed: int = 2011) -> WorkloadTrace:
    """One-call convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(seed=seed).generate_mix(
        mix_name, cores=cores, instructions_per_core=instructions_per_core)
