"""Simulator-throughput benchmark and regression gate.

Measures how fast the discrete-event simulator itself runs — events per
second of host wall-clock time — on pinned workloads, and fails when
throughput regresses against the committed baseline in
``BENCH_perf.json``. This guards the hot-path optimizations (engine,
controller, bank/rank/channel, counters, core model) the same way the
golden-result snapshot guards their correctness.

Methodology
-----------
Each scenario runs a fixed (mix, cores, instructions, seed) workload
under a fixed policy list. Per repeat, governors are constructed
*untimed* (MemScale's calibration baseline run is excluded), then each
``SystemSimulator.run()`` is timed and the engine's simulated-event
count summed; the repeat's throughput is total events / total timed
wall. The **median** of ``repeats`` repeats is kept: unlike best-of it
is a consistent estimator of the host's typical throughput, so two
measurement sessions on the same machine agree instead of racing each
other's luckiest scheduler slice. Results are appended to
``BENCH_perf.json`` along with the git SHA and a machine fingerprint;
the regression gate only fires when the fingerprint matches the
baseline's, so numbers recorded on one machine never fail the gate on
a different one (a loud advisory warning is printed instead).

The event count is ``events_processed + events_fast_forwarded +
events_busy_absorbed + events_steady_skipped``: events the idle-period
fast-forward path, the busy-period chain absorber, and the
steady-state surrogate account analytically *did* occur in simulated
time, so counting them keeps the metric "simulated work per second of
host time" — comparable across fast-path on/off (same numerator,
different wall). ``fast_forward=False`` reproduces the event-by-event
engine of the pre-fast-forward code, which is how the ``ilp``
scenario's pre-PR baseline was seeded; ``approx=False`` measures with
the steady-state surrogate disabled.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import scaled_config
from repro.sim.runner import ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator

#: Default location of the committed benchmark/baseline file.
DEFAULT_OUTPUT = "BENCH_perf.json"

#: Throughput may drop at most this fraction below the baseline.
DEFAULT_MAX_REGRESSION = 0.10

#: Median-of-N repeats per scenario. Three repeats suffice for a median
#: to reject a single descheduled outlier while keeping the suite fast.
DEFAULT_REPEATS = 3


@dataclass(frozen=True)
class Scenario:
    """One pinned throughput workload."""

    name: str
    mix: str
    cores: int
    instructions_per_core: int
    policies: Tuple[str, ...]
    seed: int = 2011
    #: Core clock override in MHz. The scaled test config clocks cores
    #: at 4 GHz; a low-power-server scenario pins a slower clock so the
    #: same per-core miss gaps span more wall-nanoseconds of DRAM time.
    cpu_mhz: Optional[float] = None
    #: Multiplier on the governor epoch (and profiling window). The
    #: scaled config compresses MemScale's epoch far below the paper's
    #: milliseconds so unit tests stay fast; throughput scenarios can
    #: restore a longer, more paper-faithful epoch so per-epoch
    #: bookkeeping does not dominate the timed event loop.
    epoch_scale: float = 1.0


#: The benchmark suite. ``smoke`` is the CI-sized MID1 path (the same
#: shape as ``repro bench --smoke``); ``mid1`` is a larger replay that
#: keeps the event loop busy long enough to be setup-insensitive;
#: ``ilp`` is the low-MPKI case — long compute gaps where per-rank
#: refresh housekeeping dominates the event count, i.e. the workload
#: shape the idle-period fast-forward path targets (its policies span
#: no-powerdown, aggressive powerdown, and the MemScale governor so the
#: batch logic covers every idle power state); ``ladder`` replays a
#: scenario-library rung (mix2, the high-MPKI end of the MPKI ladder)
#: so registry-composed mixes have a pinned throughput number too.
#: The gate only compares scenarios present in the committed baseline,
#: so adding a scenario here never trips it retroactively.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(name="smoke", mix="MID1", cores=4, instructions_per_core=8_000,
             policies=("Baseline", "MemScale", "Static")),
    Scenario(name="mid1", mix="MID1", cores=16, instructions_per_core=60_000,
             policies=("Baseline", "MemScale")),
    Scenario(name="ilp", mix="ILP2", cores=4,
             instructions_per_core=1_000_000,
             policies=("Baseline", "Fast-PD", "MemScale"),
             cpu_mhz=250.0, epoch_scale=16.0),
    Scenario(name="ladder", mix="mix2", cores=4,
             instructions_per_core=8_000,
             policies=("Baseline", "MemScale")),
)


class PerfRegressionError(RuntimeError):
    """Raised when measured throughput falls below the gated floor."""


def git_sha() -> str:
    """Current commit SHA, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def machine_fingerprint() -> Dict[str, object]:
    """Host identity attached to every record; gates only compare equal
    fingerprints, so cross-machine numbers never trip the gate."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def run_scenario(scenario: Scenario,
                 repeats: int = DEFAULT_REPEATS,
                 fast_forward: bool = True,
                 approx: bool = True,
                 profiler=None) -> Dict[str, float]:
    """Measure one scenario; returns events, timed wall seconds, and
    events/sec for the median repeat (by events/sec).

    ``fast_forward=False`` disables the idle-period batch path, which
    both measures the event-by-event engine and seeds pre-fast-forward
    reference numbers; ``approx=False`` disables the steady-state
    surrogate. Either way the event count is the *simulated* one
    (processed + fast-forwarded + busy-absorbed + steady-skipped).
    ``profiler`` optionally supplies a ``cProfile.Profile`` that is
    enabled around every timed ``run()`` (and only those).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    settings = RunnerSettings(cores=scenario.cores,
                              instructions_per_core=scenario.instructions_per_core,
                              seed=scenario.seed)
    config = scaled_config().replace(fast_forward=fast_forward,
                                     approx_steady_state=approx)
    if scenario.cpu_mhz is not None:
        config = config.replace(
            cpu=dataclasses.replace(config.cpu, freq_mhz=scenario.cpu_mhz))
    if scenario.epoch_scale != 1.0:
        policy = config.policy
        config = config.replace(policy=dataclasses.replace(
            policy,
            epoch_ns=policy.epoch_ns * scenario.epoch_scale,
            profile_ns=policy.profile_ns * scenario.epoch_scale))
    runner = ExperimentRunner(config=config, settings=settings)
    trace = runner.trace(scenario.mix)  # untimed: trace generation
    samples: List[Dict[str, float]] = []
    for _ in range(repeats):
        total_events = 0
        total_skipped = 0
        total_absorbed = 0
        total_steady = 0
        total_wall = 0.0
        for policy in scenario.policies:
            # untimed: governor construction (includes MemScale's
            # calibration baseline run)
            governor = runner.make_named_governor(scenario.mix, policy)
            sim = SystemSimulator(runner.config, trace, governor)
            if profiler is not None:
                profiler.enable()
            start = time.perf_counter()
            sim.run()
            total_wall += time.perf_counter() - start
            if profiler is not None:
                profiler.disable()
            engine = sim.engine
            total_events += (engine.events_processed
                             + engine.events_fast_forwarded
                             + engine.events_busy_absorbed
                             + engine.events_steady_skipped)
            total_skipped += engine.events_fast_forwarded
            total_absorbed += engine.events_busy_absorbed
            total_steady += engine.events_steady_skipped
        samples.append({"events": total_events, "wall_s": total_wall,
                        "events_per_sec": total_events / total_wall,
                        "events_fast_forwarded": total_skipped,
                        "events_busy_absorbed": total_absorbed,
                        "events_steady_skipped": total_steady})
    # median repeat by throughput (low median for even counts: the
    # conservative side of the tie)
    samples.sort(key=lambda s: s["events_per_sec"])
    median_eps = statistics.median_low(
        [s["events_per_sec"] for s in samples])
    for sample in samples:
        if sample["events_per_sec"] == median_eps:
            return sample
    raise AssertionError("unreachable: median not among samples")


def _check_gate(latest: Dict[str, Dict[str, float]],
                baseline: Dict[str, Dict[str, float]],
                baseline_machine: Optional[Dict[str, object]],
                max_regression: float) -> List[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    if baseline_machine is not None and baseline_machine != machine_fingerprint():
        # different host: numbers are not comparable — the caller prints
        # the advisory warning (see _machine_mismatch_warning)
        return []
    failures = []
    for name, base in baseline.items():
        if name not in latest:
            continue
        floor = base["events_per_sec"] * (1.0 - max_regression)
        got = latest[name]["events_per_sec"]
        if got < floor:
            failures.append(
                f"scenario {name!r}: current {got:.0f} events/sec is below "
                f"the gated floor {floor:.0f} (baseline "
                f"{base['events_per_sec']:.0f} events/sec, max regression "
                f"{max_regression:.0%})")
    return failures


def _gate_report(latest: Dict[str, Dict[str, float]],
                 baseline: Dict[str, Dict[str, float]],
                 baseline_machine: Optional[Dict[str, object]],
                 max_regression: float) -> List[str]:
    """Per-scenario gate summary lines: both sides of the comparison
    (current *and* baseline events/sec), never just the ratio."""
    if baseline_machine is not None and baseline_machine != machine_fingerprint():
        return [_machine_mismatch_warning(baseline_machine)]
    lines = []
    for name in sorted(latest):
        base = baseline.get(name)
        if not base:
            continue
        got = latest[name]["events_per_sec"]
        ref = base["events_per_sec"]
        lines.append(
            f"perfbench: gate {name}: current {got:.0f} events/sec vs "
            f"baseline {ref:.0f} events/sec "
            f"(floor {ref * (1.0 - max_regression):.0f}, "
            f"{got / ref:.2f}x baseline)")
    return lines


def _machine_mismatch_warning(baseline_machine) -> str:
    """The loud advisory for a baseline recorded on another host."""
    current = machine_fingerprint()
    diffs = ", ".join(
        f"{key}: baseline={baseline_machine.get(key)!r} "
        f"current={current.get(key)!r}"
        for key in sorted(set(baseline_machine) | set(current))
        if baseline_machine.get(key) != current.get(key))
    return ("perfbench: WARNING: baseline was recorded on a different "
            f"machine ({diffs}); throughput numbers are not comparable, so "
            "the regression gate is ADVISORY ONLY and will not fail this "
            "run. Re-seed with --update-baseline on this host to re-arm it.")


def run_perfbench(output: str = DEFAULT_OUTPUT,
                  repeats: int = DEFAULT_REPEATS,
                  scenarios: Optional[Sequence[str]] = None,
                  update_baseline: bool = False,
                  max_regression: float = DEFAULT_MAX_REGRESSION,
                  quiet: bool = False,
                  fast_forward: bool = True,
                  approx: bool = True,
                  gate: bool = True,
                  profile: bool = False,
                  profile_out: Optional[str] = None,
                  profile_top: int = 20) -> Dict[str, object]:
    """Run the suite, gate against the committed baseline, update ``output``.

    Raises :class:`PerfRegressionError` when any scenario's throughput is
    more than ``max_regression`` below the baseline recorded on the same
    machine. ``update_baseline`` re-seeds the baseline (and its machine
    fingerprint) from this run's numbers. ``fast_forward=False``
    measures with idle-period batching disabled (the pre-fast-forward
    engine); ``approx=False`` disables the steady-state surrogate.
    ``gate=False`` still prints the baseline-vs-current comparison but
    never raises — the CI smoke leg, where the numbers come from an
    arbitrary shared runner. ``profile=True`` wraps every timed
    ``run()`` in a shared ``cProfile.Profile`` and prints the
    ``profile_top`` hottest functions by cumulative time; with
    ``profile_out`` the raw pstats dump is also written there (the CI
    artifact).
    """
    selected = [s for s in SCENARIOS
                if scenarios is None or s.name in scenarios]
    if scenarios is not None:
        unknown = set(scenarios) - {s.name for s in SCENARIOS}
        if unknown:
            raise ValueError(f"unknown scenarios: {sorted(unknown)}; "
                             f"choose from {[s.name for s in SCENARIOS]}")

    path = Path(output)
    previous: Dict[str, object] = {}
    if path.exists():
        previous = json.loads(path.read_text())

    profiler = None
    if profile:
        import cProfile
        profiler = cProfile.Profile()

    latest: Dict[str, Dict[str, float]] = {}
    for scenario in selected:
        if not quiet:
            print(f"perfbench: {scenario.name} "
                  f"({scenario.mix}, {scenario.cores} cores, "
                  f"{scenario.instructions_per_core} instr/core, "
                  f"median of {repeats})... ", end="", flush=True)
        latest[scenario.name] = run_scenario(scenario, repeats=repeats,
                                             fast_forward=fast_forward,
                                             approx=approx,
                                             profiler=profiler)
        if not quiet:
            print(f"{latest[scenario.name]['events_per_sec']:.0f} events/sec")

    if profiler is not None:
        import pstats
        if profile_out:
            profiler.dump_stats(profile_out)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"perfbench: top {profile_top} hot spots by cumulative time"
              + (f" (raw profile: {profile_out})" if profile_out else ""))
        stats.print_stats(profile_top)

    baseline = previous.get("baseline") or {}
    baseline_machine = previous.get("baseline_machine")
    no_baseline_yet = not baseline
    if update_baseline or not baseline:
        baseline = {**baseline, **latest}
        baseline_machine = machine_fingerprint()

    # Frozen history: the matched-window measurement taken when the
    # hot-path rewrite landed (pre_pr = old code, post_rewrite = new
    # code, interleaved on one host). Preserved verbatim across runs;
    # 'latest' is the volatile counterpart.
    pre_pr = previous.get("pre_pr") or {}
    post_rewrite = previous.get("post_rewrite") or {}
    speedup = {
        name: latest[name]["events_per_sec"] / pre_pr[name]["events_per_sec"]
        for name in latest if name in pre_pr
        and pre_pr[name].get("events_per_sec")
    }

    record: Dict[str, object] = {
        "schema": 1,
        "description": "simulator throughput benchmark (see "
                       "src/repro/sim/perfbench.py); 'pre_pr' and "
                       "'post_rewrite' pin an interleaved same-boot A/B "
                       "of the busy-period absorption PR (old code in a "
                       "HEAD worktree vs new code, alternating runs, "
                       "median of 3); baselines re-seeded when that PR "
                       "landed (events = processed + fast-forwarded + "
                       "busy-absorbed + steady-skipped, measured with "
                       "the steady-state surrogate on)",
        "git_sha": git_sha(),
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine_fingerprint(),
        "repeats": repeats,
        "pre_pr": pre_pr,
        "post_rewrite": post_rewrite,
        "baseline": baseline,
        "baseline_machine": baseline_machine,
        "latest": latest,
        "speedup_vs_pre_pr": speedup,
    }
    path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    failures = _check_gate(latest, baseline, baseline_machine, max_regression)
    if not quiet:
        if no_baseline_yet:
            print(f"perfbench: no baseline yet in {path} — seeded it from "
                  f"this run; regression gate skipped")
        elif update_baseline:
            print("perfbench: baseline re-seeded from this run; "
                  "regression gate skipped")
        else:
            for line in _gate_report(latest, previous.get("baseline") or {},
                                     previous.get("baseline_machine"),
                                     max_regression):
                print(line)
        for name, ratio in sorted(speedup.items()):
            print(f"perfbench: {name} speedup vs pre-PR baseline: {ratio:.2f}x")
        print(f"perfbench: wrote {path}")
    if failures:
        if gate:
            raise PerfRegressionError("; ".join(failures))
        if not quiet:
            for failure in failures:
                print(f"perfbench: (not gated) {failure}")
    return record
