"""Experiment runner: builds workloads, runs policies, compares results.

This is the orchestration layer every benchmark and example uses. It
caches the generated trace and the all-on baseline run for each mix so
that several policies can be compared against identical work, and it
wires the MemScale policy's energy model to the rest-of-system power
calibrated from that baseline (Section 4.1's 40% DIMM-share assumption).

Two optional collaborators extend the in-memory caches:

* an :class:`~repro.sim.cache.ExperimentCache` persists traces and
  baseline runs on disk, keyed by content, so they survive the process
  and are shared between the parallel runner's workers;
* a :class:`~repro.sim.telemetry.TelemetrySink` passed to the run
  methods streams one JSONL record per epoch of the policy run.

For fan-out across (mix x policy) combinations, use
:func:`repro.sim.parallel.run_sweep`, which drives this class from a
process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.config import SystemConfig, scaled_config
from repro.core.baselines import (
    BaselineGovernor,
    DecoupledDimmGovernor,
    StaticFrequencyGovernor,
)
from repro.core.energy_model import EnergyModel, rest_of_system_power_w
from repro.core.governor import Governor, MemScaleGovernor
from repro.core.policy import MemScalePolicy, PolicyObjective
from repro.cpu.trace import WorkloadTrace
from repro.cpu.workloads import TraceGenerator
from repro.memsim.states import PowerdownMode
from repro.sim.cache import ExperimentCache
from repro.sim.results import PolicyComparison, RunResult, compare_to_baseline
from repro.sim.system import SystemSimulator
from repro.sim.telemetry import TelemetrySink

#: Mix names with this prefix refer to *imported* external traces in
#: the attached experiment cache (``repro trace import --name foo``
#: then ``--mix trace:foo``) rather than synthetic generator specs.
IMPORTED_TRACE_PREFIX = "trace:"

#: Names accepted by :meth:`ExperimentRunner.run_named_policy`, mirroring
#: the alternatives of Section 4.2.3.
POLICY_NAMES = (
    "Baseline", "Fast-PD", "Slow-PD", "Static", "Decoupled",
    "MemScale", "MemScale(MemEnergy)", "MemScale+Fast-PD",
)

#: Every registered governor:
#: (name, powerdown mode, one-line description, config knobs, doc link).
#: The first eight are the sweep-able :data:`POLICY_NAMES`; the rest are
#: reachable through their own entry points (``repro cap``,
#: ``repro multidomain``, the extensions API). ``repro governors``
#: prints this table; the knobs column names the constructor/config
#: parameters that shape each governor's decisions.
GOVERNOR_INFO = (
    ("Baseline", "none",
     "All ranks on at maximum frequency; the reference every run is "
     "normalized against.",
     "(none)", "docs/governors.md#baselines"),
    ("Fast-PD", "fast-exit",
     "Baseline plus fast-exit precharge powerdown on idle ranks.",
     "powerdown_mode", "docs/governors.md#baselines"),
    ("Slow-PD", "slow-exit",
     "Baseline plus slow-exit (self-refresh-like) powerdown.",
     "powerdown_mode", "docs/governors.md#baselines"),
    ("Static", "none",
     "Boot-time static low bus frequency; never adapts at runtime.",
     "bus_mhz", "docs/governors.md#baselines"),
    ("Decoupled", "none",
     "Decoupled DIMMs: full-speed channel with slow DRAM devices.",
     "device_mhz", "docs/governors.md#baselines"),
    ("MemScale", "none",
     "The paper's policy: per-epoch SER-minimal frequency under the "
     "CPI slowdown bound.",
     "policy.cpi_bound, policy.epoch_us, policy.profile_fraction",
     "docs/governors.md#memscale"),
    ("MemScale(MemEnergy)", "none",
     "MemScale variant minimizing memory energy only (Section 4.2.3).",
     "objective=MEMORY_ENERGY", "docs/governors.md#memscale"),
    ("MemScale+Fast-PD", "fast-exit",
     "MemScale combined with fast-exit powerdown between requests.",
     "use_powerdown=True", "docs/governors.md#memscale"),
    ("MemScale/channel", "none",
     "MemScale with per-channel down-steps (Section 6 extension; "
     "repro.core.extensions API).",
     "policy.cpi_bound, per-channel ladder", "docs/governors.md#memscale"),
    ("Cap", "none",
     "Budget-enforcing max-min-fair governor over (MC x per-channel) "
     "frequencies (run via `repro cap`).",
     "budget_w | budget_fraction | schedule, tolerance_frac",
     "docs/power-capping.md"),
    ("MultiDomain", "none",
     "Coordinated CPU+memory DVFS splitting one global budget between "
     "domains (run via `repro multidomain`).",
     "budget_w | budget_fraction, perf_bound, CoreDvfsConfig",
     "docs/multidomain.md"),
    ("MemScale+Placement", "none",
     "MemScale plus rank-aware page placement: hot-page migration onto "
     "few rank groups and self-refresh parking of cold ranks (run via "
     "`repro placement`).",
     "config.placement (page_lines, hot_group_fraction, "
     "migrations_per_epoch, sr_idle_epochs)",
     "docs/placement.md"),
)


def governor_listing() -> str:
    """Multi-line ``name (powerdown): description`` listing for errors
    and the ``repro governors`` subcommand."""
    width = max(len(name) for name, *_ in GOVERNOR_INFO)
    lines = [f"  {name:<{width}}  [{mode}]  {desc}"
             for name, mode, desc, *_ in GOVERNOR_INFO]
    lines.append("  (see docs/governors.md for the Governor protocol "
                 "and per-governor knobs)")
    return "\n".join(lines)


@dataclass(frozen=True)
class RunnerSettings:
    """Scale knobs for a batch of experiments."""

    cores: int = 16
    instructions_per_core: int = 60_000
    seed: int = 2011


class ExperimentRunner:
    """Runs and compares energy-management policies on Table 1 mixes."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 settings: Optional[RunnerSettings] = None,
                 cache: Optional[ExperimentCache] = None):
        self.config = config if config is not None else scaled_config()
        self.config.validate()
        self.settings = settings if settings is not None else RunnerSettings()
        self.cache = cache
        self._traces: Dict[str, WorkloadTrace] = {}
        self._baselines: Dict[str, RunResult] = {}
        self._generator = TraceGenerator(seed=self.settings.seed)

    # -- workload / baseline caches ------------------------------------------

    def trace(self, mix: str) -> WorkloadTrace:
        """The (cached) deterministic trace of ``mix``.

        Consults the on-disk cache first when one is attached; a miss
        regenerates the trace and stores it for future processes.

        A ``trace:<name>`` mix resolves to the *imported* trace stored
        under ``<name>`` in the attached cache (``repro trace import``)
        instead of the synthetic generator; imported traces replay
        verbatim, so the runner's ``instructions_per_core`` knob does
        not apply and ``cores`` must match the import.
        """
        if mix not in self._traces:
            if mix.startswith(IMPORTED_TRACE_PREFIX):
                self._traces[mix] = self._imported_trace(mix)
                return self._traces[mix]
            trace = None
            key = None
            if self.cache is not None:
                key = self.cache.trace_key(
                    mix, self.settings.cores,
                    self.settings.instructions_per_core, self.settings.seed)
                trace = self.cache.load_trace(key)
            if trace is None:
                trace = self._generator.generate_mix(
                    mix, cores=self.settings.cores,
                    instructions_per_core=self.settings.instructions_per_core)
                if self.cache is not None:
                    self.cache.store_trace(key, trace)
            self._traces[mix] = trace
        return self._traces[mix]

    def _imported_trace(self, mix: str) -> WorkloadTrace:
        """Resolve a ``trace:<name>`` mix from the imported-trace store."""
        name = mix[len(IMPORTED_TRACE_PREFIX):]
        if self.cache is None:
            raise ValueError(
                f"mix {mix!r} names an imported trace, which requires an "
                "experiment cache; attach one (the CLI's --cache-dir, on "
                "by default) or pass cache= to ExperimentRunner")
        trace = self.cache.load_imported_trace(name)
        if trace is None:
            known = self.cache.imported_names()
            raise ValueError(
                f"no imported trace named {name!r} in cache "
                f"{self.cache.root} (have: {known or 'none'}); import it "
                f"first with `repro trace import FILE --name {name}`")
        if len(trace.cores) != self.settings.cores:
            raise ValueError(
                f"imported trace {name!r} was ingested for "
                f"{len(trace.cores)} cores but the runner is configured "
                f"for {self.settings.cores}; pass --cores "
                f"{len(trace.cores)} (or re-import with --cores "
                f"{self.settings.cores})")
        return trace

    def run_governor(self, mix: str, governor: Governor,
                     telemetry: Optional[TelemetrySink] = None) -> RunResult:
        """Simulate ``mix`` under ``governor`` (no caching)."""
        sim = SystemSimulator(self.config, self.trace(mix), governor,
                              telemetry=telemetry)
        return sim.run()

    def baseline(self, mix: str) -> RunResult:
        """The (cached) all-on max-frequency reference run for ``mix``.

        With an on-disk cache attached, the baseline is loaded from
        disk when a content-identical run (same config, settings, and
        mix) was stored by any earlier process or parallel worker.
        """
        if mix not in self._baselines:
            result = None
            key = None
            if self.cache is not None:
                key_mix = mix
                if mix.startswith(IMPORTED_TRACE_PREFIX):
                    # Bind the baseline to the imported trace *content*:
                    # re-importing a different file under the same name
                    # must never resurrect the old baseline.
                    name = mix[len(IMPORTED_TRACE_PREFIX):]
                    key_mix = f"{mix}@{self.cache.imported_trace_digest(name)}"
                key = self.cache.baseline_key(
                    self.config, key_mix, self.settings.cores,
                    self.settings.instructions_per_core, self.settings.seed)
                result = self.cache.load_run(key)
            if result is None:
                result = self.run_governor(mix, BaselineGovernor())
                if self.cache is not None:
                    self.cache.store_run(key, result)
            self._baselines[mix] = result
        return self._baselines[mix]

    def warm(self, mix: str) -> None:
        """Populate the trace and baseline caches for ``mix``."""
        self.baseline(mix)

    def rest_power_w(self, mix: str) -> float:
        """Fixed rest-of-system power calibrated from the mix's baseline."""
        return rest_of_system_power_w(
            self.baseline(mix).avg_dimm_power_w,
            self.config.power.memory_power_fraction)

    # -- policy construction ------------------------------------------------------

    def make_memscale_governor(self, mix: str,
                               objective: PolicyObjective =
                               PolicyObjective.SYSTEM_ENERGY,
                               use_powerdown: bool = False) -> MemScaleGovernor:
        """A MemScale governor calibrated against the mix's baseline."""
        energy_model = EnergyModel(self.config, self.rest_power_w(mix))
        pd_exit = (self.config.timings.t_xp_ns if use_powerdown else None)
        policy = MemScalePolicy(self.config, energy_model,
                                n_cores=self.settings.cores,
                                objective=objective, pd_exit_ns=pd_exit)
        return MemScaleGovernor(policy, use_powerdown=use_powerdown)

    def make_placement_governor(self, mix: str,
                                use_powerdown: bool = False
                                ) -> "PlacementGovernor":
        """MemScale wrapped with rank-aware page placement/self-refresh.

        Requires a placement-enabled config (``config.placement.enabled``)
        so the controller builds a page table; :meth:`run_governor` will
        raise from the governor's ``setup`` otherwise.
        """
        from repro.placement import PlacementGovernor
        inner = self.make_memscale_governor(mix, use_powerdown=use_powerdown)
        return PlacementGovernor(inner)

    def make_named_governor(self, mix: str, name: str) -> Governor:
        if name == "Baseline":
            return BaselineGovernor()
        if name == "Fast-PD":
            return BaselineGovernor(PowerdownMode.FAST_EXIT)
        if name == "Slow-PD":
            return BaselineGovernor(PowerdownMode.SLOW_EXIT)
        if name == "Static":
            return StaticFrequencyGovernor()
        if name == "Decoupled":
            return DecoupledDimmGovernor()
        if name == "MemScale":
            return self.make_memscale_governor(mix)
        if name == "MemScale(MemEnergy)":
            return self.make_memscale_governor(
                mix, objective=PolicyObjective.MEMORY_ENERGY)
        if name == "MemScale+Fast-PD":
            return self.make_memscale_governor(mix, use_powerdown=True)
        raise ValueError(
            f"unknown policy {name!r}; registered governors are:\n"
            f"{governor_listing()}")

    def make_cap_governor(self, mix: str,
                          budget_w: Optional[float] = None,
                          budget_fraction: Optional[float] = None,
                          schedule: Optional["BudgetSchedule"] = None,
                          tolerance_frac: float = 0.01) -> "CapGovernor":
        """A power-capping governor calibrated against the mix's baseline.

        The budget can be given as absolute ``budget_w`` watts, as a
        ``budget_fraction`` of the mix's baseline average memory power
        (how the cap sweep expresses budgets), or as a full
        :class:`~repro.cap.budget.BudgetSchedule` for time-varying caps.
        """
        from repro.cap import (BudgetSchedule, CapAllocator, CapGovernor,
                               PowerBudget)
        given = [budget_w is not None, budget_fraction is not None,
                 schedule is not None]
        if sum(given) != 1:
            raise ValueError("give exactly one of budget_w, "
                             "budget_fraction, or schedule")
        if budget_fraction is not None:
            if budget_fraction <= 0:
                raise ValueError("budget_fraction must be positive")
            budget_w = budget_fraction * self.baseline(mix).avg_memory_power_w
        if schedule is not None:
            budget = PowerBudget(schedule=schedule,
                                 tolerance_frac=tolerance_frac)
        else:
            budget = PowerBudget(watts=budget_w,
                                 tolerance_frac=tolerance_frac)
        energy_model = EnergyModel(self.config, self.rest_power_w(mix))
        allocator = CapAllocator(self.config, energy_model,
                                 n_cores=self.settings.cores)
        return CapGovernor(allocator, budget)

    def baseline_core_power_w(self, mix: str) -> float:
        """Modeled core-cluster power of the mix's baseline run at the
        nominal core operating point — the core-domain reference every
        multi-domain budget and energy comparison is expressed against."""
        from repro.core.cpu_power import CorePowerModel
        model = CorePowerModel(self.config)
        return model.run_power_w(self.baseline(mix), model.nominal)

    def multidomain_reference_power_w(self, mix: str) -> float:
        """Reference power for multi-domain budget fractions: baseline
        average memory power plus modeled nominal core power. A fraction
        of this is the global budget, the analogue of the cap sweep's
        fraction of baseline memory power."""
        return (self.baseline(mix).avg_memory_power_w
                + self.baseline_core_power_w(mix))

    def platform_other_power_w(self, mix: str) -> float:
        """Rest-of-system power *excluding* the modeled core cluster.

        The calibrated rest-of-system power already contains the CPU
        package; subtracting the modeled nominal core power leaves the
        ``other`` component (fans, disks, board) so multi-domain system
        energy can charge core energy explicitly without double
        counting. Clamped at zero in case the core model exceeds the
        calibration.
        """
        return max(0.0,
                   self.rest_power_w(mix) - self.baseline_core_power_w(mix))

    def make_multidomain_governor(self, mix: str,
                                  budget_w: Optional[float] = None,
                                  budget_fraction: Optional[float] = None,
                                  tolerance_frac: float = 0.01,
                                  perf_bound: Optional[float] = None
                                  ) -> "MultiDomainGovernor":
        """A coordinated CPU+memory governor for a *global* power budget.

        The budget covers both domains: absolute ``budget_w`` watts, or
        ``budget_fraction`` of :meth:`multidomain_reference_power_w`
        (baseline memory power + nominal core power — how the
        multi-domain sweep expresses budgets).
        """
        from repro.cap import (MultiDomainAllocator, MultiDomainGovernor,
                               PowerBudget)
        given = [budget_w is not None, budget_fraction is not None]
        if sum(given) != 1:
            raise ValueError("give exactly one of budget_w or "
                             "budget_fraction")
        if budget_fraction is not None:
            if budget_fraction <= 0:
                raise ValueError("budget_fraction must be positive")
            budget_w = budget_fraction * self.multidomain_reference_power_w(mix)
        budget = PowerBudget(watts=budget_w, tolerance_frac=tolerance_frac)
        energy_model = EnergyModel(self.config, self.rest_power_w(mix))
        allocator = MultiDomainAllocator(self.config, energy_model,
                                         n_cores=self.settings.cores,
                                         perf_bound=perf_bound)
        return MultiDomainGovernor(allocator, budget)

    # -- comparisons --------------------------------------------------------------

    def compare(self, mix: str, governor: Governor,
                telemetry: Optional[TelemetrySink] = None
                ) -> PolicyComparison:
        """Run ``governor`` on ``mix`` and normalize to the baseline."""
        _, comparison = self.run_and_compare(mix, governor, telemetry)
        return comparison

    def compare_named(self, mix: str, name: str,
                      telemetry: Optional[TelemetrySink] = None
                      ) -> PolicyComparison:
        return self.compare(mix, self.make_named_governor(mix, name),
                            telemetry=telemetry)

    def run_and_compare(self, mix: str, governor: Governor,
                        telemetry: Optional[TelemetrySink] = None
                        ) -> Tuple[RunResult, PolicyComparison]:
        """Run ``governor`` on ``mix``; return the run and its comparison."""
        base = self.baseline(mix)
        result = self.run_governor(mix, governor, telemetry=telemetry)
        comparison = compare_to_baseline(
            base, result,
            cycle_ns=self.config.cpu.cycle_ns,
            memory_power_fraction=self.config.power.memory_power_fraction)
        return result, comparison

    def run_named_policy(self, mix: str, name: str,
                         telemetry: Optional[TelemetrySink] = None
                         ) -> Tuple[RunResult, PolicyComparison]:
        """Run the policy called ``name`` (one of :data:`POLICY_NAMES`)
        on ``mix`` and compare it against the all-on baseline.

        ``"Baseline"`` compares the reference run against itself (all
        savings zero), which lets sweeps include it uniformly.
        """
        if name == "Baseline":
            base = self.baseline(mix)
            comparison = compare_to_baseline(
                base, base,
                cycle_ns=self.config.cpu.cycle_ns,
                memory_power_fraction=self.config.power.memory_power_fraction)
            return base, comparison
        return self.run_and_compare(mix, self.make_named_governor(mix, name),
                                    telemetry=telemetry)

    def run_memscale(self, mix: str,
                     telemetry: Optional[TelemetrySink] = None, **kwargs
                     ) -> Tuple[RunResult, PolicyComparison]:
        """Convenience: MemScale run plus its baseline comparison."""
        governor = self.make_memscale_governor(mix, **kwargs)
        return self.run_and_compare(mix, governor, telemetry=telemetry)
