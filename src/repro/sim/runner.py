"""Experiment runner: builds workloads, runs policies, compares results.

This is the orchestration layer every benchmark and example uses. It
caches the generated trace and the all-on baseline run for each mix so
that several policies can be compared against identical work, and it
wires the MemScale policy's energy model to the rest-of-system power
calibrated from that baseline (Section 4.1's 40% DIMM-share assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.config import SystemConfig, scaled_config
from repro.core.baselines import (
    BaselineGovernor,
    DecoupledDimmGovernor,
    StaticFrequencyGovernor,
)
from repro.core.energy_model import EnergyModel, rest_of_system_power_w
from repro.core.governor import Governor, MemScaleGovernor
from repro.core.policy import MemScalePolicy, PolicyObjective
from repro.cpu.trace import WorkloadTrace
from repro.cpu.workloads import TraceGenerator
from repro.memsim.states import PowerdownMode
from repro.sim.results import PolicyComparison, RunResult, compare_to_baseline
from repro.sim.system import SystemSimulator

#: Names accepted by :meth:`ExperimentRunner.run_named_policy`, mirroring
#: the alternatives of Section 4.2.3.
POLICY_NAMES = (
    "Baseline", "Fast-PD", "Slow-PD", "Static", "Decoupled",
    "MemScale", "MemScale(MemEnergy)", "MemScale+Fast-PD",
)


@dataclass(frozen=True)
class RunnerSettings:
    """Scale knobs for a batch of experiments."""

    cores: int = 16
    instructions_per_core: int = 60_000
    seed: int = 2011


class ExperimentRunner:
    """Runs and compares energy-management policies on Table 1 mixes."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 settings: Optional[RunnerSettings] = None):
        self.config = config if config is not None else scaled_config()
        self.config.validate()
        self.settings = settings if settings is not None else RunnerSettings()
        self._traces: Dict[str, WorkloadTrace] = {}
        self._baselines: Dict[str, RunResult] = {}
        self._generator = TraceGenerator(seed=self.settings.seed)

    # -- workload / baseline caches ------------------------------------------

    def trace(self, mix: str) -> WorkloadTrace:
        """The (cached) deterministic trace of ``mix``."""
        if mix not in self._traces:
            self._traces[mix] = self._generator.generate_mix(
                mix, cores=self.settings.cores,
                instructions_per_core=self.settings.instructions_per_core)
        return self._traces[mix]

    def run_governor(self, mix: str, governor: Governor) -> RunResult:
        """Simulate ``mix`` under ``governor`` (no caching)."""
        sim = SystemSimulator(self.config, self.trace(mix), governor)
        return sim.run()

    def baseline(self, mix: str) -> RunResult:
        """The (cached) all-on max-frequency reference run for ``mix``."""
        if mix not in self._baselines:
            self._baselines[mix] = self.run_governor(mix, BaselineGovernor())
        return self._baselines[mix]

    def rest_power_w(self, mix: str) -> float:
        """Fixed rest-of-system power calibrated from the mix's baseline."""
        return rest_of_system_power_w(
            self.baseline(mix).avg_dimm_power_w,
            self.config.power.memory_power_fraction)

    # -- policy construction ------------------------------------------------------

    def make_memscale_governor(self, mix: str,
                               objective: PolicyObjective =
                               PolicyObjective.SYSTEM_ENERGY,
                               use_powerdown: bool = False) -> MemScaleGovernor:
        """A MemScale governor calibrated against the mix's baseline."""
        energy_model = EnergyModel(self.config, self.rest_power_w(mix))
        pd_exit = (self.config.timings.t_xp_ns if use_powerdown else None)
        policy = MemScalePolicy(self.config, energy_model,
                                n_cores=self.settings.cores,
                                objective=objective, pd_exit_ns=pd_exit)
        return MemScaleGovernor(policy, use_powerdown=use_powerdown)

    def make_named_governor(self, mix: str, name: str) -> Governor:
        if name == "Baseline":
            return BaselineGovernor()
        if name == "Fast-PD":
            return BaselineGovernor(PowerdownMode.FAST_EXIT)
        if name == "Slow-PD":
            return BaselineGovernor(PowerdownMode.SLOW_EXIT)
        if name == "Static":
            return StaticFrequencyGovernor()
        if name == "Decoupled":
            return DecoupledDimmGovernor()
        if name == "MemScale":
            return self.make_memscale_governor(mix)
        if name == "MemScale(MemEnergy)":
            return self.make_memscale_governor(
                mix, objective=PolicyObjective.MEMORY_ENERGY)
        if name == "MemScale+Fast-PD":
            return self.make_memscale_governor(mix, use_powerdown=True)
        raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")

    # -- comparisons --------------------------------------------------------------

    def compare(self, mix: str, governor: Governor) -> PolicyComparison:
        """Run ``governor`` on ``mix`` and normalize to the baseline."""
        base = self.baseline(mix)
        result = self.run_governor(mix, governor)
        return compare_to_baseline(
            base, result,
            cycle_ns=self.config.cpu.cycle_ns,
            memory_power_fraction=self.config.power.memory_power_fraction)

    def compare_named(self, mix: str, name: str) -> PolicyComparison:
        return self.compare(mix, self.make_named_governor(mix, name))

    def run_memscale(self, mix: str, **kwargs
                     ) -> Tuple[RunResult, PolicyComparison]:
        """Convenience: MemScale run plus its baseline comparison."""
        governor = self.make_memscale_governor(mix, **kwargs)
        base = self.baseline(mix)
        result = self.run_governor(mix, governor)
        comparison = compare_to_baseline(
            base, result,
            cycle_ns=self.config.cpu.cycle_ns,
            memory_power_fraction=self.config.power.memory_power_fraction)
        return result, comparison
