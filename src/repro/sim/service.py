"""Crash-safe sweep service: persistent job queue + resumable store.

The one-shot :func:`~repro.sim.parallel.run_sweep` executes a (mix x
point) cross product and returns the outcomes in memory — interrupt it
and everything is gone. This module is the durable layer the ROADMAP's
fleet-scale direction asks for: jobs live in an on-disk queue, workers
write every settled outcome into a sharded content-addressed store
(:mod:`repro.sim.store`), and a crashed or interrupted sweep resumes by
re-executing only the jobs without a stored result.

Layout, all under one service directory (``--dir`` on the CLI)::

    <root>/queue.jsonl     append-only ledger (meta, enqueue, done)
    <root>/store/ab/<key>.json   one record per settled job
    <root>/cache/          experiment cache (default; override-able)

The ledger is the queue: ``enqueue`` lines define the job set (in
order), the store defines completion. A ``done`` line is appended
*after* the store record lands, so the ledger is advisory — on resume,
pending = enqueued jobs whose store record is missing **or failed**
(failed jobs get another chance; if they fail again the fresh failure
record simply replaces the old one). A truncated trailing ledger line —
the signature a SIGKILL leaves — is skipped and counted, never fatal.

Job identity is content-addressed: a job's key hashes its spec
(kind, mix, point) together with the config and settings fingerprints,
so sweeps *compose* — running a superset sweep over an existing service
directory executes only the new jobs, and ``repro query`` answers from
everything accumulated so far.

Execution goes through :func:`~repro.sim.parallel.execute_jobs`, so the
service inherits its per-job fault isolation (a raising job or a killed
worker becomes a :class:`~repro.sim.parallel.JobFailure` record, the
rest of the sweep completes) and its byte-identical serial/parallel
determinism. Outcomes are persisted incrementally as each job settles:
a crash loses at most the jobs that were in flight.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

try:  # POSIX-only; the lockfile degrades to a no-op elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.config import (ConfigError, SystemConfig, config_from_dict,
                          config_to_dict, scaled_config)
from repro.sim.cache import config_fingerprint
from repro.sim.parallel import (CapJob, JobFailure, MultiDomainJob,
                                PlacementJob, ScenarioJob, SweepJob,
                                _run_cap_job, _run_job,
                                _run_multidomain_job, _run_placement_job,
                                _run_scenario_job, default_jobs,
                                execute_jobs, job_label, warm_mixes)
from repro.sim.runner import RunnerSettings
from repro.sim.store import (ResultStore, failure_record, ok_record,
                             outcome_from_dict)

PathLike = Union[str, Path]

#: Bumped whenever the ledger or key layout changes incompatibly.
SERVICE_FORMAT = 1

#: Ledger file name inside the service directory.
LEDGER_NAME = "queue.jsonl"

#: Result-store subdirectory inside the service directory.
STORE_NAME = "store"

#: Advisory lock file inside the service directory.
LOCK_NAME = "lock"


class ServiceError(RuntimeError):
    """A service directory is unusable or was used inconsistently."""


class InjectedFailure(RuntimeError):
    """Raised by the worker for jobs named in ``fail_labels``.

    The failure-injection hook the smoke leg and the crash-resume tests
    use: deterministic, picklable (plain label strings cross the pool,
    not closures), and — crucially — *absent on resume*, so a resumed
    sweep heals the injected failure like a real transient fault.
    """


def content_digest(payload: Dict[str, object]) -> str:
    """Stable sha256 of a JSON-serializable payload (canonical form)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def settings_fingerprint(settings: RunnerSettings) -> Dict[str, object]:
    """JSON-serializable dict capturing every runner-settings field."""
    return dataclasses.asdict(settings)


@dataclass(frozen=True)
class JobSpec:
    """One queued unit of work, as stored in the ledger.

    ``kind`` selects the sweep flavour; the point fields mirror the
    corresponding job dataclass (``policy`` for policy sweeps,
    ``budget_fraction`` — None meaning the throttle reference — for cap
    sweeps, ``budget_fraction`` + ``coordinated`` for multi-domain,
    ``coordinated`` carrying the placed flag for placement sweeps — a
    boolean leg selector either way, so the key schema is unchanged;
    ``policy`` + ``device`` for scenario sweeps, which additionally pin
    a device technology table).
    """

    kind: str
    mix: str
    policy: Optional[str] = None
    budget_fraction: Optional[float] = None
    coordinated: Optional[bool] = None
    device: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("policy", "cap", "multidomain", "placement",
                             "scenario"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "policy" and not self.policy:
            raise ValueError("policy jobs need a policy name")
        if self.kind == "multidomain" and (self.budget_fraction is None
                                           or self.coordinated is None):
            raise ValueError("multidomain jobs need budget_fraction "
                             "and coordinated")
        if self.kind == "placement" and self.coordinated is None:
            raise ValueError("placement jobs need the placed flag "
                             "(carried in the coordinated field)")
        if self.kind == "scenario" and (not self.policy or not self.device):
            raise ValueError("scenario jobs need a policy name and a "
                             "device table name")

    def to_job(self) -> object:
        """The runnable job dataclass this spec describes."""
        if self.kind == "policy":
            return SweepJob(self.mix, self.policy)
        if self.kind == "cap":
            return CapJob(self.mix, self.budget_fraction)
        if self.kind == "placement":
            return PlacementJob(self.mix, bool(self.coordinated))
        if self.kind == "scenario":
            return ScenarioJob(self.mix, self.policy, self.device)
        return MultiDomainJob(self.mix, self.budget_fraction,
                              self.coordinated)

    @property
    def label(self) -> str:
        """Display label (``mix/<point>``), the injection handle too."""
        return job_label(self.to_job())

    def key(self, config_hash: str, settings_hash: str) -> str:
        """Content key: spec + config/settings fingerprints."""
        payload = {
            "format": SERVICE_FORMAT, "kind": self.kind, "mix": self.mix,
            "policy": self.policy, "budget_fraction": self.budget_fraction,
            "coordinated": self.coordinated, "config": config_hash,
            "settings": settings_hash,
        }
        # Only scenario jobs carry a device; omitting the field otherwise
        # keeps every pre-existing service directory's keys stable.
        if self.device is not None:
            payload["device"] = self.device
        return content_digest(payload)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "mix": self.mix, "policy": self.policy,
                "budget_fraction": self.budget_fraction,
                "coordinated": self.coordinated, "device": self.device}

    def job_dict(self) -> Dict[str, object]:
        """The ``job`` section of this spec's store records."""
        payload = self.to_dict()
        payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        return cls(kind=data["kind"], mix=data["mix"],
                   policy=data.get("policy"),
                   budget_fraction=data.get("budget_fraction"),
                   coordinated=data.get("coordinated"),
                   device=data.get("device"))


# -- spec builders ----------------------------------------------------------

def policy_specs(mixes: Sequence[str],
                 policies: Sequence[str]) -> List[JobSpec]:
    """Specs for a (mix x policy) sweep, :func:`run_sweep` order."""
    return [JobSpec("policy", mix, policy=policy)
            for mix in mixes for policy in policies]


def cap_specs(mixes: Sequence[str], budget_fractions: Sequence[float],
              include_throttle: bool = True) -> List[JobSpec]:
    """Specs for a cap sweep, :func:`run_cap_sweep` order."""
    points: List[Optional[float]] = [float(f) for f in budget_fractions]
    if include_throttle:
        points.append(None)
    return [JobSpec("cap", mix, budget_fraction=frac)
            for mix in mixes for frac in points]


def multidomain_specs(mixes: Sequence[str],
                      budget_fractions: Sequence[float],
                      include_memory_only: bool = True) -> List[JobSpec]:
    """Specs for a multi-domain sweep, :func:`run_multidomain_sweep`
    order."""
    legs = [True, False] if include_memory_only else [True]
    return [JobSpec("multidomain", mix, budget_fraction=float(frac),
                    coordinated=coordinated)
            for mix in mixes for frac in budget_fractions
            for coordinated in legs]


def placement_specs(mixes: Sequence[str],
                    include_reference: bool = True) -> List[JobSpec]:
    """Specs for a placement sweep, :func:`run_placement_sweep` order
    (the ``coordinated`` field carries the placed flag)."""
    legs = [True, False] if include_reference else [True]
    return [JobSpec("placement", mix, coordinated=placed)
            for mix in mixes for placed in legs]


def scenario_specs(mixes: Sequence[str], policies: Sequence[str],
                   devices: Sequence[str]) -> List[JobSpec]:
    """Specs for a (mix x policy x device) scenario sweep,
    :func:`run_scenario_sweep` order."""
    return [JobSpec("scenario", mix, policy=policy, device=device)
            for mix in mixes for policy in policies for device in devices]


# -- ledger ----------------------------------------------------------------

def _append_jsonl(path: Path, record: Dict[str, object]) -> None:
    """Append one ledger line durably (flush + fsync: the queue must
    survive the power cord, not just the process)."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def read_ledger(path: Path) -> Tuple[List[Dict[str, object]], int]:
    """Parse a JSONL ledger; returns ``(records, skipped)``.

    A malformed *final* line — what a crash mid-append leaves behind —
    is skipped and counted. A malformed line anywhere else means real
    corruption and raises :class:`ServiceError`.
    """
    if not path.exists():
        return [], 0
    lines = [(i, line) for i, line in
             enumerate(path.read_text(encoding="utf-8").splitlines())
             if line.strip()]
    records: List[Dict[str, object]] = []
    skipped = 0
    for pos, (i, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError:
            if pos == len(lines) - 1:
                skipped += 1
            else:
                raise ServiceError(
                    f"{path}: corrupt ledger line {i + 1} "
                    "(not the final line; refusing to guess)")
    return records, skipped


# -- service-directory lock -------------------------------------------------

class ServiceLock:
    """Advisory exclusive lock on a service directory.

    Two service processes executing over the same ``--dir`` would race
    the ledger and double-run pending jobs, so :meth:`SweepService.run`
    and :meth:`SweepService.resume` hold this lock for their duration.
    It is an OS-level ``flock`` on ``<root>/lock``: contention fails
    fast with :class:`ServiceError` instead of corrupting anything, and
    the kernel releases the lock when the holder exits — even via
    SIGKILL — so a crashed sweep never leaves a stale lock behind.
    On platforms without ``fcntl`` the lock degrades to a no-op.
    """

    def __init__(self, root: PathLike) -> None:
        self.path = Path(root) / LOCK_NAME
        self._fh = None

    def acquire(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            raise ServiceError(
                f"{self.path.parent}: another service process holds the "
                "lock on this directory; wait for it to finish or use a "
                "different --dir")
        self._fh = fh

    def release(self) -> None:
        if self._fh is None:
            return
        fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "ServiceLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


# -- worker-side entry point (module level: must be picklable) -------------

#: Dispatch from spec kind to the parallel module's worker function.
_JOB_FNS = {"policy": _run_job, "cap": _run_cap_job,
            "multidomain": _run_multidomain_job,
            "placement": _run_placement_job,
            "scenario": _run_scenario_job}


def _service_job(args: Tuple) -> object:
    """Run one queued job; raise :class:`InjectedFailure` when its label
    is in the (picklable) injection set."""
    kind, config, settings, job, cache_dir, telemetry_dir, fail = args
    if fail and job_label(job) in fail:
        raise InjectedFailure(f"injected failure for {job_label(job)}")
    return _JOB_FNS[kind]((config, settings, job, cache_dir,
                           telemetry_dir))


# -- the service -----------------------------------------------------------

class SweepService:
    """Persistent, resumable sweep execution over one service directory.

    Construct directly for a fresh sweep (config/settings default to
    the standard scaled experiment), or :meth:`open` an existing
    directory to resume — the ledger's meta record carries everything
    needed to rebuild the exact configuration.
    """

    def __init__(self, root: PathLike,
                 config: Optional[SystemConfig] = None,
                 settings: Optional[RunnerSettings] = None,
                 cache_dir: Optional[PathLike] = "",
                 telemetry_dir: Optional[PathLike] = None,
                 jobs: Optional[int] = None,
                 retries: int = 1) -> None:
        self.root = Path(root)
        self.config = config if config is not None else scaled_config()
        self.settings = (settings if settings is not None
                         else RunnerSettings())
        # "" (the default) means "cache inside the service directory";
        # None disables caching entirely.
        if cache_dir == "":
            cache_dir = self.root / "cache"
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.telemetry_dir = (str(telemetry_dir)
                              if telemetry_dir is not None else None)
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.retries = retries
        self.config_hash = content_digest(config_fingerprint(self.config))
        self.settings_hash = content_digest(
            settings_fingerprint(self.settings))
        self.store = ResultStore(self.root / STORE_NAME)

    # -- opening an existing directory -------------------------------------

    @classmethod
    def open(cls, root: PathLike,
             jobs: Optional[int] = None,
             retries: Optional[int] = None) -> "SweepService":
        """Rebuild a service from its ledger's meta record (for
        ``repro service resume/status`` after the original process is
        long gone). ``jobs``/``retries`` override the recorded values."""
        root = Path(root)
        records, _ = read_ledger(root / LEDGER_NAME)
        meta = next((r for r in records if r.get("type") == "meta"), None)
        if meta is None:
            raise ServiceError(f"{root}: no service ledger meta record "
                               f"(is this a service directory?)")
        if meta.get("format") != SERVICE_FORMAT:
            raise ServiceError(
                f"{root}: ledger format {meta.get('format')!r} is not "
                f"{SERVICE_FORMAT}")
        try:
            config = config_from_dict(meta["config"])
        except (ConfigError, KeyError, TypeError) as exc:
            raise ServiceError(f"{root}: cannot rebuild config: {exc}")
        settings = RunnerSettings(**meta["settings"])
        return cls(root, config=config, settings=settings,
                   cache_dir=meta.get("cache_dir"),
                   telemetry_dir=meta.get("telemetry_dir"),
                   jobs=jobs if jobs is not None else meta.get("jobs"),
                   retries=(retries if retries is not None
                            else meta.get("retries", 1)))

    # -- ledger access ------------------------------------------------------

    @property
    def ledger_path(self) -> Path:
        return self.root / LEDGER_NAME

    def _ledger(self) -> Tuple[List[Dict[str, object]], int]:
        return read_ledger(self.ledger_path)

    def _ensure_meta(self) -> None:
        records, _ = self._ledger()
        meta = next((r for r in records if r.get("type") == "meta"), None)
        if meta is not None:
            if (meta.get("config_hash") != self.config_hash
                    or meta.get("settings_hash") != self.settings_hash):
                raise ServiceError(
                    f"{self.root}: service directory was created with a "
                    "different config/settings; use a fresh --dir")
            return
        self.root.mkdir(parents=True, exist_ok=True)
        _append_jsonl(self.ledger_path, {
            "type": "meta", "format": SERVICE_FORMAT,
            "config": config_to_dict(self.config),
            "settings": settings_fingerprint(self.settings),
            "config_hash": self.config_hash,
            "settings_hash": self.settings_hash,
            "cache_dir": self.cache_dir,
            "telemetry_dir": self.telemetry_dir,
            "jobs": self.jobs, "retries": self.retries,
        })

    def key_of(self, spec: JobSpec) -> str:
        return spec.key(self.config_hash, self.settings_hash)

    def enqueued(self) -> List[Tuple[str, JobSpec]]:
        """Every enqueued ``(key, spec)``, ledger order, de-duplicated."""
        out: List[Tuple[str, JobSpec]] = []
        seen = set()
        records, _ = self._ledger()
        for record in records:
            if record.get("type") != "enqueue":
                continue
            key = record.get("key")
            if key in seen:
                continue
            seen.add(key)
            out.append((key, JobSpec.from_dict(record["spec"])))
        return out

    # -- queueing -----------------------------------------------------------

    def submit(self, specs: Sequence[JobSpec]) -> List[JobSpec]:
        """Enqueue the specs not already in the ledger; returns the
        newly enqueued ones. Idempotent: submitting a sweep twice (or a
        superset) only adds what is missing."""
        self._ensure_meta()
        known = {key for key, _ in self.enqueued()}
        added = []
        for spec in specs:
            key = self.key_of(spec)
            if key in known:
                continue
            known.add(key)
            _append_jsonl(self.ledger_path, {
                "type": "enqueue", "key": key, "spec": spec.to_dict()})
            added.append(spec)
        return added

    def pending(self) -> List[Tuple[str, JobSpec]]:
        """Enqueued jobs still owed a successful outcome: no store
        record at all (never ran, or crashed mid-run) or a failed one
        (gets retried — a fresh failure record replaces the old)."""
        return [(key, spec) for key, spec in self.enqueued()
                if self.store.status(key) != "ok"]

    # -- execution ----------------------------------------------------------

    def run(self, specs: Sequence[JobSpec],
            fail_labels: Optional[Sequence[str]] = None,
            max_jobs: Optional[int] = None) -> List[object]:
        """Enqueue ``specs`` and execute everything pending.

        Returns the full outcome list (see :meth:`results`): stored
        outcomes for jobs that were already complete, fresh ones for
        jobs executed now, :class:`JobFailure` records for jobs that
        exhausted their attempts. ``fail_labels`` injects a
        deterministic failure into matching jobs (tests/smoke);
        ``max_jobs`` bounds how many pending jobs this call executes —
        the controlled-interrupt hook.

        Holds the directory's :class:`ServiceLock` for the duration: a
        second concurrent ``run``/``resume`` over the same ``--dir``
        fails fast with :class:`ServiceError`.
        """
        with ServiceLock(self.root):
            self.submit(specs)
            self._execute(self.pending(), fail_labels=fail_labels,
                          max_jobs=max_jobs)
        return self.results()

    def resume(self, max_jobs: Optional[int] = None) -> List[object]:
        """Finish an interrupted sweep: execute only the pending jobs
        (no failure injection — a resumed job gets a clean attempt).
        Takes the directory's :class:`ServiceLock` like :meth:`run`."""
        with ServiceLock(self.root):
            self._execute(self.pending(), max_jobs=max_jobs)
        return self.results()

    def _execute(self, pending: Sequence[Tuple[str, JobSpec]],
                 fail_labels: Optional[Sequence[str]] = None,
                 max_jobs: Optional[int] = None) -> None:
        if max_jobs is not None:
            pending = list(pending)[:max_jobs]
        if not pending:
            return
        if self.telemetry_dir is not None:
            Path(self.telemetry_dir).mkdir(parents=True, exist_ok=True)
        fail = frozenset(fail_labels) if fail_labels else None
        keys = [key for key, _ in pending]
        specs = [spec for _, spec in pending]
        jobs_meta = [spec.to_job() for spec in specs]
        mixes = list(dict.fromkeys(spec.mix for spec in specs))
        if self.jobs > 1:
            warm_mixes(mixes, self.config, self.settings, self.cache_dir,
                       self.jobs)
        job_args = [(spec.kind, self.config, self.settings, job,
                     self.cache_dir, self.telemetry_dir, fail)
                    for spec, job in zip(specs, jobs_meta)]

        def persist(i: int, outcome: object) -> None:
            # Store record first, ledger line second: the store is the
            # source of truth, the done line is a cheap index hint. A
            # crash between the two re-runs at most one finished job.
            if isinstance(outcome, JobFailure):
                record = failure_record(keys[i], specs[i].job_dict(),
                                        outcome, self.config_hash,
                                        self.settings_hash)
            else:
                record = ok_record(keys[i], specs[i].job_dict(), outcome,
                                   self.config_hash, self.settings_hash)
            self.store.put(record)
            _append_jsonl(self.ledger_path, {
                "type": "done", "key": keys[i],
                "status": record["status"]})

        execute_jobs(_service_job, job_args, jobs_meta, self.jobs,
                     retries=self.retries, on_outcome=persist)

    # -- results ------------------------------------------------------------

    def results(self) -> List[object]:
        """Outcome per enqueued job, enqueue order: the outcome
        dataclass for ok records, a :class:`JobFailure` for failed
        ones. Jobs still pending are omitted."""
        out: List[object] = []
        for key, spec in self.enqueued():
            record = self.store.get(key)
            if record is None:
                continue
            if record["status"] == "ok":
                out.append(outcome_from_dict(record["outcome"]))
            else:
                error = record.get("error", {})
                out.append(JobFailure(
                    job=spec.to_job(), label=spec.label,
                    error_type=error.get("error_type", "?"),
                    message=error.get("message", ""),
                    traceback=error.get("traceback", ""),
                    attempts=record.get("attempts", 1),
                    wall_s=record.get("wall_s", 0.0)))
        return out

    def status(self) -> Dict[str, object]:
        """Queue/store progress summary (for ``repro service status``)."""
        _, skipped = self._ledger()
        enqueued = self.enqueued()
        ok = failed = 0
        for key, _ in enqueued:
            state = self.store.status(key)
            if state == "ok":
                ok += 1
            elif state == "failed":
                failed += 1
        return {
            "root": str(self.root),
            "enqueued": len(enqueued),
            "ok": ok,
            "failed": failed,
            "pending": len(enqueued) - ok,
            "ledger_lines_skipped": skipped,
            "jobs": self.jobs,
            "retries": self.retries,
        }
