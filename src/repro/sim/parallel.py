"""Parallel experiment execution: fan (mix x policy) runs across processes.

The serial :class:`~repro.sim.runner.ExperimentRunner` evaluates one
mix under one policy at a time and keeps traces and baselines only in
process memory. This module turns a Figure sweep into an embarrassingly
parallel job — the evaluation structure FastCap (Liu et al.) uses for
epoch-based multi-workload DVFS studies:

1. **warm phase** — one task per mix generates the deterministic trace
   *once*, stores it in the content-keyed on-disk cache
   (:mod:`repro.sim.cache`) in the flat columnar ``.npy`` layout, and
   records the all-on baseline run beside it;
2. **fan-out phase** — one task per (mix, policy) pair loads the shared
   artifacts from the cache and simulates only the policy run, with an
   optional per-run telemetry JSONL stream. Trace loads go through
   ``np.load(..., mmap_mode="r")``: every worker's core arrays are
   read-only views of the same memory-mapped file, so the trace bytes
   exist once in the OS page cache no matter how many processes replay
   them — no per-worker ``generate_workload`` re-run, no per-worker
   decompression, no per-worker copy.

Determinism: trace generation is fully seeded and simulation is
event-ordered, so a parallel sweep produces *byte-identical*
:class:`~repro.sim.results.RunResult`\\ s to a serial sweep of the same
settings (asserted by ``tests/test_parallel.py``).

Workers are plain ``ProcessPoolExecutor`` processes (``fork`` start
method where available, so the imported package is inherited). With
``jobs=1`` — or ``None`` on a single-CPU machine — everything runs
inline in the calling process, which is also the path the tests use to
compare against.

Fault isolation: jobs are submitted one future each and collected
individually through :func:`execute_jobs` — one raising job (or even a
worker killed by the OS) surfaces as a :class:`JobFailure` record
carrying the worker-side traceback while every other job completes.
Each job gets ``retries`` extra attempts before its failure is
recorded; a broken pool is rebuilt and the survivors re-run in
single-worker isolation so a poison job cannot take the sweep down.
The persistent-queue layer on top of this lives in
:mod:`repro.sim.service`.
"""

from __future__ import annotations

import os
import re
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import multiprocessing

from repro.config import SystemConfig, scaled_config
from repro.cpu.trace import WorkloadTrace
from repro.cpu.workloads import known_mix_names
from repro.sim.cache import DEFAULT_CACHE_DIR, ExperimentCache
from repro.sim.results import PolicyComparison, RunResult
from repro.sim.runner import (IMPORTED_TRACE_PREFIX, POLICY_NAMES,
                              ExperimentRunner, RunnerSettings)
from repro.sim.telemetry import JsonlTelemetry

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SweepJob:
    """One unit of fan-out work: a mix evaluated under one policy."""

    mix: str
    policy: str


@dataclass(frozen=True)
class CapJob:
    """One unit of cap-sweep work: a mix under one power budget.

    ``budget_fraction`` is the cap expressed as a fraction of the mix's
    baseline average memory power; ``None`` marks the naive throttle
    reference (lowest static frequency, no governor), which the fairness
    comparison is judged against.
    """

    mix: str
    budget_fraction: Optional[float]


@dataclass
class CapOutcome:
    """Result of one :class:`CapJob`, with cap bookkeeping."""

    mix: str
    budget_fraction: Optional[float]  #: None for the throttle reference
    budget_w: Optional[float]         #: absolute cap (None for throttle)
    governor: str
    result: RunResult
    comparison: PolicyComparison
    min_perf: float                   #: min-app normalized performance
    avg_power_w: float                #: run-average memory power
    cap: Optional[Dict[str, object]]  #: budget ledger + infeasible count
    wall_s: float
    cache_hits: int = 0
    telemetry_path: Optional[str] = None


@dataclass(frozen=True)
class MultiDomainJob:
    """One unit of multi-domain-sweep work: a mix under one *global*
    (CPU + memory) budget fraction.

    ``coordinated=True`` runs the :class:`MultiDomainGovernor`;
    ``coordinated=False`` runs the memory-only reference — a
    :class:`CapGovernor` given whatever budget remains after nominal
    core power, the uncoordinated split the tentpole must beat.
    """

    mix: str
    budget_fraction: float
    coordinated: bool


@dataclass
class MultiDomainOutcome:
    """Result of one :class:`MultiDomainJob`, with per-domain accounting."""

    mix: str
    budget_fraction: float
    budget_w: float                   #: absolute global budget (both legs)
    governor: str
    coordinated: bool
    result: RunResult
    comparison: PolicyComparison
    min_perf: float                   #: min-app normalized performance
    avg_power_w: float                #: run-average core + memory power
    avg_core_power_w: float           #: modeled run-average core power
    core_energy_j: float              #: modeled core energy over the run
    system_energy_j: float            #: memory + core + other, explicit split
    summary: Optional[Dict[str, object]]  #: ledger + per-domain counters
    wall_s: float
    cache_hits: int = 0
    telemetry_path: Optional[str] = None


@dataclass(frozen=True)
class PlacementJob:
    """One unit of placement-sweep work: a mix with or without the
    rank-aware page-placement layer.

    ``placed=True`` runs MemScale wrapped in a
    :class:`~repro.placement.governor.PlacementGovernor` on a
    placement-enabled copy of the sweep config (page table, hot-page
    migration, self-refresh parking); ``placed=False`` runs plain
    MemScale on the config as given — the reference the placement leg
    must beat on memory energy at the same CPI-degradation target.
    """

    mix: str
    placed: bool


@dataclass
class PlacementOutcome:
    """Result of one :class:`PlacementJob`, with placement accounting."""

    mix: str
    placed: bool
    governor: str
    result: RunResult
    comparison: PolicyComparison
    min_perf: float                   #: min-app normalized performance
    avg_power_w: float                #: run-average memory power
    #: migration/parking/copy-traffic counters (None on the reference leg)
    placement: Optional[Dict[str, object]]
    wall_s: float
    cache_hits: int = 0
    telemetry_path: Optional[str] = None


@dataclass(frozen=True)
class ScenarioJob:
    """One unit of scenario-sweep work: a mix under one policy on one
    named device technology table (:mod:`repro.scenarios.devices`)."""

    mix: str
    policy: str
    device: str


@dataclass
class ScenarioOutcome:
    """Result of one :class:`ScenarioJob`, with device accounting."""

    mix: str
    policy: str
    device: str
    result: RunResult
    comparison: PolicyComparison
    #: Background (standby) share of the run's DIMM energy — the number
    #: a device table shifts most visibly (STT-MRAM drives it near 0).
    background_share: float
    wall_s: float
    cache_hits: int = 0
    telemetry_path: Optional[str] = None


@dataclass
class SweepOutcome:
    """Result of one :class:`SweepJob`, with execution metadata."""

    mix: str
    policy: str
    result: RunResult
    comparison: PolicyComparison
    wall_s: float                   #: worker wall-clock for this job
    cache_hits: int = 0             #: cache hits observed by the worker
    telemetry_path: Optional[str] = None


@dataclass
class JobFailure:
    """Structured record of one job that failed after all its attempts.

    Returned in place of the job's outcome so a sweep containing one
    bad job still yields every other result. Carries the worker-side
    traceback of the last attempt; ``job`` is the original job
    dataclass (:class:`SweepJob`, :class:`CapJob`, ...).
    """

    job: object
    label: str                      #: display label, e.g. "MID1/Static"
    error_type: str                 #: exception class name
    message: str
    traceback: str = ""             #: worker-side formatted traceback
    attempts: int = 1               #: total attempts made (1 + retries)
    wall_s: float = 0.0             #: wall-clock of the last attempt

    @property
    def mix(self) -> str:
        return getattr(self.job, "mix", "?")

    def summary(self) -> str:
        return (f"{self.label}: {self.error_type}: {self.message} "
                f"(after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''})")


def job_label(job: object) -> str:
    """Stable display label of a job dataclass (``mix/<point>``)."""
    if isinstance(job, SweepJob):
        return f"{job.mix}/{job.policy}"
    if isinstance(job, CapJob):
        return f"{job.mix}/{cap_label(job.budget_fraction)}"
    if isinstance(job, MultiDomainJob):
        return (f"{job.mix}/"
                f"{multidomain_label(job.budget_fraction, job.coordinated)}")
    if isinstance(job, PlacementJob):
        return f"{job.mix}/{placement_label(job.placed)}"
    if isinstance(job, ScenarioJob):
        return f"{job.mix}/{scenario_label(job.policy, job.device)}"
    return str(job)


def default_jobs() -> int:
    """Worker count when the caller does not specify one.

    Prefers the scheduling affinity mask over the raw CPU count so a
    cgroup/affinity-limited container (CI runners, ``taskset``) gets
    the CPUs it may actually run on instead of overcommitting workers
    against every core the host has.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(8, cpus))


def telemetry_filename(mix: str, policy: str) -> str:
    """Stable, filesystem-safe JSONL name for one (mix, policy) run."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", policy)
    return f"{mix}__{slug}.jsonl"


def cap_label(budget_fraction: Optional[float]) -> str:
    """Display/file label for one cap sweep point."""
    if budget_fraction is None:
        return "Throttle"
    return f"Cap{budget_fraction:.2f}"


def multidomain_label(budget_fraction: float, coordinated: bool) -> str:
    """Display/file label for one multi-domain sweep point."""
    prefix = "MD" if coordinated else "MemOnly"
    return f"{prefix}{budget_fraction:.2f}"


def placement_label(placed: bool) -> str:
    """Display/file label for one placement sweep leg."""
    return "Placed" if placed else "NoPlacement"


def scenario_label(policy: str, device: str) -> str:
    """Display/file label for one scenario sweep point."""
    return f"{policy}@{device}"


# -- worker-side entry points (module level: must be picklable) -----------

def _make_runner(config: SystemConfig, settings: RunnerSettings,
                 cache_dir: Optional[str]) -> ExperimentRunner:
    cache = ExperimentCache(cache_dir) if cache_dir is not None else None
    return ExperimentRunner(config=config, settings=settings, cache=cache)


def _warm_mix(args: Tuple[SystemConfig, RunnerSettings, str, Optional[str]]
              ) -> str:
    """Warm task: populate trace + baseline cache entries for one mix."""
    config, settings, mix, cache_dir = args
    _make_runner(config, settings, cache_dir).warm(mix)
    return mix


def _build_trace(args: Tuple[RunnerSettings, str, Optional[str]]
                 ) -> Tuple[str, WorkloadTrace]:
    """Trace-only task used by :func:`generate_traces`."""
    settings, mix, cache_dir = args
    runner = _make_runner(scaled_config(), settings, cache_dir)
    return mix, runner.trace(mix)


def _run_job(args: Tuple[SystemConfig, RunnerSettings, SweepJob,
                         Optional[str], Optional[str]]) -> SweepOutcome:
    """Fan-out task: one policy run, compared against the baseline."""
    config, settings, job, cache_dir, telemetry_dir = args
    start = time.perf_counter()
    runner = _make_runner(config, settings, cache_dir)
    telemetry = None
    telemetry_path = None
    if telemetry_dir is not None:
        telemetry_path = str(Path(telemetry_dir)
                             / telemetry_filename(job.mix, job.policy))
        telemetry = JsonlTelemetry(telemetry_path)
    try:
        result, comparison = runner.run_named_policy(
            job.mix, job.policy, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    hits = runner.cache.hits if runner.cache is not None else 0
    return SweepOutcome(mix=job.mix, policy=job.policy, result=result,
                        comparison=comparison,
                        wall_s=time.perf_counter() - start,
                        cache_hits=hits, telemetry_path=telemetry_path)


def _run_cap_job(args: Tuple[SystemConfig, RunnerSettings, CapJob,
                             Optional[str], Optional[str]]) -> CapOutcome:
    """Fan-out task: one capped (or throttle-reference) run on one mix."""
    from repro.core.baselines import StaticFrequencyGovernor

    config, settings, job, cache_dir, telemetry_dir = args
    start = time.perf_counter()
    runner = _make_runner(config, settings, cache_dir)
    budget_w = None
    if job.budget_fraction is None:
        # Naive throttle reference: pin the whole subsystem to the
        # slowest ladder point for the entire run.
        governor = StaticFrequencyGovernor(
            bus_mhz=min(config.sorted_bus_freqs()))
    else:
        governor = runner.make_cap_governor(
            job.mix, budget_fraction=job.budget_fraction)
        budget_w = governor.budget.min_watts
    telemetry = None
    telemetry_path = None
    if telemetry_dir is not None:
        telemetry_path = str(Path(telemetry_dir) / telemetry_filename(
            job.mix, cap_label(job.budget_fraction)))
        telemetry = JsonlTelemetry(telemetry_path)
    try:
        result, comparison = runner.run_and_compare(
            job.mix, governor, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    cap = (governor.cap_summary()
           if job.budget_fraction is not None else None)
    hits = runner.cache.hits if runner.cache is not None else 0
    return CapOutcome(
        mix=job.mix, budget_fraction=job.budget_fraction,
        budget_w=budget_w, governor=governor.name,
        result=result, comparison=comparison,
        min_perf=1.0 / (1.0 + comparison.worst_cpi_increase),
        avg_power_w=result.avg_memory_power_w, cap=cap,
        wall_s=time.perf_counter() - start,
        cache_hits=hits, telemetry_path=telemetry_path)


def _run_multidomain_job(args: Tuple[SystemConfig, RunnerSettings,
                                     MultiDomainJob, Optional[str],
                                     Optional[str]]) -> MultiDomainOutcome:
    """Fan-out task: one global-budget run (coordinated or memory-only).

    System energy is assembled from an explicit per-domain split —
    measured memory energy, *modeled* core energy, and the calibrated
    "other" (rest-of-system minus nominal cores) power — so the
    coordinated and memory-only legs are compared on identical terms.
    The memory-only reference charges nominal core power for the whole
    run; the coordinated leg charges the governor's ledgered core power.
    """
    config, settings, job, cache_dir, telemetry_dir = args
    start = time.perf_counter()
    runner = _make_runner(config, settings, cache_dir)
    budget_w = (job.budget_fraction
                * runner.multidomain_reference_power_w(job.mix))
    core_ref_w = runner.baseline_core_power_w(job.mix)
    other_w = runner.platform_other_power_w(job.mix)
    if job.coordinated:
        governor = runner.make_multidomain_governor(job.mix,
                                                    budget_w=budget_w)
    else:
        # Memory-only reference: cores stay at nominal power, so the
        # memory side gets whatever the global budget leaves (floored to
        # keep the PowerBudget contract when cores alone exceed it).
        governor = runner.make_cap_governor(
            job.mix, budget_w=max(0.05, budget_w - core_ref_w))
    telemetry = None
    telemetry_path = None
    if telemetry_dir is not None:
        telemetry_path = str(Path(telemetry_dir) / telemetry_filename(
            job.mix, multidomain_label(job.budget_fraction,
                                       job.coordinated)))
        telemetry = JsonlTelemetry(telemetry_path)
    try:
        result, comparison = runner.run_and_compare(
            job.mix, governor, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    sim_s = result.sim_time_s
    if job.coordinated:
        summary = governor.multidomain_summary()
        avg_core_w = summary.get("avg_core_power_w") or core_ref_w
    else:
        summary = governor.cap_summary()
        avg_core_w = core_ref_w
    core_energy_j = avg_core_w * sim_s
    system_energy_j = (result.memory_energy_j + core_energy_j
                       + other_w * sim_s)
    hits = runner.cache.hits if runner.cache is not None else 0
    return MultiDomainOutcome(
        mix=job.mix, budget_fraction=job.budget_fraction,
        budget_w=budget_w, governor=governor.name,
        coordinated=job.coordinated, result=result, comparison=comparison,
        min_perf=1.0 / (1.0 + comparison.worst_cpi_increase),
        avg_power_w=result.avg_memory_power_w + avg_core_w,
        avg_core_power_w=avg_core_w, core_energy_j=core_energy_j,
        system_energy_j=system_energy_j, summary=summary,
        wall_s=time.perf_counter() - start,
        cache_hits=hits, telemetry_path=telemetry_path)


def _run_placement_job(args: Tuple[SystemConfig, RunnerSettings,
                                   PlacementJob, Optional[str],
                                   Optional[str]]) -> PlacementOutcome:
    """Fan-out task: one placement (or plain-MemScale reference) run.

    The placed leg flips ``config.placement.enabled`` on a copy of the
    sweep config — inheriting any tuned placement knobs the caller set —
    so the reference leg decodes through the untouched interleaver. The
    two legs share the trace but not baselines: a placement-enabled
    config routes addresses through the page table even under the
    Baseline governor, so each leg is normalized against its own
    baseline and the legs are compared on absolute energy.
    """
    config, settings, job, cache_dir, telemetry_dir = args
    start = time.perf_counter()
    if job.placed:
        config = config.with_placement(enabled=True)
    runner = _make_runner(config, settings, cache_dir)
    if job.placed:
        governor = runner.make_placement_governor(job.mix)
    else:
        governor = runner.make_memscale_governor(job.mix)
    telemetry = None
    telemetry_path = None
    if telemetry_dir is not None:
        telemetry_path = str(Path(telemetry_dir) / telemetry_filename(
            job.mix, placement_label(job.placed)))
        telemetry = JsonlTelemetry(telemetry_path)
    try:
        result, comparison = runner.run_and_compare(
            job.mix, governor, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    placement = governor.placement_summary() if job.placed else None
    hits = runner.cache.hits if runner.cache is not None else 0
    return PlacementOutcome(
        mix=job.mix, placed=job.placed, governor=governor.name,
        result=result, comparison=comparison,
        min_perf=1.0 / (1.0 + comparison.worst_cpi_increase),
        avg_power_w=result.avg_memory_power_w, placement=placement,
        wall_s=time.perf_counter() - start,
        cache_hits=hits, telemetry_path=telemetry_path)


def _run_scenario_job(args: Tuple[SystemConfig, RunnerSettings, ScenarioJob,
                                  Optional[str], Optional[str]]
                      ) -> ScenarioOutcome:
    """Fan-out task: one policy run on one device technology table.

    The worker swaps the job's device table into the sweep config
    (timings + currents only, so cache fingerprints and the service
    ledger see an ordinary config change) before building the runner:
    each (mix, device) pair gets its own baseline, and the comparison is
    normalized within the device — a policy's savings on STT-MRAM are
    judged against an STT-MRAM baseline, not a DDR3 one.
    """
    from repro.scenarios.devices import apply_device

    config, settings, job, cache_dir, telemetry_dir = args
    start = time.perf_counter()
    runner = _make_runner(apply_device(config, job.device), settings,
                          cache_dir)
    telemetry = None
    telemetry_path = None
    if telemetry_dir is not None:
        telemetry_path = str(Path(telemetry_dir) / telemetry_filename(
            job.mix, scenario_label(job.policy, job.device)))
        telemetry = JsonlTelemetry(telemetry_path)
    try:
        result, comparison = runner.run_named_policy(
            job.mix, job.policy, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    dimm_j = result.memory_energy_j - result.energy_j.get("mc", 0.0)
    background = result.energy_j.get("background", 0.0)
    hits = runner.cache.hits if runner.cache is not None else 0
    return ScenarioOutcome(
        mix=job.mix, policy=job.policy, device=job.device,
        result=result, comparison=comparison,
        background_share=background / dimm_j if dimm_j > 0 else 0.0,
        wall_s=time.perf_counter() - start,
        cache_hits=hits, telemetry_path=telemetry_path)


# -- driver ----------------------------------------------------------------

def _executor(jobs: int) -> ProcessPoolExecutor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=jobs, mp_context=context)


def _run_guarded(payload: Tuple[Callable, object]) -> Tuple[str, object, float]:
    """Worker-side wrapper: never lets an exception cross the pool.

    Returns ``("ok", outcome, wall_s)`` or ``("error", info, wall_s)``
    where ``info`` carries the exception class, message, and formatted
    traceback — some exceptions do not survive pickling, and a raising
    future would otherwise cost the whole sweep under ``pool.map``.
    """
    fn, args = payload
    start = time.perf_counter()
    try:
        return ("ok", fn(args), time.perf_counter() - start)
    except BaseException as exc:  # noqa: BLE001 - isolate *everything*
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return ("error", {
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }, time.perf_counter() - start)


#: ``info`` payload synthesized when a worker process vanished (killed
#: by the OS, OOM, segfault) and took its future down with it.
def _worker_died_info(exc: BaseException) -> Dict[str, str]:
    return {
        "error_type": type(exc).__name__,
        "message": ("worker process died before returning a result "
                    f"({exc})" if str(exc) else
                    "worker process died before returning a result"),
        "traceback": "",
    }


def execute_jobs(fn: Callable, job_args: Sequence[object],
                 jobs_meta: Sequence[object], jobs: int,
                 retries: int = 0,
                 on_outcome: Optional[Callable[[int, object], None]] = None
                 ) -> List[object]:
    """Run ``fn`` over ``job_args`` with per-job fault isolation.

    The replacement for bare ``pool.map``: every job is submitted as
    its own future and collected individually, so one raising job (or a
    worker the OS killed mid-run) becomes a :class:`JobFailure` record
    in the returned list — input order, one entry per job — while every
    other job still completes. Each job is attempted up to
    ``1 + retries`` times. ``jobs_meta[i]`` is the job dataclass stored
    on failure records; ``on_outcome(i, outcome_or_failure)`` fires as
    soon as job ``i`` settles (the service layer persists results
    incrementally through it, so a crash loses at most in-flight jobs).

    With ``jobs == 1`` everything runs inline in the calling process —
    identical results, no pool (and no isolation from a job that kills
    the *process*; the pool path survives even that).
    """
    n = len(job_args)
    if len(jobs_meta) != n:
        raise ValueError("jobs_meta must match job_args")
    results: List[object] = [None] * n
    attempts = [0] * n

    def settle(i: int, status: str, value: object, wall: float) -> bool:
        """Record one attempt; True once the job has a final outcome."""
        attempts[i] += 1
        if status == "ok":
            results[i] = value
        elif attempts[i] > retries:
            results[i] = JobFailure(
                job=jobs_meta[i], label=job_label(jobs_meta[i]),
                attempts=attempts[i], wall_s=wall, **value)
        else:
            return False
        if on_outcome is not None:
            on_outcome(i, results[i])
        return True

    if jobs == 1:
        for i in range(n):
            while True:
                status, value, wall = _run_guarded((fn, job_args[i]))
                if settle(i, status, value, wall):
                    break
        return results

    # Pool phase: one future per job, collected as they complete.
    leftovers: List[int] = []
    with _executor(jobs) as pool:
        futures = {pool.submit(_run_guarded, (fn, job_args[i])): i
                   for i in range(n)}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                i = futures[fut]
                try:
                    status, value, wall = fut.result()
                except BrokenProcessPool:
                    # The job that broke the pool and the innocents
                    # whose futures it cancelled are indistinguishable
                    # here; all of them retry in isolation below.
                    leftovers.append(i)
                    continue
                except Exception as exc:  # pragma: no cover - pickling
                    status, value, wall = ("error", _worker_died_info(exc),
                                           0.0)
                if not settle(i, status, value, wall):
                    leftovers.append(i)

    # Isolation phase: survivors of a broken pool and jobs with retry
    # budget left each get a fresh single-worker pool, so a poison job
    # that kills its worker exhausts only its own attempts.
    for i in leftovers:
        while results[i] is None:
            try:
                with _executor(1) as solo:
                    status, value, wall = solo.submit(
                        _run_guarded, (fn, job_args[i])).result()
            except BrokenProcessPool as exc:
                status, value, wall = ("error", _worker_died_info(exc), 0.0)
            except Exception as exc:  # pragma: no cover - pickling
                status, value, wall = ("error", _worker_died_info(exc), 0.0)
            settle(i, status, value, wall)
    return results


def split_outcomes(outcomes: Sequence[object]
                   ) -> Tuple[List[object], List[JobFailure]]:
    """Partition a sweep's outcome list into (successes, failures)."""
    good = [o for o in outcomes if not isinstance(o, JobFailure)]
    bad = [o for o in outcomes if isinstance(o, JobFailure)]
    return good, bad


def _check_inputs(mixes: Sequence[str], policies: Sequence[str]) -> None:
    known = known_mix_names()
    for mix in mixes:
        # ``trace:<name>`` mixes resolve against the worker's cache (the
        # imported-trace store), not the synthetic registry.
        if mix.startswith(IMPORTED_TRACE_PREFIX):
            continue
        if mix not in known:
            raise ValueError(f"unknown mix {mix!r}; choose from {known}")
    for policy in policies:
        if policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICY_NAMES}")


def warm_mixes(mixes: Sequence[str], config: SystemConfig,
               settings: RunnerSettings, cache_dir: Optional[str],
               jobs: int) -> None:
    """Warm phase: build each mix's shared trace + baseline cache entry
    exactly once before fanning out, so concurrent (mix, point) jobs hit
    the cache instead of racing to regenerate baselines.

    Warm failures are swallowed: the fan-out jobs of an unwarmable mix
    produce their own per-job failure records, which is where the error
    belongs.
    """
    if cache_dir is None:
        return
    warm_args = [(config, settings, mix, cache_dir) for mix in mixes]
    execute_jobs(_warm_mix, warm_args, list(mixes), jobs)


def _fan_out(fn: Callable, job_args: List[tuple], jobs_meta: List[object],
             mixes: Sequence[str], config: SystemConfig,
             settings: RunnerSettings, cache_dir: Optional[str],
             jobs: int, retries: int) -> List[object]:
    """Warm + fault-isolated fan-out shared by every sweep flavour."""
    if jobs > 1:
        warm_mixes(mixes, config, settings, cache_dir, jobs)
    return execute_jobs(fn, job_args, jobs_meta, jobs, retries=retries)


def run_sweep(mixes: Sequence[str],
              policies: Sequence[str] = ("MemScale",),
              config: Optional[SystemConfig] = None,
              settings: Optional[RunnerSettings] = None,
              jobs: Optional[int] = None,
              cache_dir: Optional[PathLike] = DEFAULT_CACHE_DIR,
              telemetry_dir: Optional[PathLike] = None,
              retries: int = 0) -> List[SweepOutcome]:
    """Evaluate every ``mix`` under every ``policy``, in parallel.

    Parameters
    ----------
    mixes, policies
        The cross product to evaluate; outcomes are returned in
        ``(mix, policy)`` input order regardless of completion order.
    jobs
        Worker processes; ``None`` picks :func:`default_jobs`, ``1``
        runs everything inline (no pool).
    cache_dir
        Root of the on-disk artifact cache shared by all workers
        (default ``.repro_cache``). ``None`` disables caching — each
        worker then regenerates its mix's trace and baseline.
    telemetry_dir
        When given, each policy run streams its per-epoch JSONL record
        file into this directory (see EXPERIMENTS.md for the schema).
    retries
        Extra attempts per job before its failure is recorded.

    A job that raises (or whose worker dies) does not abort the sweep:
    its slot in the returned list holds a :class:`JobFailure` record
    with the worker-side traceback, and every other job completes.
    """
    mixes = list(mixes)
    policies = list(policies)
    _check_inputs(mixes, policies)
    config = config if config is not None else scaled_config()
    settings = settings if settings is not None else RunnerSettings()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        telemetry_dir = str(telemetry_dir)

    sweep_jobs = [SweepJob(mix, policy) for mix in mixes
                  for policy in policies]
    job_args = [(config, settings, job, cache_dir, telemetry_dir)
                for job in sweep_jobs]
    return _fan_out(_run_job, job_args, sweep_jobs, mixes, config,
                    settings, cache_dir, jobs, retries)


def run_cap_sweep(mixes: Sequence[str],
                  budget_fractions: Sequence[float],
                  config: Optional[SystemConfig] = None,
                  settings: Optional[RunnerSettings] = None,
                  jobs: Optional[int] = None,
                  cache_dir: Optional[PathLike] = DEFAULT_CACHE_DIR,
                  telemetry_dir: Optional[PathLike] = None,
                  include_throttle: bool = True,
                  retries: int = 0) -> List[CapOutcome]:
    """Evaluate every ``mix`` under every power budget, in parallel.

    ``budget_fractions`` are caps expressed as fractions of each mix's
    *own* baseline average memory power (1.0 = uncapped reference
    power); the conversion to absolute watts happens in the worker from
    the cache-shared baseline run, so all workers agree bit for bit.
    With ``include_throttle`` a lowest-static-frequency reference run is
    added per mix (``budget_fraction=None`` in its outcome) — the
    fairness floor a capping governor must beat.

    Reuses the sweep's two-phase structure: a warm task per mix builds
    the shared trace + baseline cache entries, then one task per
    (mix, budget) point runs the capped simulation.
    """
    mixes = list(mixes)
    if not mixes:
        raise ValueError("need at least one mix")
    _check_inputs(mixes, [])
    fractions = [float(f) for f in budget_fractions]
    if not fractions:
        raise ValueError("need at least one budget fraction")
    if any(f <= 0 for f in fractions):
        raise ValueError("budget fractions must be positive")
    config = config if config is not None else scaled_config()
    settings = settings if settings is not None else RunnerSettings()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        telemetry_dir = str(telemetry_dir)

    points: List[Optional[float]] = list(fractions)
    if include_throttle:
        points.append(None)
    cap_jobs = [CapJob(mix, frac) for mix in mixes for frac in points]
    job_args = [(config, settings, job, cache_dir, telemetry_dir)
                for job in cap_jobs]
    return _fan_out(_run_cap_job, job_args, cap_jobs, mixes, config,
                    settings, cache_dir, jobs, retries)


def run_multidomain_sweep(mixes: Sequence[str],
                          budget_fractions: Sequence[float],
                          config: Optional[SystemConfig] = None,
                          settings: Optional[RunnerSettings] = None,
                          jobs: Optional[int] = None,
                          cache_dir: Optional[PathLike] = DEFAULT_CACHE_DIR,
                          telemetry_dir: Optional[PathLike] = None,
                          include_memory_only: bool = True,
                          retries: int = 0) -> List[MultiDomainOutcome]:
    """Evaluate every ``mix`` under every *global* budget, in parallel.

    ``budget_fractions`` are global (CPU + memory) budgets expressed as
    fractions of each mix's baseline memory power plus modeled nominal
    core power (1.0 = uncoordinated reference power). With
    ``include_memory_only`` each budget point also runs the memory-only
    reference (``coordinated=False`` in its outcome): a
    :class:`~repro.cap.governor.CapGovernor` given the budget left after
    nominal core power — the split a coordinated governor must beat.

    Outcomes are ordered ``(mix, fraction) x (coordinated, memory-only)``
    in input order, so per-point pairs sit adjacent.
    """
    mixes = list(mixes)
    if not mixes:
        raise ValueError("need at least one mix")
    _check_inputs(mixes, [])
    fractions = [float(f) for f in budget_fractions]
    if not fractions:
        raise ValueError("need at least one budget fraction")
    if any(f <= 0 for f in fractions):
        raise ValueError("budget fractions must be positive")
    config = config if config is not None else scaled_config()
    settings = settings if settings is not None else RunnerSettings()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        telemetry_dir = str(telemetry_dir)

    legs = [True, False] if include_memory_only else [True]
    md_jobs = [MultiDomainJob(mix, frac, coordinated)
               for mix in mixes for frac in fractions
               for coordinated in legs]
    job_args = [(config, settings, job, cache_dir, telemetry_dir)
                for job in md_jobs]
    return _fan_out(_run_multidomain_job, job_args, md_jobs, mixes,
                    config, settings, cache_dir, jobs, retries)


def run_placement_sweep(mixes: Sequence[str],
                        config: Optional[SystemConfig] = None,
                        settings: Optional[RunnerSettings] = None,
                        jobs: Optional[int] = None,
                        cache_dir: Optional[PathLike] = DEFAULT_CACHE_DIR,
                        telemetry_dir: Optional[PathLike] = None,
                        include_reference: bool = True,
                        retries: int = 0) -> List[PlacementOutcome]:
    """Evaluate every ``mix`` with and without rank-aware placement.

    The placement leg wraps MemScale in a
    :class:`~repro.placement.governor.PlacementGovernor` on a
    placement-enabled copy of ``config`` (hot-page migration onto few
    rank groups, self-refresh parking of the rest); with
    ``include_reference`` each mix also runs plain MemScale on
    ``config`` unchanged. Placement's gain is judged between the two
    legs' *absolute* memory energies, not their baseline-normalized
    savings — enabling placement changes the decode of the baseline run
    too, so the legs do not share a reference.

    Pass a ``config`` with tuned ``config.placement`` knobs (epoch
    budget, parking threshold, ...) to shape the placed leg; only the
    ``enabled`` flag is flipped inside the worker.

    Outcomes are ordered ``mix x (placed, reference)`` in input order,
    so per-mix pairs sit adjacent.
    """
    mixes = list(mixes)
    if not mixes:
        raise ValueError("need at least one mix")
    _check_inputs(mixes, [])
    config = config if config is not None else scaled_config()
    settings = settings if settings is not None else RunnerSettings()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        telemetry_dir = str(telemetry_dir)

    legs = [True, False] if include_reference else [True]
    pl_jobs = [PlacementJob(mix, placed)
               for mix in mixes for placed in legs]
    job_args = [(config, settings, job, cache_dir, telemetry_dir)
                for job in pl_jobs]
    return _fan_out(_run_placement_job, job_args, pl_jobs, mixes,
                    config, settings, cache_dir, jobs, retries)


def run_scenario_sweep(mixes: Sequence[str],
                       policies: Sequence[str] = ("MemScale",),
                       devices: Sequence[str] = ("ddr3-1333",),
                       config: Optional[SystemConfig] = None,
                       settings: Optional[RunnerSettings] = None,
                       jobs: Optional[int] = None,
                       cache_dir: Optional[PathLike] = DEFAULT_CACHE_DIR,
                       telemetry_dir: Optional[PathLike] = None,
                       retries: int = 0) -> List[ScenarioOutcome]:
    """Evaluate ``mixes x policies x devices``, in parallel.

    The third axis names device technology tables
    (:data:`repro.scenarios.devices.DEVICE_TABLES`); each job runs on a
    copy of ``config`` with that device's timings/currents swapped in.
    Mixes may be ladder rungs (``mix1``..``mix7``), Table 1 names, or
    ``trace:<name>`` imports. The warm phase runs once per (mix,
    device): baselines are device-specific, so each device's jobs warm
    their own cache entries.

    Outcomes are ordered ``(mix, policy, device)`` in input order.
    """
    from repro.scenarios.devices import lookup_device

    mixes = list(mixes)
    policies = list(policies)
    devices = list(devices)
    if not devices:
        raise ValueError("need at least one device table")
    _check_inputs(mixes, policies)
    for device in devices:
        lookup_device(device)  # fail fast on unknown names
    config = config if config is not None else scaled_config()
    settings = settings if settings is not None else RunnerSettings()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
        telemetry_dir = str(telemetry_dir)

    scenario_jobs = [ScenarioJob(mix, policy, device)
                     for mix in mixes for policy in policies
                     for device in devices]
    job_args = [(config, settings, job, cache_dir, telemetry_dir)
                for job in scenario_jobs]
    if jobs > 1:
        from repro.scenarios.devices import apply_device
        for device in devices:
            warm_mixes(mixes, apply_device(config, device), settings,
                       cache_dir, jobs)
    return execute_jobs(_run_scenario_job, job_args, scenario_jobs, jobs,
                        retries=retries)


def generate_traces(mixes: Sequence[str],
                    settings: Optional[RunnerSettings] = None,
                    jobs: Optional[int] = None,
                    cache_dir: Optional[PathLike] = DEFAULT_CACHE_DIR
                    ) -> Dict[str, WorkloadTrace]:
    """Build (or load from cache) the traces of ``mixes``, in parallel."""
    mixes = list(mixes)
    _check_inputs(mixes, [])
    settings = settings if settings is not None else RunnerSettings()
    if jobs is None:
        jobs = default_jobs()
    cache_dir = str(cache_dir) if cache_dir is not None else None
    args = [(settings, mix, cache_dir) for mix in mixes]
    if jobs == 1 or len(mixes) <= 1:
        pairs = [_build_trace(a) for a in args]
    else:
        with _executor(jobs) as pool:
            pairs = list(pool.map(_build_trace, args))
    return dict(pairs)


def sweep_table(outcomes: Sequence[SweepOutcome]) -> List[List[str]]:
    """Rows (mix, policy, savings, CPI, wall) for a plain-text report.

    :class:`JobFailure` entries render as FAILED rows carrying the
    exception class, so a partially failed sweep still prints.
    """
    rows = []
    for o in outcomes:
        if isinstance(o, JobFailure):
            rows.append([
                o.mix, o.label.split("/", 1)[-1],
                "FAILED", o.error_type, "-", f"{o.wall_s:.2f}s",
            ])
            continue
        rows.append([
            o.mix, o.policy,
            f"{o.comparison.memory_energy_savings:+.1%}",
            f"{o.comparison.system_energy_savings:+.1%}",
            f"{o.comparison.worst_cpi_increase:+.1%}",
            f"{o.wall_s:.2f}s",
        ])
    return rows
