"""Run results and cross-policy comparison.

A :class:`RunResult` captures everything one simulation produces:
per-application CPI (measured over each app's first N instructions, the
paper's methodology), the energy breakdown integrated over the run, and
a per-epoch timeline for the dynamic-behaviour figures. Comparisons
against the all-on baseline yield the numbers every figure reports:
memory/system energy savings and average/worst CPI increase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.energy_model import rest_of_system_power_w
from repro.core.power_model import PowerBreakdown

#: Names of the energy components tracked per run, in display order.
ENERGY_COMPONENTS = (
    "background", "refresh", "actpre", "rdwr", "termination", "pll_reg", "mc",
)


@dataclass(frozen=True)
class EpochSample:
    """Per-epoch timeline record (Figures 7 and 8)."""

    time_ns: float              #: epoch end time
    bus_mhz: float              #: frequency during the epoch body
    app_cpi: Dict[str, float]   #: average CPI per application this epoch
    channel_util: np.ndarray    #: per-channel utilization this epoch
    memory_power_w: float


@dataclass
class RunResult:
    """Everything measured during one simulated run."""

    workload: str
    governor: str
    target_instructions: int
    wall_time_ns: float                    #: slowest core's completion time
    sim_time_ns: float                     #: total simulated (energy) window
    core_apps: List[str]                   #: app name per core
    core_time_at_target_ns: List[float]    #: per-core completion times
    energy_j: Dict[str, float]             #: per-component memory energy
    timeline: List[EpochSample] = field(default_factory=list)
    transition_count: int = 0
    epochs: int = 0

    # -- energy ----------------------------------------------------------

    @property
    def memory_energy_j(self) -> float:
        """DIMMs + MC energy over the run."""
        return sum(self.energy_j.values())

    @property
    def dimm_energy_j(self) -> float:
        return self.memory_energy_j - self.energy_j.get("mc", 0.0)

    @property
    def sim_time_s(self) -> float:
        return self.sim_time_ns * 1e-9

    @property
    def avg_dimm_power_w(self) -> float:
        return self.dimm_energy_j / self.sim_time_s if self.sim_time_s > 0 else 0.0

    @property
    def avg_memory_power_w(self) -> float:
        return self.memory_energy_j / self.sim_time_s if self.sim_time_s > 0 else 0.0

    def system_energy_j(self, rest_power_w: float) -> float:
        """Memory energy plus the fixed rest-of-system draw over the run."""
        return self.memory_energy_j + rest_power_w * self.sim_time_s

    # -- per-application CPI ------------------------------------------------

    @property
    def cpu_cycle_ns(self) -> float:
        # wall time / instructions / cycle time; stored implicitly via CPI
        raise AttributeError("use app_cpi(cycle_ns) instead")

    def core_cpi(self, cycle_ns: float) -> np.ndarray:
        """Per-core CPI over each core's first ``target_instructions``."""
        times = np.asarray(self.core_time_at_target_ns, dtype=np.float64)
        return times / (self.target_instructions * cycle_ns)

    def app_cpi(self, cycle_ns: float) -> Dict[str, float]:
        """Average CPI per application (across its replicated instances)."""
        per_core = self.core_cpi(cycle_ns)
        sums: Dict[str, List[float]] = {}
        for app, cpi in zip(self.core_apps, per_core):
            sums.setdefault(app, []).append(float(cpi))
        return {app: float(np.mean(vals)) for app, vals in sums.items()}


@dataclass(frozen=True)
class PolicyComparison:
    """A policy run normalized against the all-on baseline run."""

    workload: str
    governor: str
    memory_energy_savings: float    #: 1 - E_mem(policy) / E_mem(baseline)
    system_energy_savings: float    #: 1 - E_sys(policy) / E_sys(baseline)
    avg_cpi_increase: float         #: mean over apps of CPI(policy)/CPI(base) - 1
    worst_cpi_increase: float       #: max over apps
    app_cpi_increase: Dict[str, float]
    rest_power_w: float
    energy_breakdown_j: Dict[str, float]
    baseline_breakdown_j: Dict[str, float]


def compare_to_baseline(baseline: RunResult, policy: RunResult,
                        cycle_ns: float, memory_power_fraction: float,
                        rest_power_w: Optional[float] = None
                        ) -> PolicyComparison:
    """Normalize ``policy``'s run against ``baseline``'s (same workload).

    ``rest_power_w`` defaults to the value implied by the baseline's DIMM
    power and the configured memory power fraction (Section 4.1).
    """
    if baseline.workload != policy.workload:
        raise ValueError(
            f"cannot compare different workloads: "
            f"{baseline.workload!r} vs {policy.workload!r}")
    if baseline.target_instructions != policy.target_instructions:
        raise ValueError("runs measured over different instruction targets")
    if rest_power_w is None:
        rest_power_w = rest_of_system_power_w(
            baseline.avg_dimm_power_w, memory_power_fraction)

    e_mem_base = baseline.memory_energy_j
    e_mem_pol = policy.memory_energy_j
    mem_savings = 1.0 - e_mem_pol / e_mem_base if e_mem_base > 0 else 0.0
    e_sys_base = baseline.system_energy_j(rest_power_w)
    e_sys_pol = policy.system_energy_j(rest_power_w)
    sys_savings = 1.0 - e_sys_pol / e_sys_base if e_sys_base > 0 else 0.0

    base_cpi = baseline.app_cpi(cycle_ns)
    pol_cpi = policy.app_cpi(cycle_ns)
    increases: Dict[str, float] = {}
    for app, base_value in base_cpi.items():
        if base_value <= 0 or app not in pol_cpi:
            continue
        increases[app] = pol_cpi[app] / base_value - 1.0
    if not increases:
        raise ValueError("no comparable applications between the two runs")
    values = list(increases.values())
    return PolicyComparison(
        workload=policy.workload,
        governor=policy.governor,
        memory_energy_savings=mem_savings,
        system_energy_savings=sys_savings,
        avg_cpi_increase=float(np.mean(values)),
        worst_cpi_increase=float(np.max(values)),
        app_cpi_increase=increases,
        rest_power_w=rest_power_w,
        energy_breakdown_j=dict(policy.energy_j),
        baseline_breakdown_j=dict(baseline.energy_j),
    )


def breakdown_to_energy_dict(power: PowerBreakdown, seconds: float
                             ) -> Dict[str, float]:
    """Integrate a power breakdown over ``seconds`` into per-component J."""
    return {
        "background": power.background_w * seconds,
        "refresh": power.refresh_w * seconds,
        "actpre": power.actpre_w * seconds,
        "rdwr": power.rdwr_w * seconds,
        "termination": power.termination_w * seconds,
        "pll_reg": power.pll_reg_w * seconds,
        "mc": power.mc_w * seconds,
    }


def accumulate_energy(total: Dict[str, float],
                      increment: Dict[str, float]) -> None:
    """Add ``increment`` into ``total`` in place."""
    for key, value in increment.items():
        total[key] = total.get(key, 0.0) + value
