"""JSON serialization for run results and comparisons.

Long sweeps are expensive; these helpers let a harness persist every
:class:`RunResult` / :class:`PolicyComparison` and re-analyze later
without re-simulating. Timelines are included, numpy arrays are
converted to lists, and loading restores full objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.sim.results import EpochSample, PolicyComparison, RunResult

PathLike = Union[str, Path]

#: Format marker written into every file, checked on load.
FORMAT_VERSION = 1


def _sample_to_dict(sample: EpochSample) -> Dict:
    return {
        "time_ns": sample.time_ns,
        "bus_mhz": sample.bus_mhz,
        "app_cpi": dict(sample.app_cpi),
        "channel_util": [float(u) for u in sample.channel_util],
        "memory_power_w": sample.memory_power_w,
    }


def _sample_from_dict(data: Dict) -> EpochSample:
    return EpochSample(
        time_ns=data["time_ns"],
        bus_mhz=data["bus_mhz"],
        app_cpi=dict(data["app_cpi"]),
        channel_util=np.asarray(data["channel_util"], dtype=np.float64),
        memory_power_w=data["memory_power_w"],
    )


def run_result_to_dict(result: RunResult) -> Dict:
    """JSON-ready dictionary of a :class:`RunResult`."""
    return {
        "format": FORMAT_VERSION,
        "kind": "RunResult",
        "workload": result.workload,
        "governor": result.governor,
        "target_instructions": result.target_instructions,
        "wall_time_ns": result.wall_time_ns,
        "sim_time_ns": result.sim_time_ns,
        "core_apps": list(result.core_apps),
        "core_time_at_target_ns": [float(t)
                                   for t in result.core_time_at_target_ns],
        "energy_j": dict(result.energy_j),
        "timeline": [_sample_to_dict(s) for s in result.timeline],
        "transition_count": result.transition_count,
        "epochs": result.epochs,
    }


def run_result_from_dict(data: Dict) -> RunResult:
    _check(data, "RunResult")
    return RunResult(
        workload=data["workload"],
        governor=data["governor"],
        target_instructions=data["target_instructions"],
        wall_time_ns=data["wall_time_ns"],
        sim_time_ns=data["sim_time_ns"],
        core_apps=list(data["core_apps"]),
        core_time_at_target_ns=list(data["core_time_at_target_ns"]),
        energy_j=dict(data["energy_j"]),
        timeline=[_sample_from_dict(s) for s in data["timeline"]],
        transition_count=data["transition_count"],
        epochs=data["epochs"],
    )


def comparison_to_dict(cmp: PolicyComparison) -> Dict:
    return {
        "format": FORMAT_VERSION,
        "kind": "PolicyComparison",
        "workload": cmp.workload,
        "governor": cmp.governor,
        "memory_energy_savings": cmp.memory_energy_savings,
        "system_energy_savings": cmp.system_energy_savings,
        "avg_cpi_increase": cmp.avg_cpi_increase,
        "worst_cpi_increase": cmp.worst_cpi_increase,
        "app_cpi_increase": dict(cmp.app_cpi_increase),
        "rest_power_w": cmp.rest_power_w,
        "energy_breakdown_j": dict(cmp.energy_breakdown_j),
        "baseline_breakdown_j": dict(cmp.baseline_breakdown_j),
    }


def comparison_from_dict(data: Dict) -> PolicyComparison:
    _check(data, "PolicyComparison")
    return PolicyComparison(
        workload=data["workload"],
        governor=data["governor"],
        memory_energy_savings=data["memory_energy_savings"],
        system_energy_savings=data["system_energy_savings"],
        avg_cpi_increase=data["avg_cpi_increase"],
        worst_cpi_increase=data["worst_cpi_increase"],
        app_cpi_increase=dict(data["app_cpi_increase"]),
        rest_power_w=data["rest_power_w"],
        energy_breakdown_j=dict(data["energy_breakdown_j"]),
        baseline_breakdown_j=dict(data["baseline_breakdown_j"]),
    )


def save_results(path: PathLike,
                 results: List[Union[RunResult, PolicyComparison]]) -> None:
    """Write a list of results/comparisons to a JSON file."""
    payload = []
    for item in results:
        if isinstance(item, RunResult):
            payload.append(run_result_to_dict(item))
        elif isinstance(item, PolicyComparison):
            payload.append(comparison_to_dict(item))
        else:
            raise TypeError(f"cannot serialize {type(item).__name__}")
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: PathLike
                 ) -> List[Union[RunResult, PolicyComparison]]:
    """Inverse of :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    out: List[Union[RunResult, PolicyComparison]] = []
    for data in payload:
        kind = data.get("kind")
        if kind == "RunResult":
            out.append(run_result_from_dict(data))
        elif kind == "PolicyComparison":
            out.append(comparison_from_dict(data))
        else:
            raise ValueError(f"unknown record kind: {kind!r}")
    return out


def _check(data: Dict, kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(f"expected a {kind} record, got {data.get('kind')!r}")
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('format')!r}")
