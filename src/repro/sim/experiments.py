"""Programmatic experiment API.

High-level functions that regenerate each of the paper's result sets as
structured data (lists of row dicts). The benchmark harness prints the
same numbers; this module is the API a downstream user or the CLI calls
to run the experiments at any scale and post-process the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, scaled_config
from repro.core.baselines import StaticFrequencyGovernor
from repro.cpu.workloads import MIXES, mix_names
from repro.sim.results import PolicyComparison
from repro.sim.runner import ExperimentRunner, RunnerSettings


@dataclass
class ExperimentResult:
    """Structured output of one experiment: named rows plus notes."""

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def column(self, key: str) -> List[object]:
        return [row[key] for row in self.rows]


def _comparison_row(mix: str, cmp: PolicyComparison) -> Dict[str, object]:
    return {
        "workload": mix,
        "policy": cmp.governor,
        "memory_savings": cmp.memory_energy_savings,
        "system_savings": cmp.system_energy_savings,
        "avg_cpi_increase": cmp.avg_cpi_increase,
        "worst_cpi_increase": cmp.worst_cpi_increase,
    }


def energy_savings(runner: ExperimentRunner,
                   mixes: Optional[Sequence[str]] = None
                   ) -> ExperimentResult:
    """Figures 5 and 6: MemScale vs baseline for each mix."""
    mixes = list(mixes) if mixes is not None else list(MIXES)
    result = ExperimentResult(
        "fig5_6_energy_savings",
        notes="MemScale vs all-on baseline at the configured CPI bound")
    for mix in mixes:
        _, cmp = runner.run_memscale(mix)
        result.rows.append(_comparison_row(mix, cmp))
    return result


def policy_comparison(runner: ExperimentRunner,
                      mixes: Optional[Sequence[str]] = None,
                      policies: Optional[Sequence[str]] = None
                      ) -> ExperimentResult:
    """Figures 9-11: every policy vs the baseline on the given mixes."""
    mixes = list(mixes) if mixes is not None else mix_names("MID")
    if policies is None:
        policies = ["Fast-PD", "Slow-PD", "Decoupled", "Static",
                    "MemScale(MemEnergy)", "MemScale", "MemScale+Fast-PD"]
    result = ExperimentResult(
        "fig9_11_policy_comparison",
        notes="all policies on identical traces, vs the all-on baseline")
    for policy in policies:
        for mix in mixes:
            cmp = runner.compare_named(mix, policy)
            result.rows.append(_comparison_row(mix, cmp))
    return result


def _sweep(configs: Iterable[Tuple[object, SystemConfig]],
           settings: RunnerSettings,
           mixes: Sequence[str], name: str, param: str) -> ExperimentResult:
    result = ExperimentResult(name)
    for value, config in configs:
        runner = ExperimentRunner(config=config, settings=settings)
        for mix in mixes:
            _, cmp = runner.run_memscale(mix)
            row = _comparison_row(mix, cmp)
            row[param] = value
            result.rows.append(row)
    return result


def sensitivity_cpi_bound(bounds: Sequence[float] = (0.01, 0.05, 0.10, 0.15),
                          settings: Optional[RunnerSettings] = None,
                          mixes: Optional[Sequence[str]] = None
                          ) -> ExperimentResult:
    """Figure 12: sweep the allowed CPI degradation."""
    settings = settings or RunnerSettings()
    mixes = list(mixes) if mixes is not None else mix_names("MID")
    configs = [(b, scaled_config().with_policy(cpi_bound=b)) for b in bounds]
    return _sweep(configs, settings, mixes, "fig12_cpi_bound", "cpi_bound")


def sensitivity_channels(channels: Sequence[int] = (2, 3, 4),
                         settings: Optional[RunnerSettings] = None,
                         mixes: Optional[Sequence[str]] = None
                         ) -> ExperimentResult:
    """Figure 13: sweep the channel count (total DIMMs held ~constant)."""
    settings = settings or RunnerSettings()
    mixes = list(mixes) if mixes is not None else mix_names("MID")
    configs = [
        (c, scaled_config().with_org(channels=c,
                                     dimms_per_channel=max(1, round(8 / c))))
        for c in channels
    ]
    return _sweep(configs, settings, mixes, "fig13_channels", "channels")


def sensitivity_memory_fraction(fractions: Sequence[float] = (0.3, 0.4, 0.5),
                                settings: Optional[RunnerSettings] = None,
                                mixes: Optional[Sequence[str]] = None
                                ) -> ExperimentResult:
    """Figure 14: sweep the DIMM share of server power."""
    settings = settings or RunnerSettings()
    mixes = list(mixes) if mixes is not None else mix_names("MID")
    configs = [(f, scaled_config().with_power(memory_power_fraction=f))
               for f in fractions]
    return _sweep(configs, settings, mixes, "fig14_memory_fraction",
                  "memory_fraction")


def sensitivity_proportionality(idle_fracs: Sequence[float] = (0.0, 0.5, 1.0),
                                settings: Optional[RunnerSettings] = None,
                                mixes: Optional[Sequence[str]] = None
                                ) -> ExperimentResult:
    """Figure 15: sweep MC/register idle power (power proportionality)."""
    settings = settings or RunnerSettings()
    mixes = list(mixes) if mixes is not None else mix_names("MID")
    configs = [(i, scaled_config().with_power(proportionality_idle_frac=i))
               for i in idle_fracs]
    return _sweep(configs, settings, mixes, "fig15_proportionality",
                  "idle_frac")


#: Default cap sweep: uncapped reference power down to ~60% of it.
DEFAULT_BUDGET_FRACTIONS = (1.0, 0.9, 0.8, 0.7, 0.6)


def cap_outcome_row(outcome) -> Dict[str, object]:
    """Flatten one :class:`~repro.sim.parallel.CapOutcome` to a row dict
    (the shape :func:`repro.analysis.cap_summary_table` renders)."""
    cap = outcome.cap or {}
    return {
        "workload": outcome.mix,
        "governor": outcome.governor,
        "budget_fraction": outcome.budget_fraction,
        "budget_w": outcome.budget_w,
        "avg_power_w": outcome.avg_power_w,
        "violations": cap.get("violation_count"),
        "time_over_frac": cap.get("time_over_cap_fraction"),
        "infeasible_epochs": cap.get("infeasible_epochs"),
        "peak_power_w": cap.get("peak_power_w"),
        "min_perf": outcome.min_perf,
        "worst_cpi_increase": outcome.comparison.worst_cpi_increase,
        "memory_savings": outcome.comparison.memory_energy_savings,
        "system_savings": outcome.comparison.system_energy_savings,
    }


def cap_sweep(mixes: Optional[Sequence[str]] = None,
              budget_fractions: Sequence[float] = DEFAULT_BUDGET_FRACTIONS,
              config: Optional[SystemConfig] = None,
              settings: Optional[RunnerSettings] = None,
              jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              telemetry_dir: Optional[str] = None,
              include_throttle: bool = True) -> ExperimentResult:
    """Power-cap budget sweep (the FastCap-style dual experiment).

    For each mix, sweeps the power budget from the uncapped baseline
    power down to ~60% of it and reports per-point violation, fairness
    (min-app normalized performance), and slowdown statistics, plus a
    naive lowest-frequency throttle reference row per mix. Routed
    through :func:`repro.sim.parallel.run_cap_sweep`, so runs share the
    on-disk trace/baseline cache with every other experiment.
    """
    from repro.sim.parallel import run_cap_sweep, split_outcomes

    mixes = list(mixes) if mixes is not None else mix_names("MID")
    outcomes = run_cap_sweep(
        mixes, budget_fractions, config=config, settings=settings,
        jobs=jobs, cache_dir=cache_dir, telemetry_dir=telemetry_dir,
        include_throttle=include_throttle)
    good, failed = split_outcomes(outcomes)
    notes = ("budgets are fractions of each mix's baseline average "
             "memory power; Throttle rows pin the slowest static "
             "frequency (the naive capping alternative)")
    if failed:
        notes += ("\nFAILED JOBS (excluded from the table):\n  "
                  + "\n  ".join(f.summary() for f in failed))
    result = ExperimentResult("cap_sweep", notes=notes)
    for outcome in good:
        result.rows.append(cap_outcome_row(outcome))
    return result


#: Default multi-domain sweep: global (CPU + memory) budget from the
#: uncoordinated reference power down to ~65% of it.
DEFAULT_MULTIDOMAIN_FRACTIONS = (1.0, 0.9, 0.8, 0.7, 0.65)


def multidomain_outcome_row(outcome) -> Dict[str, object]:
    """Flatten one :class:`~repro.sim.parallel.MultiDomainOutcome` to a
    row dict (the shape :func:`repro.analysis.multidomain_summary_table`
    renders)."""
    summary = outcome.summary or {}
    return {
        "workload": outcome.mix,
        "governor": outcome.governor,
        "coordinated": outcome.coordinated,
        "budget_fraction": outcome.budget_fraction,
        "budget_w": outcome.budget_w,
        "avg_power_w": outcome.avg_power_w,
        "avg_core_power_w": outcome.avg_core_power_w,
        "avg_core_mhz": summary.get("avg_core_mhz"),
        "violations": summary.get("violation_count"),
        "time_over_frac": summary.get("time_over_cap_fraction"),
        "infeasible_epochs": summary.get("infeasible_epochs"),
        "core_max_infeasible_epochs":
            summary.get("core_max_infeasible_epochs"),
        "mem_max_infeasible_epochs":
            summary.get("mem_max_infeasible_epochs"),
        "min_perf": outcome.min_perf,
        "worst_cpi_increase": outcome.comparison.worst_cpi_increase,
        "system_energy_j": outcome.system_energy_j,
    }


def multidomain_sweep(mixes: Optional[Sequence[str]] = None,
                      budget_fractions: Sequence[float] =
                      DEFAULT_MULTIDOMAIN_FRACTIONS,
                      config: Optional[SystemConfig] = None,
                      settings: Optional[RunnerSettings] = None,
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None,
                      telemetry_dir: Optional[str] = None,
                      include_memory_only: bool = True) -> ExperimentResult:
    """Coordinated CPU+memory budget sweep (the SysScale-style dual).

    For each mix, sweeps a *global* power budget — a fraction of the
    mix's baseline memory power plus modeled nominal core power — and
    runs both the coordinated :class:`MultiDomainGovernor` and the
    memory-only reference (a CapGovernor given the budget left after
    nominal core power). Reports per-point violation, per-domain
    infeasibility, fairness, and explicit-split system energy. Routed
    through :func:`repro.sim.parallel.run_multidomain_sweep`.
    """
    from repro.sim.parallel import run_multidomain_sweep, split_outcomes

    mixes = list(mixes) if mixes is not None else mix_names("MID")
    outcomes = run_multidomain_sweep(
        mixes, budget_fractions, config=config, settings=settings,
        jobs=jobs, cache_dir=cache_dir, telemetry_dir=telemetry_dir,
        include_memory_only=include_memory_only)
    outcomes, failed = split_outcomes(outcomes)
    notes = ("budgets are fractions of each mix's baseline memory power "
             "plus modeled nominal core power; MemOnly rows give the "
             "whole remaining budget to a memory-only CapGovernor "
             "(the uncoordinated split)")
    if failed:
        notes += ("\nFAILED JOBS (excluded from the table):\n  "
                  + "\n  ".join(f.summary() for f in failed))
    result = ExperimentResult("multidomain_sweep", notes=notes)
    for outcome in outcomes:
        result.rows.append(multidomain_outcome_row(outcome))
    return result


def timeline(runner: ExperimentRunner, mix: str) -> ExperimentResult:
    """Figures 7/8: per-epoch frequency / CPI / utilization series."""
    result_run, cmp = runner.run_memscale(mix)
    result = ExperimentResult(f"timeline_{mix}",
                              notes=f"worst CPI increase "
                                    f"{cmp.worst_cpi_increase:.1%}")
    for sample in result_run.timeline:
        result.rows.append({
            "time_us": sample.time_ns / 1000.0,
            "bus_mhz": sample.bus_mhz,
            "app_cpi": dict(sample.app_cpi),
            "mean_channel_util": float(sample.channel_util.mean()),
            "memory_power_w": sample.memory_power_w,
        })
    return result


def best_static_frequency(runner: ExperimentRunner, mix: str,
                          cpi_bound: Optional[float] = None
                          ) -> Tuple[float, PolicyComparison]:
    """The paper's hypothetical "manually tuned" static point: the lowest-
    energy static frequency that keeps every app within the bound.

    This is the unrealistic per-workload oracle Section 4.2.3 argues
    MemScale approximates without reboots.
    """
    if cpi_bound is None:
        cpi_bound = runner.config.policy.cpi_bound
    best: Optional[Tuple[float, PolicyComparison]] = None
    for bus_mhz in runner.config.sorted_bus_freqs():
        cmp = runner.compare(mix, StaticFrequencyGovernor(bus_mhz))
        if cmp.worst_cpi_increase > cpi_bound:
            continue
        if best is None or cmp.system_energy_savings > best[1].system_energy_savings:
            best = (bus_mhz, cmp)
    if best is None:
        raise RuntimeError(f"no static frequency satisfies the bound on {mix}")
    return best
