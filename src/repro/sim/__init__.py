"""System-level simulation: wiring, results, and experiment running.

Sub-modules: :mod:`~repro.sim.system` (the epoch loop),
:mod:`~repro.sim.runner` (serial orchestration),
:mod:`~repro.sim.parallel` (process-pool fan-out),
:mod:`~repro.sim.cache` (content-keyed on-disk artifact cache),
:mod:`~repro.sim.telemetry` (per-epoch JSONL streams),
:mod:`~repro.sim.results` / :mod:`~repro.sim.serialize`.
"""

from repro.sim.cache import DEFAULT_CACHE_DIR, ExperimentCache
from repro.sim.parallel import (
    CapJob,
    CapOutcome,
    SweepJob,
    SweepOutcome,
    generate_traces,
    run_cap_sweep,
    run_sweep,
)
from repro.sim.results import (
    ENERGY_COMPONENTS,
    EpochSample,
    PolicyComparison,
    RunResult,
    compare_to_baseline,
)
from repro.sim.runner import POLICY_NAMES, ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator
from repro.sim.telemetry import (
    JsonlTelemetry,
    ListTelemetry,
    TelemetrySink,
    load_telemetry,
)

__all__ = [
    "CapJob",
    "CapOutcome",
    "DEFAULT_CACHE_DIR",
    "ENERGY_COMPONENTS",
    "EpochSample",
    "ExperimentCache",
    "ExperimentRunner",
    "JsonlTelemetry",
    "ListTelemetry",
    "POLICY_NAMES",
    "PolicyComparison",
    "RunResult",
    "RunnerSettings",
    "SweepJob",
    "SweepOutcome",
    "SystemSimulator",
    "TelemetrySink",
    "compare_to_baseline",
    "generate_traces",
    "load_telemetry",
    "run_cap_sweep",
    "run_sweep",
]
