"""System-level simulation: wiring, results, and experiment running."""

from repro.sim.results import (
    ENERGY_COMPONENTS,
    EpochSample,
    PolicyComparison,
    RunResult,
    compare_to_baseline,
)
from repro.sim.runner import POLICY_NAMES, ExperimentRunner, RunnerSettings
from repro.sim.system import SystemSimulator

__all__ = [
    "ENERGY_COMPONENTS",
    "EpochSample",
    "ExperimentRunner",
    "POLICY_NAMES",
    "PolicyComparison",
    "RunResult",
    "RunnerSettings",
    "SystemSimulator",
    "compare_to_baseline",
]
