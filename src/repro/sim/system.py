"""Top-level system simulator.

Wires the CPU cluster, the memory subsystem, and a governor into the
two-step methodology of Section 4.1: traces drive the cores, the memory
simulator models the subsystem in detail, and the governor runs at
profile/epoch boundaries exactly as the OS policy would. The simulation
terminates when the slowest core has committed the target instruction
count (other cores keep replaying their traces in a loop, as in the
paper), and energy is integrated over the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.config import SystemConfig
from repro.core.governor import Governor
from repro.core.power_model import PowerModel
from repro.cpu.core_model import CpuCluster
from repro.cpu.trace import WorkloadTrace
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterFile, CounterSnapshot
from repro.memsim.engine import EventEngine
from repro.sim.results import (
    EpochSample,
    RunResult,
    accumulate_energy,
    breakdown_to_energy_dict,
)
from repro.sim.telemetry import TelemetrySink, epoch_record


class SystemSimulator:
    """One run: a workload trace under one energy-management governor.

    ``telemetry`` optionally attaches a
    :class:`~repro.sim.telemetry.TelemetrySink` that receives one JSONL
    record per epoch (schema in EXPERIMENTS.md). The default ``None``
    keeps the epoch loop free of telemetry work beyond a single
    ``is None`` test, so disabled telemetry has no measurable overhead.
    """

    def __init__(self, config: SystemConfig, workload: WorkloadTrace,
                 governor: Governor,
                 target_instructions: Optional[int] = None,
                 max_epochs: int = 200_000,
                 refresh_enabled: bool = True,
                 telemetry: Optional[TelemetrySink] = None):
        config.validate()
        if len(workload) == 0:
            raise ValueError("workload has no cores")
        self.config = config
        self.workload = workload
        self.governor = governor
        self.engine = EventEngine()
        self.controller = MemoryController(
            self.engine, config,
            powerdown_mode=governor.powerdown_mode,
            refresh_enabled=refresh_enabled,
            n_cores=len(workload))
        self.cluster = CpuCluster(self.engine, self.controller, config.cpu,
                                  workload.cores, loop_traces=True)
        self.power_model = PowerModel(config)
        # Approximate steady-state absorption (memsim/steady.py):
        # default-off surrogate that extrapolates stationary epoch
        # bodies instead of simulating every event.
        self._absorber = None
        if config.approx_steady_state:
            from repro.memsim.steady import SteadyStateAbsorber
            self._absorber = SteadyStateAbsorber(
                self.engine, self.controller, self.cluster, governor)
        if target_instructions is None:
            target_instructions = min(c.total_instructions
                                      for c in workload.cores)
        self.target_instructions = target_instructions
        self._max_epochs = max_epochs
        self._telemetry = telemetry

    # -- main loop ---------------------------------------------------------

    def run(self) -> RunResult:
        """Execute until every core reaches the instruction target."""
        cfg = self.config.policy
        governor = self.governor
        controller = self.controller
        engine = self.engine

        governor.setup(controller)
        self.cluster.set_target(self.target_instructions)
        self.cluster.start()

        energy_j: Dict[str, float] = {}
        timeline: List[EpochSample] = []
        device_mhz = governor.device_bus_mhz(controller)

        def take_snapshot() -> CounterSnapshot:
            self.cluster.sync_committed()
            return controller.snapshot()

        telemetry = self._telemetry
        epoch = 0
        epoch_start = engine.now
        snap_epoch = take_snapshot()
        finished = False
        while epoch < self._max_epochs and not finished:
            if telemetry is not None:
                energy_at_epoch_start = dict(energy_j)
            # ---- profiling phase (stage 1) ----
            freq_profile = controller.freq
            channels_profile = governor.channel_bus_mhz(controller)
            profile_end = epoch_start + cfg.profile_ns
            finished = self._run_until_or_done(profile_end)
            snap_profile = take_snapshot()
            delta_profile = CounterFile.delta(snap_epoch, snap_profile)
            self._account(energy_j, delta_profile, freq_profile, device_mhz,
                          channels_profile)
            if finished:
                delta_epoch = delta_profile
                freq_body = freq_profile
                epoch_end = engine.now
            else:
                # ---- control algorithm + re-lock (stages 2-3) ----
                epoch_end = epoch_start + cfg.epoch_ns
                governor.on_profile_end(delta_profile, controller,
                                        epoch_end - engine.now)

                # ---- epoch body at the new frequency ----
                freq_body = controller.freq
                channels_body = governor.channel_bus_mhz(controller)
                if self._absorber is not None:
                    finished = self._absorber.run_body(
                        epoch_end, self.cluster.all_reached_probe)
                else:
                    finished = self._run_until_or_done(epoch_end)
                epoch_end = engine.now
                snap_end = take_snapshot()
                delta_body = CounterFile.delta(snap_profile, snap_end)
                self._account(energy_j, delta_body, freq_body, device_mhz,
                              channels_body)

                # ---- slack update (stage 4) ----
                delta_epoch = CounterFile.delta(snap_epoch, snap_end)
                governor.on_epoch_end(delta_epoch, controller,
                                      epoch_end - epoch_start)
                snap_epoch = snap_end

            sample = self._sample_epoch(epoch_end, freq_body, delta_epoch,
                                        device_mhz)
            timeline.append(sample)
            if telemetry is not None:
                epoch_energy = {
                    k: v - energy_at_epoch_start.get(k, 0.0)
                    for k, v in energy_j.items()}
                telemetry.emit(epoch_record(
                    workload=self.workload.name,
                    governor=governor.name,
                    epoch=epoch,
                    t_start_ns=epoch_start,
                    t_end_ns=epoch_end,
                    bus_mhz=sample.bus_mhz,
                    actual_cpi=sample.app_cpi,
                    energy_j=epoch_energy,
                    memory_power_w=sample.memory_power_w,
                    channel_util=list(sample.channel_util),
                    governor_state=governor.telemetry_snapshot()))
            epoch += 1
            epoch_start = epoch_end
        if not finished:
            raise RuntimeError(
                f"workload {self.workload.name!r} did not reach "
                f"{self.target_instructions} instructions within "
                f"{self._max_epochs} epochs")

        if controller.validator is not None:
            controller.validator.finalize()

        wall = max(core.time_at_target_ns for core in self.cluster.cores)
        return RunResult(
            workload=self.workload.name,
            governor=governor.name,
            target_instructions=self.target_instructions,
            wall_time_ns=wall,
            sim_time_ns=engine.now,
            core_apps=[core.app_name for core in self.cluster.cores],
            core_time_at_target_ns=[core.time_at_target_ns
                                    for core in self.cluster.cores],
            energy_j=energy_j,
            timeline=timeline,
            transition_count=controller.transition_count,
            epochs=epoch,
        )

    # -- helpers --------------------------------------------------------------

    def _run_until_or_done(self, time_ns: float) -> bool:
        """Advance to ``time_ns``, stopping early the moment every core
        reaches its instruction target. Returns True when all reached.

        Delegates to the engine's fused loop so the per-event cost is a
        single heap pop plus one stop-predicate call, instead of the
        peek/step/check round-trip through three method boundaries.
        """
        return bool(self.engine.run_until_stopped(
            time_ns, self.cluster.all_reached_probe))

    def _account(self, energy_j: Dict[str, float], delta, freq,
                 device_mhz: Optional[float],
                 channel_mhz=None) -> None:
        if delta.interval_ns <= 0:
            return
        breakdown = self.power_model.measure(delta, freq,
                                             device_bus_mhz=device_mhz,
                                             channel_bus_mhz=channel_mhz)
        seconds = delta.interval_ns * 1e-9
        accumulate_energy(energy_j, breakdown_to_energy_dict(breakdown, seconds))

    def _sample_epoch(self, time_ns: float, freq, delta,
                      device_mhz: Optional[float]) -> EpochSample:
        cycle_ns = self.config.cpu.cycle_ns
        app_cpi: Dict[str, List[float]] = {}
        for core in self.cluster.cores:
            instr = float(delta.tic[core.core_id])
            if instr <= 0:
                continue
            cpi = delta.interval_ns / (instr * cycle_ns)
            app_cpi.setdefault(core.app_name, []).append(cpi)
        breakdown = self.power_model.measure(delta, freq,
                                             device_bus_mhz=device_mhz)
        util = np.array([delta.channel_utilization(c)
                         for c in range(self.config.org.channels)])
        return EpochSample(
            time_ns=time_ns,
            bus_mhz=freq.bus_mhz,
            app_cpi={app: float(np.mean(v)) for app, v in app_cpi.items()},
            channel_util=util,
            memory_power_w=breakdown.memory_w,
        )
