"""Structured per-epoch telemetry.

The simulator and governor can stream one JSON record per epoch to a
:class:`TelemetrySink` — the observability layer the gem5 power-down
study (Jagtap et al.) argues is what makes epoch-based DVFS simulations
debuggable. Telemetry is *disabled by default*: the simulator holds
``None`` instead of a sink and pays only a single ``is None`` test per
epoch, so there is no measurable overhead unless a sink is attached.

Records follow the JSONL schema documented field-by-field in
``EXPERIMENTS.md`` ("Telemetry JSONL schema"). One line = one epoch:

    {"schema": 1, "kind": "epoch", "workload": "MID1",
     "governor": "MemScale", "epoch": 3, "t_start_ns": ..., ...}

Sinks:

* :class:`JsonlTelemetry` — append records to a ``.jsonl`` file;
* :class:`ListTelemetry`  — keep records in memory (tests, notebooks).
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

#: Version written into every record; bump on schema changes.
#: v1: the original epoch record. v2: appends the nullable power-cap
#: fields (``budget_w``, ``predicted_power_w``, ``cap_feasible``,
#: ``min_perf_norm``). v3: appends the nullable per-domain fields
#: (``core_freq_mhz``, ``core_power_w``, ``domain_budget_split``)
#: contributed by the multi-domain governor. v4: appends the nullable
#: placement fields (``migrations_per_epoch``,
#: ``rank_state_residency``) contributed by the placement governor.
#: v1/v2/v3 files remain loadable.
TELEMETRY_SCHEMA_VERSION = 4

#: Field names of a v1 epoch record, in emission order.
EPOCH_RECORD_FIELDS_V1 = (
    "schema", "kind", "workload", "governor", "epoch",
    "t_start_ns", "t_end_ns", "bus_mhz",
    "predicted_cpi", "actual_cpi", "slack_ns",
    "feasible_bus_mhz", "limited_by_slack",
    "energy_j", "memory_power_w", "channel_util",
)

#: Field names of a v2 epoch record: v1 plus the power-cap fields,
#: null for every governor without a budget.
EPOCH_RECORD_FIELDS_V2 = EPOCH_RECORD_FIELDS_V1 + (
    "budget_w", "predicted_power_w", "cap_feasible", "min_perf_norm",
)

#: Field names of a v3 epoch record: v2 plus the per-domain fields,
#: null for every governor except
#: :class:`~repro.cap.multidomain.MultiDomainGovernor`.
EPOCH_RECORD_FIELDS_V3 = EPOCH_RECORD_FIELDS_V2 + (
    "core_freq_mhz", "core_power_w", "domain_budget_split",
)

#: Field names of an epoch record, in emission order (the JSONL schema
#: contract checked by tests and documented in EXPERIMENTS.md). The
#: placement fields are null for every governor except
#: :class:`~repro.placement.governor.PlacementGovernor`.
EPOCH_RECORD_FIELDS = EPOCH_RECORD_FIELDS_V3 + (
    "migrations_per_epoch", "rank_state_residency",
)


class TelemetrySink(abc.ABC):
    """Receiver of per-epoch telemetry records."""

    @abc.abstractmethod
    def emit(self, record: Dict[str, object]) -> None:
        """Consume one epoch record (a JSON-serializable dict)."""

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ListTelemetry(TelemetrySink):
    """In-memory sink; ``records`` holds every emitted dict."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)


class JsonlTelemetry(TelemetrySink):
    """Append-to-file sink writing one JSON object per line."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def emit(self, record: Dict[str, object]) -> None:
        self._fh.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def epoch_record(workload: str, governor: str, epoch: int,
                 t_start_ns: float, t_end_ns: float, bus_mhz: float,
                 actual_cpi: Dict[str, float],
                 energy_j: Dict[str, float],
                 memory_power_w: float,
                 channel_util: List[float],
                 governor_state: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """Build one schema-conformant epoch record.

    ``governor_state`` carries the policy-side fields contributed by
    :meth:`repro.core.governor.Governor.telemetry_snapshot`
    (``predicted_cpi``, ``slack_ns``, ``feasible_bus_mhz``,
    ``limited_by_slack``, the cap governor's ``budget_w``,
    ``predicted_power_w``, ``cap_feasible``, ``min_perf_norm``, the
    multi-domain governor's ``core_freq_mhz``, ``core_power_w``,
    ``domain_budget_split``, and the placement governor's
    ``migrations_per_epoch``, ``rank_state_residency``); governors
    without the matching model leave them ``None``.
    """
    state = governor_state or {}
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "kind": "epoch",
        "workload": workload,
        "governor": governor,
        "epoch": epoch,
        "t_start_ns": float(t_start_ns),
        "t_end_ns": float(t_end_ns),
        "bus_mhz": float(bus_mhz),
        "predicted_cpi": state.get("predicted_cpi"),
        "actual_cpi": {app: float(v) for app, v in actual_cpi.items()},
        "slack_ns": state.get("slack_ns"),
        "feasible_bus_mhz": state.get("feasible_bus_mhz"),
        "limited_by_slack": state.get("limited_by_slack"),
        "energy_j": {k: float(v) for k, v in energy_j.items()},
        "memory_power_w": float(memory_power_w),
        "channel_util": [float(u) for u in channel_util],
        "budget_w": state.get("budget_w"),
        "predicted_power_w": state.get("predicted_power_w"),
        "cap_feasible": state.get("cap_feasible"),
        "min_perf_norm": state.get("min_perf_norm"),
        "core_freq_mhz": state.get("core_freq_mhz"),
        "core_power_w": state.get("core_power_w"),
        "domain_budget_split": state.get("domain_budget_split"),
        "migrations_per_epoch": state.get("migrations_per_epoch"),
        "rank_state_residency": state.get("rank_state_residency"),
    }


def validate_epoch_record(record: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` matches the JSONL schema.

    Used by tests and by consumers replaying telemetry files from
    other runs; checks field presence, types, and the schema version.
    The current (v4) and every historical version are accepted — v1
    files lack the cap fields, v2 files lack the per-domain fields,
    v3 files lack the placement fields.
    """
    version = record.get("schema")
    if version not in (1, 2, 3, TELEMETRY_SCHEMA_VERSION):
        raise ValueError(f"unsupported telemetry schema {version!r}")
    required = {1: EPOCH_RECORD_FIELDS_V1,
                2: EPOCH_RECORD_FIELDS_V2,
                3: EPOCH_RECORD_FIELDS_V3}.get(version,
                                               EPOCH_RECORD_FIELDS)
    missing = [f for f in required if f not in record]
    if missing:
        raise ValueError(f"epoch record missing fields: {missing}")
    if record["kind"] != "epoch":
        raise ValueError(f"unknown record kind {record['kind']!r}")
    for name, types in (("workload", str), ("governor", str), ("epoch", int),
                        ("t_start_ns", (int, float)),
                        ("t_end_ns", (int, float)),
                        ("bus_mhz", (int, float)),
                        ("memory_power_w", (int, float)),
                        ("actual_cpi", dict), ("energy_j", dict),
                        ("channel_util", list)):
        if not isinstance(record[name], types):
            raise ValueError(f"field {name!r} has type "
                             f"{type(record[name]).__name__}")
    for name in ("predicted_cpi", "slack_ns", "feasible_bus_mhz"):
        if record[name] is not None and not isinstance(record[name], list):
            raise ValueError(f"field {name!r} must be a list or null")
    if record["limited_by_slack"] is not None \
            and not isinstance(record["limited_by_slack"], bool):
        raise ValueError("field 'limited_by_slack' must be a bool or null")
    if version == 1:
        return
    for name in ("budget_w", "predicted_power_w", "min_perf_norm"):
        if record[name] is not None \
                and not isinstance(record[name], (int, float)):
            raise ValueError(f"field {name!r} must be a number or null")
    if record["cap_feasible"] is not None \
            and not isinstance(record["cap_feasible"], bool):
        raise ValueError("field 'cap_feasible' must be a bool or null")
    if version == 2:
        return
    for name in ("core_freq_mhz", "core_power_w"):
        if record[name] is not None \
                and not isinstance(record[name], (int, float)):
            raise ValueError(f"field {name!r} must be a number or null")
    if record["domain_budget_split"] is not None \
            and not isinstance(record["domain_budget_split"], dict):
        raise ValueError("field 'domain_budget_split' must be a dict "
                         "or null")
    if version == 3:
        return
    if record["migrations_per_epoch"] is not None \
            and not isinstance(record["migrations_per_epoch"], int):
        raise ValueError("field 'migrations_per_epoch' must be an int "
                         "or null")
    if record["rank_state_residency"] is not None \
            and not isinstance(record["rank_state_residency"], dict):
        raise ValueError("field 'rank_state_residency' must be a dict "
                         "or null")


def read_telemetry(path: PathLike
                   ) -> Tuple[List[Dict[str, object]], int]:
    """Read and validate a telemetry JSONL file; ``(records, skipped)``.

    A run killed mid-write (SIGKILL, OOM, power loss) leaves a partial
    final line in its append-only JSONL stream; that trailing fragment
    is *skipped and counted* — losing one epoch record must not lose
    the file. Only an unparseable **final** line gets this treatment
    (the truncation signature): a line that fails to parse anywhere
    before the end, or one that parses but violates the epoch schema,
    means real corruption and still raises.
    """
    lines = [(i, line.strip()) for i, line in
             enumerate(Path(path).read_text(encoding="utf-8").splitlines())
             if line.strip()]
    records: List[Dict[str, object]] = []
    skipped = 0
    for pos, (i, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            if pos == len(lines) - 1:
                skipped += 1
                continue
            raise
        validate_epoch_record(record)
        records.append(record)
    return records, skipped


def load_telemetry(path: PathLike) -> List[Dict[str, object]]:
    """Read and validate every record of a telemetry JSONL file.

    Convenience wrapper over :func:`read_telemetry` that discards the
    truncated-tail count; callers that want to surface it (``repro
    query``, analysis notebooks) should use :func:`read_telemetry`.
    """
    records, _ = read_telemetry(path)
    return records
