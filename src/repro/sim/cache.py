"""Content-keyed on-disk cache for traces and baseline runs.

Every experiment regenerates the same two expensive artifacts: the
deterministic :class:`~repro.cpu.trace.WorkloadTrace` of a mix and the
all-on maximum-frequency baseline :class:`~repro.sim.results.RunResult`
that every policy comparison normalizes against (Section 4.1). Neither
survives the process in the serial runner, so a Figure sweep pays for
them on every invocation. This cache keys both by the *content* of what
produced them — the trace generator inputs for traces, the full
:class:`~repro.config.SystemConfig` plus runner settings for baselines —
and stores them under ``.repro_cache/``: traces in the *columnar*
``.npy`` + sidecar layout (``WorkloadTrace.save_columnar``), which
workers of a parallel sweep load with ``mmap_mode="r"`` so one on-disk
copy feeds every process through the OS page cache; run results as
:mod:`repro.sim.serialize` JSON. Legacy compressed ``.npz`` trace
entries from older caches are still read (they simply are not
memory-mappable); new stores always write the columnar form.

Properties:

* **hit/miss by construction** — any change to the configuration, the
  scale settings, or the seed changes the key, so stale entries can
  never be returned; they are simply never looked up again;
* **corruption-safe** — unreadable or truncated entries are treated as
  misses (and deleted), falling back to regeneration;
* **atomic** — entries are written to a temp file and ``os.replace``d
  into place, so concurrent writers (the parallel runner's workers)
  can only ever observe complete entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.config import SystemConfig
from repro.cpu.trace import WorkloadTrace, columnar_sidecar_path
from repro.sim.results import RunResult
from repro.sim.serialize import run_result_from_dict, run_result_to_dict

PathLike = Union[str, Path]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bumped whenever the cached representation (or the simulation it
#: captures) changes incompatibly; old entries then become unreachable.
#: Format 2: DDR3 timing bugfixes (freeze-window MC latency, per-channel
#: freeze, refresh stagger, writeback-pressure accounting) changed
#: simulated results, so format-1 baselines are stale.
CACHE_FORMAT = 2


def config_fingerprint(config: SystemConfig) -> Dict[str, object]:
    """A JSON-serializable dict capturing every field of ``config``.

    ``validate_protocol`` is excluded: the validator only observes, so a
    run produces byte-identical results armed or not and the two may
    share cache entries. ``fast_forward`` and ``busy_absorption`` are
    excluded for the same reason — the analytic idle-period batch and
    the inline continuation-chain path both reproduce event-driven
    results bit for bit, so all settings may share entries.
    ``approx_steady_state`` is deliberately *kept*: it trades accuracy
    for speed, so its runs must never alias exact-mode entries.
    """
    payload = dataclasses.asdict(config)
    payload.pop("validate_protocol", None)
    payload.pop("fast_forward", None)
    payload.pop("busy_absorption", None)
    return payload


def _digest(payload: Dict[str, object]) -> str:
    """Stable content hash of a JSON-serializable key payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Characters allowed in an imported-trace name (it becomes a file name).
_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def check_trace_name(name: str) -> str:
    """Validate a user-chosen imported-trace name; returns it unchanged."""
    if not name or not set(name) <= _NAME_OK:
        raise ValueError(
            f"invalid trace name {name!r}: use letters, digits, and ._- only")
    return name


class ExperimentCache:
    """Directory-backed store of traces and baseline run results."""

    def __init__(self, root: PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------

    def trace_key(self, mix: str, cores: int, instructions_per_core: int,
                  seed: int) -> str:
        """Content key of a generated trace.

        Traces depend only on the generator inputs, not on the memory
        configuration, so configuration sweeps (Figures 12-15) share
        one cached trace per mix.
        """
        return _digest({
            "format": CACHE_FORMAT, "kind": "trace", "mix": mix,
            "cores": cores, "instructions": instructions_per_core,
            "seed": seed,
        })

    def baseline_key(self, config: SystemConfig, mix: str, cores: int,
                     instructions_per_core: int, seed: int) -> str:
        """Content key of an all-on baseline run (config-sensitive)."""
        return _digest({
            "format": CACHE_FORMAT, "kind": "baseline", "mix": mix,
            "cores": cores, "instructions": instructions_per_core,
            "seed": seed, "config": config_fingerprint(config),
        })

    # -- traces ------------------------------------------------------------

    def load_trace(self, key: str) -> Optional[WorkloadTrace]:
        """The cached trace for ``key``, or None on a miss.

        Columnar entries are loaded with ``mmap_mode="r"``: the arrays
        handed to the replayer are views of a shared read-only map, so
        concurrent sweep workers pay for the trace bytes once (in the
        OS page cache) instead of once per process.
        """
        path = self._trace_path(key)
        sidecar = columnar_sidecar_path(path)
        if path.exists() and sidecar.exists():
            try:
                trace = WorkloadTrace.load_columnar(path, mmap=True)
            except Exception:
                # Corrupted / truncated entry: discard and regenerate.
                path.unlink(missing_ok=True)
                sidecar.unlink(missing_ok=True)
            else:
                self.hits += 1
                return trace
        legacy = self._legacy_trace_path(key)
        if legacy.exists():
            try:
                trace = WorkloadTrace.load(legacy)
            except Exception:
                legacy.unlink(missing_ok=True)
            else:
                self.hits += 1
                return trace
        self.misses += 1
        return None

    def store_trace(self, key: str, trace: WorkloadTrace) -> Path:
        path = self._trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # np.save appends ".npy" unless the name already ends with it,
        # so the temp files must carry the final suffix. The data file
        # is moved into place before the sidecar: a reader only trusts
        # an entry once both halves exist.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npy")
        os.close(fd)
        tmp_sidecar = columnar_sidecar_path(tmp)
        try:
            trace.save_columnar(tmp)
            os.replace(tmp, path)
            os.replace(tmp_sidecar, columnar_sidecar_path(path))
        finally:
            Path(tmp).unlink(missing_ok=True)
            tmp_sidecar.unlink(missing_ok=True)
        return path

    # -- imported external traces -------------------------------------------
    #
    # Unlike generated traces (content-keyed, regenerable on a miss),
    # imported traces are *named* originals: the source file may be gone,
    # so entries live under ``imported/<name>`` with a JSON meta record
    # carrying a content digest. The digest folds into baseline cache
    # keys so re-importing a different trace under the same name can
    # never resurrect a stale baseline.

    def store_imported_trace(self, name: str, trace: WorkloadTrace,
                             summary: Optional[Dict[str, object]] = None
                             ) -> Path:
        """Persist an ingested trace under ``imported/<name>``."""
        check_trace_name(name)
        path = self._imported_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npy")
        os.close(fd)
        tmp_sidecar = columnar_sidecar_path(tmp)
        try:
            trace.save_columnar(tmp)
            digest = self._file_digest(Path(tmp), tmp_sidecar)
            meta = {"name": name, "digest": digest,
                    "summary": summary or {}}
            fd, tmp_meta = tempfile.mkstemp(dir=path.parent,
                                            suffix=".import.json.tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(meta))
            # Data first, sidecar second, meta last: a reader only
            # trusts the entry once all pieces exist.
            os.replace(tmp, path)
            os.replace(tmp_sidecar, columnar_sidecar_path(path))
            os.replace(tmp_meta, self._imported_meta_path(name))
        finally:
            Path(tmp).unlink(missing_ok=True)
            tmp_sidecar.unlink(missing_ok=True)
        return path

    def load_imported_trace(self, name: str) -> Optional[WorkloadTrace]:
        """The imported trace stored under ``name``, or None."""
        path = self._imported_path(name)
        if not (path.exists() and columnar_sidecar_path(path).exists()):
            return None
        return WorkloadTrace.load_columnar(path, mmap=True)

    def imported_trace_digest(self, name: str) -> Optional[str]:
        """Content digest of the named imported trace, or None."""
        meta_path = self._imported_meta_path(name)
        if meta_path.exists():
            try:
                return str(json.loads(meta_path.read_text())["digest"])
            except (ValueError, KeyError):
                pass
        path = self._imported_path(name)
        sidecar = columnar_sidecar_path(path)
        if path.exists() and sidecar.exists():
            return self._file_digest(path, sidecar)
        return None

    def imported_trace_meta(self, name: str) -> Optional[Dict[str, object]]:
        """The stored import record (digest + ingestion summary)."""
        meta_path = self._imported_meta_path(name)
        if not meta_path.exists():
            return None
        try:
            return json.loads(meta_path.read_text())
        except ValueError:
            return None

    def imported_names(self) -> List[str]:
        """Names of complete imported traces (both halves present)."""
        imported = self.root / "imported"
        if not imported.exists():
            return []
        return sorted(
            p.stem for p in imported.glob("*.npy")
            if columnar_sidecar_path(p).exists())

    @staticmethod
    def _file_digest(*paths: Path) -> str:
        h = hashlib.sha256()
        for path in paths:
            h.update(path.read_bytes())
        return h.hexdigest()

    def _imported_path(self, name: str) -> Path:
        return self.root / "imported" / f"{name}.npy"

    def _imported_meta_path(self, name: str) -> Path:
        return self.root / "imported" / f"{name}.import.json"

    # -- baseline run results ----------------------------------------------

    def load_run(self, key: str) -> Optional[RunResult]:
        """The cached run result for ``key``, or None on a miss."""
        path = self._run_path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            result = run_result_from_dict(json.loads(path.read_text()))
        except Exception:
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store_run(self, key: str, result: RunResult) -> Path:
        path = self._run_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(run_result_to_dict(result))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        finally:
            Path(tmp).unlink(missing_ok=True)
        return path

    # -- bookkeeping -------------------------------------------------------

    @property
    def entries(self) -> int:
        """Number of *usable* cache entries currently on disk.

        Columnar trace entries count only when both halves (``.npy``
        plus its sidecar) exist — a lone half can never be loaded.
        """
        if not self.root.exists():
            return 0
        complete, _ = self._scan_traces()
        return (len(complete)
                + sum(1 for _ in self.root.glob("traces/*.npz"))
                + sum(1 for _ in self.root.glob("runs/*.json")))

    def _scan_traces(self) -> Tuple[List[Path], List[Path]]:
        """Columnar trace files on disk: ``(complete, orphans)``.

        ``complete`` holds the ``.npy`` paths whose sidecar is present;
        ``orphans`` holds lone halves — a ``.npy`` missing its sidecar
        or a sidecar missing its data file, the residue of an
        interrupted writer or a half-finished prune. Orphans are dead
        weight: :meth:`load_trace` will never trust them, so stats must
        not count them as entries and :meth:`prune` sweeps them.
        """
        complete: List[Path] = []
        orphans: List[Path] = []
        traces = self.root / "traces"
        if not traces.exists():
            return complete, orphans
        npys = set(traces.glob("*.npy"))
        sidecars = set(traces.glob("*.npy.meta.json"))
        for npy in sorted(npys):
            if columnar_sidecar_path(npy) in sidecars:
                complete.append(npy)
            else:
                orphans.append(npy)
        for sidecar in sorted(sidecars):
            data = Path(str(sidecar)[:-len(".meta.json")])
            if data not in npys:
                orphans.append(sidecar)
        return complete, orphans

    def stats(self) -> Dict[str, object]:
        """Entry counts and on-disk footprint (for ``repro cache``)."""
        trace_entries = legacy_trace_entries = run_entries = 0
        orphan_files = 0
        total_bytes = 0
        imported_entries = 0
        if self.root.exists():
            complete, orphans = self._scan_traces()
            trace_entries = len(complete)
            orphan_files = len(orphans)
            imported_entries = len(self.imported_names())
            for path in self.root.rglob("*"):
                if not path.is_file():
                    continue
                total_bytes += path.stat().st_size
                if path.parent.name == "traces" and path.suffix == ".npz":
                    legacy_trace_entries += 1
                elif path.parent.name == "runs" and path.suffix == ".json":
                    run_entries += 1
        return {
            "root": str(self.root),
            "trace_entries": trace_entries,
            "legacy_trace_entries": legacy_trace_entries,
            "imported_entries": imported_entries,
            "run_entries": run_entries,
            "orphan_files": orphan_files,
            "total_bytes": total_bytes,
        }

    def prune(self) -> Dict[str, int]:
        """Delete every entry (traces, sidecars, runs); returns what was
        removed. The root directory itself is kept.

        Columnar entries are removed pair-wise, data half first: an
        interruption between the two unlinks leaves an orphan
        *sidecar*, which readers already refuse to load and the next
        prune (or stats) treats as stale rather than as an entry.
        Pre-existing orphan halves are swept the same way.
        """
        files_removed = 0
        bytes_removed = 0

        def _rm(path: Path) -> None:
            nonlocal files_removed, bytes_removed
            if path.is_file():
                bytes_removed += path.stat().st_size
                path.unlink()
                files_removed += 1

        if self.root.exists():
            complete, orphans = self._scan_traces()
            for npy in complete:
                _rm(npy)
                _rm(columnar_sidecar_path(npy))
            for orphan in orphans:
                _rm(orphan)
            for path in sorted(self.root.rglob("*"), reverse=True):
                if path.is_file():
                    _rm(path)
                elif path.is_dir():
                    try:
                        path.rmdir()
                    except OSError:  # pragma: no cover - non-empty dir
                        pass
        return {"files_removed": files_removed,
                "bytes_removed": bytes_removed}

    def _trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.npy"

    def _legacy_trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.npz"

    def _run_path(self, key: str) -> Path:
        return self.root / "runs" / f"{key}.json"
