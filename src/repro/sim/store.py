"""Sharded content-addressed result store for the sweep service.

Every finished job of a :class:`~repro.sim.service.SweepService` —
successful or failed — becomes one JSON record on disk, addressed by
the job's content key (a sha256 over mix, point, config hash, and
settings hash; see :meth:`repro.sim.service.JobSpec.key`). Records are
sharded into 256 two-hex-digit subdirectories so a store accumulated
over thousands of sweeps never puts them all in one directory:

    <root>/ab/abcdef....json

Properties mirror the experiment cache's:

* **content-addressed** — the key covers everything that determines
  the outcome, so re-running an identical job overwrites the record
  with identical deterministic content, and sweeps *compose*: a later
  sweep over a superset of jobs only executes the new ones;
* **atomic** — records are written to a temp file and ``os.replace``d
  into place, so readers (and a crash mid-write) can only ever observe
  complete records;
* **self-describing** — each record carries its job spec, status,
  attempt count, and either the full serialized outcome or a
  structured failure (exception class, message, worker traceback), so
  ``repro query`` needs nothing but the store.

Record schema (``STORE_FORMAT`` 1)::

    {"format": 1, "key": "<sha256>", "status": "ok" | "failed",
     "job": {"kind": ..., "mix": ..., "policy": ...,
             "budget_fraction": ..., "coordinated": ..., "label": ...},
     "config_hash": "...", "settings_hash": "...",
     "attempts": 1, "wall_s": 0.42,
     "outcome": {...}        # ok records: serialized outcome
     "error": {"error_type": ..., "message": ..., "traceback": ...}}

``outcome`` is kind-specific: the common core is the serialized
:class:`~repro.sim.results.RunResult` plus its
:class:`~repro.sim.results.PolicyComparison`; cap, multi-domain,
placement, and scenario outcomes add their bookkeeping fields.
:func:`outcome_to_dict` / :func:`outcome_from_dict` round-trip all five
outcome dataclasses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.sim.parallel import (CapOutcome, JobFailure, MultiDomainOutcome,
                                PlacementOutcome, ScenarioOutcome,
                                SweepOutcome)
from repro.sim.serialize import (comparison_from_dict, comparison_to_dict,
                                 run_result_from_dict, run_result_to_dict)

PathLike = Union[str, Path]

#: Bumped whenever the record layout changes incompatibly.
STORE_FORMAT = 1

#: Outcome fields that vary between identical re-executions (timing,
#: cache luck, file placement) — excluded from deterministic digests.
VOLATILE_OUTCOME_FIELDS = ("wall_s", "cache_hits", "telemetry_path")


# -- outcome (de)serialization ---------------------------------------------

def outcome_to_dict(outcome: object) -> Dict[str, object]:
    """JSON-ready dictionary of a sweep/cap/multidomain outcome."""
    if isinstance(outcome, SweepOutcome):
        return {
            "kind": "policy",
            "mix": outcome.mix,
            "policy": outcome.policy,
            "result": run_result_to_dict(outcome.result),
            "comparison": comparison_to_dict(outcome.comparison),
            "wall_s": outcome.wall_s,
            "cache_hits": outcome.cache_hits,
            "telemetry_path": outcome.telemetry_path,
        }
    if isinstance(outcome, CapOutcome):
        return {
            "kind": "cap",
            "mix": outcome.mix,
            "budget_fraction": outcome.budget_fraction,
            "budget_w": outcome.budget_w,
            "governor": outcome.governor,
            "result": run_result_to_dict(outcome.result),
            "comparison": comparison_to_dict(outcome.comparison),
            "min_perf": outcome.min_perf,
            "avg_power_w": outcome.avg_power_w,
            "cap": outcome.cap,
            "wall_s": outcome.wall_s,
            "cache_hits": outcome.cache_hits,
            "telemetry_path": outcome.telemetry_path,
        }
    if isinstance(outcome, MultiDomainOutcome):
        return {
            "kind": "multidomain",
            "mix": outcome.mix,
            "budget_fraction": outcome.budget_fraction,
            "budget_w": outcome.budget_w,
            "governor": outcome.governor,
            "coordinated": outcome.coordinated,
            "result": run_result_to_dict(outcome.result),
            "comparison": comparison_to_dict(outcome.comparison),
            "min_perf": outcome.min_perf,
            "avg_power_w": outcome.avg_power_w,
            "avg_core_power_w": outcome.avg_core_power_w,
            "core_energy_j": outcome.core_energy_j,
            "system_energy_j": outcome.system_energy_j,
            "summary": outcome.summary,
            "wall_s": outcome.wall_s,
            "cache_hits": outcome.cache_hits,
            "telemetry_path": outcome.telemetry_path,
        }
    if isinstance(outcome, ScenarioOutcome):
        return {
            "kind": "scenario",
            "mix": outcome.mix,
            "policy": outcome.policy,
            "device": outcome.device,
            "result": run_result_to_dict(outcome.result),
            "comparison": comparison_to_dict(outcome.comparison),
            "background_share": outcome.background_share,
            "wall_s": outcome.wall_s,
            "cache_hits": outcome.cache_hits,
            "telemetry_path": outcome.telemetry_path,
        }
    if isinstance(outcome, PlacementOutcome):
        return {
            "kind": "placement",
            "mix": outcome.mix,
            "placed": outcome.placed,
            "governor": outcome.governor,
            "result": run_result_to_dict(outcome.result),
            "comparison": comparison_to_dict(outcome.comparison),
            "min_perf": outcome.min_perf,
            "avg_power_w": outcome.avg_power_w,
            "placement": outcome.placement,
            "wall_s": outcome.wall_s,
            "cache_hits": outcome.cache_hits,
            "telemetry_path": outcome.telemetry_path,
        }
    raise TypeError(f"cannot serialize outcome {type(outcome).__name__}")


def outcome_from_dict(data: Dict[str, object]) -> object:
    """Inverse of :func:`outcome_to_dict`."""
    kind = data.get("kind")
    result = run_result_from_dict(data["result"])
    comparison = comparison_from_dict(data["comparison"])
    common = dict(wall_s=data["wall_s"], cache_hits=data["cache_hits"],
                  telemetry_path=data["telemetry_path"])
    if kind == "policy":
        return SweepOutcome(mix=data["mix"], policy=data["policy"],
                            result=result, comparison=comparison, **common)
    if kind == "cap":
        return CapOutcome(
            mix=data["mix"], budget_fraction=data["budget_fraction"],
            budget_w=data["budget_w"], governor=data["governor"],
            result=result, comparison=comparison,
            min_perf=data["min_perf"], avg_power_w=data["avg_power_w"],
            cap=data["cap"], **common)
    if kind == "multidomain":
        return MultiDomainOutcome(
            mix=data["mix"], budget_fraction=data["budget_fraction"],
            budget_w=data["budget_w"], governor=data["governor"],
            coordinated=data["coordinated"], result=result,
            comparison=comparison, min_perf=data["min_perf"],
            avg_power_w=data["avg_power_w"],
            avg_core_power_w=data["avg_core_power_w"],
            core_energy_j=data["core_energy_j"],
            system_energy_j=data["system_energy_j"],
            summary=data["summary"], **common)
    if kind == "scenario":
        return ScenarioOutcome(
            mix=data["mix"], policy=data["policy"], device=data["device"],
            result=result, comparison=comparison,
            background_share=data["background_share"], **common)
    if kind == "placement":
        return PlacementOutcome(
            mix=data["mix"], placed=data["placed"],
            governor=data["governor"], result=result,
            comparison=comparison, min_perf=data["min_perf"],
            avg_power_w=data["avg_power_w"],
            placement=data["placement"], **common)
    raise ValueError(f"unknown outcome kind {kind!r}")


def ok_record(key: str, job: Dict[str, object], outcome: object,
              config_hash: str, settings_hash: str,
              attempts: int = 1) -> Dict[str, object]:
    """Build one successful-outcome store record."""
    payload = outcome_to_dict(outcome)
    return {
        "format": STORE_FORMAT, "key": key, "status": "ok",
        "job": dict(job), "config_hash": config_hash,
        "settings_hash": settings_hash, "attempts": attempts,
        "wall_s": payload.get("wall_s", 0.0), "outcome": payload,
    }


def failure_record(key: str, job: Dict[str, object], failure: JobFailure,
                   config_hash: str, settings_hash: str
                   ) -> Dict[str, object]:
    """Build one failed-job store record (the structured error)."""
    return {
        "format": STORE_FORMAT, "key": key, "status": "failed",
        "job": dict(job), "config_hash": config_hash,
        "settings_hash": settings_hash, "attempts": failure.attempts,
        "wall_s": failure.wall_s,
        "error": {
            "error_type": failure.error_type,
            "message": failure.message,
            "traceback": failure.traceback,
        },
    }


def deterministic_digest(record: Dict[str, object]) -> str:
    """sha256 of a record's deterministic content.

    Volatile fields (wall clock, cache hits, telemetry file placement,
    attempt counts, failure tracebacks with memory addresses) are
    excluded, so two executions of the same job — e.g. an interrupted
    sweep resumed later vs an uninterrupted one — digest identically
    exactly when the simulation results are byte-identical.
    """
    payload = {
        "key": record.get("key"),
        "status": record.get("status"),
        "job": record.get("job"),
        "config_hash": record.get("config_hash"),
        "settings_hash": record.get("settings_hash"),
    }
    outcome = record.get("outcome")
    if outcome is not None:
        outcome = {k: v for k, v in outcome.items()
                   if k not in VOLATILE_OUTCOME_FIELDS}
        payload["outcome"] = outcome
    error = record.get("error")
    if error is not None:
        payload["error"] = {"error_type": error.get("error_type")}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- the store -------------------------------------------------------------

class ResultStore:
    """Directory-backed, sharded store of per-job outcome records."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """On-disk location of ``key``'s record (two-hex-char shard)."""
        return self.root / key[:2] / f"{key}.json"

    # -- writes ------------------------------------------------------------

    def put(self, record: Dict[str, object]) -> Path:
        """Atomically write one record; returns its path."""
        key = record.get("key")
        if not key:
            raise ValueError("record has no key")
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        finally:
            Path(tmp).unlink(missing_ok=True)
        return path

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The record for ``key``, or None. Unreadable records (a crash
        can only leave complete files, but disks rot) read as None."""
        path = self.path(key)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if record.get("format") != STORE_FORMAT:
            return None
        return record

    def status(self, key: str) -> Optional[str]:
        """``"ok"``, ``"failed"``, or None when ``key`` has no record."""
        record = self.get(key)
        return record.get("status") if record is not None else None

    def records(self) -> Iterator[Dict[str, object]]:
        """Every readable record in the store, key order."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if record.get("format") == STORE_FORMAT:
                yield record

    def query(self, mix: Optional[str] = None,
              policy: Optional[str] = None,
              kind: Optional[str] = None,
              status: Optional[str] = None) -> List[Dict[str, object]]:
        """Records matching every given filter (None = match all).

        ``policy`` matches the job's display point — the policy name
        for policy jobs, the ``Cap0.80`` / ``MD0.70`` style label for
        budget jobs — so one query API spans all sweep flavours.
        """
        out = []
        for record in self.records():
            job = record.get("job", {})
            if mix is not None and job.get("mix") != mix:
                continue
            if kind is not None and job.get("kind") != kind:
                continue
            if status is not None and record.get("status") != status:
                continue
            if policy is not None:
                label = job.get("label", "")
                point = label.split("/", 1)[-1]
                if job.get("policy") != policy and point != policy:
                    continue
            out.append(record)
        return out

    def counts(self) -> Dict[str, int]:
        """Record totals by status (plus ``"total"``)."""
        totals = {"total": 0, "ok": 0, "failed": 0}
        for record in self.records():
            totals["total"] += 1
            status = record.get("status")
            if status in totals:
                totals[status] += 1
        return totals

    def digests(self) -> Dict[str, str]:
        """Deterministic digest per key (see
        :func:`deterministic_digest`) — the store-identity check the
        crash-resume tests and the service smoke compare."""
        return {r["key"]: deterministic_digest(r) for r in self.records()}
