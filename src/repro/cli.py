"""Command-line interface.

Every experiment is reachable from the shell::

    python -m repro table1
    python -m repro run MID3 --policy MemScale --instructions 200000
    python -m repro figure 5
    python -m repro timeline MID3
    python -m repro stats MEM1
    python -m repro best-static MID1

All output is plain text (the same tables the benchmark harness prints).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.config import NS_PER_US, scaled_config
from repro.cpu.stats import workload_stats
from repro.cpu.workloads import MIXES, mix_names
from repro.sim import experiments
from repro.sim.runner import POLICY_NAMES, ExperimentRunner, RunnerSettings


def _make_runner(args) -> ExperimentRunner:
    config = scaled_config()
    if getattr(args, "bound", None) is not None:
        config = config.with_policy(cpi_bound=args.bound)
    return ExperimentRunner(
        config=config,
        settings=RunnerSettings(cores=args.cores,
                                instructions_per_core=args.instructions,
                                seed=args.seed))


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--instructions", type=int, default=120_000,
                        help="instructions per core (default 120000)")
    parser.add_argument("--cores", type=int, default=16,
                        help="core count, multiple of 4 (default 16)")
    parser.add_argument("--seed", type=int, default=2011,
                        help="trace generator seed")


def _check_mix(mix: str) -> str:
    if mix not in MIXES:
        raise SystemExit(f"unknown mix {mix!r}; choose from {list(MIXES)}")
    return mix


def cmd_table1(args) -> None:
    runner = _make_runner(args)
    rows = []
    for name, mix in MIXES.items():
        trace = runner.trace(name)
        rows.append([name, f"{trace.rpki:.2f}", f"{trace.wpki:.2f}",
                     " ".join(mix.apps)])
    print(format_table(["Name", "RPKI", "WPKI", "Applications (x4 each)"],
                       rows, title="Table 1: workload descriptions"))


def cmd_run(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    if args.policy not in POLICY_NAMES or args.policy == "Baseline":
        raise SystemExit(
            f"--policy must be one of {[p for p in POLICY_NAMES if p != 'Baseline']}")
    cmp = runner.compare_named(mix, args.policy)
    rows = [
        ["memory energy savings", f"{cmp.memory_energy_savings:+.1%}"],
        ["system energy savings", f"{cmp.system_energy_savings:+.1%}"],
        ["average CPI increase", f"{cmp.avg_cpi_increase:+.1%}"],
        ["worst CPI increase", f"{cmp.worst_cpi_increase:+.1%}"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.policy} on {mix} vs baseline"))
    app_rows = [[app, f"{inc:+.1%}"]
                for app, inc in sorted(cmp.app_cpi_increase.items())]
    print()
    print(format_table(["application", "CPI increase"], app_rows))


def cmd_figure(args) -> None:
    runner = _make_runner(args)
    settings = runner.settings
    fig = args.number
    if fig in (5, 6):
        result = experiments.energy_savings(runner)
    elif fig in (9, 10, 11):
        result = experiments.policy_comparison(runner)
    elif fig == 12:
        result = experiments.sensitivity_cpi_bound(settings=settings)
    elif fig == 13:
        result = experiments.sensitivity_channels(settings=settings)
    elif fig == 14:
        result = experiments.sensitivity_memory_fraction(settings=settings)
    elif fig == 15:
        result = experiments.sensitivity_proportionality(settings=settings)
    else:
        raise SystemExit("supported figures: 5 6 9 10 11 12 13 14 15 "
                         "(7/8 via the 'timeline' command)")
    if not result.rows:
        raise SystemExit("experiment produced no rows")
    columns = [c for c in result.rows[0] if c != "app_cpi"]
    rows = [[_fmt(row[c]) for c in columns] for row in result.rows]
    print(format_table(columns, rows, title=result.name))
    if result.notes:
        print(f"\n{result.notes}")


def cmd_timeline(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    result = experiments.timeline(runner, mix)
    rows = []
    for row in result.rows:
        worst_app = max(row["app_cpi"], key=row["app_cpi"].get) \
            if row["app_cpi"] else "-"
        rows.append([
            f"{row['time_us']:.1f}", f"{row['bus_mhz']:.0f}",
            f"{row['mean_channel_util']:.1%}",
            f"{row['memory_power_w']:.1f}", worst_app,
        ])
    print(format_table(
        ["time (us)", "bus MHz", "mean util", "memory W", "slowest app"],
        rows, title=f"timeline of {mix} under MemScale"))
    print(f"\n{result.notes}")


def cmd_stats(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    stats = workload_stats(runner.trace(mix), runner.config.org)
    print(f"{mix}: {stats.cores} cores, RPKI={stats.rpki:.2f}, "
          f"WPKI={stats.wpki:.2f}")
    rows = []
    for app, s in stats.per_app.items():
        rows.append([app, f"{s.rpki:.2f}", f"{s.wpki:.2f}",
                     f"{s.mean_gap:.0f}", f"{s.gap_cv:.2f}",
                     f"{s.sequential_fraction:.0%}",
                     f"{s.bank_entropy:.2f}"])
    print(format_table(
        ["app", "RPKI", "WPKI", "mean gap", "gap CV", "seq%", "bank entropy"],
        rows, title="per-application trace statistics"))


def cmd_best_static(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    bus_mhz, cmp = experiments.best_static_frequency(runner, mix)
    print(f"best static frequency for {mix}: {bus_mhz:.0f} MHz")
    print(f"  system energy savings : {cmp.system_energy_savings:+.1%}")
    print(f"  worst CPI increase    : {cmp.worst_cpi_increase:+.1%}")
    _, memscale = runner.run_memscale(mix)
    print(f"MemScale (no reboot, no oracle) on the same trace:")
    print(f"  system energy savings : {memscale.system_energy_savings:+.1%}")
    print(f"  worst CPI increase    : {memscale.worst_cpi_increase:+.1%}")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MemScale (ASPLOS 2011) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate Table 1")
    _add_scale_args(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("run", help="run one policy on one mix")
    p.add_argument("mix")
    p.add_argument("--policy", default="MemScale",
                   help=f"one of {[n for n in POLICY_NAMES if n != 'Baseline']}")
    p.add_argument("--bound", type=float, default=None,
                   help="CPI degradation bound (default 0.10)")
    _add_scale_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int)
    _add_scale_args(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("timeline", help="per-epoch timeline (Figures 7/8)")
    p.add_argument("mix")
    _add_scale_args(p)
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("stats", help="trace statistics for a mix")
    p.add_argument("mix")
    _add_scale_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("best-static",
                       help="oracle static frequency vs MemScale")
    p.add_argument("mix")
    _add_scale_args(p)
    p.set_defaults(func=cmd_best_static)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
