"""Command-line interface.

Every experiment is reachable from the shell::

    python -m repro table1
    python -m repro run MID3 --policy MemScale --instructions 200000
    python -m repro sweep --mixes MID1 MID2 --policies MemScale Static --jobs 4
    python -m repro sweep --scenarios mix1 mix4 --devices ddr3-1333 stt-mram
    python -m repro cap --mixes MID1 --budgets 0.9 0.8 0.7
    python -m repro placement --mixes MID1 --jobs 4
    python -m repro governors
    python -m repro scenarios
    python -m repro trace import k6.trc --name myapp --cores 4
    python -m repro run trace:myapp --cores 4
    python -m repro bench --smoke
    python -m repro perfbench
    python -m repro cache --prune
    python -m repro service run --dir sweeps --mixes MID1 --policies MemScale
    python -m repro service resume --dir sweeps
    python -m repro query --dir sweeps --status failed
    python -m repro figure 5
    python -m repro timeline MID3
    python -m repro stats MEM1
    python -m repro best-static MID1

All output is plain text (the same tables the benchmark harness prints).
``sweep`` fans (mix x policy) combinations across worker processes with
an on-disk artifact cache (``--jobs``, ``--cache-dir``, ``--no-cache``)
and optional per-epoch telemetry JSONL streams (``--telemetry DIR``);
``bench --smoke`` is the CI smoke target running one tiny mix through
the parallel path. ``scenarios`` lists the MPKI-laddered mix library
and the device technology tables; ``trace import`` converts external
DRAMSim2-style traces into replayable ``trace:<name>`` mixes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis import (cap_summary_table, device_energy_table,
                            format_table, multidomain_summary_table)
from repro.config import NS_PER_US, scaled_config
from repro.cpu.stats import workload_stats
from repro.cpu.workloads import MIXES, known_mix_names, mix_names
from repro.sim import experiments
from repro.sim.cache import DEFAULT_CACHE_DIR, ExperimentCache
from repro.sim.parallel import (run_cap_sweep, run_multidomain_sweep,
                                run_placement_sweep, run_scenario_sweep,
                                run_sweep, scenario_label, split_outcomes,
                                sweep_table)
from repro.sim.runner import (GOVERNOR_INFO, IMPORTED_TRACE_PREFIX,
                              POLICY_NAMES, ExperimentRunner,
                              RunnerSettings, governor_listing)
from repro.sim.telemetry import JsonlTelemetry

#: Budget points of the cap smoke leg (`repro cap --smoke` and the
#: capped leg of `repro bench --smoke`): a loose and a tight cap.
SMOKE_BUDGET_FRACTIONS = (0.9, 0.75)

#: Global-budget points of `repro multidomain --smoke`: a loose budget
#: both domains could meet alone, and a tight one neither can — the
#: point that demonstrates a coordinated split.
SMOKE_MULTIDOMAIN_FRACTIONS = (0.8, 0.55)

#: Default directory of `repro service smoke` (the CI artifact).
SERVICE_SMOKE_DIR = ".repro_service_smoke"

#: Default directory of `repro scenarios --smoke` (the CI artifact).
SCENARIOS_SMOKE_DIR = ".repro_scenarios_smoke"

#: Bundled DRAMSim2-style k6 trace the scenarios smoke imports.
SCENARIOS_SMOKE_TRACE = "tests/data/sample_k6.trc"

#: Ladder rungs x devices of the scenarios smoke's device leg: one
#: high-MPKI rung (large savings headroom) and one low-MPKI rung.
SCENARIOS_SMOKE_RUNGS = ("mix2", "mix5")

#: CPI-degradation bound of the device leg. Tighter than the default
#: 10%: the lowest static frequency happens to respect a loose bound on
#: the low-power device tables at smoke scale, which would make the
#: "MemScale beats Static" acceptance vacuous. At 5% the pinned-lowest
#: Static violates the bound on the high-MPKI rungs of every device
#: while MemScale adapts to stay inside it — the paper's actual claim.
SCENARIOS_SMOKE_CPI_BOUND = 0.05

#: Compliance slack on that bound (controller overshoot jitter).
SCENARIOS_SMOKE_CPI_SLACK = 0.01

#: Epoch/profile lengths of `repro placement --smoke` (ns). The
#: placement policy acts only at epoch boundaries, so the smoke
#: shortens epochs until a tiny run spans enough of them for
#: classification, migration, and self-refresh parking to all fire.
SMOKE_PLACEMENT_EPOCH_NS = 4_000.0
SMOKE_PLACEMENT_PROFILE_NS = 400.0

#: CPI-increase slack the placement smoke tolerates beyond the
#: configured MemScale bound: self-refresh wake-ups and migration copy
#: traffic add latency the frequency policy does not model.
SMOKE_PLACEMENT_CPI_SLACK = 0.05


def _report_failures(failed, what: str) -> None:
    """Print failed-job records and exit non-zero; a sweep with one bad
    job still printed its N-1 good rows before landing here."""
    if not failed:
        return
    lines = [f.summary() for f in failed]
    raise SystemExit(f"{what}: {len(failed)} job(s) FAILED "
                     f"(good outcomes above are complete):\n  "
                     + "\n  ".join(lines))


def _cache_from_args(args) -> Optional[ExperimentCache]:
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    return ExperimentCache(cache_dir)


def _device_config(config, device: Optional[str]):
    """Swap a named device technology table into ``config`` (no-op when
    ``device`` is falsy); unknown names exit with the registry listing."""
    if not device:
        return config
    from repro.scenarios.devices import apply_device
    try:
        return apply_device(config, device)
    except KeyError as exc:
        raise SystemExit(exc.args[0])


def _make_runner(args) -> ExperimentRunner:
    config = scaled_config()
    if getattr(args, "bound", None) is not None:
        config = config.with_policy(cpi_bound=args.bound)
    if getattr(args, "validate", False):
        config = config.replace(validate_protocol=True)
    if getattr(args, "no_fast_forward", False):
        config = config.replace(fast_forward=False)
    if getattr(args, "no_busy_absorption", False):
        config = config.replace(busy_absorption=False)
    if getattr(args, "approx_steady_state", False):
        config = config.replace(approx_steady_state=True)
    config = _device_config(config, getattr(args, "device", None))
    return ExperimentRunner(
        config=config,
        settings=RunnerSettings(cores=args.cores,
                                instructions_per_core=args.instructions,
                                seed=args.seed),
        cache=_cache_from_args(args))


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--instructions", type=int, default=120_000,
                        help="instructions per core (default 120000)")
    parser.add_argument("--cores", type=int, default=16,
                        help="core count, multiple of 4 (default 16)")
    parser.add_argument("--seed", type=int, default=2011,
                        help="trace generator seed")


def _add_ff_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="disable idle-period fast-forward (results are "
                             "byte-identical either way; this is the "
                             "debugging escape hatch)")
    parser.add_argument("--no-busy-absorption", action="store_true",
                        help="disable busy-period chain absorption "
                             "(results are byte-identical either way; "
                             "debugging escape hatch)")
    parser.add_argument("--approx-steady-state", action="store_true",
                        help="enable the approximate steady-state "
                             "surrogate: stationary epoch bodies are "
                             "extrapolated instead of simulated "
                             "(bounded-error results, not bit-exact)")


def _add_cache_args(parser: argparse.ArgumentParser,
                    default: Optional[str] = DEFAULT_CACHE_DIR) -> None:
    note = default if default is not None else "disabled"
    parser.add_argument("--cache-dir", default=default,
                        help=f"on-disk trace/baseline cache root "
                             f"(default: {note})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk cache")


def _add_retries_arg(parser: argparse.ArgumentParser,
                     default: int = 0) -> None:
    parser.add_argument("--retries", type=int, default=default,
                        help="extra attempts per job before recording "
                             f"its failure (default {default})")


def _check_mix(mix: str) -> str:
    # ``trace:<name>`` mixes resolve against the cache's imported-trace
    # store inside the runner, which owns the error message.
    if mix.startswith(IMPORTED_TRACE_PREFIX):
        return mix
    known = known_mix_names()
    if mix not in known:
        raise SystemExit(f"unknown mix {mix!r}; choose from {known} "
                         f"(or an imported 'trace:<name>')")
    return mix


def _add_device_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device", default=None, metavar="NAME",
                        help="device technology table to swap in "
                             "(see `repro scenarios`; default: the "
                             "config's DDR3-1333 timings/currents)")


def cmd_table1(args) -> None:
    runner = _make_runner(args)
    rows = []
    for name, mix in MIXES.items():
        trace = runner.trace(name)
        rows.append([name, f"{trace.rpki:.2f}", f"{trace.wpki:.2f}",
                     " ".join(mix.apps)])
    print(format_table(["Name", "RPKI", "WPKI", "Applications (x4 each)"],
                       rows, title="Table 1: workload descriptions"))


def cmd_run(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    if mix.startswith(IMPORTED_TRACE_PREFIX):
        # Resolve now so a missing import or core-count mismatch is a
        # clean CLI error, not a traceback from inside the run.
        try:
            runner.trace(mix)
        except ValueError as exc:
            raise SystemExit(str(exc))
    if args.policy not in POLICY_NAMES or args.policy == "Baseline":
        raise SystemExit(
            f"unknown policy {args.policy!r}; registered governors are:\n"
            f"{governor_listing()}\n"
            f"(`run` accepts the sweep-able names except 'Baseline')")
    telemetry = JsonlTelemetry(args.telemetry) if args.telemetry else None
    try:
        cmp = runner.compare_named(mix, args.policy, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    rows = [
        ["memory energy savings", f"{cmp.memory_energy_savings:+.1%}"],
        ["system energy savings", f"{cmp.system_energy_savings:+.1%}"],
        ["average CPI increase", f"{cmp.avg_cpi_increase:+.1%}"],
        ["worst CPI increase", f"{cmp.worst_cpi_increase:+.1%}"],
    ]
    point = (scenario_label(args.policy, args.device) if args.device
             else args.policy)
    print(format_table(["metric", "value"], rows,
                       title=f"{point} on {mix} vs baseline"))
    app_rows = [[app, f"{inc:+.1%}"]
                for app, inc in sorted(cmp.app_cpi_increase.items())]
    print()
    print(format_table(["application", "CPI increase"], app_rows))
    if args.telemetry:
        print(f"\nper-epoch telemetry written to {args.telemetry}")
    if args.validate:
        print("\nprotocol validator: armed, zero violations")


def _scenario_row(o) -> dict:
    """One :func:`device_energy_table` row from a ScenarioOutcome."""
    return {
        "workload": o.mix, "policy": o.policy, "device": o.device,
        "memory_energy_j": o.result.memory_energy_j,
        "background_share": o.background_share,
        "mem_savings": o.comparison.memory_energy_savings,
        "worst_cpi_increase": o.comparison.worst_cpi_increase,
    }


def _check_devices(devices) -> None:
    from repro.scenarios.devices import lookup_device
    for device in devices:
        try:
            lookup_device(device)
        except KeyError as exc:
            raise SystemExit(exc.args[0])


def _sweep_devices(args, mixes, policies, config, settings,
                   cache_dir) -> None:
    """The (mix x policy x device) leg of ``repro sweep --devices``."""
    _check_devices(args.devices)
    start = time.perf_counter()
    outcomes = run_scenario_sweep(mixes, policies, args.devices,
                                  config=config, settings=settings,
                                  jobs=args.jobs, cache_dir=cache_dir,
                                  telemetry_dir=args.telemetry,
                                  retries=args.retries)
    wall = time.perf_counter() - start
    good, failed = split_outcomes(outcomes)
    if good:
        print(device_energy_table(
            [_scenario_row(o) for o in good],
            title=f"scenario sweep: {len(mixes)} mixes x "
                  f"{len(policies)} policies x "
                  f"{len(args.devices)} devices"))
    print("\nsavings are normalized within each device (vs that "
          "device's own baseline);\n'standby' is background energy as a "
          "share of DIMM energy")
    if args.validate:
        print("protocol validator: armed on every simulated run, "
              "zero violations")
    if args.telemetry:
        print(f"per-epoch telemetry JSONL files in {args.telemetry}/")
    if args.save:
        from repro.sim.serialize import save_results
        save_results(args.save, [o.result for o in good]
                     + [o.comparison for o in good])
        print(f"results saved to {args.save}")
    print(f"{len(good)} runs in {wall:.2f}s wall")
    _report_failures(failed, "scenario sweep")


def cmd_sweep(args) -> None:
    if args.mixes:
        mixes = list(args.mixes)
    elif args.scenarios:
        mixes = []
    else:
        mixes = list(MIXES)
    if args.scenarios:
        mixes += [m for m in args.scenarios if m not in mixes]
    for mix in mixes:
        _check_mix(mix)
    policies = args.policies
    for policy in policies:
        if policy not in POLICY_NAMES:
            raise SystemExit(
                f"unknown policy {policy!r}; registered governors are:\n"
                f"{governor_listing()}")
    config = scaled_config()
    if args.bound is not None:
        config = config.with_policy(cpi_bound=args.bound)
    if args.validate:
        config = config.replace(validate_protocol=True)
    if args.no_fast_forward:
        config = config.replace(fast_forward=False)
    settings = RunnerSettings(cores=args.cores,
                              instructions_per_core=args.instructions,
                              seed=args.seed)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.devices:
        _sweep_devices(args, mixes, policies, config, settings, cache_dir)
        return
    start = time.perf_counter()
    outcomes = run_sweep(mixes, policies, config=config, settings=settings,
                         jobs=args.jobs, cache_dir=cache_dir,
                         telemetry_dir=args.telemetry,
                         retries=args.retries)
    wall = time.perf_counter() - start
    good, failed = split_outcomes(outcomes)
    print(format_table(
        ["workload", "policy", "mem savings", "sys savings",
         "worst CPI", "job wall"],
        sweep_table(outcomes),
        title=f"sweep: {len(mixes)} mixes x {len(policies)} policies"))
    jobs = args.jobs if args.jobs is not None else "auto"
    cache_note = cache_dir if cache_dir is not None else "disabled"
    print(f"\n{len(good)} runs in {wall:.2f}s wall "
          f"(jobs={jobs}, cache={cache_note})")
    if args.validate:
        print("protocol validator: armed on every simulated run, "
              "zero violations")
    if args.telemetry:
        print(f"per-epoch telemetry JSONL files in {args.telemetry}/")
    if args.save:
        from repro.sim.serialize import save_results
        save_results(args.save, [o.result for o in good]
                     + [o.comparison for o in good])
        print(f"results saved to {args.save}")
    _report_failures(failed, "sweep")


def _check_cap_outcomes(outcomes) -> List[str]:
    """Smoke-grade acceptance checks on a cap sweep's outcomes.

    Returns failure strings (empty = pass). Checks, per capped point:
    (a) no silent overshoot — every accounted epoch stayed within the
    budget's tolerance band or the ledger recorded a violation; and
    (b) fairness — the capped run's min-app normalized performance is
    no lower than the naive lowest-frequency throttle reference.
    """
    failures: List[str] = []
    throttle = {o.mix: o for o in outcomes if o.budget_fraction is None}
    for o in outcomes:
        if o.budget_fraction is None:
            continue
        label = f"{o.mix}/cap{o.budget_fraction:.2f}"
        cap = o.cap or {}
        if not cap.get("epochs_accounted"):
            failures.append(f"{label}: ledger accounted no epochs")
            continue
        tol = 1.0 + 0.01 + 1e-9
        if (cap.get("violation_count", 0) == 0
                and cap.get("peak_power_w", 0.0) > o.budget_w * tol):
            failures.append(
                f"{label}: silent overshoot — peak epoch power "
                f"{cap['peak_power_w']:.2f}W over budget {o.budget_w:.2f}W "
                f"with no recorded violation")
        ref = throttle.get(o.mix)
        if ref is not None and o.min_perf < ref.min_perf - 1e-9:
            failures.append(
                f"{label}: min-app normalized perf {o.min_perf:.4f} below "
                f"the throttle reference {ref.min_perf:.4f}")
    return failures


def cmd_cap(args) -> None:
    if args.smoke:
        mixes = ["MID1"]
        fractions = list(SMOKE_BUDGET_FRACTIONS)
        settings = RunnerSettings(cores=4, instructions_per_core=8_000,
                                  seed=2011)
    else:
        mixes = args.mixes if args.mixes else mix_names("MID")
        fractions = args.budgets
        settings = RunnerSettings(cores=args.cores,
                                  instructions_per_core=args.instructions,
                                  seed=args.seed)
    for mix in mixes:
        _check_mix(mix)
    if any(f <= 0 for f in fractions):
        raise SystemExit("--budgets must be positive fractions of the "
                         "baseline memory power")
    config = scaled_config()
    if args.validate:
        config = config.replace(validate_protocol=True)
    if args.no_fast_forward:
        config = config.replace(fast_forward=False)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    start = time.perf_counter()
    outcomes = run_cap_sweep(mixes, fractions, config=config,
                             settings=settings, jobs=args.jobs,
                             cache_dir=cache_dir,
                             telemetry_dir=args.telemetry,
                             retries=args.retries)
    wall = time.perf_counter() - start
    outcomes, failed_jobs = split_outcomes(outcomes)
    rows = [experiments.cap_outcome_row(o) for o in outcomes]
    print(cap_summary_table(
        rows, title=f"power-cap sweep: {len(mixes)} mixes x "
                    f"{len(fractions)} budgets (+throttle reference)"))
    print("\nbudgets are fractions of each mix's baseline average memory "
          "power;\nThrottle rows pin the slowest static frequency (the "
          "naive alternative)")
    if args.validate:
        print("protocol validator: armed on every simulated run, "
              "zero violations")
    if args.telemetry:
        print(f"per-epoch telemetry JSONL files in {args.telemetry}/")
    failures = _check_cap_outcomes(outcomes)
    if failures:
        raise SystemExit("CAP CHECKS FAILED:\n  " + "\n  ".join(failures))
    _report_failures(failed_jobs, "cap sweep")
    if args.smoke:
        print(f"\nCAP SMOKE OK: {len(outcomes)} runs "
              f"({len(fractions)} budgets + throttle), {wall:.2f}s wall")
    else:
        print(f"\n{len(outcomes)} runs in {wall:.2f}s wall "
              f"(cap enforcement checks passed)")


def _check_multidomain_outcomes(outcomes,
                                require_coordinated_split: bool = False
                                ) -> List[str]:
    """Smoke-grade acceptance checks on a multi-domain sweep's outcomes.

    Returns failure strings (empty = pass). Per global-budget point:
    (a) the ledger accounted epochs and recorded zero violations on the
    coordinated leg — the governor never exceeds the global budget;
    (b) the coordinated leg beats the memory-only CapGovernor reference
    on explicit-split system energy. With ``require_coordinated_split``
    (the smoke), the tightest budget must also be a genuinely
    *coordinated* split: infeasible for either domain alone at max
    frequency, yet with feasible (core, memory) pairs found.
    """
    failures: List[str] = []
    coordinated = [o for o in outcomes if o.coordinated]
    memory_only = {(o.mix, o.budget_fraction): o
                   for o in outcomes if not o.coordinated}
    for o in coordinated:
        label = f"{o.mix}/md{o.budget_fraction:.2f}"
        summary = o.summary or {}
        if not summary.get("epochs_accounted"):
            failures.append(f"{label}: ledger accounted no epochs")
            continue
        if summary.get("violation_count", 0) > 0:
            failures.append(
                f"{label}: {summary['violation_count']} epochs exceeded "
                f"the global budget {o.budget_w:.2f}W")
        ref = memory_only.get((o.mix, o.budget_fraction))
        if ref is not None and o.system_energy_j >= ref.system_energy_j:
            failures.append(
                f"{label}: coordinated system energy "
                f"{o.system_energy_j:.4f}J does not beat the memory-only "
                f"reference {ref.system_energy_j:.4f}J")
    if coordinated and require_coordinated_split:
        tight = min(coordinated, key=lambda o: o.budget_fraction)
        label = f"{tight.mix}/md{tight.budget_fraction:.2f}"
        summary = tight.summary or {}
        if not summary.get("core_max_infeasible_epochs"):
            failures.append(
                f"{label}: budget never infeasible for nominal cores "
                f"alone (no coordination needed)")
        if not summary.get("mem_max_infeasible_epochs"):
            failures.append(
                f"{label}: budget never infeasible for max-frequency "
                f"memory alone (no coordination needed)")
        decided = summary.get("epochs_decided", 0)
        if decided - summary.get("infeasible_epochs", 0) <= 0:
            failures.append(
                f"{label}: governor found no feasible (core, memory) "
                f"pair in any epoch")
    return failures


def cmd_multidomain(args) -> None:
    if args.smoke:
        mixes = ["MID1"]
        fractions = list(SMOKE_MULTIDOMAIN_FRACTIONS)
        settings = RunnerSettings(cores=4, instructions_per_core=8_000,
                                  seed=2011)
    else:
        mixes = args.mixes if args.mixes else mix_names("MID")
        fractions = args.budgets
        settings = RunnerSettings(cores=args.cores,
                                  instructions_per_core=args.instructions,
                                  seed=args.seed)
    for mix in mixes:
        _check_mix(mix)
    if any(f <= 0 for f in fractions):
        raise SystemExit("--budgets must be positive fractions of the "
                         "baseline memory + nominal core power")
    config = scaled_config()
    if args.validate:
        config = config.replace(validate_protocol=True)
    if args.no_fast_forward:
        config = config.replace(fast_forward=False)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    start = time.perf_counter()
    outcomes = run_multidomain_sweep(mixes, fractions, config=config,
                                     settings=settings, jobs=args.jobs,
                                     cache_dir=cache_dir,
                                     telemetry_dir=args.telemetry,
                                     retries=args.retries)
    wall = time.perf_counter() - start
    outcomes, failed_jobs = split_outcomes(outcomes)
    rows = [experiments.multidomain_outcome_row(o) for o in outcomes]
    print(multidomain_summary_table(
        rows, title=f"multi-domain budget sweep: {len(mixes)} mixes x "
                    f"{len(fractions)} global budgets "
                    f"(+memory-only reference)"))
    print("\nbudgets are fractions of each mix's baseline memory power "
          "plus modeled\nnominal core power; MemOnly rows give the whole "
          "remaining budget to a\nmemory-only CapGovernor (the "
          "uncoordinated split)")
    if args.validate:
        print("protocol validator: armed on every simulated run, "
              "zero violations")
    if args.telemetry:
        print(f"per-epoch telemetry JSONL files in {args.telemetry}/")
    failures = _check_multidomain_outcomes(
        outcomes, require_coordinated_split=args.smoke)
    if failures:
        raise SystemExit("MULTIDOMAIN CHECKS FAILED:\n  "
                         + "\n  ".join(failures))
    _report_failures(failed_jobs, "multidomain sweep")
    if args.smoke:
        print(f"\nMULTIDOMAIN SMOKE OK: {len(outcomes)} runs "
              f"({len(fractions)} budgets x coordinated+memory-only), "
              f"{wall:.2f}s wall")
    else:
        print(f"\n{len(outcomes)} runs in {wall:.2f}s wall "
              f"(budget-ledger checks passed)")


def _check_placement_outcomes(outcomes, cpi_bound: float,
                              require_parking: bool = False) -> List[str]:
    """Smoke-grade acceptance checks on a placement sweep's outcomes.

    Returns failure strings (empty = pass). Per placed leg: (a) lower
    absolute memory energy than the plain-MemScale reference on the
    same mix (the legs share the trace and the CPI-degradation target,
    so the energy comparison is at equal perf loss); (b) CPI increase
    within the MemScale bound plus a small slack for self-refresh
    wake-ups and copy traffic. With ``require_parking`` (the smoke),
    the placed leg must also show the machinery actually engaged:
    pages migrated, ranks parked in self-refresh, and the migration
    copy ledger conserved — every migrated line was either copied or
    is still in the pump's tracked backlog when the run ends (nothing
    silently dropped).
    """
    failures: List[str] = []
    references = {o.mix: o for o in outcomes if not o.placed}
    for o in outcomes:
        if not o.placed:
            continue
        label = f"{o.mix}/placed"
        summary = o.placement or {}
        ref = references.get(o.mix)
        if ref is not None \
                and o.result.memory_energy_j >= ref.result.memory_energy_j:
            failures.append(
                f"{label}: memory energy {o.result.memory_energy_j:.4f}J "
                f"does not beat plain MemScale "
                f"{ref.result.memory_energy_j:.4f}J")
        worst = o.comparison.worst_cpi_increase
        if worst > cpi_bound + SMOKE_PLACEMENT_CPI_SLACK:
            failures.append(
                f"{label}: worst CPI increase {worst:+.1%} exceeds the "
                f"bound {cpi_bound:.1%} plus "
                f"{SMOKE_PLACEMENT_CPI_SLACK:.1%} slack")
        if require_parking:
            if not summary.get("parked_ranks"):
                failures.append(f"{label}: no rank ever entered "
                                "self-refresh")
            if not summary.get("migrations"):
                failures.append(f"{label}: no page was ever migrated")
            copied = summary.get("lines_copied", 0)
            backlog = summary.get("backlog", 0)
            migrated = summary.get("migrated_lines", 0)
            if copied + backlog != migrated:
                failures.append(
                    f"{label}: migration copy ledger does not conserve "
                    f"— {copied} lines copied + {backlog} backlog != "
                    f"{migrated} migrated")
    return failures


def cmd_placement(args) -> None:
    if args.smoke:
        mixes = ["MID1"]
        settings = RunnerSettings(cores=4, instructions_per_core=60_000,
                                  seed=2011)
        # Short epochs so classification/parking cycle many times, and
        # small pages in gentle per-epoch batches so the paced migration
        # pump can drain them: the placed leg has to *win* on energy.
        config = scaled_config().with_policy(
            epoch_ns=SMOKE_PLACEMENT_EPOCH_NS,
            profile_ns=SMOKE_PLACEMENT_PROFILE_NS).with_placement(
            page_lines=32, migrations_per_epoch=4)
        # The smoke always arms the protocol validator: zero violations
        # with self-refresh parking active is part of the acceptance.
        config = config.replace(validate_protocol=True)
    else:
        mixes = args.mixes if args.mixes else mix_names("MID")
        settings = RunnerSettings(cores=args.cores,
                                  instructions_per_core=args.instructions,
                                  seed=args.seed)
        config = scaled_config()
        if args.validate:
            config = config.replace(validate_protocol=True)
    for mix in mixes:
        _check_mix(mix)
    if args.no_fast_forward:
        config = config.replace(fast_forward=False)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    start = time.perf_counter()
    outcomes = run_placement_sweep(mixes, config=config, settings=settings,
                                   jobs=args.jobs, cache_dir=cache_dir,
                                   telemetry_dir=args.telemetry,
                                   retries=args.retries)
    wall = time.perf_counter() - start
    outcomes, failed_jobs = split_outcomes(outcomes)
    rows = []
    for o in outcomes:
        summary = o.placement or {}
        rows.append([
            o.mix, "Placed" if o.placed else "MemScale",
            f"{o.result.memory_energy_j:.4f}",
            f"{o.comparison.worst_cpi_increase:+.1%}",
            str(summary.get("migrations", "-")),
            str(summary.get("parked_ranks", "-")),
            f"{o.wall_s:.2f}s",
        ])
    print(format_table(
        ["workload", "leg", "mem energy (J)", "worst CPI",
         "migrations", "parks", "job wall"],
        rows, title=f"placement sweep: {len(mixes)} mixes x "
                    f"(placed + plain-MemScale reference)"))
    print("\nlegs share the trace and the CPI bound; energies are "
          "absolute joules\n(enabling placement changes the baseline "
          "run's decode, so the legs are\nnot normalized to a common "
          "baseline)")
    if args.smoke or args.validate:
        print("protocol validator: armed on every simulated run, "
              "zero violations")
    if args.telemetry:
        print(f"per-epoch telemetry JSONL files in {args.telemetry}/")
    failures = _check_placement_outcomes(
        outcomes, cpi_bound=config.policy.cpi_bound,
        require_parking=args.smoke)
    if failures:
        raise SystemExit("PLACEMENT CHECKS FAILED:\n  "
                         + "\n  ".join(failures))
    _report_failures(failed_jobs, "placement sweep")
    if args.smoke:
        print(f"\nPLACEMENT SMOKE OK: {len(outcomes)} runs "
              f"(placed + reference on MID1), {wall:.2f}s wall")
    else:
        print(f"\n{len(outcomes)} runs in {wall:.2f}s wall "
              f"(placement checks passed)")


def cmd_governors(args) -> None:
    rows = [[name, mode, knobs, doc, desc]
            for name, mode, desc, knobs, doc in GOVERNOR_INFO]
    print(format_table(
        ["governor", "powerdown", "config knobs", "doc", "description"],
        rows, title="registered governors"))
    print("\nthe first eight are accepted by `run --policy` and "
          "`sweep --policies`;\nCap runs via `repro cap`, MultiDomain "
          "via `repro multidomain`,\nMemScale+Placement via `repro "
          "placement`, MemScale/channel via the\nrepro.core.extensions "
          "API (protocol + worked example: docs/governors.md)")


def cmd_bench(args) -> None:
    if not args.smoke:
        raise SystemExit("only --smoke is supported; run the full suite "
                         "with: pytest benchmarks/ --benchmark-only -s")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    config = scaled_config()
    if args.validate:
        config = config.replace(validate_protocol=True)
    if args.no_fast_forward:
        config = config.replace(fast_forward=False)
    config = _device_config(config, args.device)
    mix = _check_mix(args.scenario) if args.scenario else "MID1"
    settings = RunnerSettings(cores=4, instructions_per_core=8_000, seed=2011)
    cache_dir = None if args.no_cache else args.cache_dir
    start = time.perf_counter()
    outcomes = run_sweep([mix], ["MemScale", "Static"], config=config,
                         settings=settings, jobs=args.jobs,
                         cache_dir=cache_dir)
    wall = time.perf_counter() - start
    good, failed_jobs = split_outcomes(outcomes)
    failures = [f.summary() for f in failed_jobs]
    for o in good:
        if o.result.epochs <= 0:
            failures.append(f"{o.mix}/{o.policy}: no epochs simulated")
        if not -1.0 <= o.comparison.system_energy_savings <= 1.0:
            failures.append(f"{o.mix}/{o.policy}: implausible savings "
                            f"{o.comparison.system_energy_savings:+.1%}")
        if o.comparison.memory_energy_savings <= 0.0:
            failures.append(f"{o.mix}/{o.policy}: no memory savings")
    # Validator-armed leg: a tiny in-process run (DVFS + powerdown +
    # refresh) with the DDR3 protocol validator raising on any violation,
    # so tier-1 exercises the armed path even when the sweep above was
    # satisfied from cache.
    from repro.memsim.validate import ProtocolViolation
    vrunner = ExperimentRunner(
        config=scaled_config().replace(validate_protocol=True),
        settings=RunnerSettings(cores=4, instructions_per_core=2_000,
                                seed=2011),
        cache=None)
    try:
        vrunner.run_named_policy("MID1", "MemScale+Fast-PD")
    except ProtocolViolation as exc:
        failures.append(f"validator: {exc}")
    # Capped leg: a 2-point budget sweep through the same parallel path
    # (cache shared with the sweep above), checking the power-capping
    # governor's no-silent-overshoot and fairness guarantees in tier-1.
    cap_outcomes, cap_failed = split_outcomes(run_cap_sweep(
        ["MID1"], SMOKE_BUDGET_FRACTIONS, config=config,
        settings=settings, jobs=args.jobs, cache_dir=cache_dir))
    failures.extend(f.summary() for f in cap_failed)
    failures.extend(_check_cap_outcomes(cap_outcomes))
    print(format_table(
        ["workload", "policy", "mem savings", "sys savings",
         "worst CPI", "job wall"],
        sweep_table(outcomes), title="bench smoke (parallel path)"))
    if failures:
        raise SystemExit("SMOKE FAILED:\n  " + "\n  ".join(failures))
    print("validator: armed leg passed (zero protocol violations)")
    print(f"cap: capped leg passed ({len(SMOKE_BUDGET_FRACTIONS)} budgets "
          f"+ throttle reference on MID1)")
    print(f"\nSMOKE OK: {len(outcomes)} runs, {args.jobs} workers, "
          f"{wall:.2f}s wall")


def cmd_perfbench(args) -> None:
    from repro.sim.perfbench import PerfRegressionError, run_perfbench
    try:
        run_perfbench(output=args.output, repeats=args.repeats,
                      scenarios=args.scenarios,
                      update_baseline=args.update_baseline,
                      max_regression=args.max_regression,
                      fast_forward=not args.no_fast_forward,
                      approx=not args.no_approx,
                      gate=not args.no_gate,
                      profile=args.profile or args.profile_out is not None,
                      profile_out=args.profile_out)
    except PerfRegressionError as exc:
        raise SystemExit(f"PERF REGRESSION: {exc}")
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.no_gate:
        print("perfbench: regression gate disabled (report only)")
    else:
        print("perfbench: throughput within the regression gate")


def cmd_cache(args) -> None:
    cache = ExperimentCache(args.cache_dir)
    stats = cache.stats()
    print(f"cache root       : {stats['root']}")
    print(f"trace entries    : {stats['trace_entries']}")
    if stats["legacy_trace_entries"]:
        print(f"  legacy (.npz)  : {stats['legacy_trace_entries']}")
    print(f"run entries      : {stats['run_entries']}")
    if stats["orphan_files"]:
        print(f"orphan files     : {stats['orphan_files']} "
              f"(half-deleted columnar entries; --prune sweeps them)")
    print(f"on-disk size     : {stats['total_bytes'] / 1e6:.2f} MB "
          f"({stats['total_bytes']} bytes)")
    if args.prune:
        removed = cache.prune()
        print(f"pruned {removed['files_removed']} files "
              f"({removed['bytes_removed'] / 1e6:.2f} MB)")


def _import_summary_rows(summary) -> List[List[str]]:
    return [
        ["source", summary.source],
        ["format", summary.format],
        ["requests", str(summary.requests)],
        ["reads", str(summary.reads)],
        ["writes", str(summary.writes)],
        ["unattached writebacks", str(summary.unattached_writebacks)],
        ["non-monotonic cycles", str(summary.non_monotonic_cycles)],
        ["distinct lines", str(summary.distinct_lines)],
        ["cycle span", f"{summary.first_cycle} .. {summary.last_cycle}"],
        ["replay cores", str(summary.cores)],
        ["RPKI (replayed)", f"{summary.rpki:.2f}"],
    ]


def cmd_trace(args) -> None:
    import dataclasses as _dc

    from repro.scenarios.fit import fit_trace
    from repro.scenarios.ingest import TraceFormatError, import_trace
    from repro.sim.cache import check_trace_name

    org = scaled_config().org
    name = getattr(args, "name", None) or "trace"
    if args.trace_command == "import":
        try:
            check_trace_name(name)
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        trace, summary = import_trace(args.file, name, org,
                                      cores=args.cores, fmt=args.format)
    except (TraceFormatError, FileNotFoundError, OSError) as exc:
        raise SystemExit(str(exc))
    print(format_table(["field", "value"], _import_summary_rows(summary),
                       title=f"trace {args.file}"))
    fit = fit_trace(trace, org)
    print(f"\nphase fit: {len(fit.phases)} phases over "
          f"{len(fit.windows)} windows; row-hit {fit.row_hit_ratio:.0%}, "
          f"stream {fit.stream_fraction:.0%}, "
          f"working set {fit.working_set_lines} lines")
    if args.trace_command == "info":
        return
    cache = ExperimentCache(args.cache_dir)
    cache.store_imported_trace(name, trace, _dc.asdict(summary))
    print(f"\nimported as 'trace:{name}' into {cache.root}")
    print(f"replay: repro run trace:{name} --cores {summary.cores} "
          f"--cache-dir {args.cache_dir}")


def _check_scenario_outcomes(outcomes, devices,
                             cpi_bound: float = SCENARIOS_SMOKE_CPI_BOUND
                             ) -> List[str]:
    """Acceptance checks of the scenarios smoke's device leg.

    Per device table: MemScale must beat Static on at least one ladder
    rung, where "beats" honours the performance bound — a policy only
    qualifies while its worst CPI increase stays within the bound (plus
    controller-jitter slack), and among qualifying policies higher
    memory savings wins. Across tables: the STT-MRAM-like part's
    near-zero standby currents must show up as a lower background
    (standby) share of DIMM energy than the DDR3-1333 baseline's.
    """
    failures: List[str] = []
    by = {(o.mix, o.policy, o.device): o for o in outcomes}
    mixes = list(dict.fromkeys(o.mix for o in outcomes))
    limit = cpi_bound + SCENARIOS_SMOKE_CPI_SLACK

    def qualifies(o) -> bool:
        return o.comparison.worst_cpi_increase <= limit

    def beats(mix: str, device: str) -> bool:
        mine = by.get((mix, "MemScale", device))
        ref = by.get((mix, "Static", device))
        if mine is None or ref is None:
            return False
        if not (qualifies(mine)
                and mine.comparison.memory_energy_savings > 0):
            return False
        return (not qualifies(ref)
                or (mine.comparison.memory_energy_savings
                    > ref.comparison.memory_energy_savings))

    for device in devices:
        if not any(beats(mix, device) for mix in mixes):
            failures.append(
                f"{device}: MemScale beat Static on no ladder rung "
                f"(within the {cpi_bound:.0%} CPI bound)")

    def share(device: str) -> float:
        vals = [o.background_share for o in outcomes
                if o.device == device]
        return sum(vals) / len(vals) if vals else 0.0

    if "stt-mram" in devices and "ddr3-1333" in devices:
        if share("stt-mram") >= share("ddr3-1333"):
            failures.append(
                f"stt-mram standby share {share('stt-mram'):.1%} is not "
                f"below ddr3-1333's {share('ddr3-1333'):.1%}")
    return failures


def _scenarios_smoke(args) -> None:
    """CI leg: trace ingestion + ladder + device tables, end to end.

    Three checks, all validator-armed: (a) the bundled k6 trace imports
    into the smoke directory's cache and replays byte-identically
    across serial, ``--jobs N``, and fast-forward-off legs; (b) every
    ladder rung runs under MemScale with zero protocol violations; (c)
    a (rung x policy x device) sweep where MemScale beats Static on at
    least one rung per device and the STT-MRAM table shows the expected
    standby-power shift. Writes ``summary.json`` for the CI artifact.
    """
    import dataclasses as _dc
    import json as _json
    import shutil
    from pathlib import Path

    from repro import scenarios as scn
    from repro.scenarios.ingest import TraceFormatError, import_trace
    from repro.sim.serialize import run_result_to_dict

    directory = Path(args.dir if args.dir else SCENARIOS_SMOKE_DIR)
    shutil.rmtree(directory, ignore_errors=True)
    directory.mkdir(parents=True, exist_ok=True)
    cache_dir = str(directory / "cache")
    failures: List[str] = []
    start = time.perf_counter()
    config = scaled_config().replace(validate_protocol=True)
    settings = RunnerSettings(cores=4,
                              instructions_per_core=args.instructions,
                              seed=2011)

    # Leg 1: ingest the bundled k6 trace, replay it three ways.
    try:
        trace, summary = import_trace(args.trace, "sample-k6", config.org,
                                      cores=4)
    except (TraceFormatError, FileNotFoundError, OSError) as exc:
        raise SystemExit(f"SCENARIOS SMOKE FAILED:\n  cannot ingest "
                         f"{args.trace}: {exc}")
    ExperimentCache(cache_dir).store_imported_trace(
        "sample-k6", trace, _dc.asdict(summary))
    mix = "trace:sample-k6"
    replay_legs = {}
    for leg, jobs, cfg in (
            ("serial", 1, config),
            (f"jobs={args.jobs}", args.jobs, config),
            ("no-fast-forward", 1, config.replace(fast_forward=False))):
        outcomes = run_sweep([mix], ["MemScale", "Static"], config=cfg,
                             settings=settings, jobs=jobs,
                             cache_dir=cache_dir)
        good, failed = split_outcomes(outcomes)
        failures.extend(f"replay {leg}: {f.summary()}" for f in failed)
        replay_legs[leg] = _json.dumps(
            {o.policy: run_result_to_dict(o.result) for o in good},
            sort_keys=True)
    if len(set(replay_legs.values())) > 1:
        failures.append("imported-trace replay is not byte-identical "
                        "across serial / parallel / fast-forward legs")
    else:
        print(f"trace: {summary.requests} requests ({summary.format}) "
              f"-> {mix}; replay byte-identical across "
              f"{len(replay_legs)} legs")

    # Leg 2: every ladder rung under MemScale, validator armed.
    rungs = scn.scenario_names()
    outcomes = run_sweep(rungs, ["MemScale"], config=config,
                         settings=settings, jobs=args.jobs,
                         cache_dir=cache_dir)
    good, failed = split_outcomes(outcomes)
    failures.extend(f"ladder: {f.summary()}" for f in failed)
    print(f"ladder: {len(good)}/{len(rungs)} rungs ran validator-armed "
          f"under MemScale, zero violations")

    # Leg 3: (rung x policy x device), each device against its own
    # baseline, under the tight performance bound (see
    # SCENARIOS_SMOKE_CPI_BOUND).
    devices = scn.device_names()
    device_config = config.with_policy(
        cpi_bound=SCENARIOS_SMOKE_CPI_BOUND)
    outcomes = run_scenario_sweep(list(SCENARIOS_SMOKE_RUNGS),
                                  ("MemScale", "Static"), devices,
                                  config=device_config, settings=settings,
                                  jobs=args.jobs, cache_dir=cache_dir)
    dev_good, failed = split_outcomes(outcomes)
    failures.extend(f"devices: {f.summary()}" for f in failed)
    if dev_good:
        print()
        print(device_energy_table([_scenario_row(o) for o in dev_good]))
    failures.extend(_check_scenario_outcomes(dev_good, devices))

    wall = time.perf_counter() - start
    (directory / "summary.json").write_text(_json.dumps({
        "import": _dc.asdict(summary),
        "replay_identical": len(set(replay_legs.values())) == 1,
        "ladder_rungs": rungs,
        "devices": [_scenario_row(o) for o in dev_good],
        "failures": failures,
        "wall_s": wall,
    }, indent=1, sort_keys=True) + "\n")
    if failures:
        raise SystemExit("SCENARIOS SMOKE FAILED:\n  "
                         + "\n  ".join(failures))
    print(f"\nSCENARIOS SMOKE OK: {len(rungs)} rungs, "
          f"{len(devices)} device tables, ingested replay deterministic; "
          f"{wall:.2f}s wall (artifacts in {directory}/)")


def cmd_scenarios(args) -> None:
    from repro import scenarios as scn

    if args.smoke:
        _scenarios_smoke(args)
        return
    print(scn.scenario_listing())
    print()
    print(scn.device_listing())
    print("\nrun a rung    : repro run mix2 --cores 4 --device stt-mram"
          "\nsweep devices : repro sweep --scenarios mix1 mix4 "
          "--devices ddr3-1333 stt-mram"
          "\nimport traces : repro trace import FILE --name NAME; "
          "repro run trace:NAME")


def _service_specs(args):
    """Build the JobSpec list a `repro service run` invocation asks for."""
    from repro.sim import service as svc

    mixes = args.mixes if args.mixes else ["MID1"]
    for mix in mixes:
        _check_mix(mix)
    if args.kind in ("policy", "scenario"):
        for policy in args.policies:
            if policy not in POLICY_NAMES:
                raise SystemExit(
                    f"unknown policy {policy!r}; registered governors "
                    f"are:\n{governor_listing()}")
        if args.kind == "policy":
            return svc.policy_specs(mixes, args.policies)
        devices = args.devices if args.devices else ["ddr3-1333"]
        _check_devices(devices)
        return svc.scenario_specs(mixes, args.policies, devices)
    if args.kind == "placement":
        return svc.placement_specs(mixes)
    if not args.budgets:
        raise SystemExit(f"--kind {args.kind} needs --budgets")
    if any(f <= 0 for f in args.budgets):
        raise SystemExit("--budgets must be positive fractions")
    if args.kind == "cap":
        return svc.cap_specs(mixes, args.budgets)
    return svc.multidomain_specs(mixes, args.budgets)


def _service_report(service, outcomes, wall: float, verb: str) -> None:
    """Shared tail of `service run` / `service resume`."""
    from repro.sim.parallel import (JobFailure, cap_label,
                                    multidomain_label, placement_label)

    def point(o) -> str:
        if hasattr(o, "device"):
            return scenario_label(o.policy, o.device)
        if hasattr(o, "policy"):
            return o.policy
        if hasattr(o, "placed"):
            return placement_label(o.placed)
        if hasattr(o, "coordinated"):
            return multidomain_label(o.budget_fraction, o.coordinated)
        return cap_label(o.budget_fraction)

    good, failed = split_outcomes(outcomes)
    rows = []
    for o in outcomes:
        if isinstance(o, JobFailure):
            rows.append([o.mix, o.label.split("/", 1)[-1], "FAILED",
                         f"{o.error_type}: {o.message}"])
        else:
            rows.append([o.mix, point(o), "ok",
                         f"sys {o.comparison.system_energy_savings:+.1%}"])
    status = service.status()
    print(format_table(["workload", "point", "status", "detail"], rows,
                       title=f"service {verb}: {status['root']}"))
    print(f"\n{status['ok']} ok, {status['failed']} failed, "
          f"{status['pending'] - status['failed']} never-ran of "
          f"{status['enqueued']} enqueued ({wall:.2f}s wall); "
          f"store: {service.store.root}")
    if failed:
        print("failed jobs (a later `repro service resume` retries "
              "them):\n  " + "\n  ".join(f.summary() for f in failed))


def cmd_service(args) -> None:
    from repro.sim import service as svc

    try:
        _cmd_service(args, svc)
    except svc.ServiceError as exc:
        raise SystemExit(str(exc))


def _cmd_service(args, svc) -> None:
    if args.service_command == "status":
        service = svc.SweepService.open(args.dir)
        status = service.status()
        for key in ("root", "enqueued", "ok", "failed", "pending",
                    "ledger_lines_skipped", "jobs", "retries"):
            print(f"{key:21}: {status[key]}")
        for key, spec in service.pending():
            state = service.store.status(key) or "never ran"
            print(f"  pending: {spec.label} ({state})")
        return

    if args.service_command == "resume":
        service = svc.SweepService.open(args.dir, jobs=args.jobs,
                                        retries=args.retries)
        start = time.perf_counter()
        outcomes = service.resume()
        _service_report(service, outcomes, time.perf_counter() - start,
                        "resume")
        return

    if args.service_command == "smoke":
        _service_smoke(args)
        return

    # run
    settings = RunnerSettings(cores=args.cores,
                              instructions_per_core=args.instructions,
                              seed=args.seed)
    config = scaled_config()
    if args.validate:
        config = config.replace(validate_protocol=True)
    if args.no_fast_forward:
        config = config.replace(fast_forward=False)
    service = svc.SweepService(args.dir, config=config, settings=settings,
                               telemetry_dir=args.telemetry,
                               jobs=args.jobs, retries=args.retries)
    specs = _service_specs(args)
    start = time.perf_counter()
    outcomes = service.run(specs, fail_labels=args.fail_label or None)
    _service_report(service, outcomes, time.perf_counter() - start, "run")


def _service_smoke(args) -> None:
    """CI leg: tiny sweep with one injected failing job, resume, query.

    Exercises the whole crash-safe path — failure record instead of a
    sweep-wide raise, resume executing only the unfinished job, store
    identical (by deterministic digest) to what a straight serial sweep
    produces.
    """
    import shutil

    from repro.sim import service as svc
    from repro.sim.serialize import run_result_to_dict
    from repro.sim.store import deterministic_digest

    directory = args.dir if args.dir else SERVICE_SMOKE_DIR
    shutil.rmtree(directory, ignore_errors=True)
    settings = RunnerSettings(cores=4, instructions_per_core=8_000,
                              seed=2011)
    mixes, policies = ["MID1"], ["Static", "MemScale"]
    poison = "MID1/MemScale"
    failures: List[str] = []
    start = time.perf_counter()

    service = svc.SweepService(directory, settings=settings,
                               jobs=args.jobs, retries=0)
    outcomes = service.run(svc.policy_specs(mixes, policies),
                           fail_labels=[poison])
    good, failed = split_outcomes(outcomes)
    if len(good) != len(policies) - 1 or len(failed) != 1:
        failures.append(f"poisoned run: expected {len(policies) - 1} ok "
                        f"+ 1 failure, got {len(good)} ok "
                        f"+ {len(failed)} failed")
    elif failed[0].error_type != "InjectedFailure":
        failures.append(f"failure record carries {failed[0].error_type}, "
                        "expected InjectedFailure")

    # Interrupted-then-resumed service == uninterrupted serial sweep.
    resumed = svc.SweepService.open(directory).resume()
    _, still_failed = split_outcomes(resumed)
    if still_failed:
        failures.append("resume did not heal the injected failure")
    reference = run_sweep(mixes, policies, settings=settings, jobs=1,
                          cache_dir=service.cache_dir)
    by_key = {(o.mix, o.policy): o for o in resumed
              if not isinstance(o, svc.JobFailure)}
    for ref in reference:
        mine = by_key.get((ref.mix, ref.policy))
        if mine is None or (run_result_to_dict(mine.result)
                            != run_result_to_dict(ref.result)):
            failures.append(f"{ref.mix}/{ref.policy}: resumed result "
                            "differs from the uninterrupted serial run")
    digests = {r["key"]: deterministic_digest(r)
               for r in service.store.records()}
    if len(digests) != len(policies):
        failures.append(f"store holds {len(digests)} records, "
                        f"expected {len(policies)}")

    # Query path over the accumulated store.
    hits = service.store.query(mix="MID1", status="ok")
    if len(hits) != len(policies):
        failures.append(f"query returned {len(hits)} ok records, "
                        f"expected {len(policies)}")

    wall = time.perf_counter() - start
    if failures:
        raise SystemExit("SERVICE SMOKE FAILED:\n  "
                         + "\n  ".join(failures))
    print(f"service: poisoned job isolated ({poison}), "
          f"{len(good)} good outcomes preserved")
    print(f"service: resume healed the failure; store byte-identical "
          f"to the uninterrupted serial sweep")
    print(f"query: {len(hits)} ok records for MID1")
    print(f"\nSERVICE SMOKE OK: store in {directory}/, {wall:.2f}s wall")


def cmd_query(args) -> None:
    import json as _json

    from repro.sim.store import ResultStore
    from repro.sim.service import STORE_NAME

    root = f"{args.dir}/{STORE_NAME}"
    store = ResultStore(root)
    records = store.query(mix=args.mix, policy=args.policy,
                          kind=args.kind, status=args.status)
    if args.jsonl:
        for record in records:
            print(_json.dumps(record))
        return
    rows = []
    for record in records:
        job = record.get("job", {})
        if record["status"] == "ok":
            outcome = record.get("outcome", {})
            comparison = outcome.get("comparison", {})
            detail = (f"sys {comparison.get('system_energy_savings', 0):+.1%}"
                      if comparison else "-")
        else:
            error = record.get("error", {})
            detail = f"{error.get('error_type')}: {error.get('message')}"
        rows.append([job.get("mix", "?"),
                     job.get("label", "?").split("/", 1)[-1],
                     job.get("kind", "?"), record["status"],
                     str(record.get("attempts", 1)), detail])
    counts = store.counts()
    print(format_table(
        ["workload", "point", "kind", "status", "attempts", "detail"],
        rows, title=f"result store: {root}"))
    print(f"\n{len(records)} of {counts['total']} records matched "
          f"({counts['ok']} ok, {counts['failed']} failed in store)")


def cmd_figure(args) -> None:
    runner = _make_runner(args)
    settings = runner.settings
    fig = args.number
    if fig in (5, 6):
        result = experiments.energy_savings(runner)
    elif fig in (9, 10, 11):
        result = experiments.policy_comparison(runner)
    elif fig == 12:
        result = experiments.sensitivity_cpi_bound(settings=settings)
    elif fig == 13:
        result = experiments.sensitivity_channels(settings=settings)
    elif fig == 14:
        result = experiments.sensitivity_memory_fraction(settings=settings)
    elif fig == 15:
        result = experiments.sensitivity_proportionality(settings=settings)
    else:
        raise SystemExit("supported figures: 5 6 9 10 11 12 13 14 15 "
                         "(7/8 via the 'timeline' command)")
    if not result.rows:
        raise SystemExit("experiment produced no rows")
    columns = [c for c in result.rows[0] if c != "app_cpi"]
    rows = [[_fmt(row[c]) for c in columns] for row in result.rows]
    print(format_table(columns, rows, title=result.name))
    if result.notes:
        print(f"\n{result.notes}")


def cmd_timeline(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    result = experiments.timeline(runner, mix)
    rows = []
    for row in result.rows:
        worst_app = max(row["app_cpi"], key=row["app_cpi"].get) \
            if row["app_cpi"] else "-"
        rows.append([
            f"{row['time_us']:.1f}", f"{row['bus_mhz']:.0f}",
            f"{row['mean_channel_util']:.1%}",
            f"{row['memory_power_w']:.1f}", worst_app,
        ])
    print(format_table(
        ["time (us)", "bus MHz", "mean util", "memory W", "slowest app"],
        rows, title=f"timeline of {mix} under MemScale"))
    print(f"\n{result.notes}")


def cmd_stats(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    stats = workload_stats(runner.trace(mix), runner.config.org)
    print(f"{mix}: {stats.cores} cores, RPKI={stats.rpki:.2f}, "
          f"WPKI={stats.wpki:.2f}")
    rows = []
    for app, s in stats.per_app.items():
        rows.append([app, f"{s.rpki:.2f}", f"{s.wpki:.2f}",
                     f"{s.mean_gap:.0f}", f"{s.gap_cv:.2f}",
                     f"{s.sequential_fraction:.0%}",
                     f"{s.bank_entropy:.2f}"])
    print(format_table(
        ["app", "RPKI", "WPKI", "mean gap", "gap CV", "seq%", "bank entropy"],
        rows, title="per-application trace statistics"))


def cmd_best_static(args) -> None:
    mix = _check_mix(args.mix)
    runner = _make_runner(args)
    bus_mhz, cmp = experiments.best_static_frequency(runner, mix)
    print(f"best static frequency for {mix}: {bus_mhz:.0f} MHz")
    print(f"  system energy savings : {cmp.system_energy_savings:+.1%}")
    print(f"  worst CPI increase    : {cmp.worst_cpi_increase:+.1%}")
    _, memscale = runner.run_memscale(mix)
    print(f"MemScale (no reboot, no oracle) on the same trace:")
    print(f"  system energy savings : {memscale.system_energy_savings:+.1%}")
    print(f"  worst CPI increase    : {memscale.worst_cpi_increase:+.1%}")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MemScale (ASPLOS 2011) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate Table 1")
    _add_scale_args(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("run", help="run one policy on one mix")
    p.add_argument("mix")
    p.add_argument("--policy", default="MemScale",
                   help=f"one of {[n for n in POLICY_NAMES if n != 'Baseline']}")
    p.add_argument("--bound", type=float, default=None,
                   help="CPI degradation bound (default 0.10)")
    p.add_argument("--telemetry", default=None, metavar="FILE",
                   help="stream per-epoch telemetry JSONL to FILE")
    p.add_argument("--validate", action="store_true",
                   help="arm the DDR3 protocol validator (raises on any "
                        "timing/invariant violation)")
    _add_device_arg(p)
    _add_scale_args(p)
    _add_cache_args(p, default=None)
    _add_ff_arg(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep",
                       help="parallel (mix x policy) sweep with caching")
    p.add_argument("--mixes", nargs="+", default=None, metavar="MIX",
                   help="mixes to sweep (default: all twelve Table-1 "
                        "mixes, or just --scenarios when given)")
    p.add_argument("--scenarios", nargs="+", default=None, metavar="NAME",
                   help="scenario-library rungs to add to the mix list "
                        "(mix1..mix7; see `repro scenarios`)")
    p.add_argument("--devices", nargs="+", default=None, metavar="NAME",
                   help="device technology tables: sweep (mix x policy "
                        "x device) instead, each device compared against "
                        "its own baseline")
    p.add_argument("--policies", nargs="+", default=["MemScale"],
                   metavar="POLICY", help=f"policies from {POLICY_NAMES}")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: up to 8, one per CPU)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write one per-epoch telemetry JSONL file per run "
                        "into DIR")
    p.add_argument("--bound", type=float, default=None,
                   help="CPI degradation bound (default 0.10)")
    p.add_argument("--save", default=None, metavar="FILE",
                   help="save all results/comparisons to a JSON file")
    p.add_argument("--validate", action="store_true",
                   help="arm the DDR3 protocol validator in every worker")
    _add_scale_args(p)
    _add_cache_args(p)
    _add_ff_arg(p)
    _add_retries_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("cap",
                       help="power-cap budget sweep with violation and "
                            "fairness stats")
    p.add_argument("--mixes", nargs="+", default=None, metavar="MIX",
                   help="mixes to cap (default: the four MID mixes)")
    p.add_argument("--budgets", nargs="+", type=float,
                   default=list(experiments.DEFAULT_BUDGET_FRACTIONS),
                   metavar="FRAC",
                   help="budgets as fractions of each mix's baseline "
                        "memory power (default: 1.0 .. 0.6)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny 2-point sweep on MID1 with acceptance "
                        "checks (cap enforcement + fairness)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: up to 8, one per CPU)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write one per-epoch telemetry JSONL file per run "
                        "into DIR")
    p.add_argument("--validate", action="store_true",
                   help="arm the DDR3 protocol validator in every worker")
    _add_scale_args(p)
    _add_cache_args(p)
    _add_ff_arg(p)
    _add_retries_arg(p)
    p.set_defaults(func=cmd_cap)

    p = sub.add_parser("multidomain",
                       help="coordinated CPU+memory sweep under one "
                            "global power budget")
    p.add_argument("--mixes", nargs="+", default=None, metavar="MIX",
                   help="mixes to run (default: the four MID mixes)")
    p.add_argument("--budgets", nargs="+", type=float,
                   default=list(experiments.DEFAULT_MULTIDOMAIN_FRACTIONS),
                   metavar="FRAC",
                   help="global budgets as fractions of each mix's "
                        "baseline memory + nominal core power "
                        "(default: 1.0 .. 0.65)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny 2-point sweep on MID1 with acceptance "
                        "checks (budget enforcement + coordinated split "
                        "beats memory-only capping)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: up to 8, one per CPU)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write one per-epoch telemetry JSONL file per run "
                        "into DIR")
    p.add_argument("--validate", action="store_true",
                   help="arm the DDR3 protocol validator in every worker")
    _add_scale_args(p)
    _add_cache_args(p)
    _add_ff_arg(p)
    _add_retries_arg(p)
    p.set_defaults(func=cmd_multidomain)

    p = sub.add_parser("placement",
                       help="rank-aware page placement + self-refresh "
                            "sweep vs plain MemScale")
    p.add_argument("--mixes", nargs="+", default=None, metavar="MIX",
                   help="mixes to run (default: the four MID mixes)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny shortened-epoch run on MID1 with "
                        "acceptance checks (placement+SR beats plain "
                        "MemScale on memory energy, validator armed, "
                        "ranks actually parked)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: up to 8, one per CPU)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write one per-epoch telemetry JSONL file per run "
                        "into DIR")
    p.add_argument("--validate", action="store_true",
                   help="arm the DDR3 protocol validator in every worker "
                        "(the smoke always does)")
    _add_scale_args(p)
    _add_cache_args(p)
    _add_ff_arg(p)
    _add_retries_arg(p)
    p.set_defaults(func=cmd_placement)

    p = sub.add_parser("governors",
                       help="list every registered governor")
    p.set_defaults(func=cmd_governors)

    p = sub.add_parser("bench", help="benchmark entry points (CI smoke)")
    p.add_argument("--smoke", action="store_true",
                   help="run one tiny mix through the parallel path")
    p.add_argument("--jobs", type=int, default=2,
                   help="worker processes for the smoke run (default 2)")
    p.add_argument("--validate", action="store_true",
                   help="also arm the DDR3 protocol validator in the "
                        "smoke sweep itself")
    p.add_argument("--scenario", default=None, metavar="MIX",
                   help="run the smoke sweep on this mix/ladder rung "
                        "instead of MID1")
    _add_device_arg(p)
    _add_cache_args(p)
    _add_ff_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("perfbench",
                       help="simulator-throughput benchmark with a "
                            "regression gate (writes BENCH_perf.json)")
    p.add_argument("--repeats", type=int, default=3,
                   help="median-of-N repeats per scenario (default 3)")
    p.add_argument("--output", default="BENCH_perf.json", metavar="FILE",
                   help="benchmark/baseline JSON file (default "
                        "BENCH_perf.json)")
    p.add_argument("--scenarios", nargs="+", default=None, metavar="NAME",
                   help="subset of scenarios to run (default: all)")
    p.add_argument("--update-baseline", action="store_true",
                   help="re-seed the committed baseline from this run")
    p.add_argument("--max-regression", type=float, default=0.10,
                   help="max fractional throughput drop vs baseline "
                        "before failing (default 0.10)")
    p.add_argument("--no-gate", action="store_true",
                   help="report baseline vs current but never fail "
                        "(the CI smoke leg on shared runners)")
    p.add_argument("--no-approx", action="store_true",
                   help="measure with the steady-state surrogate "
                        "disabled (exact event-by-event epoch bodies)")
    p.add_argument("--profile", action="store_true",
                   help="wrap the timed runs in cProfile and print the "
                        "top-20 cumulative hot spots")
    p.add_argument("--profile-out", default=None, metavar="FILE",
                   help="with --profile: also dump the raw pstats "
                        "profile to FILE (CI artifact)")
    _add_ff_arg(p)
    p.set_defaults(func=cmd_perfbench)

    p = sub.add_parser("scenarios",
                       help="list the MPKI-laddered scenario library "
                            "and device technology tables")
    p.add_argument("--smoke", action="store_true",
                   help="acceptance leg: ingest the bundled k6 trace, "
                        "replay it deterministically, run every ladder "
                        "rung and device table validator-armed")
    p.add_argument("--jobs", type=int, default=2,
                   help="worker processes for the smoke legs (default 2)")
    p.add_argument("--instructions", type=int, default=8_000,
                   help="instructions per core in the smoke runs "
                        "(default 8000)")
    p.add_argument("--trace", default=SCENARIOS_SMOKE_TRACE,
                   metavar="FILE",
                   help=f"k6 trace the smoke ingests (default "
                        f"{SCENARIOS_SMOKE_TRACE})")
    p.add_argument("--dir", default=None, metavar="DIR",
                   help=f"smoke working directory (default "
                        f"{SCENARIOS_SMOKE_DIR}; recreated fresh)")
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("trace",
                       help="import or inspect external memory traces "
                            "(DRAMSim2 k6 / CSV)")
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser("import",
                         help="parse a trace file, re-interleave it onto "
                              "the configured geometry, and store it as "
                              "a replayable trace:<name> mix")
    tp.add_argument("file", help="trace file (k6: 'addr cmd cycle'; or "
                                 "CSV with the same columns)")
    tp.add_argument("--name", required=True,
                    help="store name; replay with `repro run "
                         "trace:<name>`")
    tp.add_argument("--format", choices=["auto", "k6", "csv"],
                    default="auto",
                    help="input format (default: detect)")
    tp.add_argument("--cores", type=int, default=16,
                    help="cores to round-robin the requests onto "
                         "(default 16; replay needs --cores to match)")
    tp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help=f"cache root holding the imported store "
                         f"(default: {DEFAULT_CACHE_DIR})")
    tp.set_defaults(func=cmd_trace)

    tp = tsub.add_parser("info",
                         help="parse and summarize a trace file without "
                              "storing anything")
    tp.add_argument("file")
    tp.add_argument("--format", choices=["auto", "k6", "csv"],
                    default="auto",
                    help="input format (default: detect)")
    tp.add_argument("--cores", type=int, default=16,
                    help="cores the summary's replay stats assume "
                         "(default 16)")
    tp.set_defaults(func=cmd_trace)

    p = sub.add_parser("cache",
                       help="show on-disk experiment-cache statistics")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help=f"cache root (default: {DEFAULT_CACHE_DIR})")
    p.add_argument("--prune", action="store_true",
                   help="delete every cached entry after printing stats")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("service",
                       help="crash-safe sweep service: persistent queue "
                            "+ resumable result store")
    ssub = p.add_subparsers(dest="service_command", required=True)

    sp = ssub.add_parser("run", help="enqueue a sweep and execute it "
                                     "(idempotent: reruns only add "
                                     "missing jobs)")
    sp.add_argument("--dir", required=True, metavar="DIR",
                    help="service directory (queue.jsonl + store/ + "
                         "cache/)")
    sp.add_argument("--kind",
                    choices=["policy", "cap", "multidomain", "placement",
                             "scenario"],
                    default="policy",
                    help="sweep flavour (default policy)")
    sp.add_argument("--mixes", nargs="+", default=None, metavar="MIX",
                    help="mixes to sweep (default: MID1)")
    sp.add_argument("--policies", nargs="+", default=["MemScale"],
                    metavar="POLICY",
                    help=f"policies from {POLICY_NAMES} "
                         f"(kind=policy/scenario)")
    sp.add_argument("--budgets", nargs="+", type=float, default=None,
                    metavar="FRAC",
                    help="budget fractions (kind=cap/multidomain)")
    sp.add_argument("--devices", nargs="+", default=None, metavar="NAME",
                    help="device technology tables (kind=scenario; "
                         "default ddr3-1333)")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: up to 8, one per "
                         "CPU)")
    sp.add_argument("--telemetry", default=None, metavar="DIR",
                    help="write per-epoch telemetry JSONL files into DIR")
    sp.add_argument("--validate", action="store_true",
                    help="arm the DDR3 protocol validator in every "
                         "worker")
    sp.add_argument("--fail-label", nargs="+", default=None,
                    metavar="MIX/POINT",
                    help="inject a deterministic failure into the named "
                         "jobs (testing hook, e.g. MID1/MemScale)")
    _add_scale_args(sp)
    _add_ff_arg(sp)
    _add_retries_arg(sp, default=1)
    sp.set_defaults(func=cmd_service)

    sp = ssub.add_parser("resume",
                         help="finish an interrupted sweep: execute only "
                              "the jobs without a successful store "
                              "record")
    sp.add_argument("--dir", required=True, metavar="DIR")
    sp.add_argument("--jobs", type=int, default=None,
                    help="override the recorded worker count")
    sp.add_argument("--retries", type=int, default=None,
                    help="override the recorded retry budget")
    sp.set_defaults(func=cmd_service)

    sp = ssub.add_parser("status",
                         help="queue/store progress of a service "
                              "directory")
    sp.add_argument("--dir", required=True, metavar="DIR")
    sp.set_defaults(func=cmd_service)

    sp = ssub.add_parser("smoke",
                         help="CI leg: tiny sweep with one injected "
                              "failing job, resume, query, store "
                              "digest check")
    sp.add_argument("--dir", default=None, metavar="DIR",
                    help=f"service directory (default "
                         f"{SERVICE_SMOKE_DIR}; recreated fresh)")
    sp.add_argument("--jobs", type=int, default=2,
                    help="worker processes (default 2)")
    sp.set_defaults(func=cmd_service)

    p = sub.add_parser("query",
                       help="query a service directory's accumulated "
                            "result store")
    p.add_argument("--dir", required=True, metavar="DIR",
                   help="service directory (the `service run --dir`)")
    p.add_argument("--mix", default=None, help="filter by mix")
    p.add_argument("--policy", default=None,
                   help="filter by point (policy name, Cap0.80, "
                        "MD0.70, ...)")
    p.add_argument("--kind", default=None,
                   choices=["policy", "cap", "multidomain", "placement",
                            "scenario"],
                   help="filter by sweep flavour")
    p.add_argument("--status", default=None, choices=["ok", "failed"],
                   help="filter by record status")
    p.add_argument("--jsonl", action="store_true",
                   help="emit raw store records as JSONL instead of a "
                        "table")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int)
    _add_scale_args(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("timeline", help="per-epoch timeline (Figures 7/8)")
    p.add_argument("mix")
    _add_scale_args(p)
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("stats", help="trace statistics for a mix")
    p.add_argument("mix")
    _add_scale_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("best-static",
                       help="oracle static frequency vs MemScale")
    p.add_argument("mix")
    _add_scale_args(p)
    p.set_defaults(func=cmd_best_static)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
