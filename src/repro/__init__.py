"""MemScale reproduction: active low-power modes for main memory.

A full implementation of the system described in "MemScale: Active
Low-Power Modes for Main Memory" (Deng, Meisner, Ramos, Wenisch,
Bianchini — ASPLOS 2011): a detailed DDR3 memory-system simulator, a
trace-driven multi-core CPU model, the counter-based performance and
power models, and the OS-level DVFS/DFS policy, plus every baseline the
paper compares against.

Quick start::

    from repro import ExperimentRunner

    runner = ExperimentRunner()
    result, comparison = runner.run_memscale("MID1")
    print(f"system energy savings: {comparison.system_energy_savings:.1%}")
"""

from repro.config import (
    AVAILABLE_BUS_FREQS_MHZ,
    ConfigError,
    SystemConfig,
    default_config,
    scaled_config,
)
from repro.core import (
    BaselineGovernor,
    DecoupledDimmGovernor,
    EnergyModel,
    FrequencyLadder,
    FrequencyPoint,
    Governor,
    MemScaleGovernor,
    MemScalePolicy,
    PerformanceModel,
    PolicyObjective,
    PowerBreakdown,
    PowerModel,
    StaticFrequencyGovernor,
    rest_of_system_power_w,
)
from repro.cpu import (
    APP_PROFILES,
    MIXES,
    TraceGenerator,
    WorkloadTrace,
    generate_workload,
    mix_names,
)
from repro.memsim import MemoryController, PowerdownMode
from repro.sim import (
    ExperimentRunner,
    PolicyComparison,
    RunnerSettings,
    RunResult,
    SystemSimulator,
    compare_to_baseline,
)

__version__ = "1.0.0"

__all__ = [
    "APP_PROFILES",
    "AVAILABLE_BUS_FREQS_MHZ",
    "BaselineGovernor",
    "ConfigError",
    "DecoupledDimmGovernor",
    "EnergyModel",
    "ExperimentRunner",
    "FrequencyLadder",
    "FrequencyPoint",
    "Governor",
    "MIXES",
    "MemScaleGovernor",
    "MemScalePolicy",
    "MemoryController",
    "PerformanceModel",
    "PolicyComparison",
    "PolicyObjective",
    "PowerBreakdown",
    "PowerModel",
    "PowerdownMode",
    "RunResult",
    "RunnerSettings",
    "StaticFrequencyGovernor",
    "SystemConfig",
    "SystemSimulator",
    "TraceGenerator",
    "WorkloadTrace",
    "compare_to_baseline",
    "default_config",
    "generate_workload",
    "mix_names",
    "rest_of_system_power_w",
    "scaled_config",
    "__version__",
]
