"""FastCap-style max-min fairness allocator.

Each epoch the allocator searches the joint frequency space — the
global (MC + bus) ladder crossed with per-channel one-step-down
refinements — for the configuration that **maximizes the minimum
per-core normalized performance subject to the power cap**:

    maximize   min_c  CPI_max(c) / CPI_k(c)
    subject to P_predicted(k) <= budget_w

where ``CPI_max`` is the predicted CPI at the fastest point (execution
without energy management) and ``P_predicted`` is the Micron-style
power model's memory-subsystem prediction for configuration ``k``. The
normalized-performance objective is FastCap's fairness criterion: no
application is sacrificed to keep the others fast.

The search is exhaustive over the global ladder (ten points) and greedy
over per-channel refinements: from each global point, channels are
dropped one ladder step in ascending-utilization order, each cumulative
prefix forming one more candidate — at most ``ladder x (1 + channels)``
evaluations per epoch, all through the pure perf/power models.

When no candidate fits the budget the allocator *degrades gracefully*:
it returns the lowest-predicted-power configuration (throttle-hardest)
flagged ``feasible=False`` so the governor can count the epoch as
infeasible rather than silently overshooting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyLadder, FrequencyPoint
from repro.core.perf_model import PerformanceModel
from repro.core.power_model import PowerModel
from repro.memsim.counters import CounterDelta


@dataclass(frozen=True)
class CapCandidate:
    """One point of the joint (global x per-channel) frequency space."""

    global_point: FrequencyPoint
    #: Per-channel bus MHz, or None when every channel runs at the
    #: global frequency (no refinement).
    channel_bus_mhz: Optional[Tuple[float, ...]]
    predicted_power_w: float     #: predicted memory-subsystem power
    predicted_cpi: np.ndarray    #: per-core CPI at this configuration
    min_perf: float              #: min over cores of CPI_max/CPI (<= 1)
    #: Expected memory time per LLC miss (Eq. 9) at this configuration;
    #: lets the multi-domain allocator re-price the compute term of each
    #: core's CPI at a different core clock without re-deriving Eq. 9.
    tpi_mem_ns: Optional[float] = None


@dataclass(frozen=True)
class Allocation:
    """The allocator's decision for one epoch."""

    chosen: CapCandidate
    budget_w: float
    feasible: bool               #: False -> throttle-hardest fallback
    candidates_evaluated: int

    @property
    def global_point(self) -> FrequencyPoint:
        return self.chosen.global_point

    @property
    def channel_bus_mhz(self) -> Optional[Tuple[float, ...]]:
        return self.chosen.channel_bus_mhz

    @property
    def predicted_power_w(self) -> float:
        return self.chosen.predicted_power_w

    @property
    def min_perf(self) -> float:
        return self.chosen.min_perf


class CapAllocator:
    """Per-epoch joint-frequency search under a power budget."""

    def __init__(self, config: SystemConfig, energy_model: EnergyModel,
                 n_cores: int):
        config.validate()
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self._config = config
        self._perf: PerformanceModel = energy_model.perf_model
        self._power: PowerModel = energy_model.power_model
        self._ladder = FrequencyLadder(config)
        self._n_cores = n_cores
        self._cycle_ns = config.cpu.cycle_ns

    @property
    def ladder(self) -> FrequencyLadder:
        return self._ladder

    @property
    def power_model(self) -> PowerModel:
        return self._power

    @property
    def perf_model(self) -> PerformanceModel:
        return self._perf

    # -- candidate enumeration ------------------------------------------------

    def candidates(self, delta: CounterDelta,
                   current_freq: FrequencyPoint) -> List[CapCandidate]:
        """Every configuration the epoch search considers, with its
        predicted power and fairness score. Exposed separately from
        :meth:`allocate` so tests can verify the selection property
        against the full candidate set."""
        perf = self._perf
        base = self._ladder.fastest
        # Reference: execution without energy management (max frequency,
        # no powerdown-exit term) — the same reference Eq. 1 uses.
        cpi_max = perf.predict(delta, base, 0.0,
                               profiled_freq=current_freq).cpi
        cache: dict = {}
        n_channels = len(delta.channel_busy_ns)
        accesses = delta.channel_reads + delta.channel_writes
        total_accesses = float(accesses.sum())
        utils = np.array([delta.channel_utilization(c)
                          for c in range(n_channels)])
        drop_order = [int(c) for c in np.argsort(utils, kind="stable")]
        xi_product = perf.xi_bank(delta) * perf.xi_bus(delta)

        out: List[CapCandidate] = []
        for g in self._ladder:
            pred_g = perf.predict(delta, g, None,
                                  profiled_freq=current_freq)
            cpi_g = pred_g.cpi
            scale = perf.time_scale(delta, current_freq, g, cache=cache)
            power_g = self._power.predict(delta, g, scale).memory_w
            out.append(CapCandidate(
                global_point=g, channel_bus_mhz=None,
                predicted_power_w=power_g, predicted_cpi=cpi_g,
                min_perf=self._min_perf(cpi_g, cpi_max),
                tpi_mem_ns=pred_g.tpi_mem_ns))
            if g.index >= len(self._ladder) - 1 or total_accesses <= 0:
                continue
            lower = self._ladder[g.index + 1]
            extra_burst_ns = lower.burst_ns - g.burst_ns
            tpi_mem_g = perf.tpi_mem_ns(delta, g, None,
                                        profiled_freq=current_freq)
            channel_mhz = [g.bus_mhz] * n_channels
            extra_tpi_ns = 0.0
            for ch in drop_order:
                channel_mhz[ch] = lower.bus_mhz
                # Only the dropped channel's share of misses pays the
                # longer burst (the Section 6 refinement's cost model).
                share = float(accesses[ch]) / total_accesses
                extra_tpi_ns += xi_product * share * extra_burst_ns
                cpi_k = self._cpi_with_tpi_mem(delta,
                                               tpi_mem_g + extra_tpi_ns)
                power_k = self._power.predict(
                    delta, g, scale,
                    channel_bus_mhz=tuple(channel_mhz)).memory_w
                out.append(CapCandidate(
                    global_point=g, channel_bus_mhz=tuple(channel_mhz),
                    predicted_power_w=power_k, predicted_cpi=cpi_k,
                    min_perf=self._min_perf(cpi_k, cpi_max),
                    tpi_mem_ns=tpi_mem_g + extra_tpi_ns))
        return out

    def _min_perf(self, cpi: np.ndarray, cpi_max: np.ndarray) -> float:
        """Fairness score: the worst core's normalized performance."""
        worst = 1.0
        for core in range(len(cpi)):
            if cpi[core] <= 0 or cpi_max[core] <= 0:
                continue
            ratio = cpi_max[core] / cpi[core]
            # Max frequency can never be slower than a candidate: clamp,
            # mirroring MemScalePolicy._is_feasible's guard.
            if ratio > 1.0:
                ratio = 1.0
            if ratio < worst:
                worst = ratio
        return worst

    def _cpi_with_tpi_mem(self, delta: CounterDelta,
                          tpi_mem_ns: float) -> np.ndarray:
        """Per-core CPI for a given expected memory time per miss."""
        tpi_cpu = self._perf.tpi_cpu_ns
        cycle = self._cycle_ns
        n = len(delta.tic)
        cpi = np.empty(n, dtype=np.float64)
        for core in range(n):
            cpi[core] = (tpi_cpu + delta.alpha(core) * tpi_mem_ns) / cycle
        return cpi

    # -- selection ------------------------------------------------------------

    def allocate(self, delta: CounterDelta, current_freq: FrequencyPoint,
                 budget_w: float) -> Allocation:
        """Pick the epoch's configuration for the given budget.

        Selection property (pinned by a hypothesis test): whenever any
        candidate's predicted power fits the budget, the allocation is
        feasible and maximizes ``min_perf`` among the fitting candidates
        (ties broken toward lower predicted power); only when *no*
        candidate fits does it fall back to the throttle-hardest point.
        """
        if budget_w <= 0:
            raise ValueError("budget_w must be positive")
        cands = self.candidates(delta, current_freq)
        feasible = [c for c in cands if c.predicted_power_w <= budget_w]
        if feasible:
            chosen = max(feasible,
                         key=lambda c: (c.min_perf, -c.predicted_power_w))
            return Allocation(chosen=chosen, budget_w=budget_w,
                              feasible=True,
                              candidates_evaluated=len(cands))
        # Throttle-hardest: nothing fits, so take the configuration with
        # the lowest predicted power (least overshoot), never a faster
        # point that would overshoot by more.
        chosen = min(cands, key=lambda c: (c.predicted_power_w,
                                           -c.min_perf))
        return Allocation(chosen=chosen, budget_w=budget_w, feasible=False,
                          candidates_evaluated=len(cands))
