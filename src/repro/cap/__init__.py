"""Power-capping subsystem (FastCap-style budget enforcement).

MemScale answers "which frequency minimizes energy under a slowdown
bound?"; this package answers the dual question its authors later posed
in FastCap (Liu, Cox, Deng, Draper, Bianchini): "which frequencies keep
the memory subsystem under a *power budget* while degrading every
application as little — and as evenly — as possible?"

Three collaborating pieces, layered on the existing models:

* :mod:`~repro.cap.budget` — :class:`PowerBudget`: the budget contract
  (static watts or a time-varying :class:`BudgetSchedule`) plus the
  violation ledger (count, magnitude, time-over-cap);
* :mod:`~repro.cap.allocator` — :class:`CapAllocator`: the per-epoch
  search of the joint (MC/global frequency x per-channel frequency)
  space that maximizes the minimum per-application normalized
  performance subject to the cap, built on the Section 3.3 performance
  model and the Micron-style power model;
* :mod:`~repro.cap.governor` — :class:`CapGovernor`: the
  :class:`~repro.core.governor.Governor` implementation the epoch loop
  drives, unchanged at its call sites;
* :mod:`~repro.cap.multidomain` — :class:`MultiDomainGovernor` and
  :class:`MultiDomainAllocator`: the SysScale-style extension that
  splits one *global* budget between the core and memory domains each
  epoch, crossing the core frequency ladder with the memory-side
  candidate space above.
"""

from repro.cap.allocator import Allocation, CapAllocator, CapCandidate
from repro.cap.budget import BudgetSchedule, PowerBudget, ViolationStats
from repro.cap.governor import CapGovernor
from repro.cap.multidomain import (MultiDomainAllocation,
                                   MultiDomainAllocator,
                                   MultiDomainCandidate, MultiDomainGovernor)

__all__ = [
    "Allocation",
    "BudgetSchedule",
    "CapAllocator",
    "CapCandidate",
    "CapGovernor",
    "MultiDomainAllocation",
    "MultiDomainAllocator",
    "MultiDomainCandidate",
    "MultiDomainGovernor",
    "PowerBudget",
    "ViolationStats",
]
