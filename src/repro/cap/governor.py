"""Budget-enforcing governor plugged into the epoch loop.

``CapGovernor`` is a drop-in :class:`~repro.core.governor.Governor`: the
system simulator's call sites are unchanged. At each profile boundary it
asks the :class:`~repro.cap.allocator.CapAllocator` for the max-min-fair
configuration under the budget currently in force and programs the MC
(global point, then any per-channel down-steps). At each epoch end it
*measures* the epoch's average memory-subsystem power with the same
power model the simulator's energy accounting uses and books it against
the :class:`~repro.cap.budget.PowerBudget` ledger — so every over-budget
epoch is recorded, never silently absorbed.

When the allocator finds no feasible point it already degrades to the
throttle-hardest configuration; the governor additionally counts such
epochs in :attr:`infeasible_epochs` so the experiment report can show
how often the budget was simply unreachable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cap.allocator import Allocation, CapAllocator
from repro.cap.budget import PowerBudget
from repro.core.governor import Governor
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterDelta


class CapGovernor(Governor):
    """Power-capping governor: allocate under budget, ledger every epoch."""

    def __init__(self, allocator: CapAllocator, budget: PowerBudget):
        self._allocator = allocator
        self._budget = budget
        self.name = f"Cap-{budget.min_watts:.2f}W"
        #: Epochs where no candidate fit the budget (throttle fallback).
        self.infeasible_epochs = 0
        #: (time_ns, bus_mhz) after every decision, for timeline figures.
        self.frequency_log: List[Tuple[float, float]] = []
        self._last_allocation: Optional[Allocation] = None
        self._epochs_decided = 0

    @property
    def allocator(self) -> CapAllocator:
        return self._allocator

    @property
    def budget(self) -> PowerBudget:
        return self._budget

    @property
    def last_allocation(self) -> Optional[Allocation]:
        return self._last_allocation

    def on_profile_end(self, delta: CounterDelta,
                       controller: MemoryController,
                       epoch_remaining_ns: float) -> None:
        now = controller.engine.now
        allocation = self._allocator.allocate(
            delta, controller.freq, self._budget.budget_at(now))
        # set_frequency clears any per-channel overrides from the
        # previous epoch, so the refinement below starts from a clean
        # all-global state.
        controller.set_frequency(allocation.global_point)
        if allocation.channel_bus_mhz is not None:
            ladder = controller.ladder
            for ch, mhz in enumerate(allocation.channel_bus_mhz):
                if mhz != allocation.global_point.bus_mhz:
                    controller.set_channel_frequency(
                        ch, ladder.at_bus_mhz(mhz))
        if not allocation.feasible:
            self.infeasible_epochs += 1
        self._last_allocation = allocation
        self._epochs_decided += 1
        self.frequency_log.append(
            (controller.engine.now, allocation.global_point.bus_mhz))

    def on_epoch_end(self, delta: CounterDelta,
                     controller: MemoryController,
                     epoch_wall_ns: float) -> None:
        breakdown = self._allocator.power_model.measure(
            delta, controller.freq,
            channel_bus_mhz=controller.channel_bus_mhz_list())
        t_end = controller.engine.now
        self._budget.account(t_end - epoch_wall_ns, t_end,
                             breakdown.memory_w)

    def channel_bus_mhz(self, controller: MemoryController
                        ) -> Optional[List[float]]:
        return controller.channel_bus_mhz_list()

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Cap fields for the epoch telemetry record (schema v2)."""
        allocation = self._last_allocation
        if allocation is None:
            return {}
        return {
            "predicted_cpi": [float(c) for c in
                              allocation.chosen.predicted_cpi],
            "budget_w": float(allocation.budget_w),
            "predicted_power_w": float(allocation.predicted_power_w),
            "cap_feasible": bool(allocation.feasible),
            "min_perf_norm": float(allocation.min_perf),
        }

    def cap_summary(self) -> Dict[str, object]:
        """JSON-serializable run summary for the cap experiments."""
        summary = self._budget.summary()
        summary["infeasible_epochs"] = self.infeasible_epochs
        summary["epochs_decided"] = self._epochs_decided
        return summary
