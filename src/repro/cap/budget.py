"""Power-budget contract and violation ledger.

A :class:`PowerBudget` holds the cap the governor must enforce — either
a single static wattage or a :class:`BudgetSchedule` of step changes —
and keeps the violation ledger the cap experiments report: how many
epochs exceeded the cap, by how much at worst, for how long in total,
and how much excess energy slipped through. The governor converts each
epoch's energy-model output into an average wattage and calls
:meth:`PowerBudget.account` once per epoch, so an over-budget epoch is
*always* recorded — the cap sweep can show a violation count, but never
a silent overshoot.

The budget covers the modeled **memory subsystem** power (DIMMs plus
memory controller, the ``memory_w`` total of
:class:`~repro.core.power_model.PowerBreakdown`), which is the domain
the governor actually controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BudgetSchedule:
    """A piecewise-constant power budget over simulated time.

    ``steps`` is a sequence of ``(start_ns, watts)`` pairs sorted by
    start time; the budget at time ``t`` is the wattage of the last step
    whose ``start_ns <= t``. The first step must start at 0 so the
    budget is defined from simulation start.
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("schedule needs at least one step")
        if self.steps[0][0] != 0.0:
            raise ValueError("first step must start at t=0")
        starts = [s for s, _ in self.steps]
        if starts != sorted(starts):
            raise ValueError("steps must be sorted by start time")
        if len(set(starts)) != len(starts):
            raise ValueError("duplicate step start times")
        if any(w <= 0 for _, w in self.steps):
            raise ValueError("budget watts must be positive")

    @classmethod
    def static(cls, watts: float) -> "BudgetSchedule":
        """A flat budget of ``watts`` for the whole run."""
        return cls(steps=((0.0, float(watts)),))

    def watts_at(self, t_ns: float) -> float:
        """The budget in force at simulated time ``t_ns``."""
        if t_ns < 0:
            raise ValueError("time must be non-negative")
        current = self.steps[0][1]
        for start, watts in self.steps:
            if start > t_ns:
                break
            current = watts
        return current

    @property
    def min_watts(self) -> float:
        """The tightest budget anywhere on the schedule."""
        return min(w for _, w in self.steps)


@dataclass(frozen=True)
class ViolationStats:
    """Summary of the ledger, as reported by the cap experiments."""

    epochs_accounted: int
    violation_count: int
    time_over_cap_ns: float     #: total wall time spent above the cap
    total_time_ns: float        #: total wall time accounted
    max_over_w: float           #: worst instantaneous overshoot (watts)
    excess_energy_j: float      #: energy above the cap, integrated
    peak_power_w: float         #: highest epoch-average power accounted

    @property
    def time_over_cap_fraction(self) -> float:
        """Share of accounted time spent above the cap."""
        if self.total_time_ns <= 0:
            return 0.0
        return self.time_over_cap_ns / self.total_time_ns


class PowerBudget:
    """Budget tracker: answers "what is the cap now?" and keeps the ledger.

    ``tolerance_frac`` is the accounting dead-band: an epoch is recorded
    as a violation only when its average power exceeds the cap by more
    than this fraction. It exists because the governor decides from
    *predicted* power while the ledger records *measured* power; the
    default 1% absorbs model noise without hiding real overshoot.
    """

    def __init__(self, watts: Optional[float] = None,
                 schedule: Optional[BudgetSchedule] = None,
                 tolerance_frac: float = 0.01):
        if (watts is None) == (schedule is None):
            raise ValueError("give exactly one of watts or schedule")
        if schedule is None:
            schedule = BudgetSchedule.static(watts)
        if tolerance_frac < 0:
            raise ValueError("tolerance_frac must be non-negative")
        self.schedule = schedule
        self.tolerance_frac = tolerance_frac
        self.epochs_accounted = 0
        self.violation_count = 0
        self.time_over_cap_ns = 0.0
        self.total_time_ns = 0.0
        self.max_over_w = 0.0
        self.excess_energy_j = 0.0
        self.peak_power_w = 0.0
        #: (t_start_ns, t_end_ns, avg_power_w, budget_w) per violation.
        self.violations: List[Tuple[float, float, float, float]] = []

    def budget_at(self, t_ns: float) -> float:
        """The cap in force at simulated time ``t_ns``."""
        return self.schedule.watts_at(t_ns)

    @property
    def min_watts(self) -> float:
        return self.schedule.min_watts

    def account(self, t_start_ns: float, t_end_ns: float,
                avg_power_w: float) -> bool:
        """Record one epoch's average power; returns True on a violation.

        The epoch is judged against the budget in force at its *start*
        (a budget step mid-epoch applies from the next epoch on, which
        is when the governor can first react to it).
        """
        if t_end_ns <= t_start_ns:
            raise ValueError("epoch must have positive duration")
        if avg_power_w < 0:
            raise ValueError("power must be non-negative")
        duration_ns = t_end_ns - t_start_ns
        budget_w = self.budget_at(t_start_ns)
        self.epochs_accounted += 1
        self.total_time_ns += duration_ns
        if avg_power_w > self.peak_power_w:
            self.peak_power_w = avg_power_w
        over_w = avg_power_w - budget_w
        if over_w <= budget_w * self.tolerance_frac:
            return False
        self.violation_count += 1
        self.time_over_cap_ns += duration_ns
        if over_w > self.max_over_w:
            self.max_over_w = over_w
        self.excess_energy_j += over_w * duration_ns * 1e-9
        self.violations.append((t_start_ns, t_end_ns, avg_power_w, budget_w))
        return True

    def stats(self) -> ViolationStats:
        """Immutable snapshot of the ledger."""
        return ViolationStats(
            epochs_accounted=self.epochs_accounted,
            violation_count=self.violation_count,
            time_over_cap_ns=self.time_over_cap_ns,
            total_time_ns=self.total_time_ns,
            max_over_w=self.max_over_w,
            excess_energy_j=self.excess_energy_j,
            peak_power_w=self.peak_power_w,
        )

    def summary(self) -> Dict[str, object]:
        """JSON-serializable ledger summary for reports and telemetry."""
        s = self.stats()
        return {
            "budget_min_w": self.min_watts,
            "epochs_accounted": s.epochs_accounted,
            "violation_count": s.violation_count,
            "time_over_cap_fraction": s.time_over_cap_fraction,
            "max_over_w": s.max_over_w,
            "excess_energy_j": s.excess_energy_j,
            "peak_power_w": s.peak_power_w,
        }
