"""Multi-domain coordinated DVFS: one watt budget split across CPU + memory.

The cap governor enforces a budget on the memory subsystem alone; this
module redistributes a single **global** budget between the core and
memory domains each epoch, the SysScale-style coordination MemScale's
Section 7 leaves as future work. Each epoch the
:class:`MultiDomainAllocator` crosses the core frequency ladder
(:class:`~repro.core.cpu_power.CoreFrequencyLadder`) with the memory
side's joint candidate space (the cap allocator's global ladder plus
per-channel refinements, reused verbatim) and picks the
**minimum-predicted-energy** pair that

* fits the global budget: ``P_core + P_mem <= budget_w``, and
* meets the performance-degradation bound: every core's predicted
  slowdown vs (nominal cores, fastest memory) stays within
  ``PolicyConfig.cpi_bound``.

When the bound cannot be met inside the budget, the allocator maximizes
the minimum normalized performance among budget-fitting pairs (the cap
allocator's max-min fairness, extended to two domains); when *nothing*
fits, it degrades to the lowest-total-power pair flagged infeasible —
never a silent overshoot.

The core domain is analytical: the simulated timeline never re-clocks
the cores, so the governor programs only the memory controller, charges
modeled core power against the ledger, and constrains modeled slowdown.
Per-domain infeasibility counters record when either domain pinned at
its maximum frequency could not fit the budget alone — the coordinated
split's reason to exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cap.allocator import CapAllocator, CapCandidate
from repro.cap.budget import PowerBudget
from repro.config import SystemConfig
from repro.core.cpu_power import (CoreFrequencyLadder, CoreFrequencyPoint,
                                  CorePowerModel)
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyPoint
from repro.core.governor import Governor
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterDelta


@dataclass(frozen=True)
class MultiDomainCandidate:
    """One (core point x memory candidate) pair of the joint search."""

    core_point: CoreFrequencyPoint
    mem: CapCandidate
    core_power_w: float          #: modeled cluster power at ``core_point``
    total_power_w: float         #: core + predicted memory power
    predicted_cpi: np.ndarray    #: per-core CPI (nominal cycles) at the pair
    min_perf: float              #: min over cores of CPI_ref/CPI (<= 1)
    meets_bound: bool            #: every core within the slowdown bound
    energy_score: float          #: predicted system energy, relative units


@dataclass(frozen=True)
class MultiDomainAllocation:
    """The joint allocator's decision for one epoch."""

    chosen: MultiDomainCandidate
    budget_w: float
    feasible: bool               #: total predicted power fits the budget
    bound_met: bool              #: chosen pair meets the slowdown bound
    #: Cores pinned at nominal frequency could not fit the budget even
    #: with the cheapest memory configuration.
    core_max_infeasible: bool
    #: Memory pinned at its fastest point could not fit the budget even
    #: with the slowest core point.
    mem_max_infeasible: bool
    candidates_evaluated: int

    @property
    def core_point(self) -> CoreFrequencyPoint:
        return self.chosen.core_point

    @property
    def global_point(self) -> FrequencyPoint:
        return self.chosen.mem.global_point

    @property
    def channel_bus_mhz(self) -> Optional[Tuple[float, ...]]:
        return self.chosen.mem.channel_bus_mhz

    @property
    def core_power_w(self) -> float:
        return self.chosen.core_power_w

    @property
    def memory_power_w(self) -> float:
        return self.chosen.mem.predicted_power_w

    @property
    def total_power_w(self) -> float:
        return self.chosen.total_power_w

    @property
    def min_perf(self) -> float:
        return self.chosen.min_perf

    @property
    def budget_split(self) -> Dict[str, float]:
        """How the decision divides the global budget between domains."""
        return {"core_w": self.core_power_w, "memory_w": self.memory_power_w}


class MultiDomainAllocator:
    """Per-epoch (core ladder x memory candidates) search under one budget."""

    def __init__(self, config: SystemConfig, energy_model: EnergyModel,
                 n_cores: int, core_model: Optional[CorePowerModel] = None,
                 perf_bound: Optional[float] = None):
        config.validate()
        self._mem = CapAllocator(config, energy_model, n_cores)
        self._core = (core_model if core_model is not None
                      else CorePowerModel(config))
        self._bound = (perf_bound if perf_bound is not None
                       else config.policy.cpi_bound)
        if self._bound < 0:
            raise ValueError("perf_bound must be non-negative")
        self._rest_w = energy_model.rest_power_w

    @property
    def mem_allocator(self) -> CapAllocator:
        return self._mem

    @property
    def core_model(self) -> CorePowerModel:
        return self._core

    @property
    def core_ladder(self) -> CoreFrequencyLadder:
        return self._core.ladder

    @property
    def power_model(self):
        return self._mem.power_model

    @property
    def perf_bound(self) -> float:
        return self._bound

    # -- candidate enumeration ------------------------------------------------

    def candidates(self, delta: CounterDelta,
                   current_freq: FrequencyPoint
                   ) -> List[MultiDomainCandidate]:
        """Every (core, memory) pair the epoch search considers.

        Memory candidates come from :meth:`CapAllocator.candidates`
        unchanged; each is re-priced at every core point by stretching
        only the compute term of Eq. 3. The reference for slowdown and
        energy is (nominal cores, fastest memory, no powerdown exits) —
        execution without energy management in *either* domain.
        """
        mem_cands = self._mem.candidates(delta, current_freq)
        utils = self._core.utilizations(delta)
        perf = self._mem.perf_model
        tpi_mem_ref = perf.tpi_mem_ns(delta, self._mem.ladder.fastest, 0.0,
                                      profiled_freq=current_freq)
        cpi_ref = self._core.predicted_cpi(delta, self.core_ladder.fastest,
                                           tpi_mem_ref)
        weights = np.asarray(delta.tic, dtype=np.float64)
        total_weight = float(weights.sum())
        min_perf_floor = 1.0 / (1.0 + self._bound)

        out: List[MultiDomainCandidate] = []
        for cp in self.core_ladder:
            p_core = self._core.cluster_power_w(utils, cp)
            for mc in mem_cands:
                cpi = self._core.predicted_cpi(delta, cp, mc.tpi_mem_ns)
                min_perf = self._min_perf(cpi, cpi_ref)
                total_w = p_core + mc.predicted_power_w
                # Instruction-weighted slowdown vs the reference — the
                # same mean perf_model.time_scale uses.
                if total_weight > 0:
                    ratios = np.divide(cpi, cpi_ref,
                                       out=np.ones_like(cpi),
                                       where=cpi_ref > 0)
                    time_scale = float((ratios * weights).sum()
                                       / total_weight)
                else:
                    time_scale = 1.0
                energy_score = (total_w + self._rest_w) * time_scale
                out.append(MultiDomainCandidate(
                    core_point=cp, mem=mc, core_power_w=p_core,
                    total_power_w=total_w, predicted_cpi=cpi,
                    min_perf=min_perf,
                    meets_bound=min_perf >= min_perf_floor - 1e-12,
                    energy_score=energy_score))
        return out

    @staticmethod
    def _min_perf(cpi: np.ndarray, cpi_ref: np.ndarray) -> float:
        """Worst core's normalized performance, clamped like the cap
        allocator's fairness score."""
        worst = 1.0
        for core in range(len(cpi)):
            if cpi[core] <= 0 or cpi_ref[core] <= 0:
                continue
            ratio = cpi_ref[core] / cpi[core]
            if ratio > 1.0:
                ratio = 1.0
            if ratio < worst:
                worst = ratio
        return worst

    # -- selection ------------------------------------------------------------

    def allocate(self, delta: CounterDelta, current_freq: FrequencyPoint,
                 budget_w: float) -> MultiDomainAllocation:
        """Pick the epoch's (core, memory) pair for the given budget.

        Selection property (pinned by a hypothesis test): whenever any
        pair's total predicted power fits the budget, the allocation is
        feasible and its total predicted power is within the budget;
        among bound-meeting fitting pairs the minimum-energy one wins,
        among bound-violating fitting pairs the max-min-fair one; only
        when nothing fits does it fall back to the lowest-total-power
        pair flagged infeasible.
        """
        if budget_w <= 0:
            raise ValueError("budget_w must be positive")
        cands = self.candidates(delta, current_freq)
        # Per-domain-max feasibility: could either domain have stayed at
        # its maximum frequency under this budget?
        core_max_min_w = min(c.total_power_w for c in cands
                             if c.core_point.index == 0)
        mem_max_min_w = min(c.total_power_w for c in cands
                            if c.mem.global_point.index == 0
                            and c.mem.channel_bus_mhz is None)
        core_max_infeasible = core_max_min_w > budget_w
        mem_max_infeasible = mem_max_min_w > budget_w

        feasible = [c for c in cands if c.total_power_w <= budget_w]
        if feasible:
            bound_ok = [c for c in feasible if c.meets_bound]
            if bound_ok:
                chosen = min(bound_ok,
                             key=lambda c: (c.energy_score, -c.min_perf))
            else:
                chosen = max(feasible,
                             key=lambda c: (c.min_perf, -c.total_power_w))
            return MultiDomainAllocation(
                chosen=chosen, budget_w=budget_w, feasible=True,
                bound_met=chosen.meets_bound,
                core_max_infeasible=core_max_infeasible,
                mem_max_infeasible=mem_max_infeasible,
                candidates_evaluated=len(cands))
        chosen = min(cands, key=lambda c: (c.total_power_w, -c.min_perf))
        return MultiDomainAllocation(
            chosen=chosen, budget_w=budget_w, feasible=False,
            bound_met=chosen.meets_bound,
            core_max_infeasible=core_max_infeasible,
            mem_max_infeasible=mem_max_infeasible,
            candidates_evaluated=len(cands))


class MultiDomainGovernor(Governor):
    """Coordinated CPU+memory governor under one global power budget.

    A drop-in :class:`~repro.core.governor.Governor` mirroring
    :class:`~repro.cap.governor.CapGovernor`'s epoch lifecycle: allocate
    at each profile boundary, program the memory side (global point plus
    per-channel down-steps), ledger the epoch's **total** (measured
    memory + modeled core) average power at each epoch end. The core
    point decided for the epoch is charged analytically; the simulated
    memory timeline is identical to an uncapped run at the same memory
    decisions.
    """

    def __init__(self, allocator: MultiDomainAllocator, budget: PowerBudget):
        self._allocator = allocator
        self._budget = budget
        self.name = f"MultiDomain-{budget.min_watts:.2f}W"
        #: Epochs where no (core, memory) pair fit the budget.
        self.infeasible_epochs = 0
        #: Epochs where the chosen pair missed the slowdown bound.
        self.bound_missed_epochs = 0
        #: Epochs where cores at nominal frequency alone broke the budget.
        self.core_max_infeasible_epochs = 0
        #: Epochs where memory at its fastest point alone broke the budget.
        self.mem_max_infeasible_epochs = 0
        #: Modeled core energy accumulated over ledgered epochs (joules).
        self.core_energy_j = 0.0
        #: Wall time covered by the ledgered epochs (nanoseconds) —
        #: core_energy_j / this is the run-average modeled core power.
        self.ledgered_time_ns = 0.0
        #: (time_ns, bus_mhz, core_mhz) after every decision.
        self.frequency_log: List[Tuple[float, float, float]] = []
        self._last_allocation: Optional[MultiDomainAllocation] = None
        self._last_core_power_w: Optional[float] = None
        self._epochs_decided = 0
        self._core_mhz_sum = 0.0

    @property
    def allocator(self) -> MultiDomainAllocator:
        return self._allocator

    @property
    def budget(self) -> PowerBudget:
        return self._budget

    @property
    def last_allocation(self) -> Optional[MultiDomainAllocation]:
        return self._last_allocation

    def on_profile_end(self, delta: CounterDelta,
                       controller: MemoryController,
                       epoch_remaining_ns: float) -> None:
        now = controller.engine.now
        allocation = self._allocator.allocate(
            delta, controller.freq, self._budget.budget_at(now))
        controller.set_frequency(allocation.global_point)
        if allocation.channel_bus_mhz is not None:
            ladder = controller.ladder
            for ch, mhz in enumerate(allocation.channel_bus_mhz):
                if mhz != allocation.global_point.bus_mhz:
                    controller.set_channel_frequency(
                        ch, ladder.at_bus_mhz(mhz))
        if not allocation.feasible:
            self.infeasible_epochs += 1
        if not allocation.bound_met:
            self.bound_missed_epochs += 1
        if allocation.core_max_infeasible:
            self.core_max_infeasible_epochs += 1
        if allocation.mem_max_infeasible:
            self.mem_max_infeasible_epochs += 1
        self._last_allocation = allocation
        self._epochs_decided += 1
        self._core_mhz_sum += allocation.core_point.freq_mhz
        self.frequency_log.append(
            (controller.engine.now, allocation.global_point.bus_mhz,
             allocation.core_point.freq_mhz))

    def on_epoch_end(self, delta: CounterDelta,
                     controller: MemoryController,
                     epoch_wall_ns: float) -> None:
        breakdown = self._allocator.power_model.measure(
            delta, controller.freq,
            channel_bus_mhz=controller.channel_bus_mhz_list())
        core_model = self._allocator.core_model
        core_point = (self._last_allocation.core_point
                      if self._last_allocation is not None
                      else core_model.nominal)
        core_w = core_model.cluster_power_w(
            core_model.utilizations(delta), core_point)
        self.core_energy_j += core_w * epoch_wall_ns * 1e-9
        self.ledgered_time_ns += epoch_wall_ns
        self._last_core_power_w = core_w
        t_end = controller.engine.now
        self._budget.account(t_end - epoch_wall_ns, t_end,
                             breakdown.memory_w + core_w)

    def channel_bus_mhz(self, controller: MemoryController
                        ) -> Optional[List[float]]:
        return controller.channel_bus_mhz_list()

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Cap fields plus the per-domain fields of telemetry schema v3."""
        allocation = self._last_allocation
        if allocation is None:
            return {}
        return {
            "predicted_cpi": [float(c) for c in
                              allocation.chosen.predicted_cpi],
            "budget_w": float(allocation.budget_w),
            "predicted_power_w": float(allocation.total_power_w),
            "cap_feasible": bool(allocation.feasible),
            "min_perf_norm": float(allocation.min_perf),
            "core_freq_mhz": float(allocation.core_point.freq_mhz),
            "core_power_w": (float(self._last_core_power_w)
                             if self._last_core_power_w is not None
                             else float(allocation.core_power_w)),
            "domain_budget_split": {
                k: float(v) for k, v in allocation.budget_split.items()},
        }

    def multidomain_summary(self) -> Dict[str, object]:
        """JSON-serializable run summary for the multi-domain experiments."""
        summary = self._budget.summary()
        summary["infeasible_epochs"] = self.infeasible_epochs
        summary["epochs_decided"] = self._epochs_decided
        summary["bound_missed_epochs"] = self.bound_missed_epochs
        summary["core_max_infeasible_epochs"] = self.core_max_infeasible_epochs
        summary["mem_max_infeasible_epochs"] = self.mem_max_infeasible_epochs
        summary["core_energy_j"] = self.core_energy_j
        summary["avg_core_power_w"] = (
            self.core_energy_j / (self.ledgered_time_ns * 1e-9)
            if self.ledgered_time_ns > 0 else None)
        summary["avg_core_mhz"] = (self._core_mhz_sum / self._epochs_decided
                                   if self._epochs_decided else None)
        return summary
