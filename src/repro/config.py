"""System configuration for the MemScale reproduction.

All default values come from Table 2 of the paper (ASPLOS 2011) and the
surrounding text of Section 4.1. Every knob the sensitivity analysis
(Section 4.2.4) varies is an explicit field here: number of channels,
memory power fraction, MC/register power proportionality, CPI bound,
epoch length, and profiling length.

Unit conventions used throughout the package:

* time        -- nanoseconds (float)
* frequency   -- MHz (float); 1 cycle at ``f`` MHz lasts ``1000 / f`` ns
* voltage     -- volts
* current     -- amperes
* power       -- watts
* energy      -- joules
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Bus frequencies the memory subsystem supports, in MHz (Section 4.1).
#: The memory controller always runs at twice the bus frequency.
AVAILABLE_BUS_FREQS_MHZ: Tuple[float, ...] = (
    800.0, 733.0, 667.0, 600.0, 533.0, 467.0, 400.0, 333.0, 267.0, 200.0,
)

#: Nanoseconds per millisecond / microsecond, used by callers configuring
#: epoch lengths.
NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class DramTimings:
    """DDR3 device timing parameters (Table 2).

    Array-internal timings (``t_rcd``, ``t_rp``, ``t_cl``, ``t_ras``,
    ``t_rrd``, ``t_rtp``, ``t_faw``, powerdown exits, refresh) are fixed in
    *nanoseconds*: the DRAM arrays are not scaled, so their wall-clock
    latency does not change with bus frequency (Section 2.2).  Quantities
    fixed in *bus cycles* (burst length, MC processing) live on
    :class:`FrequencyPoint` because their wall-clock time scales.
    """

    t_rcd_ns: float = 15.0          #: activate -> column command
    t_rp_ns: float = 15.0           #: precharge
    t_cl_ns: float = 15.0           #: column access (CAS) latency
    t_ras_ns: float = 35.0          #: 28 bus cycles at 800 MHz
    t_rrd_ns: float = 5.0           #: 4 bus cycles at 800 MHz
    t_rtp_ns: float = 6.25          #: 5 bus cycles at 800 MHz
    t_faw_ns: float = 25.0          #: 20 bus cycles at 800 MHz
    t_wr_ns: float = 15.0           #: write recovery before precharge
    t_xp_ns: float = 6.0            #: exit fast-exit powerdown
    t_xpdll_ns: float = 24.0        #: exit slow-exit powerdown
    t_rfc_ns: float = 110.0         #: refresh cycle time (1 Gb device)
    t_ckesr_ns: float = 15.0        #: min CKE-low residency in self-refresh
    t_xs_ns: float = 120.0          #: exit self-refresh (~tRFC + 10 ns)
    refresh_period_ns: float = 64.0 * NS_PER_MS  #: retention window
    refresh_rows: int = 8192        #: rows refreshed per retention window

    @property
    def t_refi_ns(self) -> float:
        """Average interval between per-rank refresh commands."""
        return self.refresh_period_ns / self.refresh_rows

    @property
    def t_rc_ns(self) -> float:
        """Minimum activate-to-activate time for one bank."""
        return self.t_ras_ns + self.t_rp_ns

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)) and value <= 0:
                raise ConfigError(f"DramTimings.{f.name} must be positive, got {value}")
        if self.t_ras_ns < self.t_rcd_ns:
            raise ConfigError("t_ras must cover at least the activate time t_rcd")
        if self.t_refi_ns <= self.t_rfc_ns:
            raise ConfigError("refresh interval must exceed refresh cycle time")


@dataclass(frozen=True)
class DramCurrents:
    """Per-DRAM-chip current draws at 800 MHz (Table 2).

    Named after the conventional IDD numbering of DDR3 datasheets.
    Standby and powerdown currents are derated linearly with bus
    frequency, following Micron's power calculator (Section 4.1).
    """

    vdd: float = 1.575                 #: supply voltage (not scaled; Section 3.4)
    idd0: float = 0.120                #: activate-precharge current
    idd2n: float = 0.070               #: precharge standby
    idd2p: float = 0.045               #: precharge powerdown
    idd3n: float = 0.067               #: active standby
    idd3p: float = 0.045               #: active powerdown
    idd4r: float = 0.250               #: burst read
    idd4w: float = 0.250               #: burst write
    idd5: float = 0.240                #: refresh
    idd6: float = 0.012                #: self-refresh (CKE low, clock stopped)
    #: Fraction of standby/powerdown current that does *not* scale with
    #: frequency (leakage and refresh logic). The frequency-dependent
    #: remainder is derated by ``f / 800``.
    static_fraction: float = 0.35
    #: Average termination power dissipated in a rank while another rank on
    #: the same channel drives a read/write burst (ODT), in watts per rank.
    termination_w_read: float = 0.73
    termination_w_write: float = 1.10

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value < 0:
                raise ConfigError(f"DramCurrents.{f.name} must be non-negative")
        if not 0.0 <= self.static_fraction <= 1.0:
            raise ConfigError("static_fraction must lie in [0, 1]")
        if self.idd4r < self.idd3n or self.idd4w < self.idd3n:
            raise ConfigError("burst currents must exceed active standby current")


@dataclass(frozen=True)
class MemoryOrgConfig:
    """Physical organization of the memory subsystem (Table 2)."""

    channels: int = 4               #: independent DDR3 channels
    dimms_per_channel: int = 2      #: registered DIMMs per channel
    ranks_per_dimm: int = 2         #: dual-ranked DIMMs
    chips_per_rank: int = 9         #: x8 chips, 72-bit wide with ECC
    banks_per_rank: int = 8         #: banks per DRAM chip / rank
    rows_per_bank: int = 32768
    row_size_bytes: int = 8192      #: row-buffer (page) size
    cache_line_bytes: int = 64
    dimm_capacity_gib: int = 2
    #: Row-buffer management: "closed" (precharge after each access unless
    #: a same-row access is already pending — the paper's choice, better
    #: for multi-core [40]) or "open" (rows stay open until a conflict).
    row_policy: str = "closed"

    @property
    def ranks_per_channel(self) -> int:
        return self.dimms_per_channel * self.ranks_per_dimm

    @property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @property
    def total_dimms(self) -> int:
        return self.channels * self.dimms_per_channel

    @property
    def total_banks(self) -> int:
        return self.total_ranks * self.banks_per_rank

    @property
    def lines_per_row(self) -> int:
        return self.row_size_bytes // self.cache_line_bytes

    def validate(self) -> None:
        for name in ("channels", "dimms_per_channel", "ranks_per_dimm",
                     "chips_per_rank", "banks_per_rank", "rows_per_bank"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"MemoryOrgConfig.{name} must be positive")
        if self.row_size_bytes % self.cache_line_bytes != 0:
            raise ConfigError("row size must be a multiple of the cache line size")
        if self.row_policy not in ("closed", "open"):
            raise ConfigError(
                f"row_policy must be 'closed' or 'open', got {self.row_policy!r}")


@dataclass(frozen=True)
class CpuConfig:
    """Processor-side parameters (Table 2)."""

    cores: int = 16
    freq_mhz: float = 4000.0        #: 4 GHz
    #: Average CPU cycles per instruction for instructions that do not miss
    #: the LLC, including L1/L2 hit stalls. The paper models this as fixed
    #: (Section 3.3); 2.0 reproduces the baseline CPIs of 2-6 its Figure 7b
    #: shows for the MID workloads.
    cpi_cpu: float = 2.0
    llc_miss_per_core: int = 1      #: one outstanding LLC miss per core

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.freq_mhz

    def validate(self) -> None:
        if self.cores <= 0:
            raise ConfigError("CpuConfig.cores must be positive")
        if self.freq_mhz <= 0:
            raise ConfigError("CpuConfig.freq_mhz must be positive")
        if self.cpi_cpu <= 0:
            raise ConfigError("CpuConfig.cpi_cpu must be positive")


@dataclass(frozen=True)
class PowerConfig:
    """Non-DRAM power parameters (Section 4.1).

    ``proportionality_idle_frac`` is the idle power of the MC and the DIMM
    registers expressed as a fraction of their peak power: 0.0 is perfect
    power proportionality, 1.0 is none. The paper's default is 0.5 and
    Figure 15 sweeps {0.0, 0.5, 1.0}.
    """

    mc_peak_w: float = 15.0
    register_peak_w_per_dimm: float = 0.5
    pll_w_per_dimm: float = 0.5
    proportionality_idle_frac: float = 0.5
    mc_vmin: float = 0.65
    mc_vmax: float = 1.20
    #: DIMM (DRAM + PLL/REG) share of total system power at the baseline,
    #: used to derive the fixed rest-of-system power (40% default;
    #: Figure 14 sweeps {0.30, 0.40, 0.50}).
    memory_power_fraction: float = 0.40

    @property
    def mc_idle_w(self) -> float:
        return self.mc_peak_w * self.proportionality_idle_frac

    @property
    def register_idle_w_per_dimm(self) -> float:
        return self.register_peak_w_per_dimm * self.proportionality_idle_frac

    def validate(self) -> None:
        if self.mc_peak_w <= 0 or self.register_peak_w_per_dimm <= 0:
            raise ConfigError("peak powers must be positive")
        if not 0.0 <= self.proportionality_idle_frac <= 1.0:
            raise ConfigError("proportionality_idle_frac must lie in [0, 1]")
        if not 0.0 < self.memory_power_fraction < 1.0:
            raise ConfigError("memory_power_fraction must lie in (0, 1)")
        if self.mc_vmin <= 0 or self.mc_vmax <= self.mc_vmin:
            raise ConfigError("MC voltage range is inconsistent")


@dataclass(frozen=True)
class PolicyConfig:
    """MemScale OS-policy parameters (Sections 3.2 and 4.1)."""

    #: Maximum allowable per-application CPI degradation (gamma, Eq. 1).
    cpi_bound: float = 0.10
    #: OS time quantum / control epoch.
    epoch_ns: float = 5.0 * NS_PER_MS
    #: On-line profiling phase at the start of each epoch.
    profile_ns: float = 300.0 * NS_PER_US
    #: Frequency transition cost: 512 memory-bus cycles plus 28 ns
    #: (DLL re-lock through precharge powerdown, Section 4.1). Float so
    #: scaled configurations can shrink the cost proportionally with the
    #: epoch, preserving the paper's epoch-to-penalty ratio.
    transition_cycles: float = 512.0
    transition_extra_ns: float = 28.0

    def transition_penalty_ns(self, bus_freq_mhz: float) -> float:
        """Wall-clock cost of a frequency switch at the *departing* frequency."""
        return self.transition_cycles * (1000.0 / bus_freq_mhz) + self.transition_extra_ns

    def validate(self) -> None:
        if self.cpi_bound < 0:
            raise ConfigError("cpi_bound must be non-negative")
        if self.epoch_ns <= 0 or self.profile_ns <= 0:
            raise ConfigError("epoch and profile lengths must be positive")
        if self.profile_ns >= self.epoch_ns:
            raise ConfigError("profiling phase must be shorter than the epoch")


@dataclass(frozen=True)
class PlacementConfig:
    """Rank-aware page placement / self-refresh parking parameters.

    Disabled by default: with ``enabled=False`` the memory controller
    decodes addresses through the plain cache-line interleaver and no
    rank ever enters self-refresh, so results are byte-identical to a
    build without this section (pinned by the golden snapshot and a
    Hypothesis property).

    When enabled, physical pages (``page_lines`` consecutive cache
    lines) are homed on a single *rank group* — the same within-channel
    rank index on every channel, preserving channel interleaving while
    concentrating rank traffic. Per epoch, up to
    ``migrations_per_epoch`` hot pages (``hot_page_min_accesses``+
    accesses) are migrated off cold groups into the
    ``hot_group_fraction`` hottest groups (copy cost modeled as real
    read+write traffic), and groups that stay access-free for
    ``sr_idle_epochs`` consecutive epochs are parked in SELF_REFRESH.
    """

    enabled: bool = False
    #: Cache lines per OS page (128 x 64 B = 8 KiB, one row buffer).
    page_lines: int = 128
    #: Fraction of rank groups kept hot (migration targets; never parked).
    hot_group_fraction: float = 0.25
    #: Page-migration budget per epoch (0 disables migration).
    migrations_per_epoch: int = 16
    #: Accesses per epoch for a page on a cold group to qualify for
    #: migration into a hot group.
    hot_page_min_accesses: int = 1
    #: Consecutive access-free epochs before a cold group is parked.
    sr_idle_epochs: int = 1
    #: Home new pages round-robin across groups until the policy has
    #: established a hot set (models an unmanaged first-touch allocator);
    #: False homes every new page on a hot group from the start.
    spread_initial: bool = True

    def validate(self) -> None:
        if self.page_lines <= 0:
            raise ConfigError("PlacementConfig.page_lines must be positive")
        if not 0.0 < self.hot_group_fraction <= 1.0:
            raise ConfigError("hot_group_fraction must lie in (0, 1]")
        if self.migrations_per_epoch < 0:
            raise ConfigError("migrations_per_epoch must be non-negative")
        if self.hot_page_min_accesses < 1:
            raise ConfigError("hot_page_min_accesses must be at least 1")
        if self.sr_idle_epochs < 1:
            raise ConfigError("sr_idle_epochs must be at least 1")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundle.

    Use :func:`default_config` (or :meth:`replace`) rather than constructing
    sub-configs by hand; ``validate`` is invoked by the simulator before any
    run.
    """

    timings: DramTimings = field(default_factory=DramTimings)
    currents: DramCurrents = field(default_factory=DramCurrents)
    org: MemoryOrgConfig = field(default_factory=MemoryOrgConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    bus_freqs_mhz: Tuple[float, ...] = AVAILABLE_BUS_FREQS_MHZ
    #: Arm the runtime DDR3 protocol validator (memsim/validate.py). An
    #: observer only — simulated results are identical either way, so the
    #: experiment cache deliberately ignores this flag.
    validate_protocol: bool = False
    #: Batch idle-period housekeeping (refresh ticks, powerdown
    #: residency) analytically instead of event by event
    #: (memsim/controller.py). Results are byte-identical on or off —
    #: pinned by the golden snapshot and a property test — so the
    #: experiment cache ignores this flag too; it exists as an escape
    #: hatch and for measuring the speedup itself.
    fast_forward: bool = True
    #: Absorb busy-period continuation chains inline (the deferred-
    #: marker path in memsim/engine.py) instead of round-tripping each
    #: request-path successor through the heap. Byte-identical on or
    #: off — same contract and cache treatment as ``fast_forward``.
    busy_absorption: bool = True
    #: Approximate steady-state absorption (memsim/steady.py): when the
    #: epoch profile is stationary, simulate only a slice of the epoch
    #: body event-exactly and extrapolate the rest with batched numpy
    #: counter kernels. Results are *approximate* (bounded-error
    #: contract, see docs/performance.md), so this flag IS part of the
    #: experiment cache fingerprint. Default off.
    approx_steady_state: bool = False

    @property
    def max_bus_freq_mhz(self) -> float:
        return max(self.bus_freqs_mhz)

    @property
    def min_bus_freq_mhz(self) -> float:
        return min(self.bus_freqs_mhz)

    def sorted_bus_freqs(self) -> List[float]:
        """Candidate bus frequencies, descending (highest first)."""
        return sorted(self.bus_freqs_mhz, reverse=True)

    def validate(self) -> None:
        self.timings.validate()
        self.currents.validate()
        self.org.validate()
        self.cpu.validate()
        self.power.validate()
        self.policy.validate()
        self.placement.validate()
        if self.placement.enabled:
            interleave = self.org.channels * self.org.banks_per_rank
            if self.placement.page_lines % interleave != 0:
                raise ConfigError(
                    "placement.page_lines must be a multiple of "
                    f"channels*banks_per_rank ({interleave}) so pages keep "
                    "full channel/bank interleaving within a rank group")
        if not self.bus_freqs_mhz:
            raise ConfigError("at least one bus frequency is required")
        if len(set(self.bus_freqs_mhz)) != len(self.bus_freqs_mhz):
            raise ConfigError("bus frequencies must be distinct")
        for f in self.bus_freqs_mhz:
            if f <= 0:
                raise ConfigError("bus frequencies must be positive")

    def replace(self, **section_overrides: object) -> "SystemConfig":
        """Return a copy with whole sections replaced (e.g. ``policy=...``)."""
        return dataclasses.replace(self, **section_overrides)

    def with_policy(self, **kwargs: object) -> "SystemConfig":
        return self.replace(policy=dataclasses.replace(self.policy, **kwargs))

    def with_power(self, **kwargs: object) -> "SystemConfig":
        return self.replace(power=dataclasses.replace(self.power, **kwargs))

    def with_org(self, **kwargs: object) -> "SystemConfig":
        return self.replace(org=dataclasses.replace(self.org, **kwargs))

    def with_cpu(self, **kwargs: object) -> "SystemConfig":
        return self.replace(cpu=dataclasses.replace(self.cpu, **kwargs))

    def with_placement(self, **kwargs: object) -> "SystemConfig":
        return self.replace(
            placement=dataclasses.replace(self.placement, **kwargs))

    def describe(self) -> Dict[str, object]:
        """Flat summary used by reports and experiment logs."""
        return {
            "cores": self.cpu.cores,
            "cpu_freq_mhz": self.cpu.freq_mhz,
            "channels": self.org.channels,
            "dimms": self.org.total_dimms,
            "ranks": self.org.total_ranks,
            "banks": self.org.total_banks,
            "bus_freqs_mhz": list(self.sorted_bus_freqs()),
            "cpi_bound": self.policy.cpi_bound,
            "epoch_ns": self.policy.epoch_ns,
            "profile_ns": self.policy.profile_ns,
            "memory_power_fraction": self.power.memory_power_fraction,
            "proportionality_idle_frac": self.power.proportionality_idle_frac,
        }


def config_to_dict(config: SystemConfig) -> Dict[str, object]:
    """JSON-ready dictionary capturing every field of ``config``.

    The inverse of :func:`config_from_dict`; the sweep service's
    persistent job ledger stores this so an interrupted sweep can be
    resumed by a later process with the exact same configuration.
    """
    return dataclasses.asdict(config)


def config_from_dict(payload: Dict[str, object]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    Unknown top-level keys are rejected (a payload from a newer code
    version should fail loudly, not silently drop a knob); the result
    is validated before being returned.
    """
    known = {f.name for f in dataclasses.fields(SystemConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ConfigError(
            f"unknown SystemConfig fields in payload: {sorted(unknown)}")
    sections = {
        "timings": DramTimings, "currents": DramCurrents,
        "org": MemoryOrgConfig, "cpu": CpuConfig,
        "power": PowerConfig, "policy": PolicyConfig,
        "placement": PlacementConfig,
    }
    kwargs: Dict[str, object] = {}
    for name, cls in sections.items():
        if name in payload:
            kwargs[name] = cls(**payload[name])
    if "bus_freqs_mhz" in payload:
        kwargs["bus_freqs_mhz"] = tuple(payload["bus_freqs_mhz"])
    for flag in ("validate_protocol", "fast_forward", "busy_absorption",
                 "approx_steady_state"):
        if flag in payload:
            kwargs[flag] = bool(payload[flag])
    config = SystemConfig(**kwargs)
    config.validate()
    return config


def default_config() -> SystemConfig:
    """The paper's Table 2 configuration."""
    cfg = SystemConfig()
    cfg.validate()
    return cfg


def scaled_config(epoch_ns: float = 20.0 * NS_PER_US,
                  profile_ns: float = 2.0 * NS_PER_US) -> SystemConfig:
    """Table 2 configuration with epochs shortened for pure-Python runs.

    The paper shows MemScale is insensitive to epoch/profile length
    (Section 4.2.4); shrinking both keeps every other physical parameter
    at its published value while making full sweeps tractable. The
    frequency-transition cost is shrunk by the same factor so that the
    epoch-to-penalty ratio (0.014% of a 5 ms epoch) is preserved —
    otherwise transitions would be ~400x more expensive relative to an
    epoch than in the paper's system. See DESIGN.md, "Substitutions".
    """
    base = default_config()
    ratio = epoch_ns / base.policy.epoch_ns
    cfg = base.with_policy(
        epoch_ns=epoch_ns, profile_ns=profile_ns,
        transition_cycles=base.policy.transition_cycles * ratio,
        transition_extra_ns=base.policy.transition_extra_ns * ratio)
    cfg.validate()
    return cfg
