"""Plain-text tables for experiment reports.

Every benchmark prints its figure/table through these helpers so that
the harness output can be compared line-by-line with the paper's plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def percent(value: float, digits: int = 1) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def bar(value: float, scale: float = 1.0, width: int = 40,
        char: str = "#") -> str:
    """A horizontal ASCII bar for quick visual comparison.

    ``scale`` is the value that fills the whole ``width``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = int(round(max(0.0, min(value / scale, 1.0)) * width))
    return char * n


def format_bar_chart(items: Sequence[tuple], scale: float,
                     width: int = 40, title: Optional[str] = None,
                     value_format: str = "{:.1%}") -> str:
    """Labelled horizontal bar chart: ``items`` is (label, value) pairs."""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max((len(str(label)) for label, _ in items), default=0)
    for label, value in items:
        lines.append(
            f"{str(label).ljust(label_w)} | "
            f"{bar(value, scale, width)} {value_format.format(value)}")
    return "\n".join(lines)


def format_series(xs: Sequence[float], ys: Sequence[float],
                  x_label: str, y_label: str,
                  y_format: str = "{:.3f}") -> str:
    """Two-column series listing (for timeline figures)."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    lines = [f"{x_label:>12}  {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:12.3f}  {y_format.format(y)}")
    return "\n".join(lines)


def savings_table(rows: Dict[str, Dict[str, float]],
                  title: Optional[str] = None) -> str:
    """Table of per-workload savings/degradation percentages.

    ``rows`` maps a row label to column-name -> ratio.
    """
    if not rows:
        raise ValueError("no rows to format")
    columns = list(next(iter(rows.values())))
    table_rows = [
        [label] + [percent(values[c]) for c in columns]
        for label, values in rows.items()
    ]
    return format_table(["workload"] + columns, table_rows, title=title)


def cap_summary_table(rows: Sequence[Dict[str, object]],
                      title: Optional[str] = "power-cap sweep") -> str:
    """Summary table of a cap sweep (one row per (mix, budget) point).

    ``rows`` are the ``cap_sweep`` experiment's row dicts: ``workload``,
    ``governor``, ``budget_fraction`` (None for the throttle reference),
    ``budget_w``, ``avg_power_w``, ``violations``, ``time_over_frac``,
    ``infeasible_epochs``, ``min_perf``, ``worst_cpi_increase``, and
    ``system_savings``. Missing budget columns render as ``-``.
    """
    if not rows:
        raise ValueError("no cap results to format")

    def num(row, key, fmt):
        value = row.get(key)
        return "-" if value is None else fmt.format(value)

    table_rows = []
    for row in rows:
        table_rows.append([
            row["workload"],
            row["governor"],
            num(row, "budget_fraction", "{:.0%}"),
            num(row, "budget_w", "{:.2f}"),
            num(row, "avg_power_w", "{:.2f}"),
            num(row, "violations", "{:d}"),
            num(row, "time_over_frac", "{:.1%}"),
            num(row, "infeasible_epochs", "{:d}"),
            num(row, "min_perf", "{:.3f}"),
            percent(float(row["worst_cpi_increase"])),
            percent(float(row["system_savings"])),
        ])
    return format_table(
        ["workload", "governor", "budget", "cap W", "avg W", "viol",
         "t>cap", "infeas", "min perf", "worst CPI", "sys savings"],
        table_rows, title=title)


def multidomain_summary_table(rows: Sequence[Dict[str, object]],
                              title: Optional[str] =
                              "multi-domain budget sweep") -> str:
    """Summary table of a multi-domain sweep (one row per (mix, budget,
    leg) point).

    ``rows`` are the ``multidomain_sweep`` experiment's row dicts:
    ``workload``, ``governor``, ``budget_fraction``, ``budget_w``,
    ``avg_power_w``, ``avg_core_power_w``, ``avg_core_mhz``,
    ``violations``, ``infeasible_epochs``, ``min_perf``, and
    ``system_energy_j``. Fields absent on the memory-only reference
    legs render as ``-``.
    """
    if not rows:
        raise ValueError("no multi-domain results to format")

    def num(row, key, fmt):
        value = row.get(key)
        return "-" if value is None else fmt.format(value)

    table_rows = []
    for row in rows:
        table_rows.append([
            row["workload"],
            row["governor"],
            num(row, "budget_fraction", "{:.0%}"),
            num(row, "budget_w", "{:.2f}"),
            num(row, "avg_power_w", "{:.2f}"),
            num(row, "avg_core_power_w", "{:.2f}"),
            num(row, "avg_core_mhz", "{:.0f}"),
            num(row, "violations", "{:d}"),
            num(row, "infeasible_epochs", "{:d}"),
            num(row, "min_perf", "{:.3f}"),
            num(row, "system_energy_j", "{:.4f}"),
        ])
    return format_table(
        ["workload", "governor", "budget", "cap W", "avg W", "core W",
         "core MHz", "viol", "infeas", "min perf", "sys J"],
        table_rows, title=title)


def device_energy_table(rows: Sequence[Dict[str, object]],
                        title: Optional[str] =
                        "device technology sweep") -> str:
    """Summary table of a scenario sweep (one row per (mix, policy,
    device) point).

    ``rows`` are the scenario sweep's row dicts: ``workload``,
    ``policy``, ``device``, ``memory_energy_j``, ``background_share``
    (standby energy as a fraction of DIMM energy — the column that
    makes the STT-MRAM-style standby shift visible), ``mem_savings``
    (vs the per-device baseline), and ``worst_cpi_increase``. Missing
    comparison columns render as ``-``.
    """
    if not rows:
        raise ValueError("no scenario results to format")

    def num(row, key, fmt):
        value = row.get(key)
        return "-" if value is None else fmt.format(value)

    def pct(row, key):
        value = row.get(key)
        return "-" if value is None else percent(float(value))

    table_rows = []
    for row in rows:
        table_rows.append([
            row["workload"],
            row["policy"],
            row["device"],
            num(row, "memory_energy_j", "{:.4f}"),
            num(row, "background_share", "{:.1%}"),
            pct(row, "mem_savings"),
            pct(row, "worst_cpi_increase"),
        ])
    return format_table(
        ["workload", "policy", "device", "mem J", "standby",
         "mem savings", "worst CPI"],
        table_rows, title=title)
