"""Reporting helpers: monospace tables and ASCII charts for benches."""

from repro.analysis.tables import (
    bar,
    cap_summary_table,
    device_energy_table,
    format_bar_chart,
    format_series,
    format_table,
    multidomain_summary_table,
    percent,
    savings_table,
)

__all__ = [
    "bar",
    "cap_summary_table",
    "device_energy_table",
    "format_bar_chart",
    "format_series",
    "format_table",
    "multidomain_summary_table",
    "percent",
    "savings_table",
]
