"""Reporting helpers: monospace tables and ASCII charts for benches."""

from repro.analysis.tables import (
    bar,
    format_bar_chart,
    format_series,
    format_table,
    percent,
    savings_table,
)

__all__ = [
    "bar",
    "format_bar_chart",
    "format_series",
    "format_table",
    "percent",
    "savings_table",
]
