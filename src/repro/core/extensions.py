"""Future-work extensions sketched in Section 6 of the paper.

``PerChannelMemScaleGovernor`` implements the first item — "selecting
different frequencies for different channels". The policy first makes
the standard global SER/slack decision, then refines it: channels whose
utilization sits well below the mean are dropped one more ladder step,
provided the modeled extra per-miss time keeps every core within its
slack budget. DIMM background and register/PLL power then follow each
channel's own clock (the MC keeps the global frequency).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.governor import MemScaleGovernor
from repro.core.policy import MemScalePolicy
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterDelta

#: A channel qualifies for an extra step down when its utilization is
#: below this fraction of the mean channel utilization.
LOW_UTILIZATION_FRACTION = 0.5


class PerChannelMemScaleGovernor(MemScaleGovernor):
    """MemScale with per-channel frequency refinement (Section 6)."""

    def __init__(self, policy: MemScalePolicy):
        super().__init__(policy, use_powerdown=False)
        self.name = "MemScale/channel"
        self.per_channel_drops = 0

    def on_profile_end(self, delta: CounterDelta,
                       controller: MemoryController,
                       epoch_remaining_ns: float) -> None:
        policy = self.policy
        decision = policy.select_frequency(delta, controller.freq,
                                           epoch_remaining_ns)
        controller.set_frequency(decision.chosen)
        self.frequency_log.append(
            (controller.engine.now, decision.chosen.bus_mhz))
        self._refine_channels(delta, controller, decision,
                              epoch_remaining_ns)

    def _refine_channels(self, delta: CounterDelta,
                         controller: MemoryController, decision,
                         epoch_remaining_ns: float) -> None:
        ladder = controller.ladder
        chosen = decision.chosen
        if chosen.index >= len(ladder) - 1:
            return  # already at the floor; nothing lower to offer
        lower = ladder[chosen.index + 1]
        utils = np.array([delta.channel_utilization(c)
                          for c in range(len(controller.channels))])
        accesses = delta.channel_reads + delta.channel_writes
        total_accesses = float(accesses.sum())
        if total_accesses <= 0 or utils.mean() <= 0:
            return
        threshold = LOW_UTILIZATION_FRACTION * utils.mean()

        perf = self.policy._perf
        base = ladder.fastest
        cpi_max = perf.predict(delta, base, 0.0, profiled_freq=chosen).cpi
        xi_product = perf.xi_bank(delta) * perf.xi_bus(delta)
        extra_burst_ns = lower.burst_ns - chosen.burst_ns

        transition_ns = self.policy._config.policy.transition_penalty_ns(
            chosen.bus_mhz)
        cumulative_extra_ns = 0.0
        for ch in np.argsort(utils):
            ch = int(ch)
            if utils[ch] >= threshold:
                continue
            # Only this channel's share of misses pays the longer burst;
            # drops accumulate, and each re-lock stalls the subsystem.
            share = float(accesses[ch]) / total_accesses
            extra_tpi_ns = (cumulative_extra_ns
                            + xi_product * share * extra_burst_ns)
            cpi_f = self._cpi_with_extra_memory_time(delta, chosen,
                                                     extra_tpi_ns)
            if self.policy._is_feasible(cpi_f, cpi_max, epoch_remaining_ns,
                                        transition_ns):
                controller.set_channel_frequency(ch, lower)
                self.per_channel_drops += 1
                cumulative_extra_ns = extra_tpi_ns

    def _cpi_with_extra_memory_time(self, delta: CounterDelta, freq,
                                    extra_tpi_ns: float) -> np.ndarray:
        perf = self.policy._perf
        tpi_mem = perf.tpi_mem_ns(delta, freq, None,
                                  profiled_freq=freq) + extra_tpi_ns
        n = len(delta.tic)
        cpi = np.empty(n)
        cycle_ns = self.policy._config.cpu.cycle_ns
        for core in range(n):
            alpha = delta.alpha(core)
            cpi[core] = (perf.tpi_cpu_ns + alpha * tpi_mem) / cycle_ns
        return cpi

    def channel_bus_mhz(self, controller: MemoryController
                        ) -> Optional[List[float]]:
        return controller.channel_bus_mhz_list()
