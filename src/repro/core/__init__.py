"""MemScale's primary contribution: models, policy, and governors."""

from repro.core.baselines import (
    DECOUPLED_DEVICE_MHZ,
    STATIC_BASELINE_BUS_MHZ,
    BaselineGovernor,
    DecoupledDimmGovernor,
    StaticFrequencyGovernor,
)
from repro.core.energy_model import (
    EnergyEstimate,
    EnergyModel,
    rest_of_system_power_w,
)
from repro.core.frequency import (
    BURST_BUS_CYCLES,
    MC_PROCESSING_CYCLES,
    FrequencyLadder,
    FrequencyPoint,
)
from repro.core.extensions import PerChannelMemScaleGovernor
from repro.core.governor import Governor, MemScaleGovernor
from repro.core.perf_model import CpiPrediction, PerformanceModel
from repro.core.policy import FrequencyDecision, MemScalePolicy, PolicyObjective
from repro.core.power_model import PowerBreakdown, PowerModel

__all__ = [
    "BURST_BUS_CYCLES",
    "BaselineGovernor",
    "CpiPrediction",
    "DECOUPLED_DEVICE_MHZ",
    "DecoupledDimmGovernor",
    "EnergyEstimate",
    "EnergyModel",
    "FrequencyDecision",
    "FrequencyLadder",
    "FrequencyPoint",
    "Governor",
    "MC_PROCESSING_CYCLES",
    "MemScaleGovernor",
    "MemScalePolicy",
    "PerChannelMemScaleGovernor",
    "PerformanceModel",
    "PolicyObjective",
    "PowerBreakdown",
    "PowerModel",
    "STATIC_BASELINE_BUS_MHZ",
    "StaticFrequencyGovernor",
    "rest_of_system_power_w",
]
