"""Memory-subsystem frequency domain.

A single :class:`FrequencyPoint` captures everything that changes when the
OS re-locks the memory subsystem to a new bus frequency (Section 2.2):

* the bus/DIMM clock and the derived MC clock (always 2x the bus clock);
* the MC supply voltage, scaled linearly with MC frequency across the
  configured range (0.65 V - 1.2 V by default, Section 4.1);
* wall-clock durations of the *cycle-denominated* operations -- the data
  burst (4 bus cycles for a 64-byte line on an x64 DDR channel) and MC
  request processing (5 MC cycles, Section 3.3).

Array-internal DRAM timings do **not** live here: they are fixed in
nanoseconds and come from :class:`repro.config.DramTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config import SystemConfig

#: DDR burst occupies 4 bus cycles for a 64-byte line (8 beats, double
#: data rate), Section 2.1.
BURST_BUS_CYCLES = 4
#: Each request spends 5 MC cycles of processing in the absence of
#: queueing (Section 3.3).
MC_PROCESSING_CYCLES = 5


@dataclass(frozen=True)
class FrequencyPoint:
    """One operating point of the memory subsystem."""

    bus_mhz: float
    mc_mhz: float
    mc_voltage: float
    index: int  #: position in the descending frequency ladder (0 = fastest)

    @property
    def bus_cycle_ns(self) -> float:
        return 1000.0 / self.bus_mhz

    @property
    def mc_cycle_ns(self) -> float:
        return 1000.0 / self.mc_mhz

    @property
    def burst_ns(self) -> float:
        """Wall-clock data-burst (channel transfer) time."""
        return BURST_BUS_CYCLES * self.bus_cycle_ns

    @property
    def mc_latency_ns(self) -> float:
        """Wall-clock MC processing latency per request."""
        return MC_PROCESSING_CYCLES * self.mc_cycle_ns

    def relative_speed(self, reference: "FrequencyPoint") -> float:
        """This point's bus frequency as a fraction of ``reference``'s."""
        return self.bus_mhz / reference.bus_mhz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.bus_mhz:.0f}MHz(bus)/{self.mc_mhz:.0f}MHz(MC)@{self.mc_voltage:.3f}V"


class FrequencyLadder:
    """The ordered set of operating points a system supports.

    Points are kept in descending bus-frequency order, so index 0 is the
    fastest point and ``len(ladder) - 1`` the slowest. The MC voltage for
    each point is interpolated linearly between ``PowerConfig.mc_vmin`` and
    ``mc_vmax`` over the MC frequency range, mirroring how the paper scales
    MC voltage with frequency.
    """

    def __init__(self, config: SystemConfig):
        self._config = config
        freqs = config.sorted_bus_freqs()
        mc_freqs = [2.0 * f for f in freqs]
        mc_max, mc_min = max(mc_freqs), min(mc_freqs)
        vmin, vmax = config.power.mc_vmin, config.power.mc_vmax
        points: List[FrequencyPoint] = []
        for idx, bus in enumerate(freqs):
            mc = 2.0 * bus
            if mc_max == mc_min:
                voltage = vmax
            else:
                voltage = vmin + (vmax - vmin) * (mc - mc_min) / (mc_max - mc_min)
            points.append(FrequencyPoint(bus_mhz=bus, mc_mhz=mc,
                                         mc_voltage=voltage, index=idx))
        self._points = tuple(points)
        self._by_bus = {p.bus_mhz: p for p in self._points}

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> FrequencyPoint:
        return self._points[index]

    @property
    def points(self) -> Sequence[FrequencyPoint]:
        return self._points

    @property
    def fastest(self) -> FrequencyPoint:
        return self._points[0]

    @property
    def slowest(self) -> FrequencyPoint:
        return self._points[-1]

    def at_bus_mhz(self, bus_mhz: float) -> FrequencyPoint:
        """Look up the point with exactly this bus frequency."""
        try:
            return self._by_bus[bus_mhz]
        except KeyError:
            raise ValueError(
                f"{bus_mhz} MHz is not an available bus frequency; "
                f"choose one of {sorted(self._by_bus)}"
            ) from None

    def nearest(self, bus_mhz: float) -> FrequencyPoint:
        """The available point closest to an arbitrary bus frequency."""
        return min(self._points, key=lambda p: abs(p.bus_mhz - bus_mhz))

    def neighbours(self, point: FrequencyPoint) -> Sequence[FrequencyPoint]:
        """The adjacent ladder points (1 or 2 of them)."""
        out = []
        if point.index > 0:
            out.append(self._points[point.index - 1])
        if point.index < len(self._points) - 1:
            out.append(self._points[point.index + 1])
        return out
