"""Comparison energy-management policies (Section 4.2.3).

* **Baseline** — memory always at maximum frequency, no powerdown; the
  reference all results are normalized against.
* **Fast-PD / Slow-PD** — today's aggressive MCs: a rank transitions to
  fast-exit (resp. slow-exit) precharge powerdown the moment its last
  open bank closes.
* **Static** — one frequency for MC/channels/DIMMs chosen before the run
  (the boot-time BIOS setting; the paper picks the frequency that
  maximizes average savings without violating the target: 467 MHz).
* **Decoupled DIMMs** [Zheng et al., ISCA'09] — channels at full speed,
  DRAM devices at a lower static frequency (400 MHz) behind a
  synchronization buffer whose power the paper optimistically ignores.
"""

from __future__ import annotations

from typing import Optional

from repro.core.frequency import BURST_BUS_CYCLES
from repro.core.governor import Governor
from repro.memsim.controller import MemoryController
from repro.memsim.states import PowerdownMode

#: Static-frequency baseline setting from Section 4.1.
STATIC_BASELINE_BUS_MHZ = 467.0
#: DRAM-device frequency of the Decoupled-DIMM baseline (Section 4.1).
DECOUPLED_DEVICE_MHZ = 400.0


class BaselineGovernor(Governor):
    """Max frequency at all times; optional idle powerdown flavour."""

    def __init__(self, powerdown: PowerdownMode = PowerdownMode.NONE):
        self._powerdown = powerdown
        if powerdown is PowerdownMode.FAST_EXIT:
            self.name = "Fast-PD"
        elif powerdown is PowerdownMode.SLOW_EXIT:
            self.name = "Slow-PD"
        else:
            self.name = "Baseline"

    @property
    def powerdown_mode(self) -> PowerdownMode:
        return self._powerdown


class StaticFrequencyGovernor(Governor):
    """Boot-time static frequency for the whole memory subsystem."""

    def __init__(self, bus_mhz: float = STATIC_BASELINE_BUS_MHZ):
        self._bus_mhz = bus_mhz
        self.name = f"Static-{bus_mhz:.0f}MHz"

    @property
    def bus_mhz(self) -> float:
        return self._bus_mhz

    def setup(self, controller: MemoryController) -> None:
        # A boot-time selection: no transition penalty is modeled because
        # the system never ran at another frequency.
        point = controller.ladder.at_bus_mhz(self._bus_mhz)
        controller.set_frequency(point)
        controller.clear_freeze()


class DecoupledDimmGovernor(Governor):
    """Decoupled DIMMs: full-speed channel, slow static DRAM devices.

    The slower device interface adds a fixed per-access transfer delay
    (the device-side burst takes ``BURST_BUS_CYCLES`` device cycles while
    the channel burst stays at full speed), and the device background
    power is derated to the device clock. Channel, register/PLL, and MC
    all remain at maximum frequency — exactly the cost structure that
    lets MemScale beat this baseline (Section 5).
    """

    def __init__(self, device_mhz: float = DECOUPLED_DEVICE_MHZ):
        if device_mhz <= 0:
            raise ValueError("device_mhz must be positive")
        self._device_mhz = device_mhz
        self.name = f"Decoupled-{device_mhz:.0f}MHz"

    @property
    def device_mhz(self) -> float:
        return self._device_mhz

    def setup(self, controller: MemoryController) -> None:
        bus_mhz = controller.freq.bus_mhz
        if self._device_mhz > bus_mhz:
            raise ValueError("device frequency cannot exceed the channel's")
        device_burst_ns = BURST_BUS_CYCLES * 1000.0 / self._device_mhz
        channel_burst_ns = BURST_BUS_CYCLES * 1000.0 / bus_mhz
        controller.set_device_extra_latency_ns(device_burst_ns - channel_burst_ns)

    def device_bus_mhz(self, controller: MemoryController) -> Optional[float]:
        return self._device_mhz
