"""Core-domain DVFS model: frequency ladder, V^2*f power, CPI scaling.

MemScale scales only the memory domain; SysScale-style multi-domain
coordination needs the compute side of the same two models the memory
domain already has:

* a **frequency ladder** of (frequency, voltage) operating points,
  mirroring :class:`repro.core.frequency.FrequencyLadder` — voltage is
  interpolated linearly with frequency across the configured range;
* a **power model** mirroring :meth:`PowerModel.mc_power_w
  <repro.core.power_model.PowerModel.mc_power_w>`: utilization-linear
  between idle and peak, then scaled by ``V^2 * f`` relative to the
  nominal operating point;
* a **performance model** routing the frequency-dependent compute time
  through the existing Eq. 3 decomposition: the time per instruction is
  ``cpi_cpu * cycle(f_core) + alpha * E[TPI_mem]``, so slowing the cores
  stretches only the compute term while the memory term comes from
  :class:`~repro.core.perf_model.PerformanceModel` unchanged.

The simulated timeline never re-clocks the cores (``Core`` fixes its
instruction time at construction); the model is *analytical*, exactly
like the OS policy's view of candidate memory frequencies. The
multi-domain governor charges modeled core power and constrains modeled
slowdown — the memory-side simulation stays byte-identical when the
core domain is pinned at nominal frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SystemConfig

#: Core DVFS steps as fractions of the nominal clock, descending. The
#: 1.0..0.5 range mirrors contemporary server parts (Table 2's 4 GHz
#: nominal scales down to 2 GHz).
CORE_FREQ_STEPS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


@dataclass(frozen=True)
class CoreDvfsConfig:
    """Parameters of the core frequency/voltage ladder and power model."""

    #: Available core frequencies as fractions of the nominal clock,
    #: descending; the first entry must be 1.0 (nominal).
    freq_steps: Tuple[float, ...] = CORE_FREQ_STEPS
    vmin: float = 0.75              #: supply voltage at the slowest step
    vmax: float = 1.10              #: supply voltage at the nominal step
    #: Peak power of one fully-busy core at nominal frequency/voltage.
    #: 4 W/core puts a busy 16-core cluster at 64 W — inside the
    #: rest-of-system power the 40% DIMM-share calibration implies.
    peak_w_per_core: float = 4.0
    #: Idle power as a fraction of the same-point peak (clock tree,
    #: leakage); mirrors the MC model's idle/peak split.
    idle_frac: float = 0.30

    def validate(self) -> None:
        if len(self.freq_steps) < 1:
            raise ValueError("need at least one core frequency step")
        if self.freq_steps[0] != 1.0:
            raise ValueError("first core frequency step must be 1.0 "
                             "(the nominal clock)")
        if any(s <= 0 for s in self.freq_steps):
            raise ValueError("core frequency steps must be positive")
        if list(self.freq_steps) != sorted(self.freq_steps, reverse=True):
            raise ValueError("core frequency steps must be descending")
        if len(set(self.freq_steps)) != len(self.freq_steps):
            raise ValueError("duplicate core frequency steps")
        if not 0.0 < self.vmin <= self.vmax:
            raise ValueError("need 0 < vmin <= vmax")
        if self.peak_w_per_core <= 0:
            raise ValueError("peak_w_per_core must be positive")
        if not 0.0 <= self.idle_frac <= 1.0:
            raise ValueError("idle_frac must lie in [0, 1]")


@dataclass(frozen=True)
class CoreFrequencyPoint:
    """One operating point of the core domain."""

    freq_mhz: float
    voltage: float
    index: int  #: position in the descending ladder (0 = nominal/fastest)

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.freq_mhz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.freq_mhz:.0f}MHz(core)@{self.voltage:.3f}V"


class CoreFrequencyLadder:
    """Descending core operating points, voltage interpolated linearly.

    Mirrors :class:`~repro.core.frequency.FrequencyLadder`: index 0 is
    the nominal (fastest) point, ``len - 1`` the slowest; voltage scales
    linearly between ``vmin`` and ``vmax`` over the frequency range.
    """

    def __init__(self, dvfs: CoreDvfsConfig, nominal_mhz: float):
        dvfs.validate()
        if nominal_mhz <= 0:
            raise ValueError("nominal_mhz must be positive")
        freqs = [step * nominal_mhz for step in dvfs.freq_steps]
        f_max, f_min = max(freqs), min(freqs)
        points: List[CoreFrequencyPoint] = []
        for idx, mhz in enumerate(freqs):
            if f_max == f_min:
                voltage = dvfs.vmax
            else:
                voltage = dvfs.vmin + (dvfs.vmax - dvfs.vmin) \
                    * (mhz - f_min) / (f_max - f_min)
            points.append(CoreFrequencyPoint(freq_mhz=mhz, voltage=voltage,
                                             index=idx))
        self._points = tuple(points)
        self._by_mhz = {p.freq_mhz: p for p in self._points}

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> CoreFrequencyPoint:
        return self._points[index]

    @property
    def points(self) -> Sequence[CoreFrequencyPoint]:
        return self._points

    @property
    def fastest(self) -> CoreFrequencyPoint:
        return self._points[0]

    @property
    def slowest(self) -> CoreFrequencyPoint:
        return self._points[-1]

    def at_mhz(self, freq_mhz: float) -> CoreFrequencyPoint:
        """Look up the point with exactly this core frequency."""
        try:
            return self._by_mhz[freq_mhz]
        except KeyError:
            raise ValueError(
                f"{freq_mhz} MHz is not an available core frequency; "
                f"choose one of {sorted(self._by_mhz)}"
            ) from None


class CorePowerModel:
    """V^2*f core power plus frequency-dependent CPI (the compute domain).

    The power idiom is :meth:`PowerModel.mc_power_w`'s: a base power
    linear in utilization between idle and peak, scaled by
    ``(V^2 * f) / (V_nom^2 * f_nom)``. Utilization is the busy fraction
    of the *simulated* (nominal-clock) timeline — committed instructions
    times the fixed compute time per instruction over the interval.
    """

    def __init__(self, config: SystemConfig,
                 dvfs: Optional[CoreDvfsConfig] = None):
        config.validate()
        self._config = config
        self._dvfs = dvfs if dvfs is not None else CoreDvfsConfig()
        self._dvfs.validate()
        self._ladder = CoreFrequencyLadder(self._dvfs, config.cpu.freq_mhz)
        self._nominal = self._ladder.fastest
        self._cpi_cpu = config.cpu.cpi_cpu
        self._nominal_cycle_ns = config.cpu.cycle_ns
        #: Compute time per instruction at the nominal clock.
        self._tpi_cpu_nominal_ns = self._cpi_cpu * self._nominal_cycle_ns

    @property
    def dvfs(self) -> CoreDvfsConfig:
        return self._dvfs

    @property
    def ladder(self) -> CoreFrequencyLadder:
        return self._ladder

    @property
    def nominal(self) -> CoreFrequencyPoint:
        return self._nominal

    # -- power ---------------------------------------------------------------

    def core_power_w(self, utilization: float,
                     point: CoreFrequencyPoint) -> float:
        """One core's power at ``point``, utilization-linear then V^2*f."""
        d = self._dvfs
        util = min(1.0, max(0.0, utilization))
        base = d.peak_w_per_core * (d.idle_frac + (1.0 - d.idle_frac) * util)
        vf_ratio = ((point.voltage ** 2) * point.freq_mhz
                    / ((self._nominal.voltage ** 2) * self._nominal.freq_mhz))
        return base * vf_ratio

    def cluster_power_w(self, utilizations: Sequence[float],
                        point: CoreFrequencyPoint) -> float:
        """Total power of all cores, each at its own utilization."""
        return sum(self.core_power_w(u, point) for u in utilizations)

    # -- utilization ---------------------------------------------------------

    def utilizations(self, delta) -> List[float]:
        """Per-core busy fraction over a profiled interval.

        ``delta`` is a :class:`~repro.memsim.counters.CounterDelta`; the
        busy time is committed instructions times the fixed nominal
        compute time per instruction (memory-stall time is *not* core
        busy time — it is what the idle fraction of the power model
        charges for).
        """
        interval = delta.interval_ns
        if interval <= 0:
            return [0.0] * len(delta.tic)
        return [min(1.0, float(t) * self._tpi_cpu_nominal_ns / interval)
                for t in delta.tic]

    def run_utilizations(self, result) -> List[float]:
        """Per-core busy fraction over a whole run.

        ``result`` is a :class:`~repro.sim.results.RunResult`; each
        core's commit rate is its target instruction count over its
        completion time, so the busy fraction matches the per-epoch
        definition of :meth:`utilizations` in steady state.
        """
        out = []
        for t_ns in result.core_time_at_target_ns:
            if t_ns <= 0:
                out.append(0.0)
                continue
            busy = result.target_instructions * self._tpi_cpu_nominal_ns
            out.append(min(1.0, busy / t_ns))
        return out

    def run_power_w(self, result, point: CoreFrequencyPoint) -> float:
        """Modeled cluster power over a whole run at a fixed point."""
        return self.cluster_power_w(self.run_utilizations(result), point)

    # -- performance ---------------------------------------------------------

    def predicted_cpi(self, delta, point: CoreFrequencyPoint,
                      tpi_mem_ns: float) -> np.ndarray:
        """Per-core CPI (in nominal cycles) at a core/memory operating pair.

        Routes the memory term through the existing perf model's
        ``E[TPI_mem]`` (Eq. 9) and stretches only the compute term by the
        candidate core clock:

            TPI(core) = cpi_cpu * cycle(f_core) + alpha * E[TPI_mem]

        Expressing the result in *nominal* cycles makes CPI ratios equal
        wall-clock ratios, so they compose directly with the cap
        allocator's min-perf arithmetic.
        """
        tpi_cpu = self._cpi_cpu * point.cycle_ns
        n = len(delta.tic)
        cpi = np.empty(n, dtype=np.float64)
        for core in range(n):
            cpi[core] = ((tpi_cpu + delta.alpha(core) * tpi_mem_ns)
                         / self._nominal_cycle_ns)
        return cpi
