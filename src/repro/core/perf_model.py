"""Counter-based performance model (Section 3.3, Eqs. 2-9).

Predicts each application's CPI at any candidate memory frequency from
one profiling interval's performance counters, sidestepping the
intractable transfer-blocking queueing network (Figure 4) with the
transactions-outstanding accumulators:

* ``xi_bus = 1 + CTO/CTC`` and ``xi_bank = 1 + BTO/BTC`` estimate the
  total work (queue ahead plus the request itself) a new arrival faces at
  the channel and bank servers (Eqs. 7-8; the "+1" is request *k* itself,
  which the paper folds into its summation);
* the average DRAM device time comes from the row-buffer counters
  (Eq. 6) and is frequency-independent (array timings are fixed in ns);
* MC processing and burst transfer scale with MC/bus frequency;
* ``E[TPI_mem] = xi_bank * (S_bank + xi_bus * S_bus)`` (Eq. 9), and
  per-core CPI follows from the miss fraction alpha = TLM/TIC (Eq. 3).

The xi values measured at the profiling frequency are assumed to hold at
every candidate frequency — the paper's approximation, whose residual
error the slack mechanism absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import SystemConfig
from repro.core.frequency import FrequencyPoint
from repro.memsim.counters import CounterDelta


@dataclass(frozen=True)
class CpiPrediction:
    """Per-core CPI predictions at one candidate frequency."""

    freq_bus_mhz: float
    cpi: np.ndarray          #: predicted CPI per core
    tpi_mem_ns: float        #: expected memory time per LLC miss
    device_time_ns: float    #: Eq. 6 expected device access time
    xi_bank: float
    xi_bus: float


class PerformanceModel:
    """Implements Eqs. 2-9 on top of a :class:`CounterDelta`.

    With ``scale_queues=True`` (the default), the queueing terms measured
    at the profiling frequency are corrected when predicting at another
    frequency: the outstanding work an arrival sees is proportional to
    how long requests reside in the servers, so ``xi - 1`` is scaled by
    the ratio of total service times. This implements the refinement the
    paper sketches for deep queues ("profiling at one more frequency and
    interpolating") analytically; disable it to get the paper's plain
    constant-xi approximation.
    """

    def __init__(self, config: SystemConfig, scale_queues: bool = True):
        config.validate()
        self._config = config
        self._tpi_cpu_ns = config.cpu.cpi_cpu * config.cpu.cycle_ns
        self._scale_queues = scale_queues

    @property
    def tpi_cpu_ns(self) -> float:
        """Fixed wall-clock time per non-missing instruction."""
        return self._tpi_cpu_ns

    # -- Eq. 6: expected device access time --------------------------------

    def device_time_ns(self, delta: CounterDelta,
                       pd_exit_ns: Optional[float] = None) -> float:
        """Average array-access latency from the row-buffer counters."""
        t = self._config.timings
        if pd_exit_ns is None:
            pd_exit_ns = t.t_xp_ns
        accesses = delta.rbhc + delta.cbmc + delta.obmc
        if accesses <= 0:
            # No accesses profiled: fall back to a closed-bank access,
            # the common case under closed-page management.
            return t.t_rcd_ns + t.t_cl_ns
        t_hit = t.t_cl_ns * delta.rbhc
        t_cb = (t.t_rcd_ns + t.t_cl_ns) * delta.cbmc
        t_ob = (t.t_rp_ns + t.t_rcd_ns + t.t_cl_ns) * delta.obmc
        t_pd = pd_exit_ns * delta.epdc
        return (t_hit + t_cb + t_ob + t_pd) / accesses

    # -- queueing multipliers -------------------------------------------------

    @staticmethod
    def xi_bank(delta: CounterDelta) -> float:
        """Expected bank-server multiplicity seen by an arrival (>= 1)."""
        return 1.0 + delta.xi_bank

    @staticmethod
    def xi_bus(delta: CounterDelta) -> float:
        """Expected channel-server multiplicity seen by an arrival (>= 1)."""
        return 1.0 + delta.xi_bus

    # -- Eqs. 5, 9: memory time per miss ----------------------------------------

    def s_bank_ns(self, delta: CounterDelta, freq: FrequencyPoint,
                  pd_exit_ns: Optional[float] = None) -> float:
        """E[S_bank]: MC processing plus device time, no queueing (Eq. 5)."""
        return freq.mc_latency_ns + self.device_time_ns(delta, pd_exit_ns)

    def _queue_scale(self, delta: CounterDelta, freq: FrequencyPoint,
                     profiled_freq: Optional[FrequencyPoint],
                     pd_exit_ns: Optional[float]) -> float:
        """Ratio adjusting measured xi terms to the candidate frequency."""
        if not self._scale_queues or profiled_freq is None:
            return 1.0
        s_prof = (self.s_bank_ns(delta, profiled_freq, pd_exit_ns)
                  + profiled_freq.burst_ns)
        s_cand = self.s_bank_ns(delta, freq, pd_exit_ns) + freq.burst_ns
        return s_cand / s_prof if s_prof > 0 else 1.0

    def tpi_mem_ns(self, delta: CounterDelta, freq: FrequencyPoint,
                   pd_exit_ns: Optional[float] = None,
                   profiled_freq: Optional[FrequencyPoint] = None) -> float:
        """E[TPI_mem] at ``freq`` (Eq. 9)."""
        s_bank = self.s_bank_ns(delta, freq, pd_exit_ns)
        s_bus = freq.burst_ns
        scale = self._queue_scale(delta, freq, profiled_freq, pd_exit_ns)
        xi_bank = 1.0 + delta.xi_bank * scale
        xi_bus = 1.0 + delta.xi_bus * scale
        return xi_bank * (s_bank + xi_bus * s_bus)

    # -- Eq. 3: per-core CPI -------------------------------------------------------

    def predict(self, delta: CounterDelta, freq: FrequencyPoint,
                pd_exit_ns: Optional[float] = None,
                profiled_freq: Optional[FrequencyPoint] = None
                ) -> CpiPrediction:
        """Predicted per-core CPI if the profiled interval ran at ``freq``.

        ``profiled_freq`` is the frequency the counters were collected at;
        when given (and queue scaling is enabled) the xi terms are
        adjusted to the candidate frequency.
        """
        tpi_mem = self.tpi_mem_ns(delta, freq, pd_exit_ns, profiled_freq)
        cycle = self._config.cpu.cycle_ns
        n = len(delta.tic)
        cpi = np.empty(n, dtype=np.float64)
        for core in range(n):
            alpha = delta.alpha(core)
            cpi[core] = (self._tpi_cpu_ns + alpha * tpi_mem) / cycle
        return CpiPrediction(
            freq_bus_mhz=freq.bus_mhz, cpi=cpi, tpi_mem_ns=tpi_mem,
            device_time_ns=self.device_time_ns(delta, pd_exit_ns),
            xi_bank=self.xi_bank(delta), xi_bus=self.xi_bus(delta),
        )

    def time_scale(self, delta: CounterDelta, from_freq: FrequencyPoint,
                   to_freq: FrequencyPoint,
                   pd_exit_ns: Optional[float] = None,
                   cache: Optional[dict] = None) -> float:
        """Predicted execution-time ratio T(to) / T(from) for the mix.

        Instruction-weighted mean of the per-core CPI ratios: cores with
        more committed work dominate the epoch's wall-clock length.

        ``cache`` optionally memoizes the sub-predictions for repeated
        calls with the *same* ``delta``/``pd_exit_ns`` (the policy's
        candidate scan evaluates ten candidates against one profile);
        the model is pure, so cached and fresh results are identical.
        """
        if cache is None:
            at_from = self.predict(delta, from_freq, pd_exit_ns,
                                   profiled_freq=from_freq).cpi
        else:
            key = ("cpi", from_freq.bus_mhz)
            at_from = cache.get(key)
            if at_from is None:
                at_from = self.predict(delta, from_freq, pd_exit_ns,
                                       profiled_freq=from_freq).cpi
                cache[key] = at_from
        if cache is None:
            at_to = self.predict(delta, to_freq, pd_exit_ns,
                                 profiled_freq=from_freq).cpi
        else:
            key = ("cpi_at", from_freq.bus_mhz, to_freq.bus_mhz)
            at_to = cache.get(key)
            if at_to is None:
                at_to = self.predict(delta, to_freq, pd_exit_ns,
                                     profiled_freq=from_freq).cpi
                cache[key] = at_to
        weights = np.asarray(delta.tic, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            return 1.0
        ratios = np.divide(at_to, at_from,
                           out=np.ones_like(at_to), where=at_from > 0)
        return float((ratios * weights).sum() / total)
