"""Governor interface and the MemScale governor.

A governor is the piece of software that manages memory-subsystem energy
during a run. The system simulator calls it at simulation start, at the
end of each profiling phase, and at each epoch boundary; it responds by
reprogramming the memory controller (frequency, powerdown behaviour).
The MemScale governor wraps :class:`~repro.core.policy.MemScalePolicy`;
the comparison policies of Section 4.2.3 live in
:mod:`repro.core.baselines`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.core.policy import MemScalePolicy
from repro.memsim.controller import MemoryController
from repro.memsim.counters import CounterDelta
from repro.memsim.states import PowerdownMode


class Governor(abc.ABC):
    """Energy-management driver plugged into the system simulator."""

    #: Human-readable policy name used in reports.
    name: str = "governor"

    @property
    def powerdown_mode(self) -> PowerdownMode:
        """How the MC should manage rank idleness under this governor."""
        return PowerdownMode.NONE

    def setup(self, controller: MemoryController) -> None:
        """One-time configuration before the simulation starts."""

    def on_profile_end(self, delta: CounterDelta,
                       controller: MemoryController,
                       epoch_remaining_ns: float) -> None:
        """Profiling phase finished; may reprogram the frequency."""

    def on_epoch_end(self, delta: CounterDelta,
                     controller: MemoryController,
                     epoch_wall_ns: float) -> None:
        """Epoch finished; bookkeeping (e.g. slack update)."""

    def device_bus_mhz(self, controller: MemoryController) -> Optional[float]:
        """DRAM-device clock for power modeling, when decoupled from the bus."""
        return None

    def channel_bus_mhz(self, controller: MemoryController
                        ) -> Optional[List[float]]:
        """Per-channel clocks for power modeling (per-channel DFS), or
        None when all channels share the global frequency."""
        return None

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Policy-side fields for the epoch telemetry record.

        Called by the simulator once per epoch — only when a telemetry
        sink is attached, so governors pay nothing by default. Keys a
        governor may contribute (see the JSONL schema in EXPERIMENTS.md):
        ``predicted_cpi``, ``slack_ns``, ``feasible_bus_mhz``,
        ``limited_by_slack``. Governors without a prediction model
        (the Section 4.2.3 baselines) return an empty dict.
        """
        return {}


class MemScaleGovernor(Governor):
    """The paper's policy: profile, select SER-minimal frequency, track slack."""

    def __init__(self, policy: MemScalePolicy,
                 use_powerdown: bool = False):
        self._policy = policy
        self._use_powerdown = use_powerdown
        self.name = "MemScale+Fast-PD" if use_powerdown else "MemScale"
        #: (time_ns, bus_mhz) after every decision, for timeline figures.
        self.frequency_log: List[Tuple[float, float]] = []

    @property
    def policy(self) -> MemScalePolicy:
        return self._policy

    @property
    def powerdown_mode(self) -> PowerdownMode:
        return (PowerdownMode.FAST_EXIT if self._use_powerdown
                else PowerdownMode.NONE)

    def on_profile_end(self, delta: CounterDelta,
                       controller: MemoryController,
                       epoch_remaining_ns: float) -> None:
        decision = self._policy.select_frequency(
            delta, controller.freq, epoch_remaining_ns)
        controller.set_frequency(decision.chosen)
        self.frequency_log.append(
            (controller.engine.now, decision.chosen.bus_mhz))

    def on_epoch_end(self, delta: CounterDelta,
                     controller: MemoryController,
                     epoch_wall_ns: float) -> None:
        self._policy.update_slack(delta, epoch_wall_ns,
                                  freq_used=controller.freq)

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Last decision's prediction and the current slack balance
        (Section 3.2 stages 2 and 4), for the epoch telemetry record."""
        if not self._policy.decisions:
            return {}
        decision = self._policy.decisions[-1]
        return {
            "predicted_cpi": [float(c) for c in decision.predicted_cpi],
            "slack_ns": [float(s) for s in self._policy.slack_ns],
            "feasible_bus_mhz": [float(f) for f in decision.feasible],
            "limited_by_slack": bool(decision.limited_by_slack),
        }
