"""MemScale OS energy-management policy (Section 3.2).

Runs once per OS epoch. Each epoch:

1. profile the counter file for a short window;
2. predict per-core CPI at every candidate frequency (Eqs. 2-9) and
   full-system energy (Eq. 10);
3. pick the frequency minimizing SER among candidates that keep every
   core within its slack-adjusted performance target (Eq. 1);
4. at epoch end, compare achieved progress against the estimated
   max-frequency execution and fold the difference into per-core slack,
   carried to the next epoch (Figure 3).

Slack bookkeeping is in wall-clock nanoseconds. A core's slack grows
when it runs faster than its target (``(1+gamma) x`` its max-frequency
time) and shrinks — possibly below zero — when it runs slower; negative
slack forces higher frequencies until the deficit is repaid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence  # noqa: F401 (Sequence in hints)

import numpy as np

from repro.config import SystemConfig
from repro.core.energy_model import EnergyModel
from repro.core.frequency import FrequencyLadder, FrequencyPoint
from repro.core.perf_model import PerformanceModel
from repro.memsim.counters import CounterDelta


class PolicyObjective(enum.Enum):
    """What the frequency search minimizes (Section 4.2.3)."""

    SYSTEM_ENERGY = "system"    #: full-system SER (the MemScale default)
    MEMORY_ENERGY = "memory"    #: memory-only energy (MemScale (MemEnergy))


@dataclass
class FrequencyDecision:
    """Outcome of one epoch's frequency selection, for logs and tests."""

    chosen: FrequencyPoint
    feasible: List[float]       #: bus MHz of candidates satisfying slack
    ser: float                  #: predicted objective value of the choice
    predicted_cpi: np.ndarray   #: per-core CPI at the chosen frequency
    limited_by_slack: bool      #: True if some candidate was rejected


class MemScalePolicy:
    """Per-epoch frequency selection with cross-epoch slack accounting."""

    def __init__(self, config: SystemConfig, energy_model: EnergyModel,
                 n_cores: int,
                 objective: PolicyObjective = PolicyObjective.SYSTEM_ENERGY,
                 pd_exit_ns: Optional[float] = None,
                 per_core_bounds: Optional[Sequence[float]] = None):
        """``per_core_bounds`` optionally gives each core (i.e. each
        program instance) its own maximum slowdown, as Section 3.1
        allows ("defined by users on a per-application basis"); it
        overrides the global ``config.policy.cpi_bound``."""
        config.validate()
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self._config = config
        self._energy = energy_model
        self._perf: PerformanceModel = energy_model.perf_model
        self._ladder = FrequencyLadder(config)
        if per_core_bounds is not None:
            bounds = np.asarray(per_core_bounds, dtype=np.float64)
            if bounds.shape != (n_cores,):
                raise ValueError(
                    f"per_core_bounds must have one entry per core "
                    f"({n_cores}), got shape {bounds.shape}")
            if (bounds < 0).any():
                raise ValueError("per-core bounds must be non-negative")
            self._gamma_per_core = bounds
        else:
            self._gamma_per_core = np.full(
                n_cores, config.policy.cpi_bound, dtype=np.float64)
        self._gamma = float(self._gamma_per_core.min())
        self._pd_exit_ns = pd_exit_ns
        self.objective = objective
        self.slack_ns = np.zeros(n_cores, dtype=np.float64)
        self.decisions: List[FrequencyDecision] = []

    @property
    def ladder(self) -> FrequencyLadder:
        """The candidate frequency ladder searched each epoch (Section 3.2)."""
        return self._ladder

    @property
    def gamma(self) -> float:
        """The tightest per-core bound (the scalar bound when uniform)."""
        return self._gamma

    @property
    def gamma_per_core(self) -> np.ndarray:
        """Per-core maximum slowdown bounds (Section 3.1's per-application
        gamma; uniform ``cpi_bound`` unless overridden)."""
        return self._gamma_per_core

    # -- stage 2: frequency selection ---------------------------------------

    def select_frequency(self, profile_delta: CounterDelta,
                         current_freq: FrequencyPoint,
                         epoch_remaining_ns: float) -> FrequencyDecision:
        """Pick the epoch's frequency from the profiling counters.

        A candidate ``f`` is feasible for core ``c`` when running the rest
        of the epoch at ``f`` is predicted to leave the core's slack
        non-negative:

            slack_c + D * ((1+gamma) * CPI_max(c)/CPI_f(c) - 1) >= 0

        where ``D`` is the remaining epoch wall time. The exhaustive
        search over the (ten) candidates is the paper's own approach.
        """
        if epoch_remaining_ns <= 0:
            raise ValueError("epoch_remaining_ns must be positive")
        base = self._ladder.fastest
        # The degradation reference is execution *without energy
        # management* (Eq. 1): maximum frequency and no powerdown, so the
        # powerdown-exit term of Eq. 6 is excluded from the reference CPI.
        cpi_max = self._perf.predict(profile_delta, base, 0.0,
                                     profiled_freq=current_freq).cpi
        best: Optional[FrequencyPoint] = None
        best_score = float("inf")
        best_cpi: Optional[np.ndarray] = None
        feasible: List[float] = []
        rejected = False
        # one profile delta serves the whole candidate scan: let the
        # energy model reuse its base reference and shared predictions
        estimate_cache: dict = {}
        for candidate in self._ladder:
            cpi_f = self._perf.predict(profile_delta, candidate,
                                       self._pd_exit_ns,
                                       profiled_freq=current_freq).cpi
            # Switching frequencies suspends memory operation while the
            # DLLs re-lock; charge that stall against the epoch's slack
            # budget (it is negligible for millisecond epochs but real
            # for scaled-down ones).
            if candidate.bus_mhz != current_freq.bus_mhz:
                transition_ns = self._config.policy.transition_penalty_ns(
                    current_freq.bus_mhz)
            else:
                transition_ns = 0.0
            if not self._is_feasible(cpi_f, cpi_max, epoch_remaining_ns,
                                     transition_ns):
                rejected = True
                continue
            feasible.append(candidate.bus_mhz)
            estimate = self._energy.estimate(profile_delta, current_freq,
                                             candidate, base,
                                             cache=estimate_cache)
            score = (estimate.ser
                     if self.objective is PolicyObjective.SYSTEM_ENERGY
                     else estimate.memory_energy_ratio)
            # strict < keeps the highest-frequency minimum on ties
            if score < best_score:
                best, best_score, best_cpi = candidate, score, cpi_f
        if best is None:
            # Even the maximum frequency misses the target (deep negative
            # slack): run flat out and repay the deficit.
            best = base
            best_score = 1.0
            best_cpi = cpi_max
        decision = FrequencyDecision(
            chosen=best, feasible=feasible, ser=best_score,
            predicted_cpi=best_cpi, limited_by_slack=rejected)
        self.decisions.append(decision)
        return decision

    def _is_feasible(self, cpi_f: np.ndarray, cpi_max: np.ndarray,
                     remaining_ns: float,
                     transition_ns: float = 0.0) -> bool:
        for core in range(len(cpi_f)):
            if cpi_max[core] <= 0:
                continue
            ratio = cpi_max[core] / cpi_f[core] if cpi_f[core] > 0 else 1.0
            # Max frequency can never be slower than a candidate: clamping
            # guards against queueing-term (xi) mispredictions inflating
            # the apparent headroom (Section 3.3's approximation).
            ratio = min(ratio, 1.0)
            gamma = self._gamma_per_core[core]
            projected = (self.slack_ns[core]
                         + remaining_ns * ((1.0 + gamma) * ratio - 1.0)
                         - transition_ns)
            if projected < 0:
                return False
        return True

    # -- stage 4: slack update ------------------------------------------------

    def update_slack(self, epoch_delta: CounterDelta,
                     epoch_wall_ns: float,
                     freq_used: Optional[FrequencyPoint] = None) -> None:
        """Fold the finished epoch's achieved-vs-target gap into slack.

        The counters of the whole epoch estimate what each core's progress
        *would have cost* at maximum frequency (Eq. 1's ``T_MaxFreq``); the
        target is that time stretched by ``1 + gamma``; the achieved time
        is the epoch's wall-clock length. ``freq_used`` is the frequency
        the epoch body executed at (for queue-term correction).
        """
        if epoch_wall_ns <= 0:
            raise ValueError("epoch_wall_ns must be positive")
        base = self._ladder.fastest
        # Reference is the no-energy-management execution: no powerdown
        # exits at max frequency (see select_frequency).
        cpi_max = self._perf.predict(epoch_delta, base, 0.0,
                                     profiled_freq=freq_used).cpi
        cycle = self._config.cpu.cycle_ns
        for core in range(len(self.slack_ns)):
            instructions = float(epoch_delta.tic[core])
            if instructions <= 0:
                continue
            t_maxfreq = instructions * cpi_max[core] * cycle
            # The work cannot have been slower at max frequency than it
            # actually was: cap the estimate to keep slack conservative
            # when the model overestimates max-frequency CPI.
            t_maxfreq = min(t_maxfreq, epoch_wall_ns)
            gamma = self._gamma_per_core[core]
            self.slack_ns[core] += t_maxfreq * (1.0 + gamma) - epoch_wall_ns

