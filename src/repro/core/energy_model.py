"""Full-system energy model and SER frequency ranking (Eq. 10).

The System Energy Ratio of a candidate memory frequency is

    SER(f) = (T_f * P_f) / (T_base * P_base)

where ``T_f`` is the predicted execution time of the profiled work at
``f`` and ``P_f = P_mem(f) + P_rest`` adds a *fixed* rest-of-system power
to the modeled memory-subsystem power. Minimizing SER is what stops the
policy from slowing memory past the point where longer runtime costs the
rest of the server more energy than memory saves (Section 3.3).

``P_rest`` is calibrated from a baseline run so that DIMM power is the
configured fraction of total system power (40% by default, Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig
from repro.core.frequency import FrequencyPoint
from repro.core.perf_model import PerformanceModel
from repro.core.power_model import PowerBreakdown, PowerModel
from repro.memsim.counters import CounterDelta


def rest_of_system_power_w(avg_dimm_power_w: float,
                           memory_fraction: float) -> float:
    """Fixed non-memory power implied by the DIMM share of system power.

    With DIMMs at ``memory_fraction`` of the total, the remaining
    ``1 - memory_fraction`` belongs to everything else.
    """
    if not 0.0 < memory_fraction < 1.0:
        raise ValueError("memory_fraction must lie in (0, 1)")
    if avg_dimm_power_w < 0:
        raise ValueError("avg_dimm_power_w must be non-negative")
    return avg_dimm_power_w * (1.0 - memory_fraction) / memory_fraction


@dataclass(frozen=True)
class EnergyEstimate:
    """Predicted energy terms for one candidate frequency."""

    freq_bus_mhz: float
    time_scale: float          #: T(candidate) / T(profiled interval)
    breakdown: PowerBreakdown
    system_power_w: float
    ser: float                 #: Eq. 10, relative to the base frequency
    memory_energy_ratio: float  #: memory-only variant (MemEnergy policy)


class EnergyModel:
    """Ranks candidate frequencies by predicted full-system energy."""

    def __init__(self, config: SystemConfig, rest_power_w: float,
                 perf_model: Optional[PerformanceModel] = None,
                 power_model: Optional[PowerModel] = None):
        config.validate()
        if rest_power_w < 0:
            raise ValueError("rest_power_w must be non-negative")
        self._config = config
        self.rest_power_w = rest_power_w
        self._perf = perf_model if perf_model is not None else PerformanceModel(config)
        self._power = power_model if power_model is not None else PowerModel(config)

    @property
    def perf_model(self) -> PerformanceModel:
        return self._perf

    @property
    def power_model(self) -> PowerModel:
        return self._power

    def estimate(self, delta: CounterDelta, profiled_freq: FrequencyPoint,
                 candidate: FrequencyPoint, base: FrequencyPoint,
                 cache: Optional[dict] = None) -> EnergyEstimate:
        """Predict SER and power for running the profiled work at ``candidate``.

        ``base`` is the SER reference (the paper's nominal frequency: the
        maximum). All predictions derive from counters profiled at
        ``profiled_freq``.

        ``cache`` (optional, caller-owned, valid for one ``delta`` /
        ``profiled_freq`` pair) memoizes the base-frequency reference and
        shared sub-predictions across a candidate scan; every model here
        is pure, so cached results are identical to fresh ones.
        """
        scale_cand = self._perf.time_scale(delta, profiled_freq, candidate,
                                           cache=cache)
        base_ref = cache.get("base") if cache is not None else None
        if base_ref is None:
            scale_base = self._perf.time_scale(delta, profiled_freq, base,
                                               cache=cache)
            p_base = self._power.predict(delta, base, scale_base)
            if cache is not None:
                cache["base"] = (scale_base, p_base)
        else:
            scale_base, p_base = base_ref
        p_cand = self._power.predict(delta, candidate, scale_cand)
        sys_cand = p_cand.memory_w + self.rest_power_w
        sys_base = p_base.memory_w + self.rest_power_w
        denom = scale_base * sys_base
        ser = (scale_cand * sys_cand) / denom if denom > 0 else float("inf")
        mem_denom = scale_base * p_base.memory_w
        mem_ratio = ((scale_cand * p_cand.memory_w) / mem_denom
                     if mem_denom > 0 else float("inf"))
        return EnergyEstimate(
            freq_bus_mhz=candidate.bus_mhz,
            time_scale=scale_cand,
            breakdown=p_cand,
            system_power_w=sys_cand,
            ser=ser,
            memory_energy_ratio=mem_ratio,
        )
