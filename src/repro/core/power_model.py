"""Memory-subsystem power model (Micron-calculator style, Section 2.1).

Computes the power breakdown of Figure 2 from the performance-counter
activity of an interval:

* **background** — standby/powerdown currents of every DRAM chip, chosen
  by the per-rank state-time integrals (PTC/PTCKEL/ATCKEL counters), with
  the frequency-dependent portion derated linearly with bus frequency;
* **refresh** — IDD5 bursts, from the refresh command count;
* **activate/precharge** — per-activation energy (POCC count);
* **read/write** — IDD4 minus standby while the channel bursts;
* **termination** — ODT power in non-target ranks during bursts;
* **PLL/register** — per-DIMM, register power linear in utilization,
  PLL fixed; both scale linearly with channel frequency;
* **memory controller** — linear in utilization between idle and peak,
  scaled by V^2*f relative to the maximum operating point (MC DVFS).

The same model serves two roles: *measuring* the energy of a simulated
interval, and *predicting* power at a different candidate frequency for
the OS policy (Section 3.3), where small errors are later corrected by
the slack mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.core.frequency import (BURST_BUS_CYCLES, FrequencyLadder,
                                  FrequencyPoint)
from repro.memsim.counters import CounterDelta


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power (watts) of the memory subsystem over an interval."""

    background_w: float
    refresh_w: float
    actpre_w: float
    rdwr_w: float
    termination_w: float
    pll_reg_w: float
    mc_w: float

    @property
    def dram_w(self) -> float:
        """All power dissipated in the DRAM chips."""
        return (self.background_w + self.refresh_w + self.actpre_w
                + self.rdwr_w + self.termination_w)

    @property
    def dimm_w(self) -> float:
        """DRAM chips plus the DIMM's register and PLL devices."""
        return self.dram_w + self.pll_reg_w

    @property
    def memory_w(self) -> float:
        """The whole memory subsystem: DIMMs plus memory controller."""
        return self.dimm_w + self.mc_w

    def scaled(self, factor: float) -> "PowerBreakdown":
        return PowerBreakdown(*(getattr(self, f) * factor for f in (
            "background_w", "refresh_w", "actpre_w", "rdwr_w",
            "termination_w", "pll_reg_w", "mc_w")))


class PowerModel:
    """Evaluates :class:`PowerBreakdown` for measured or predicted activity."""

    def __init__(self, config: SystemConfig):
        config.validate()
        self._config = config
        self._ladder = FrequencyLadder(config)
        self._f_max = self._ladder.fastest
        cur = config.currents
        t = config.timings
        chips = config.org.chips_per_rank
        # Per-rank activate/precharge energy at nominal currents: the IDD0
        # envelope over one row cycle minus the standby floor underneath it.
        e_act_chip = cur.vdd * (
            cur.idd0 * t.t_rc_ns
            - (cur.idd3n * t.t_ras_ns + cur.idd2n * (t.t_rc_ns - t.t_ras_ns))
        ) * 1e-9  # ns -> s, yielding joules
        self._e_actpre_rank_j = max(0.0, e_act_chip) * chips
        # Per-rank refresh energy: IDD5 burst above precharge standby.
        self._e_refresh_rank_j = (cur.vdd * (cur.idd5 - cur.idd2n)
                                  * t.t_rfc_ns * 1e-9) * chips

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def ladder(self) -> FrequencyLadder:
        return self._ladder

    # -- frequency derating -------------------------------------------------

    def _freq_derate(self, bus_mhz: float) -> float:
        """Linear derating of clocked standby currents with bus frequency."""
        cur = self._config.currents
        ratio = bus_mhz / self._f_max.bus_mhz
        return cur.static_fraction + (1.0 - cur.static_fraction) * ratio

    def mc_voltage(self, freq: FrequencyPoint) -> float:
        return freq.mc_voltage

    # -- component models -----------------------------------------------------

    def background_power_w(self, delta: CounterDelta, bus_mhz: float) -> float:
        """Standby/powerdown background power across all ranks."""
        if delta.interval_ns <= 0:
            return 0.0
        return sum(self._rank_background_w(delta, rank, bus_mhz)
                   for rank in range(delta.rank_state_ns.shape[0]))

    def refresh_power_w(self, delta: CounterDelta) -> float:
        if delta.interval_ns <= 0:
            return 0.0
        count = float(delta.refreshes.sum())
        return count * self._e_refresh_rank_j / (delta.interval_ns * 1e-9)

    def actpre_power_w(self, delta: CounterDelta) -> float:
        if delta.interval_ns <= 0:
            return 0.0
        return delta.pocc * self._e_actpre_rank_j / (delta.interval_ns * 1e-9)

    def rdwr_power_w(self, delta: CounterDelta) -> float:
        """IDD4 burst power above standby, weighted by channel busy time."""
        if delta.interval_ns <= 0:
            return 0.0
        cur = self._config.currents
        chips = self._config.org.chips_per_rank
        total_busy = float(delta.channel_busy_ns.sum())
        reads = float(delta.channel_reads.sum())
        writes = float(delta.channel_writes.sum())
        ops = reads + writes
        if ops <= 0 or total_busy <= 0:
            return 0.0
        read_share = reads / ops
        p_read = (cur.idd4r - cur.idd3n) * cur.vdd * chips
        p_write = (cur.idd4w - cur.idd3n) * cur.vdd * chips
        p_burst = read_share * p_read + (1.0 - read_share) * p_write
        return p_burst * (total_busy / delta.interval_ns)

    def termination_power_w(self, delta: CounterDelta) -> float:
        """ODT power in the channel's other ranks while a burst is driven."""
        if delta.interval_ns <= 0:
            return 0.0
        cur = self._config.currents
        other_ranks = self._config.org.ranks_per_channel - 1
        if other_ranks <= 0:
            return 0.0
        reads = float(delta.channel_reads.sum())
        writes = float(delta.channel_writes.sum())
        ops = reads + writes
        total_busy = float(delta.channel_busy_ns.sum())
        if ops <= 0 or total_busy <= 0:
            return 0.0
        read_share = reads / ops
        p_term = (read_share * cur.termination_w_read
                  + (1.0 - read_share) * cur.termination_w_write)
        return p_term * (total_busy / delta.interval_ns)

    def pll_reg_power_w(self, utilization: float, bus_mhz: float) -> float:
        """Register + PLL power for every DIMM, linear in channel frequency."""
        p = self._config.power
        ratio = bus_mhz / self._f_max.bus_mhz
        reg = (p.register_idle_w_per_dimm
               + (p.register_peak_w_per_dimm - p.register_idle_w_per_dimm)
               * min(1.0, max(0.0, utilization)))
        pll = p.pll_w_per_dimm
        return (reg + pll) * ratio * self._config.org.total_dimms

    def mc_power_w(self, utilization: float, freq: FrequencyPoint) -> float:
        """MC power: utilization-linear, then scaled by V^2 * f (DVFS)."""
        p = self._config.power
        base = (p.mc_idle_w + (p.mc_peak_w - p.mc_idle_w)
                * min(1.0, max(0.0, utilization)))
        vf_ratio = ((freq.mc_voltage ** 2) * freq.mc_mhz
                    / ((self._f_max.mc_voltage ** 2) * self._f_max.mc_mhz))
        return base * vf_ratio

    # -- top-level entry points --------------------------------------------------

    def measure(self, delta: CounterDelta, freq: FrequencyPoint,
                device_bus_mhz: Optional[float] = None,
                channel_bus_mhz: Optional[Sequence[float]] = None
                ) -> PowerBreakdown:
        """Power breakdown of a simulated interval.

        ``device_bus_mhz`` decouples the DRAM-device clock from the channel
        clock (Decoupled-DIMM baseline); by default they are equal.
        ``channel_bus_mhz`` gives per-channel frequencies (per-channel DFS
        extension): each channel's DIMM background and register/PLL power
        is then derated by its own clock.
        """
        util = delta.mean_channel_utilization
        if channel_bus_mhz is not None:
            org = self._config.org
            if len(channel_bus_mhz) != org.channels:
                raise ValueError("channel_bus_mhz must cover every channel")
            background = 0.0
            for rank in range(org.total_ranks):
                ch = rank // org.ranks_per_channel
                background += self._rank_background_w(
                    delta, rank, channel_bus_mhz[ch])
            # pll_reg_power_w covers all DIMMs; dividing by the channel
            # count yields one channel's share (DIMMs/channel is uniform).
            pll_reg = sum(
                self.pll_reg_power_w(delta.channel_utilization(ch), mhz)
                / self._config.org.channels
                for ch, mhz in enumerate(channel_bus_mhz)
            )
            return PowerBreakdown(
                background_w=background,
                refresh_w=self.refresh_power_w(delta),
                actpre_w=self.actpre_power_w(delta),
                rdwr_w=self.rdwr_power_w(delta),
                termination_w=self.termination_power_w(delta),
                pll_reg_w=pll_reg,
                mc_w=self.mc_power_w(util, freq),
            )
        dev_mhz = device_bus_mhz if device_bus_mhz is not None else freq.bus_mhz
        return PowerBreakdown(
            background_w=self.background_power_w(delta, dev_mhz),
            refresh_w=self.refresh_power_w(delta),
            actpre_w=self.actpre_power_w(delta),
            rdwr_w=self.rdwr_power_w(delta),
            termination_w=self.termination_power_w(delta),
            pll_reg_w=self.pll_reg_power_w(util, freq.bus_mhz),
            mc_w=self.mc_power_w(util, freq),
        )

    def _rank_background_w(self, delta: CounterDelta, rank: int,
                           bus_mhz: float) -> float:
        """Background power of one rank at its channel's clock.

        The state rows are unpacked to plain floats in one ``tolist``
        call (index order follows ``counters._STATE_ORDER``); each term
        keeps the ``frac * idd * vdd * chips * derate`` evaluation order
        so results match the original per-state loop bit for bit.
        """
        interval = delta.interval_ns
        if interval <= 0:
            return 0.0
        cur = self._config.currents
        vdd = cur.vdd
        chips = self._config.org.chips_per_rank
        derate = self._freq_derate(bus_mhz)
        row = delta.rank_state_ns[rank].tolist()
        act_stby, pre_stby, act_pd, pre_pd, self_ref = row
        total = (act_stby / interval) * cur.idd3n * vdd * chips * derate
        total += (pre_stby / interval) * cur.idd2n * vdd * chips * derate
        total += (act_pd / interval) * cur.idd3p * vdd * chips * derate
        total += (pre_pd / interval) * cur.idd2p * vdd * chips * derate
        # Self-refresh keeps only IDD6; the clock is stopped, so no derate.
        total += (self_ref / interval) * cur.idd6 * vdd * chips
        return total

    def predict(self, delta: CounterDelta, candidate: FrequencyPoint,
                time_scale: float,
                channel_bus_mhz: Optional[Sequence[float]] = None
                ) -> PowerBreakdown:
        """Predict the breakdown if the profiled interval ran at ``candidate``.

        ``time_scale`` is the performance model's predicted execution-time
        ratio T(candidate) / T(profiled). Event *counts* (activations,
        accesses, refreshes-per-second) are held fixed; busy time is
        recomputed from the candidate burst length; state-time fractions
        keep their absolute active time (device operations have fixed
        wall-clock duration) while standby absorbs the change in interval
        length.

        ``channel_bus_mhz`` predicts a per-channel-DFS configuration (cap
        allocator's joint search): each channel's burst time, DIMM
        background derate and register/PLL power follow its own clock,
        while the MC stays at ``candidate``. With the default ``None``
        the computation is exactly the historical global-frequency path.
        """
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        if delta.interval_ns <= 0:
            return self.measure(delta, candidate,
                                channel_bus_mhz=channel_bus_mhz)
        interval = delta.interval_ns * time_scale
        if channel_bus_mhz is not None:
            return self._predict_per_channel(delta, candidate, interval,
                                             channel_bus_mhz)
        accesses = float(delta.channel_reads.sum() + delta.channel_writes.sum())
        busy_ns = accesses * candidate.burst_ns
        util = busy_ns / (interval * max(1, len(delta.channel_busy_ns)))

        # Background: hold absolute active/powerdown time, stretch standby.
        cur = self._config.currents
        vdd = cur.vdd
        chips = self._config.org.chips_per_rank
        derate = self._freq_derate(candidate.bus_mhz)
        total_bg = 0.0
        for row in delta.rank_state_ns.tolist():
            # index order matches counters._STATE_ORDER
            act_stby, pre_stby, act_pd, pre_pd, self_ref = row
            fixed = act_stby + act_pd + pre_pd + self_ref
            pre_stby_new = max(0.0, interval - fixed)
            total_bg += (act_stby / interval) * cur.idd3n * vdd * chips * derate
            total_bg += (pre_stby_new / interval) * cur.idd2n * vdd * chips * derate
            total_bg += (act_pd / interval) * cur.idd3p * vdd * chips * derate
            total_bg += (pre_pd / interval) * cur.idd2p * vdd * chips * derate
            total_bg += (self_ref / interval) * cur.idd6 * vdd * chips

        refresh_w = (float(delta.refreshes.sum()) * time_scale
                     * self._e_refresh_rank_j / (interval * 1e-9))
        actpre_w = delta.pocc * self._e_actpre_rank_j / (interval * 1e-9)

        reads = float(delta.channel_reads.sum())
        writes = float(delta.channel_writes.sum())
        ops = reads + writes
        if ops > 0:
            read_share = reads / ops
            p_read = (cur.idd4r - cur.idd3n) * cur.vdd * chips
            p_write = (cur.idd4w - cur.idd3n) * cur.vdd * chips
            p_burst = read_share * p_read + (1.0 - read_share) * p_write
            rdwr_w = p_burst * (busy_ns / interval)
            other_ranks = self._config.org.ranks_per_channel - 1
            p_term = (read_share * cur.termination_w_read
                      + (1.0 - read_share) * cur.termination_w_write)
            term_w = p_term * (busy_ns / interval) if other_ranks > 0 else 0.0
        else:
            rdwr_w = 0.0
            term_w = 0.0

        return PowerBreakdown(
            background_w=total_bg,
            refresh_w=refresh_w,
            actpre_w=actpre_w,
            rdwr_w=rdwr_w,
            termination_w=term_w,
            pll_reg_w=self.pll_reg_power_w(util, candidate.bus_mhz),
            mc_w=self.mc_power_w(util, candidate),
        )

    def _predict_per_channel(self, delta: CounterDelta,
                             candidate: FrequencyPoint, interval: float,
                             channel_bus_mhz: Sequence[float]
                             ) -> PowerBreakdown:
        """Per-channel-DFS prediction backing :meth:`predict`.

        Mirrors the global path's stretch-the-standby accounting, but
        each channel's burst time and clock-derated components follow
        its own frequency. The MC remains at the global ``candidate``.
        """
        org = self._config.org
        if len(channel_bus_mhz) != org.channels:
            raise ValueError("channel_bus_mhz must cover every channel")
        cur = self._config.currents
        vdd = cur.vdd
        chips = org.chips_per_rank

        # Busy time per channel from its own burst length.
        busy_by_channel = []
        for ch, mhz in enumerate(channel_bus_mhz):
            accesses = float(delta.channel_reads[ch]
                             + delta.channel_writes[ch])
            burst_ns = BURST_BUS_CYCLES * 1000.0 / mhz
            busy_by_channel.append(accesses * burst_ns)
        busy_ns = sum(busy_by_channel)
        util = busy_ns / (interval * max(1, org.channels))

        # Background: hold absolute active/powerdown time, stretch
        # standby; derate each rank by its channel's clock.
        total_bg = 0.0
        for rank, row in enumerate(delta.rank_state_ns.tolist()):
            derate = self._freq_derate(
                channel_bus_mhz[rank // org.ranks_per_channel])
            act_stby, pre_stby, act_pd, pre_pd, self_ref = row
            fixed = act_stby + act_pd + pre_pd + self_ref
            pre_stby_new = max(0.0, interval - fixed)
            total_bg += (act_stby / interval) * cur.idd3n * vdd * chips * derate
            total_bg += (pre_stby_new / interval) * cur.idd2n * vdd * chips * derate
            total_bg += (act_pd / interval) * cur.idd3p * vdd * chips * derate
            total_bg += (pre_pd / interval) * cur.idd2p * vdd * chips * derate
            total_bg += (self_ref / interval) * cur.idd6 * vdd * chips

        time_scale = interval / delta.interval_ns
        refresh_w = (float(delta.refreshes.sum()) * time_scale
                     * self._e_refresh_rank_j / (interval * 1e-9))
        actpre_w = delta.pocc * self._e_actpre_rank_j / (interval * 1e-9)

        reads = float(delta.channel_reads.sum())
        writes = float(delta.channel_writes.sum())
        ops = reads + writes
        if ops > 0 and busy_ns > 0:
            read_share = reads / ops
            p_read = (cur.idd4r - cur.idd3n) * vdd * chips
            p_write = (cur.idd4w - cur.idd3n) * vdd * chips
            p_burst = read_share * p_read + (1.0 - read_share) * p_write
            rdwr_w = p_burst * (busy_ns / interval)
            p_term = (read_share * cur.termination_w_read
                      + (1.0 - read_share) * cur.termination_w_write)
            term_w = (p_term * (busy_ns / interval)
                      if org.ranks_per_channel > 1 else 0.0)
        else:
            rdwr_w = 0.0
            term_w = 0.0

        # pll_reg_power_w covers all DIMMs; one channel's share is 1/channels.
        pll_reg = sum(
            self.pll_reg_power_w(busy_by_channel[ch] / interval, mhz)
            / org.channels
            for ch, mhz in enumerate(channel_bus_mhz)
        )
        return PowerBreakdown(
            background_w=total_bg,
            refresh_w=refresh_w,
            actpre_w=actpre_w,
            rdwr_w=rdwr_w,
            termination_w=term_w,
            pll_reg_w=pll_reg,
            mc_w=self.mc_power_w(util, candidate),
        )
