"""Memory-subsystem simulator substrate.

Event-driven model of a DDR3 memory subsystem: controller, channels,
ranks, banks, DRAM timing, powerdown states, frequency re-locking, and
the hardware performance-counter file of Section 3.1.
"""

from repro.memsim.address import AddressMapper, MemoryLocation
from repro.memsim.controller import MemoryController, WRITEBACK_QUEUE_CAPACITY
from repro.memsim.counters import CounterDelta, CounterFile, CounterSnapshot
from repro.memsim.engine import Event, EventEngine, SimulationError
from repro.memsim.request import MemRequest, RequestKind
from repro.memsim.states import PowerdownMode, RankPowerState
from repro.memsim.timing import AccessClass, TimingCalculator
from repro.memsim.validate import (
    ProtocolValidator,
    ProtocolViolation,
    Violation,
)

__all__ = [
    "AccessClass",
    "AddressMapper",
    "CounterDelta",
    "CounterFile",
    "CounterSnapshot",
    "Event",
    "EventEngine",
    "MemoryController",
    "MemoryLocation",
    "MemRequest",
    "PowerdownMode",
    "ProtocolValidator",
    "ProtocolViolation",
    "RankPowerState",
    "RequestKind",
    "SimulationError",
    "TimingCalculator",
    "Violation",
    "WRITEBACK_QUEUE_CAPACITY",
]
